#!/usr/bin/env python
"""CI smoke test for crash-safe sweeps.

Orchestrates the failure sequence the resilience layer exists for:

1. start a journaled sweep with two workers;
2. SIGKILL one *worker* process mid-grid (the supervisor must rebuild
   the pool and keep going);
3. SIGKILL the *driver* shortly after (simulated preemption — nothing
   gets to clean up);
4. assert the journal replays cleanly (at most one torn tail line);
5. ``sweep --resume`` the journal to completion;
6. diff the resumed run's per-seed scalars and aggregate against an
   uninterrupted reference run.

Exits non-zero with a diagnostic on any failure.  Needs only the repo
checkout (``python tools/resilience_smoke.py``).
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.resilience import replay_journal  # noqa: E402

SEEDS = "1..6"
DURATION = "120"


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def sweep_argv(*extra: str) -> list[str]:
    return [sys.executable, "-m", "repro", "sweep", *extra]


def child_pids(pid: int) -> list[int]:
    """Direct children of ``pid`` via /proc (Linux only)."""
    pids: list[int] = []
    task_dir = pathlib.Path(f"/proc/{pid}/task")
    try:
        for task in task_dir.iterdir():
            children = task / "children"
            pids.extend(int(p) for p in children.read_text().split())
    except OSError:
        pass
    return pids


def wait_for(predicate, timeout_s: float, what: str) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    fail(f"timed out waiting for {what}")


def main() -> None:
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="resilience-smoke-"))
    journal = workdir / "sweep.jsonl"
    env = dict(
        os.environ,
        PYTHONPATH=str(REPO_ROOT / "src"),
        REPRO_CACHE_DIR=str(workdir / "cache"),
    )

    print("== starting journaled sweep (2 workers)")
    driver = subprocess.Popen(
        sweep_argv("fig9", "--seeds", SEEDS, "--duration", DURATION,
                   "--workers", "2", "--no-cache",
                   "--journal", str(journal)),
        env=env, cwd=str(workdir),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        wait_for(
            lambda: journal.exists()
            and '"kind":"start"' in journal.read_text(),
            timeout_s=90.0, what="the first journaled job start",
        )
        wait_for(lambda: child_pids(driver.pid), timeout_s=30.0,
                 what="worker processes to spawn")
        workers = child_pids(driver.pid)
        print(f"== SIGKILLing worker {workers[0]} mid-grid")
        os.kill(workers[0], signal.SIGKILL)

        # Let the supervisor rebuild the pool and journal at least one
        # completed job, then kill the driver outright: no drain, no
        # atexit, just preemption.
        wait_for(
            lambda: '"kind":"finish"' in journal.read_text(),
            timeout_s=120.0, what="a journaled job completion",
        )
        print(f"== SIGKILLing driver {driver.pid}")
        driver.kill()
        driver.wait(timeout=30)
    finally:
        if driver.poll() is None:
            driver.kill()
            driver.wait()
        for pid in child_pids(driver.pid):  # orphan cleanup, best-effort
            try:
                os.kill(pid, signal.SIGKILL)
            except OSError:
                pass

    print("== replaying the journal")
    replay = replay_journal(journal)
    if replay.meta is None:
        fail("journal has no meta record")
    if replay.torn_lines > 1:
        fail(f"journal has {replay.torn_lines} torn lines (max 1 expected)")
    if len(replay.completed) >= 6:
        fail("grid completed before the driver was killed; nothing to "
             "resume — raise DURATION")
    print(f"   {replay.records} records, {len(replay.completed)} complete, "
          f"{len(replay.in_flight)} in flight, "
          f"{replay.torn_lines} torn line(s)")

    print("== resuming the sweep to completion")
    resumed = subprocess.run(
        sweep_argv("--resume", str(journal), "--no-cache", "--workers", "2",
                   "--json"),
        env=env, cwd=str(workdir), capture_output=True, text=True,
        timeout=600,
    )
    if resumed.returncode != 0:
        fail(f"--resume exited {resumed.returncode}:\n{resumed.stderr}")
    if "resumed" not in resumed.stderr:
        fail("resume did not serve any job from the journal")

    print("== running the uninterrupted reference")
    reference = subprocess.run(
        sweep_argv("fig9", "--seeds", SEEDS, "--duration", DURATION,
                   "--no-cache", "--json"),
        env=env, cwd=str(workdir), capture_output=True, text=True,
        timeout=600,
    )
    if reference.returncode != 0:
        fail(f"reference sweep exited {reference.returncode}:\n"
             f"{reference.stderr}")

    got = json.loads(resumed.stdout)
    want = json.loads(reference.stdout)
    for key in ("jobs", "seeds", "aggregate"):
        if got[key] != want[key]:
            fail(f"resumed sweep diverged from the uninterrupted run "
                 f"in {key!r}:\n  resumed:   {got[key]}\n"
                 f"  reference: {want[key]}")
    print("== OK: journal replayable, resume complete, aggregates identical")


if __name__ == "__main__":
    main()
