#!/usr/bin/env python
"""Seeded search for worst-case thermal-adversarial instances.

Thin CLI over :func:`repro.scenarios.adversarial_search`: sample
``--candidates`` parameter perturbations of the ``thermal-adversarial``
family from one RNG, simulate each briefly, and rank by
migrations/s x throttle fraction (worst first).  The whole run is a
pure function of ``(--candidates, --seed, --duration)`` — re-running
with the same arguments prints byte-identical output.

The two pinned offenders in ``repro.perf.scenarios``
(``adv-pingpong``, ``adv-throttle-storm``) came out of this search;
re-run it after simulator changes to check they are still the worst,
and pass ``--json`` to get machine-readable specs for pinning::

    python tools/find_adversarial.py --candidates 12 --seed 0 --json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.scenarios import adversarial_search  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="rank seeded thermal-adversarial candidates, worst first"
    )
    parser.add_argument("--candidates", type=int, default=12,
                        help="parameter draws to evaluate (default 12)")
    parser.add_argument("--seed", type=int, default=0,
                        help="search RNG seed (default 0)")
    parser.add_argument("--duration", type=float, default=20.0,
                        help="simulated seconds per candidate (default 20)")
    parser.add_argument("--top", type=int, default=None,
                        help="only print the N worst")
    parser.add_argument("--json", action="store_true",
                        help="emit the ranking as a JSON array")
    args = parser.parse_args(argv)

    results = adversarial_search(
        n_candidates=args.candidates,
        seed=args.seed,
        duration_s=args.duration,
    )
    if args.top is not None:
        results = results[: args.top]

    if args.json:
        print(json.dumps([r.to_dict() for r in results], indent=2,
                         sort_keys=True))
        return 0

    print(f"adversarial search: {args.candidates} candidates, "
          f"seed {args.seed}, {args.duration:g} s each\n")
    print(f"{'rank':>4} {'mig/s':>7} {'thr':>6} {'score':>7}  spec")
    for rank, result in enumerate(results, start=1):
        spec = result.spec
        params = json.dumps(dict(spec.params), sort_keys=True)
        print(f"{rank:>4} {result.migrations_per_s:>7.2f} "
              f"{result.throttle_fraction:>6.3f} {result.score:>7.3f}  "
              f"seed={spec.seed} {params}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
