#!/usr/bin/env python3
"""Generate docs/cli.md from the argparse tree — or verify it is fresh.

The CLI reference is *derived*, never hand-edited: this script walks
``repro.cli.build_parser()`` and renders every subcommand with its
positionals and options into ``docs/cli.md``. CI runs ``--check``,
which regenerates the document in memory and fails if the committed
file differs — so a flag added to the parser without regenerating the
docs breaks the build instead of silently drifting.

Usage:
    python tools/gen_cli_docs.py            # (re)write docs/cli.md
    python tools/gen_cli_docs.py --check    # exit 1 if docs/cli.md is stale

The renderer is deliberately hand-rolled instead of using
``parser.format_help()``: argparse's output depends on the terminal
width, which would make the freshness check environment-sensitive.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

OUT_PATH = REPO / "docs" / "cli.md"

HEADER = """\
# CLI reference

<!-- GENERATED FILE — do not edit by hand.
     Regenerate with: python tools/gen_cli_docs.py
     CI checks freshness with: python tools/gen_cli_docs.py --check -->

Every entry point is a subcommand of `python -m repro`. This page is
generated from the argparse tree by `tools/gen_cli_docs.py`; the
prose documents live next door (see [architecture.md](architecture.md)
for the map).
"""


def _iter_subparsers(parser):
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            helps = {
                pseudo.dest: " ".join((pseudo.help or "").split())
                for pseudo in action._choices_actions
            }
            seen = {}
            for name, sub in action.choices.items():
                # aliases share the parser object; keep the first name
                seen.setdefault(id(sub), (name, sub))
            for name, sub in seen.values():
                yield name, sub, helps.get(name, "")


def _format_invocation(action) -> str:
    if not action.option_strings:  # positional
        name = action.metavar or action.dest
        if action.nargs in ("?", "*"):
            return f"[{name}]"
        return f"{name}"
    parts = []
    metavar = None
    if action.nargs != 0:
        metavar = action.metavar or action.dest.upper()
    for opt in action.option_strings:
        parts.append(f"{opt} {metavar}" if metavar else opt)
    return ", ".join(parts)


def _format_help(action) -> str:
    text = " ".join((action.help or "").split())
    if "%(default)s" in text:
        text = text % {"default": action.default}
    return text


def _render_actions(parser, lines: list[str]) -> None:
    positionals = [
        a for a in parser._actions
        if not a.option_strings
        and not isinstance(a, argparse._SubParsersAction)
    ]
    options = [
        a for a in parser._actions
        if a.option_strings and not isinstance(a, argparse._HelpAction)
    ]
    if positionals:
        lines.append("")
        lines.append("| positional | description |")
        lines.append("|---|---|")
        for action in positionals:
            lines.append(
                f"| `{_format_invocation(action)}` | {_format_help(action)} |"
            )
    if options:
        lines.append("")
        lines.append("| option | description |")
        lines.append("|---|---|")
        for action in options:
            lines.append(
                f"| `{_format_invocation(action)}` | {_format_help(action)} |"
            )


def render() -> str:
    from repro.cli import build_parser

    parser = build_parser()
    lines = [HEADER]
    desc = " ".join((parser.description or "").split())
    if desc:
        lines.append(desc)
    subparsers = sorted(_iter_subparsers(parser))
    lines.append("")
    lines.append("| subcommand | summary |")
    lines.append("|---|---|")
    for name, _sub, summary in subparsers:
        lines.append(f"| [`{name}`](#{name}) | {summary} |")
    for name, sub, summary in subparsers:
        lines.append("")
        lines.append(f"## {name}")
        sub_desc = " ".join((sub.description or "").split()) or summary
        if sub_desc:
            lines.append("")
            lines.append(sub_desc)
        _render_actions(sub, lines)
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    args_parser = argparse.ArgumentParser(description=__doc__)
    args_parser.add_argument(
        "--check", action="store_true",
        help="do not write; exit 1 if docs/cli.md is out of date",
    )
    args = args_parser.parse_args(argv)

    text = render()
    if args.check:
        on_disk = OUT_PATH.read_text() if OUT_PATH.exists() else ""
        if on_disk != text:
            print(
                "docs/cli.md is stale — regenerate with "
                "`python tools/gen_cli_docs.py`",
                file=sys.stderr,
            )
            return 1
        print(f"{OUT_PATH.relative_to(REPO)} is up to date")
        return 0
    OUT_PATH.write_text(text)
    print(f"wrote {OUT_PATH.relative_to(REPO)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
