#!/usr/bin/env python3
"""Check the docs against the code and the committed benchmark numbers.

Two classes of drift have bitten this repo before, and both are now
build failures instead of review comments:

1. **Stale performance claims.** Every headline number the docs cite
   (ticks/s, speedups, the real-time factor) must match the committed
   ``BENCH_perf.json``, under the docs' own rounding convention:
   ticks/s to the nearest 100 (nearest 1,000 for the fleet aggregate,
   which is two orders of magnitude larger), speedups to one decimal.
   Regenerate the docs' numbers after ``python -m repro perf``.

2. **Undocumented subsystems.** Every subpackage of ``src/repro/``
   must be mentioned by name (``repro.<pkg>``) in
   ``docs/architecture.md`` — the architecture doc is the map, and a
   subsystem missing from the map is invisible to new readers.

3. **Stale tournament leaderboards.** The policy table in
   ``docs/policies.md`` (rank, mean energy to one decimal kJ, jobs/min
   to two decimals, throttle %, frequency scale, wins) must match the
   committed ``BENCH_policies.json``. Regenerate the table after
   ``python -m repro tournament``.

4. **Stale scenario-family catalogs.** Every family registered in
   ``repro.scenarios`` must appear in ``docs/scenarios.md``'s family
   table, with its fleet-eligibility documented consistently.

5. **Undocumented run events.** Every event kind the telemetry bus
   can carry (``repro.obs.events.EVENT_KINDS``) must appear in the
   kind catalog of ``docs/live_telemetry.md``, and the doc must not
   list kinds the bus no longer knows.

Run: python tools/check_docs.py   (exit 1 on any drift)
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
BENCH = REPO / "BENCH_perf.json"
BENCH_POLICIES = REPO / "BENCH_policies.json"
PERF_DOC = REPO / "docs" / "performance.md"
ARCH_DOC = REPO / "docs" / "architecture.md"
POLICIES_DOC = REPO / "docs" / "policies.md"
SCENARIOS_DOC = REPO / "docs" / "scenarios.md"
TELEMETRY_DOC = REPO / "docs" / "live_telemetry.md"

errors: list[str] = []


def _fmt(value: float, nearest: int) -> str:
    return f"{round(value / nearest) * nearest:,.0f}"


def _expect(doc: Path, text: str, pattern: str, label: str,
            expected: str) -> None:
    match = re.search(pattern, text)
    if not match:
        errors.append(f"{doc.name}: no line matching {label!r} "
                      f"(pattern {pattern!r})")
        return
    cited = match.group(1)
    if cited != expected:
        errors.append(f"{doc.name}: {label} cites {cited!r} but "
                      f"BENCH_perf.json says {expected!r}")


def check_perf_numbers() -> None:
    bench = json.loads(BENCH.read_text())
    headline = bench["headline"]["timing"]
    fleet = bench["fleet"]["timing"]
    perf_text = PERF_DOC.read_text()
    arch_text = ARCH_DOC.read_text()

    _expect(PERF_DOC, perf_text,
            r"\| scalar reference path \| ~([\d,]+) ticks/s",
            "scalar reference ticks/s",
            _fmt(headline["scalar_ticks_per_s"], 100))
    _expect(PERF_DOC, perf_text,
            r"\| batched fast path \| ~([\d,]+) ticks/s",
            "batched fast path ticks/s",
            _fmt(headline["fast_ticks_per_s"], 100))
    _expect(PERF_DOC, perf_text,
            r"\| batched fast path \|[^|]*~(\d+\.\d)x vs scalar",
            "fast-path speedup",
            f"{headline['speedup_vs_scalar']:.1f}")
    _expect(PERF_DOC, perf_text,
            r"\| fleet engine[^|]*\| ~([\d,]+) machine-ticks/s",
            "fleet aggregate machine-ticks/s",
            _fmt(fleet["fleet_machine_ticks_per_s"], 1000))
    _expect(PERF_DOC, perf_text,
            r"\| fleet engine[^|]*\|[^|]*~(\d+\.\d)x vs per-job",
            "fleet speedup",
            f"{fleet['speedup_vs_per_job']:.1f}")

    # architecture.md cites the real-time factor of the headline
    # scenario: ticks/s x 10 ms per tick / 1000 ms.
    _expect(ARCH_DOC, arch_text,
            r"~(\d+)x real time",
            "real-time factor",
            str(round(headline["fast_ticks_per_s"] / 100)))
    _expect(ARCH_DOC, arch_text,
            r"~\d+x real time \(~([\d,]+) ticks/s\)",
            "architecture ticks/s",
            _fmt(headline["fast_ticks_per_s"], 100))


def check_policy_numbers() -> None:
    bench = json.loads(BENCH_POLICIES.read_text())
    doc_text = POLICIES_DOC.read_text()
    for row in bench["leaderboard"]:
        expected = (
            f"| {row['rank']} | {row['policy']} "
            f"| {row['mean_energy_j'] / 1000.0:.1f} "
            f"| {row['mean_jobs_per_min']:.2f} "
            f"| {row['mean_throttle_fraction'] * 100.0:.1f} "
            f"| {row['mean_frequency_scale']:.3f} "
            f"| {row['wins']} |"
        )
        if expected not in doc_text:
            errors.append(
                f"{POLICIES_DOC.name}: leaderboard row for "
                f"{row['policy']!r} missing or stale — expected "
                f"{expected!r} (regenerate after 'python -m repro "
                "tournament')"
            )
    # The doc must not list policies the payload doesn't know.
    doc_rows = re.findall(r"^\| \d+ \| ([a-z-]+) \|", doc_text, re.M)
    known = {row["policy"] for row in bench["leaderboard"]}
    for name in doc_rows:
        if name not in known:
            errors.append(
                f"{POLICIES_DOC.name}: leaderboard lists {name!r}, which "
                "BENCH_policies.json does not rank"
            )


def check_subpackage_coverage() -> None:
    arch_text = ARCH_DOC.read_text()
    pkg_root = REPO / "src" / "repro"
    subpackages = sorted(
        p.name for p in pkg_root.iterdir()
        if p.is_dir() and (p / "__init__.py").exists()
    )
    for name in subpackages:
        if f"repro.{name}" not in arch_text:
            errors.append(
                f"architecture.md: subpackage `repro.{name}` is never "
                "mentioned — add it to the subsystem map"
            )


def check_scenario_families() -> None:
    sys.path.insert(0, str(REPO / "src"))
    from repro.scenarios import family_by_name, family_names

    doc_text = SCENARIOS_DOC.read_text()
    table_rows = re.findall(r"^\| `([a-z-]+)` \|.*\| (yes|no)",
                            doc_text, re.M)
    documented = dict(table_rows)
    for name in family_names():
        family = family_by_name(name)
        if name not in documented:
            errors.append(
                f"{SCENARIOS_DOC.name}: registered family {name!r} is "
                "missing from the family table"
            )
            continue
        eligible = documented[name] == "yes"
        if eligible != family.fleet_eligible:
            errors.append(
                f"{SCENARIOS_DOC.name}: family {name!r} documented as "
                f"fleet-eligible={eligible} but the registry says "
                f"{family.fleet_eligible}"
            )
    for name in documented:
        if name not in family_names():
            errors.append(
                f"{SCENARIOS_DOC.name}: family table lists {name!r}, "
                "which is not registered in repro.scenarios"
            )


def check_event_kinds() -> None:
    sys.path.insert(0, str(REPO / "src"))
    from repro.obs.events import EVENT_KINDS

    doc_text = TELEMETRY_DOC.read_text()
    documented = re.findall(r"^\| `([a-z_]+)` \|", doc_text, re.M)
    for kind in EVENT_KINDS:
        if kind not in documented:
            errors.append(
                f"{TELEMETRY_DOC.name}: event kind {kind!r} is missing "
                "from the kind catalog table"
            )
    for kind in documented:
        if kind not in EVENT_KINDS:
            errors.append(
                f"{TELEMETRY_DOC.name}: kind catalog lists {kind!r}, "
                "which repro.obs.events.EVENT_KINDS does not define"
            )


def main() -> int:
    check_perf_numbers()
    check_policy_numbers()
    check_subpackage_coverage()
    check_scenario_families()
    check_event_kinds()
    if errors:
        for err in errors:
            print(f"error: {err}", file=sys.stderr)
        return 1
    print("docs are consistent with BENCH_perf.json, "
          "BENCH_policies.json, repro.scenarios, repro.obs.events, "
          "and src/repro/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
