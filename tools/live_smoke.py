#!/usr/bin/env python
"""CI smoke test for the live telemetry endpoint.

Starts a real sweep with ``--serve-metrics`` and ``--events``, then —
while the sweep is still running — scrapes the endpoint the way a
Prometheus server would and asserts:

1. the scrape is well-formed exposition text (every sample line parses,
   the ``repro_live_*`` family is present);
2. the ``/snapshot`` JSON carries the ``repro-metrics/1`` schema with a
   live section whose counts are internally consistent;
3. at least one mid-flight scrape observes the sweep in progress;
4. after the sweep exits, the durable event stream holds exactly one
   ``grid_started``/``grid_finished`` pair and at least one
   ``job_finished`` event.

Exits non-zero with a diagnostic on any failure.  Needs only the repo
checkout (``python tools/live_smoke.py``).
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import subprocess
import sys
import tempfile
import time
import urllib.request

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs import count_by_kind, read_events  # noqa: E402

SEEDS = "1..6"
SCENARIO = {
    "name": "live-smoke",
    "machine": {"preset": "cmp", "packages": 1, "cores": 2, "smt": False},
    "workload": {"builder": "steady_mix", "copies": 1},
    "policy": "energy",
    "duration_s": 20.0,
}

#: ``metric_name{labels} value`` or ``metric_name value``.
SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?(\d+\.?\d*([eE][+-]?\d+)?|nan|inf)$"
)

URL_LINE = re.compile(r"live telemetry: (http://127\.0\.0\.1:\d+)/metrics")


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def get(url: str) -> bytes:
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.read()


def check_exposition(text: str) -> None:
    names = set()
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        if not SAMPLE_LINE.match(line):
            fail(f"malformed exposition line: {line!r}")
        names.add(line.split("{")[0].split(" ")[0])
    for required in ("repro_live_jobs_total", "repro_live_jobs_done"):
        if required not in names:
            fail(f"scrape is missing {required} (got {sorted(names)})")


def main() -> int:
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="live-smoke-"))
    scenario_path = workdir / "scenario.json"
    scenario_path.write_text(json.dumps(SCENARIO))
    events_path = workdir / "events.jsonl"

    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "sweep",
         "--scenario", str(scenario_path), "--seeds", SEEDS,
         "--workers", "2", "--no-cache",
         "--serve-metrics", "0", "--events", str(events_path)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
    )

    # The driver prints the ephemeral endpoint URL to stderr first.
    base = None
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        line = proc.stderr.readline()
        if not line:
            break
        match = URL_LINE.search(line)
        if match:
            base = match.group(1)
            break
    if base is None:
        proc.kill()
        fail("driver never announced the live endpoint URL")
    print(f"endpoint: {base}")

    # Scrape mid-sweep until the run finishes; every scrape must be
    # well-formed, and at least one must land while jobs are pending.
    scrapes = 0
    saw_midflight = False
    last_live: dict = {}
    while proc.poll() is None:
        try:
            text = get(f"{base}/metrics").decode()
            snapshot = json.loads(get(f"{base}/snapshot"))
        except OSError:
            break  # endpoint shut down as the sweep finished
        check_exposition(text)
        if snapshot.get("schema") != "repro-metrics/1":
            fail(f"snapshot schema: {snapshot.get('schema')!r}")
        live = snapshot.get("live", {})
        if live.get("jobs_done", 0) > live.get("jobs_total", 0):
            fail(f"jobs_done exceeds jobs_total: {live}")
        if live.get("jobs_done", 0) < live.get("jobs_total", 0):
            saw_midflight = True
        last_live = live
        scrapes += 1
        time.sleep(0.2)

    stdout, stderr = proc.communicate(timeout=120)
    if proc.returncode != 0:
        fail(f"sweep exited {proc.returncode}:\n{stderr}")
    if scrapes == 0:
        fail("never completed a scrape while the sweep ran")
    if not saw_midflight:
        fail("every scrape saw a finished grid; sweep too short to "
             "observe mid-flight — raise duration_s")
    print(f"{scrapes} scrape(s), last live section: "
          f"{json.dumps(last_live, sort_keys=True)}")

    counts = count_by_kind(read_events(events_path))
    print(f"event stream: {counts}")
    if counts.get("grid_started") != 1 or counts.get("grid_finished") != 1:
        fail(f"expected exactly one grid_started/grid_finished pair: "
             f"{counts}")
    if counts.get("job_finished", 0) < 1:
        fail(f"no job_finished events in the durable stream: {counts}")

    print("live telemetry smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
