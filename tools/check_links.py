#!/usr/bin/env python3
"""Check that relative markdown links resolve to real files.

Scans the given markdown files (default: README.md and docs/*.md) for
``[text](target)`` links, skips external URLs and pure anchors, and
verifies each relative target exists on disk. Exits non-zero listing
every broken link — CI runs this so docs cannot rot silently.

    python tools/check_links.py
    python tools/check_links.py README.md docs/*.md *.md
"""

from __future__ import annotations

import pathlib
import re
import sys

# [text](target) — target captured up to the closing paren; markdown
# images ![alt](target) match too, which is what we want.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def broken_links(path: pathlib.Path) -> list[tuple[str, str]]:
    """(link, reason) for every unresolvable relative link in ``path``."""
    problems = []
    for target in _LINK.findall(path.read_text(encoding="utf-8")):
        if target.startswith(_SKIP_SCHEMES) or target.startswith("#"):
            continue
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            problems.append((target, f"no such file: {resolved}"))
    return problems


def main(argv: list[str]) -> int:
    if argv:
        files = [pathlib.Path(a) for a in argv]
    else:
        root = pathlib.Path(__file__).resolve().parent.parent
        files = [root / "README.md", *sorted((root / "docs").glob("*.md"))]
    failures = 0
    for path in files:
        if not path.is_file():
            print(f"{path}: not a file")
            failures += 1
            continue
        for link, reason in broken_links(path):
            print(f"{path}: broken link ({link}): {reason}")
            failures += 1
    if failures:
        print(f"{failures} broken link(s)")
        return 1
    print(f"checked {len(files)} file(s): all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
