"""Job specs: one picklable description of one simulation run.

A :class:`JobSpec` names either a registered experiment or an inline
scenario object (the same JSON shape ``repro.scenario`` parses), plus
the parameters that vary across a sweep: duration, seed, and — for
scenarios — config overrides merged into the scenario dict.  Specs are
plain data, so they cross process boundaries cheaply and hash stably:
:meth:`JobSpec.content_hash` is a SHA-256 over the canonical JSON form,
which keys the on-disk result cache.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.core.policyspec import canonical_policy_value


def _canonical_scenario_keys(data: dict[str, Any]) -> dict[str, Any]:
    """Normalize policy spellings so equivalent specs hash identically.

    ``PolicySpec("energy")``, ``Policy.ENERGY``, and ``"energy"`` all
    render as the plain name (byte-for-byte the pre-PolicySpec form, so
    existing cache entries stay valid); parameterized specs render as
    the sorted ``{"name", "params"}`` mapping.  Invalid values are left
    untouched — they fail at execution time with the parser's error,
    exactly as before.
    """
    if "policy" in data:
        try:
            data["policy"] = canonical_policy_value(data["policy"])
        except (ValueError, TypeError):
            pass
    return data


@dataclass(frozen=True)
class JobSpec:
    """One run of one experiment or scenario.

    Attributes
    ----------
    experiment:
        Name of a registry experiment (``repro.experiments.REGISTRY``).
        Mutually exclusive with ``scenario``.
    scenario:
        An inline scenario object (see :mod:`repro.scenario`), run via
        ``parse_scenario`` after ``overrides``/``duration_s``/``seed``
        are merged in.
    duration_s:
        Simulated duration; ``None`` keeps the experiment's quick-look
        default (or the scenario's own ``duration_s``).
    seed:
        Root seed; ``None`` keeps the committed default.
    overrides:
        Top-level scenario keys merged over ``scenario`` (for example
        ``{"temp_limit_c": 40.0}``).  Only valid with ``scenario`` —
        experiment entrypoints take no config parameters.
    """

    experiment: str | None = None
    scenario: Mapping[str, Any] | None = None
    duration_s: float | None = None
    seed: int | None = None
    overrides: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if (self.experiment is None) == (self.scenario is None):
            raise ValueError("specify exactly one of experiment / scenario")
        if self.experiment is not None and self.overrides:
            raise ValueError(
                "config overrides only apply to scenario specs; experiment "
                "entrypoints are parameterised by duration and seed alone"
            )
        if self.duration_s is not None and not self.duration_s > 0:
            raise ValueError(f"duration must be positive, got {self.duration_s}")

    # -- identity --------------------------------------------------------------
    def to_dict(self) -> dict:
        """The canonical plain-data form (JSON round-trippable)."""
        out: dict[str, Any] = {}
        if self.experiment is not None:
            out["experiment"] = self.experiment
        if self.scenario is not None:
            out["scenario"] = _canonical_scenario_keys(dict(self.scenario))
        if self.duration_s is not None:
            out["duration_s"] = float(self.duration_s)
        if self.seed is not None:
            out["seed"] = int(self.seed)
        if self.overrides:
            out["overrides"] = _canonical_scenario_keys(dict(self.overrides))
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobSpec":
        known = {"experiment", "scenario", "duration_s", "seed", "overrides"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown job-spec keys: {sorted(unknown)}")
        return cls(
            experiment=data.get("experiment"),
            scenario=data.get("scenario"),
            duration_s=data.get("duration_s"),
            seed=data.get("seed"),
            overrides=data.get("overrides", {}),
        )

    def content_hash(self) -> str:
        """SHA-256 of the canonical JSON form — the cache key."""
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    @property
    def label(self) -> str:
        """A short human-readable tag for progress lines."""
        name = self.experiment or self.scenario.get("name", "scenario")
        parts = []
        if self.seed is not None:
            parts.append(f"seed={self.seed}")
        if self.duration_s is not None:
            parts.append(f"duration={self.duration_s:g}s")
        return f"{name}[{','.join(parts)}]" if parts else str(name)


def parse_seeds(spec: int | str | Sequence[int]) -> tuple[int, ...]:
    """Parse a seed set: ``7``, ``"7"``, ``"1..10"``, ``"1,3,5"``, ``[1, 2]``.

    Ranges are inclusive on both ends, matching the CLI's ``--seeds
    1..10`` meaning seeds 1 through 10.
    """
    if isinstance(spec, int):
        return (spec,)
    if isinstance(spec, str):
        text = spec.strip()
        if ".." in text:
            lo_text, _, hi_text = text.partition("..")
            try:
                lo, hi = int(lo_text), int(hi_text)
            except ValueError:
                raise ValueError(f"bad seed range {spec!r}; expected 'LO..HI'")
            if hi < lo:
                raise ValueError(f"empty seed range {spec!r}")
            return tuple(range(lo, hi + 1))
        try:
            return tuple(int(part) for part in text.split(","))
        except ValueError:
            raise ValueError(
                f"bad seed spec {spec!r}; expected an integer, 'LO..HI', "
                "or a comma-separated list"
            )
    seeds = tuple(int(s) for s in spec)
    if not seeds:
        raise ValueError("seed set must not be empty")
    return seeds


def sweep_specs(
    experiment: str,
    seeds: int | str | Sequence[int],
    duration_s: float | None = None,
) -> list[JobSpec]:
    """The spec list for one experiment replicated over a seed set."""
    return [
        JobSpec(experiment=experiment, duration_s=duration_s, seed=seed)
        for seed in parse_seeds(seeds)
    ]
