"""Fleet-backed sweep execution: batch homogeneous jobs per tick.

:func:`run_grid_fleet` is ``run_grid`` with a vectorized front end.
Scenario specs whose parsed systems are fleet-eligible (see
:func:`repro.fleet.check_fleet_supported`) are grouped by machine
topology, tick length, and duration, packed into
:class:`~repro.fleet.FleetEngine` batches of up to ``fleet_size``
members, and advanced N machines per tick.  Everything else — registry
experiments, ineligible scenarios, ragged remainders that are not worth
a batch — falls back to one inner :func:`~repro.runner.executor
.run_grid` call on the supervised process pool.

Results are byte-identical to the pool path: a fleet member is the same
:class:`~repro.system.System` built the same way ``execute_spec``
builds it, the engines are differentially tested against each other
(``repro.validate.fleet``, tests/test_fleet_equivalence.py), and the
result dict is assembled by the same export calls.  Cache entries and
journal records are therefore interchangeable between engines — a sweep
can resume under ``--engine fleet`` what it started under ``pool`` and
vice versa.
"""

from __future__ import annotations

import pathlib
import time
from typing import Sequence

from repro.resilience.supervisor import ExecutorStats
from repro.runner.cache import ResultCache
from repro.runner.executor import (
    GridReport,
    JobOutcome,
    ProgressFn,
    run_grid,
)
from repro.runner.spec import JobSpec

#: Members per fleet batch.  64 machines keeps every per-tick array in
#: cache-friendly territory; larger groups split into chunks of this.
DEFAULT_FLEET_SIZE = 64

#: Smallest group worth vectorizing.  A batch of one machine pays the
#: SoA attach/flush overhead for no broadcast win, so singletons ride
#: the pool path with everything else.
MIN_FLEET_BATCH = 2


def _merged_scenario_dict(spec: JobSpec) -> dict:
    """The scenario object after override/duration/seed merging.

    Exactly the merge ``execute_spec`` performs, so a fleet member and
    a pool worker parse the identical JSON shape.
    """
    data = dict(spec.scenario)
    data.update(spec.overrides)
    if spec.duration_s is not None:
        data["duration_s"] = spec.duration_s
    if spec.seed is not None:
        data["seed"] = spec.seed
    return data


def _build_member(spec: JobSpec):
    """Parse one scenario spec and build its System, or explain why not.

    Returns ``(scenario, system, None)`` for a fleet-eligible job and
    ``(None, None, reason)`` otherwise.  Build errors are not raised
    here — the pool path will surface them with the executor's full
    retry/quarantine machinery.
    """
    from repro.fleet import FleetUnsupported, check_fleet_supported
    from repro.scenario import parse_scenario
    from repro.system import System

    if spec.experiment is not None:
        return None, None, "experiment specs always run on the pool"
    data = _merged_scenario_dict(spec)
    if data.get("obs"):
        return None, None, "observability requested"
    if data.get("options"):
        return None, None, "run options requested"
    try:
        scenario = parse_scenario(data)
        system = System(
            scenario.config,
            scenario.workload,
            policy=scenario.policy,
        )
        check_fleet_supported(system)
    except FleetUnsupported as exc:
        return None, None, str(exc)
    except Exception as exc:
        return None, None, f"build failed ({type(exc).__name__}: {exc})"
    return scenario, system, None


def _machine_key(scenario) -> tuple:
    """Grouping key: everything the fleet requires members to share."""
    config = scenario.config
    return (
        config.machine,
        config.tick_ms,
        float(scenario.duration_s),
    )


def _fleet_result(scenario, result) -> dict:
    """Assemble the result dict exactly as ``execute_spec`` does."""
    from repro.analysis.export import run_summary

    return {
        "experiment": None,
        "scenario": scenario.workload.name,
        "duration_s": scenario.duration_s,
        "seed": scenario.config.seed,
        "scalars": result.scalar_summary(),
        "summary": run_summary(result),
    }


def run_grid_fleet(
    specs: Sequence[JobSpec],
    workers: int = 1,
    cache: ResultCache | None = None,
    timeout_s: float | None = None,
    retries: int = 1,
    progress: ProgressFn | None = None,
    journal=None,
    stop_event=None,
    fleet_size: int = DEFAULT_FLEET_SIZE,
    quarantine_dir: str | pathlib.Path | None = None,
    bus=None,
) -> GridReport:
    """Execute every spec, vectorizing fleet-eligible scenario groups.

    Same contract as :func:`run_grid`: outcomes come back in input
    order, journal replays and cache hits are resolved first, and
    ``stop_event`` requests a graceful drain.  ``fleet_size`` caps the
    members per :class:`FleetEngine` batch.  ``bus`` (an optional
    :class:`repro.obs.events.EventBus`) receives job lifecycle plus
    ``fleet_chunk_*`` / ``fleet_tick_progress`` telemetry.
    """
    if fleet_size < 1:
        raise ValueError(f"fleet_size must be >= 1, got {fleet_size}")
    started = time.monotonic()
    specs = list(specs)
    if bus is not None:
        bus.emit("grid_started", total=len(specs), workers=workers,
                 engine="fleet")
    outcomes: dict[int, JobOutcome] = {}

    # -- resolve journal replays and cache hits (same rules as run_grid) ----
    to_run: list[int] = []
    for i, spec in enumerate(specs):
        if journal is not None:
            prior = journal.completed_result(spec)
            if prior is not None:
                outcomes[i] = JobOutcome(
                    spec=spec, result=prior, cached=True, resumed=True
                )
                if bus is not None:
                    bus.emit("job_cache_hit", index=i, source="journal")
                continue
            if journal.is_quarantined(spec):
                outcomes[i] = JobOutcome(
                    spec=spec,
                    result=None,
                    error=journal.quarantine_error(spec)
                    or "quarantined in a previous run",
                    quarantined=True,
                    resumed=True,
                )
                if bus is not None:
                    bus.emit("job_quarantined", index=i, resumed=True,
                             error=outcomes[i].error or "")
                continue
        hit = cache.get(spec) if cache is not None else None
        if hit is not None:
            outcomes[i] = JobOutcome(spec=spec, result=hit, cached=True)
            if bus is not None:
                bus.emit("job_cache_hit", index=i, source="cache")
            if journal is not None:
                journal.record_outcome(i, outcomes[i])
        else:
            to_run.append(i)

    # -- partition: fleet-eligible groups vs pool fallback ------------------
    groups: dict[tuple, list[tuple[int, object, object]]] = {}
    members: dict[int, tuple] = {}
    for i in to_run:
        scenario, system, _reason = _build_member(specs[i])
        if scenario is None:
            continue
        members[i] = (scenario, system)
        groups.setdefault(_machine_key(scenario), []).append(
            (i, scenario, system)
        )

    fallback: list[int] = []
    batches: list[list[tuple[int, object, object]]] = []
    for key in sorted(groups, key=lambda k: str(k)):
        group = groups[key]
        for start in range(0, len(group), fleet_size):
            chunk = group[start:start + fleet_size]
            if len(chunk) >= MIN_FLEET_BATCH:
                batches.append(chunk)
            else:
                fallback.extend(i for i, _sc, _sys in chunk)
    fallback.extend(i for i in to_run if i not in members)
    fallback.sort()

    # -- run the fleet batches ----------------------------------------------
    interrupted = False
    fleet_stats = None
    for batch_no, chunk in enumerate(batches):
        if stop_event is not None and stop_event.is_set():
            interrupted = True
            break
        from repro.fleet import FleetEngine

        indices = [i for i, _sc, _sys in chunk]
        batch_start = time.monotonic()
        if journal is not None:
            for i in indices:
                journal.record_start(i, specs[i])
        if bus is not None:
            bus.emit("fleet_chunk_started", chunk=batch_no,
                     members=len(chunk))
            for i in indices:
                bus.emit("job_started", index=i, engine="fleet")
        try:
            engine = FleetEngine([system for _i, _sc, system in chunk])
            engine.event_bus = bus
            duration_s = chunk[0][1].duration_s
            engine.run_for(duration_s)
            results = engine.results(duration_s)
        except Exception as exc:
            # A batch failure says nothing about which member is at
            # fault; rerun them all through the pool's blame machinery.
            if bus is not None:
                bus.emit("fleet_chunk_finished", chunk=batch_no,
                         members=len(chunk), ok=False,
                         error=f"{type(exc).__name__}: {exc}")
            fallback.extend(indices)
            fallback.sort()
            continue
        if fleet_stats is None:
            from repro.fleet import FleetStats

            fleet_stats = FleetStats()
        fleet_stats.merge(engine.stats)
        elapsed = time.monotonic() - batch_start
        per_job = elapsed / len(chunk)
        for (i, scenario, _system), result in zip(chunk, results):
            outcomes[i] = JobOutcome(
                spec=specs[i],
                result=_fleet_result(scenario, result),
                attempts=1,
                elapsed_s=per_job,
            )
            if journal is not None:
                journal.record_outcome(i, outcomes[i])
            if bus is not None:
                bus.emit("job_finished", index=i, attempts=1,
                         elapsed_s=per_job, engine="fleet")
            if cache is not None:
                cache.put(specs[i], outcomes[i].result)
        if bus is not None:
            bus.emit("fleet_chunk_finished", chunk=batch_no,
                     members=len(chunk), ok=True, wall_s=elapsed)

    # -- pool fallback for everything else ----------------------------------
    stats = ExecutorStats()
    stats.interrupted = interrupted
    if fallback and not interrupted:
        inner = run_grid(
            [specs[i] for i in fallback],
            workers=workers,
            cache=cache,
            timeout_s=timeout_s,
            retries=retries,
            journal=None,  # outer journal indices would collide; see below
            stop_event=stop_event,
            quarantine_dir=quarantine_dir,
            bus=_InnerBus(bus, fallback) if bus is not None else None,
        )
        for i, outcome in zip(fallback, inner.outcomes):
            outcomes[i] = outcome
            if journal is not None and not (
                outcome.resumed and outcome.result is None
            ):
                journal.record_outcome(i, outcome)
        if inner.exec_stats is not None:
            stats.retries = inner.exec_stats.retries
            stats.worker_crashes = inner.exec_stats.worker_crashes
            stats.pool_rebuilds = inner.exec_stats.pool_rebuilds
            stats.timeouts = inner.exec_stats.timeouts
            stats.quarantined = inner.exec_stats.quarantined
            stats.interrupted = stats.interrupted or inner.exec_stats.interrupted

    # -- order + report ------------------------------------------------------
    for i, spec in enumerate(specs):
        if i not in outcomes:
            stats.interrupted = True
            outcomes[i] = JobOutcome(
                spec=spec, result=None,
                error="interrupted before completion",
            )
    ordered = [outcomes[i] for i in range(len(specs))]
    if bus is not None:
        bus.emit(
            "grid_finished",
            total=len(specs),
            failed=sum(1 for o in ordered if not o.ok),
            interrupted=stats.interrupted,
            wall_s=time.monotonic() - started,
            engine="fleet",
        )
    if progress is not None:
        for i, outcome in enumerate(ordered):
            progress(outcome, i, len(specs))
    return GridReport(
        outcomes=ordered,
        cache_stats=cache.stats if cache is not None else None,
        wall_s=time.monotonic() - started,
        exec_stats=stats,
        fleet_stats=fleet_stats,
    )


class _InnerBus:
    """Bus proxy for the inner pool-fallback ``run_grid`` call.

    Drops the inner grid's ``grid_started``/``grid_finished`` (the
    outer fleet grid already emitted the authoritative pair for the
    full spec list) and rewrites job indices from fallback-sublist
    positions back to outer grid positions, so every job event the
    consumer sees indexes one consistent grid.
    """

    def __init__(self, bus, index_map: list[int]) -> None:
        self._bus = bus
        self._map = index_map

    def emit(self, kind: str, **data):
        if kind in ("grid_started", "grid_finished"):
            return None
        index = data.get("index")
        if isinstance(index, int) and 0 <= index < len(self._map):
            data["index"] = self._map[index]
        return self._bus.emit(kind, **data)
