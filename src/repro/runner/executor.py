"""Fan a grid of job specs across worker processes.

:func:`run_grid` is the engine of ``python -m repro sweep`` / ``batch``:
it resolves cache hits first, then executes the remaining specs — in
this process when ``workers=1``, otherwise on a
:class:`~concurrent.futures.ProcessPoolExecutor` — with a per-job
timeout and bounded retry on failure.  Simulations are deterministic in
their spec, so outcomes are returned in *input order* and a sweep's
aggregate is byte-identical whatever the worker count.

Semantics worth knowing:

* **Timeouts** apply wall-clock from the moment a job starts executing
  (at most ``workers`` jobs are in flight, so a submitted job starts
  immediately).  A timed-out job fails permanently — a job that blew
  its budget once will blow it again, so it is not retried.  The worker
  process cannot be interrupted mid-simulation; its slot is abandoned
  and drains in the background.
* **Retries** cover transient failures: any exception from the job
  earns up to ``retries`` re-submissions before the outcome is recorded
  as an error.
* **Degradation**: if the pool cannot be created, everything runs
  serially in-process.  If the pool *breaks* (a worker died), jobs that
  were in flight are recorded as failures — the dead worker's job
  cannot be told apart from its victims, and rerunning a
  worker-killing job in-process could take the whole sweep down — while
  jobs never started fall back to serial execution.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.runner.cache import CacheStats, ResultCache
from repro.runner.spec import JobSpec


def execute_spec(spec: JobSpec) -> dict:
    """Run one job in this process; returns its structured result.

    Experiment specs dispatch to the registry's structured entrypoint
    (:func:`repro.experiments.experiment_metrics`); scenario specs are
    parsed by :mod:`repro.scenario` after overrides/duration/seed are
    merged in.  Imports happen here, not at module import, so spawning
    a pool does not pay for them twice.
    """
    if spec.experiment is not None:
        from repro.experiments import experiment_metrics

        return experiment_metrics(
            spec.experiment, duration_s=spec.duration_s, seed=spec.seed
        )
    from repro.analysis.export import run_summary
    from repro.scenario import parse_scenario

    data = dict(spec.scenario)
    data.update(spec.overrides)
    if spec.duration_s is not None:
        data["duration_s"] = spec.duration_s
    if spec.seed is not None:
        data["seed"] = spec.seed
    obs = bool(data.pop("obs", False))
    scenario = parse_scenario(data)
    result = scenario.run(obs=obs)
    out = {
        "experiment": None,
        "scenario": scenario.workload.name,
        "duration_s": scenario.duration_s,
        "seed": scenario.config.seed,
        "scalars": result.scalar_summary(),
        "summary": run_summary(result),
    }
    if obs:
        # Per-job metrics ride along in sweep outputs.  The snapshot is
        # deterministic (mirrored counters and state gauges only — no
        # wall clocks), so it is safe inside cached results.
        out["metrics"] = result.metrics_snapshot()
        out["audit_sites"] = result.audit.sites_seen()
    return out


@dataclass
class JobOutcome:
    """What happened to one spec: a result, a cache hit, or an error."""

    spec: JobSpec
    result: dict | None
    error: str | None = None
    attempts: int = 0
    cached: bool = False
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.result is not None


@dataclass
class GridReport:
    """Ordered outcomes of one :func:`run_grid` call."""

    outcomes: list[JobOutcome]
    cache_stats: CacheStats | None
    wall_s: float

    @property
    def failures(self) -> list[JobOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def results(self) -> list[dict]:
        return [o.result for o in self.outcomes if o.ok]

    def scalar_samples(self) -> list[dict]:
        """The per-job scalar dicts, in spec order (failed jobs skipped)."""
        return [
            o.result["scalars"]
            for o in self.outcomes
            if o.ok and isinstance(o.result.get("scalars"), dict)
        ]


ProgressFn = Callable[[JobOutcome, int, int], None]


def run_grid(
    specs: Sequence[JobSpec],
    workers: int = 1,
    cache: ResultCache | None = None,
    timeout_s: float | None = None,
    retries: int = 1,
    run_fn: Callable[[JobSpec], dict] = execute_spec,
    progress: ProgressFn | None = None,
) -> GridReport:
    """Execute every spec, consulting and filling ``cache`` if given."""
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    started = time.monotonic()
    specs = list(specs)
    outcomes: dict[int, JobOutcome] = {}
    to_run: list[int] = []
    for i, spec in enumerate(specs):
        hit = cache.get(spec) if cache is not None else None
        if hit is not None:
            outcomes[i] = JobOutcome(spec=spec, result=hit, cached=True)
        else:
            to_run.append(i)

    if to_run:
        if workers == 1 or len(to_run) == 1:
            _run_serial(specs, to_run, retries, run_fn, outcomes)
        else:
            _run_parallel(specs, to_run, workers, timeout_s, retries, run_fn,
                          outcomes)
        leftover = [i for i in to_run if i not in outcomes]
        if leftover:  # pool unavailable or broke before these started
            _run_serial(specs, leftover, retries, run_fn, outcomes)
        if cache is not None:
            for i in to_run:
                outcome = outcomes[i]
                if outcome.ok:
                    cache.put(outcome.spec, outcome.result)

    ordered = [outcomes[i] for i in range(len(specs))]
    if progress is not None:
        for i, outcome in enumerate(ordered):
            progress(outcome, i, len(specs))
    return GridReport(
        outcomes=ordered,
        cache_stats=cache.stats if cache is not None else None,
        wall_s=time.monotonic() - started,
    )


def _describe(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def _run_serial(
    specs: Sequence[JobSpec],
    indices: Sequence[int],
    retries: int,
    run_fn: Callable[[JobSpec], dict],
    outcomes: dict[int, JobOutcome],
) -> None:
    """In-process execution (no timeout enforcement — nothing to kill)."""
    for i in indices:
        attempts = 0
        start = time.monotonic()
        while True:
            attempts += 1
            try:
                result = run_fn(specs[i])
            except Exception as exc:
                if attempts <= retries:
                    continue
                outcomes[i] = JobOutcome(
                    spec=specs[i], result=None, error=_describe(exc),
                    attempts=attempts, elapsed_s=time.monotonic() - start,
                )
            else:
                outcomes[i] = JobOutcome(
                    spec=specs[i], result=result, attempts=attempts,
                    elapsed_s=time.monotonic() - start,
                )
            break


def _run_parallel(
    specs: Sequence[JobSpec],
    indices: Sequence[int],
    workers: int,
    timeout_s: float | None,
    retries: int,
    run_fn: Callable[[JobSpec], dict],
    outcomes: dict[int, JobOutcome],
) -> None:
    """Sliding-window pool execution; missing outcomes mean a broken pool."""
    from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
    from concurrent.futures.process import BrokenProcessPool

    try:
        pool = ProcessPoolExecutor(max_workers=min(workers, len(indices)))
    except (OSError, ValueError):  # no fork/spawn available → serial fallback
        return
    pending = deque(indices)
    attempts = dict.fromkeys(indices, 0)
    running: dict = {}  # future -> (index, start time)
    try:
        while pending or running:
            while pending and len(running) < workers:
                i = pending.popleft()
                attempts[i] += 1
                future = pool.submit(run_fn, specs[i])
                running[future] = (i, time.monotonic())
            poll_s = 0.05 if timeout_s is not None else None
            done, _ = wait(set(running), timeout=poll_s,
                           return_when=FIRST_COMPLETED)
            now = time.monotonic()
            for future in done:
                i, start = running.pop(future)
                try:
                    result = future.result()
                except BrokenProcessPool:
                    # The worker running this job died (crash, OOM kill,
                    # os._exit).  Don't rerun it in-process — it may take
                    # the whole sweep down with it.
                    outcomes[i] = JobOutcome(
                        spec=specs[i], result=None,
                        error="worker process died (broken pool)",
                        attempts=attempts[i], elapsed_s=now - start,
                    )
                    raise
                except Exception as exc:
                    if attempts[i] <= retries:
                        pending.append(i)
                    else:
                        outcomes[i] = JobOutcome(
                            spec=specs[i], result=None, error=_describe(exc),
                            attempts=attempts[i], elapsed_s=now - start,
                        )
                else:
                    outcomes[i] = JobOutcome(
                        spec=specs[i], result=result, attempts=attempts[i],
                        elapsed_s=now - start,
                    )
            if timeout_s is not None:
                for future, (i, start) in list(running.items()):
                    if now - start > timeout_s:
                        future.cancel()
                        running.pop(future)
                        outcomes[i] = JobOutcome(
                            spec=specs[i], result=None,
                            error=f"timeout after {timeout_s:g}s",
                            attempts=attempts[i], elapsed_s=now - start,
                        )
    except BrokenProcessPool:
        # A broken pool fails every in-flight future; the dead worker's
        # job cannot be told apart from its victims, so record them all
        # as failures rather than risking an in-process rerun.  Jobs
        # still queued (never started) have no outcome — the caller
        # finishes those serially.
        now = time.monotonic()
        for future, (i, start) in running.items():
            if future.done() and not future.cancelled() \
                    and future.exception() is None:
                outcomes[i] = JobOutcome(
                    spec=specs[i], result=future.result(),
                    attempts=attempts[i], elapsed_s=now - start,
                )
            else:
                outcomes[i] = JobOutcome(
                    spec=specs[i], result=None,
                    error="worker process died (broken pool)",
                    attempts=attempts[i], elapsed_s=now - start,
                )
        running.clear()
    finally:
        for future in running:
            future.cancel()
        pool.shutdown(wait=False, cancel_futures=True)
