"""Fan a grid of job specs across supervised worker processes.

:func:`run_grid` is the engine of ``python -m repro sweep`` / ``batch``:
it resolves journal replays and cache hits first, then executes the
remaining specs — in this process when ``workers=1``, otherwise on a
:class:`~repro.resilience.supervisor.SupervisedPool`.  Simulations are
deterministic in their spec, so outcomes are returned in *input order*
and a sweep's aggregate is byte-identical whatever the worker count.

Semantics worth knowing:

* **Timeouts** apply wall-clock from the moment a job starts executing.
  A timed-out job fails permanently — a job that blew its budget once
  will blow it again, so it is not retried.  The stuck worker is
  terminated and the pool rebuilt, so the sweep keeps its full
  parallelism; innocent in-flight jobs are re-queued.
* **Retries** cover transient failures: any exception from the job
  earns up to ``retries`` re-submissions, spaced by deterministic
  capped exponential backoff (jitter seeded from the spec digest — see
  :func:`repro.resilience.supervisor.backoff_delay_s`).
* **Worker death** breaks the pool; the supervisor rebuilds it and
  re-runs the suspect jobs solo for definitive blame.  A job that kills
  a worker twice is quarantined (spec serialized under
  ``<cache>/quarantine/``) instead of retried; its victims are
  exonerated and complete normally.
* **Journaling**: with ``journal=`` every start/finish/failure is
  fsynced to an append-only journal; jobs the journal records as
  complete are never recomputed (their results ride in the journal, so
  resume works even with the cache disabled).
* **Interruption**: when ``stop_event`` is set (the CLI wires
  SIGINT/SIGTERM to it) the sweep drains gracefully — finished futures
  are kept, everything else is cancelled and reported with an
  ``interrupted`` outcome, and :attr:`GridReport.interrupted` tells the
  caller to print a resume command.
* **Degradation**: if a pool cannot be created (or workers die at
  startup repeatedly), everything left runs serially in-process.
"""

from __future__ import annotations

import pathlib
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.resilience.supervisor import (
    ExecutorStats,
    SupervisedPool,
    SupervisorConfig,
    backoff_delay_s,
)
from repro.runner.cache import CacheStats, ResultCache
from repro.runner.spec import JobSpec


def execute_spec(spec: JobSpec) -> dict:
    """Run one job in this process; returns its structured result.

    Experiment specs dispatch to the registry's structured entrypoint
    (:func:`repro.experiments.experiment_metrics`); scenario specs are
    parsed by :mod:`repro.scenario` after overrides/duration/seed are
    merged in.  Imports happen here, not at module import, so spawning
    a pool does not pay for them twice.
    """
    if spec.experiment is not None:
        from repro.experiments import experiment_metrics

        return experiment_metrics(
            spec.experiment, duration_s=spec.duration_s, seed=spec.seed
        )
    from repro.analysis.export import run_summary
    from repro.scenario import parse_scenario

    data = dict(spec.scenario)
    data.update(spec.overrides)
    if spec.duration_s is not None:
        data["duration_s"] = spec.duration_s
    if spec.seed is not None:
        data["seed"] = spec.seed
    obs = bool(data.pop("obs", False))
    options_data = dict(data.pop("options", None) or {})
    unknown = set(options_data) - {"fast_path", "validate", "obs"}
    if unknown:
        raise ValueError(f"unknown scenario option keys: {sorted(unknown)}")
    if "obs" in options_data:
        obs = bool(options_data["obs"]) or obs
    scenario = parse_scenario(data)
    if options_data:
        from repro.api import RunOptions

        result = scenario.run(
            options=RunOptions(
                fast_path=options_data.get("fast_path"),
                validate=options_data.get("validate"),
                obs=obs or None,
            )
        )
    else:
        result = scenario.run(obs=obs)
    out = {
        "experiment": None,
        "scenario": scenario.workload.name,
        "duration_s": scenario.duration_s,
        "seed": scenario.config.seed,
        "scalars": result.scalar_summary(),
        "summary": run_summary(result),
    }
    if obs:
        # Per-job metrics ride along in sweep outputs.  The snapshot is
        # deterministic (mirrored counters and state gauges only — no
        # wall clocks), so it is safe inside cached results.
        out["metrics"] = result.metrics_snapshot()
        out["audit_sites"] = result.audit.sites_seen()
    return out


@dataclass
class JobOutcome:
    """What happened to one spec: a result, a cache hit, or an error.

    ``resumed`` marks outcomes served from a journal replay (the job ran
    in a previous invocation of the sweep); ``quarantined`` marks poison
    jobs the supervisor refused to retry.
    """

    spec: JobSpec
    result: dict | None
    error: str | None = None
    attempts: int = 0
    cached: bool = False
    elapsed_s: float = 0.0
    quarantined: bool = False
    resumed: bool = False

    @property
    def ok(self) -> bool:
        return self.result is not None


@dataclass
class GridReport:
    """Ordered outcomes of one :func:`run_grid` call.

    ``fleet_stats`` is filled only by :func:`repro.runner.fleet_grid.
    run_grid_fleet` — aggregate :class:`repro.fleet.engine.FleetStats`
    across every fleet batch the sweep ran.
    """

    outcomes: list[JobOutcome]
    cache_stats: CacheStats | None
    wall_s: float
    exec_stats: ExecutorStats | None = None
    fleet_stats: object | None = None

    @property
    def failures(self) -> list[JobOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def results(self) -> list[dict]:
        return [o.result for o in self.outcomes if o.ok]

    @property
    def interrupted(self) -> bool:
        """Whether the sweep was stopped before every job completed."""
        return self.exec_stats is not None and self.exec_stats.interrupted

    def scalar_samples(self) -> list[dict]:
        """The per-job scalar dicts, in spec order (failed jobs skipped)."""
        return [
            o.result["scalars"]
            for o in self.outcomes
            if o.ok and isinstance(o.result.get("scalars"), dict)
        ]


ProgressFn = Callable[[JobOutcome, int, int], None]


def run_grid(
    specs: Sequence[JobSpec],
    workers: int = 1,
    cache: ResultCache | None = None,
    timeout_s: float | None = None,
    retries: int = 1,
    run_fn: Callable[[JobSpec], dict] = execute_spec,
    progress: ProgressFn | None = None,
    journal=None,
    stop_event=None,
    backoff_base_s: float = 0.05,
    backoff_cap_s: float = 2.0,
    quarantine_dir: str | pathlib.Path | None = None,
    bus=None,
) -> GridReport:
    """Execute every spec, consulting ``cache`` and ``journal`` if given.

    ``journal`` is a :class:`repro.resilience.journal.SweepJournal`:
    jobs it records as complete are returned without recomputation, and
    every lifecycle event of the remaining jobs is appended to it.
    ``stop_event`` (a ``threading.Event``) requests a graceful drain.
    ``quarantine_dir`` overrides where poison-job specs are serialized
    (default: ``<cache root>/quarantine`` when a cache is given,
    nowhere otherwise).  ``bus`` is an optional
    :class:`repro.obs.events.EventBus`; when given, job lifecycle and
    worker incidents are emitted as run events (telemetry only — it
    never alters execution or results).
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    started = time.monotonic()
    specs = list(specs)
    if bus is not None:
        bus.emit("grid_started", total=len(specs), workers=workers)
    stats = ExecutorStats()
    outcomes: dict[int, JobOutcome] = {}
    to_run: list[int] = []
    for i, spec in enumerate(specs):
        if journal is not None:
            prior = journal.completed_result(spec)
            if prior is not None:
                outcomes[i] = JobOutcome(
                    spec=spec, result=prior, cached=True, resumed=True
                )
                if bus is not None:
                    bus.emit("job_cache_hit", index=i, source="journal")
                continue
            if journal.is_quarantined(spec):
                outcomes[i] = JobOutcome(
                    spec=spec,
                    result=None,
                    error=journal.quarantine_error(spec)
                    or "quarantined in a previous run",
                    quarantined=True,
                    resumed=True,
                )
                if bus is not None:
                    bus.emit("job_quarantined", index=i, resumed=True,
                             error=outcomes[i].error or "")
                continue
        hit = cache.get(spec) if cache is not None else None
        if hit is not None:
            outcomes[i] = JobOutcome(spec=spec, result=hit, cached=True)
            if bus is not None:
                bus.emit("job_cache_hit", index=i, source="cache")
            if journal is not None:
                # Journal the cache hit too: resume must not depend on
                # the cache still existing (or being enabled).
                journal.record_outcome(i, outcomes[i])
        else:
            to_run.append(i)

    if quarantine_dir is None and cache is not None:
        quarantine_dir = pathlib.Path(cache.root) / "quarantine"
    if to_run and not _stopped(stop_event):
        config = SupervisorConfig(
            timeout_s=timeout_s,
            retries=retries,
            backoff_base_s=backoff_base_s,
            backoff_cap_s=backoff_cap_s,
            quarantine_dir=(
                pathlib.Path(quarantine_dir) if quarantine_dir is not None else None
            ),
        )
        if workers == 1 or len(to_run) == 1:
            _run_serial(
                specs, to_run, config, run_fn, outcomes, stats,
                journal=journal, stop_event=stop_event, bus=bus,
            )
        else:
            def record(i, result, error, attempts, elapsed_s, quarantined):
                outcomes[i] = JobOutcome(
                    spec=specs[i], result=result, error=error,
                    attempts=attempts, elapsed_s=elapsed_s,
                    quarantined=quarantined,
                )
                if journal is not None:
                    journal.record_outcome(i, outcomes[i])
                _emit_outcome(bus, i, outcomes[i])

            def on_start(i):
                if journal is not None:
                    journal.record_start(i, specs[i])
                if bus is not None:
                    bus.emit("job_started", index=i)

            SupervisedPool(
                specs, to_run, workers, run_fn, config, stats,
                record=record, on_start=on_start, stop_event=stop_event,
                bus=bus,
            ).run()
        leftover = [i for i in to_run if i not in outcomes]
        if leftover and not stats.interrupted and not _stopped(stop_event):
            # Pool unavailable (or it gave up): finish serially.
            _run_serial(
                specs, leftover, config, run_fn, outcomes, stats,
                journal=journal, stop_event=stop_event, bus=bus,
            )
        if cache is not None:
            for i in to_run:
                outcome = outcomes.get(i)
                if outcome is not None and outcome.ok:
                    cache.put(outcome.spec, outcome.result)

    for i, spec in enumerate(specs):
        if i not in outcomes:
            stats.interrupted = True
            outcomes[i] = JobOutcome(
                spec=spec, result=None,
                error="interrupted before completion",
            )

    ordered = [outcomes[i] for i in range(len(specs))]
    if bus is not None:
        bus.emit(
            "grid_finished",
            total=len(specs),
            failed=sum(1 for o in ordered if not o.ok),
            interrupted=stats.interrupted,
            wall_s=time.monotonic() - started,
        )
    if progress is not None:
        for i, outcome in enumerate(ordered):
            progress(outcome, i, len(specs))
    return GridReport(
        outcomes=ordered,
        cache_stats=cache.stats if cache is not None else None,
        wall_s=time.monotonic() - started,
        exec_stats=stats,
    )


def _stopped(stop_event) -> bool:
    return stop_event is not None and stop_event.is_set()


def _emit_outcome(bus, index: int, outcome: JobOutcome) -> None:
    """Mirror one terminal outcome onto the event bus (no-op without one)."""
    if bus is None:
        return
    if outcome.ok:
        if outcome.cached:
            bus.emit("job_cache_hit", index=index, source="cache")
        else:
            bus.emit(
                "job_finished", index=index, attempts=outcome.attempts,
                elapsed_s=outcome.elapsed_s,
            )
    elif outcome.quarantined:
        bus.emit("job_quarantined", index=index, error=outcome.error or "")
    else:
        bus.emit(
            "job_failed", index=index, attempts=outcome.attempts,
            error=outcome.error or "",
        )


def _describe(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def _run_serial(
    specs: Sequence[JobSpec],
    indices: Sequence[int],
    config: SupervisorConfig,
    run_fn: Callable[[JobSpec], dict],
    outcomes: dict[int, JobOutcome],
    stats: ExecutorStats,
    journal=None,
    stop_event=None,
    bus=None,
) -> None:
    """In-process execution (no timeout enforcement — nothing to kill)."""
    for i in indices:
        if _stopped(stop_event):
            stats.interrupted = True
            return
        attempts = 0
        start = time.monotonic()
        while True:
            attempts += 1
            if journal is not None:
                journal.record_start(i, specs[i])
            if bus is not None:
                bus.emit("job_started", index=i, attempt=attempts)
            try:
                result = run_fn(specs[i])
            except Exception as exc:
                if attempts <= config.retries:
                    stats.retries += 1
                    delay = backoff_delay_s(
                        specs[i], attempts,
                        config.backoff_base_s, config.backoff_cap_s,
                    )
                    if bus is not None:
                        bus.emit("worker_backoff", index=i, attempt=attempts,
                                 delay_s=delay, error=_describe(exc))
                    time.sleep(delay)
                    continue
                outcomes[i] = JobOutcome(
                    spec=specs[i], result=None, error=_describe(exc),
                    attempts=attempts, elapsed_s=time.monotonic() - start,
                )
            else:
                outcomes[i] = JobOutcome(
                    spec=specs[i], result=result, attempts=attempts,
                    elapsed_s=time.monotonic() - start,
                )
            if journal is not None:
                journal.record_outcome(i, outcomes[i])
            _emit_outcome(bus, i, outcomes[i])
            break
