"""On-disk result cache for the experiment runner.

One JSON file per completed job under ``.repro_cache/`` (or
``$REPRO_CACHE_DIR``), named by the spec's content hash.  Each payload
records the *salt* it was computed under — by default a digest of every
``repro`` source and data file — so results computed by older code are
treated as misses and silently overwritten: editing any module or
committed JSON under ``src/repro/`` invalidates the whole cache without
touching the files.

Reads and writes go through :meth:`ResultCache.get` /
:meth:`ResultCache.put`, which keep hit/miss/store counts for the CLI's
cache report.  Writes are atomic (tmp file + ``os.replace``) so a
killed sweep never leaves a truncated entry behind.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import pathlib
from dataclasses import dataclass, field

from repro.runner.spec import JobSpec

DEFAULT_CACHE_DIR = ".repro_cache"
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
_SCHEMA_VERSION = 1


#: Everything under ``repro/`` that can change a run's result: source,
#: plus committed data files (fault plans, any future JSON tables).
_SALT_PATTERNS = ("*.py", "*.json")


def _tree_digest(
    root: pathlib.Path, patterns: tuple[str, ...] = _SALT_PATTERNS
) -> str:
    """Digest of every file under ``root`` matching ``patterns``.

    Paths are collected across all patterns and sorted once, so the
    digest depends only on the file set and contents — not on pattern
    order or interleaving.
    """
    root = pathlib.Path(root)
    paths = sorted({p for pattern in patterns for p in root.rglob(pattern)})
    digest = hashlib.sha256()
    for path in paths:
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


@functools.lru_cache(maxsize=1)
def code_salt() -> str:
    """The code-version salt: a digest of the whole ``repro`` package.

    Covers every module *and* committed data file (``*.py`` and
    ``*.json``, including ``validate/fault_plans.json``), so editing any
    of them — not just Python sources — invalidates the cache.  Computed
    once per process; stable across processes for the same checkout.
    """
    package_root = pathlib.Path(__file__).resolve().parent.parent
    return _tree_digest(package_root)


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR`` if set, else ``.repro_cache`` in the cwd."""
    return pathlib.Path(os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR))


@dataclass
class CacheStats:
    """Hit/miss accounting for one runner invocation."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def describe(self) -> str:
        return f"{self.hits} hits, {self.misses} misses"


@dataclass
class ResultCache:
    """Spec-hash-keyed JSON store of structured run results."""

    root: pathlib.Path = field(default_factory=default_cache_dir)
    salt: str = field(default_factory=code_salt)

    def __post_init__(self) -> None:
        self.root = pathlib.Path(self.root)
        self.stats = CacheStats()

    def path_for(self, spec: JobSpec) -> pathlib.Path:
        return self.root / f"{spec.content_hash()}.json"

    def get(self, spec: JobSpec) -> dict | None:
        """The cached result for ``spec``, or ``None`` on miss.

        A payload written under a different salt (older code) or an
        unreadable file counts as a miss.
        """
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            self.stats.misses += 1
            return None
        if (payload.get("salt") != self.salt
                or payload.get("schema") != _SCHEMA_VERSION):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload["result"]

    def put(self, spec: JobSpec, result: dict) -> pathlib.Path:
        """Store ``result`` for ``spec`` (atomically); returns the path."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(spec)
        payload = {
            "schema": _SCHEMA_VERSION,
            "salt": self.salt,
            "spec": spec.to_dict(),
            "result": result,
        }
        tmp = path.with_suffix(".tmp")
        # No sort_keys: scalar-dict insertion order is part of the result
        # (aggregate tables list metrics in the order the experiment
        # defined them), and json round-trips dict order faithfully.
        tmp.write_text(json.dumps(payload, indent=1))
        os.replace(tmp, path)
        self.stats.stores += 1
        return path

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed
