"""On-disk result cache for the experiment runner.

One JSON file per completed job under ``.repro_cache/`` (or
``$REPRO_CACHE_DIR``), named by the spec's content hash.  Each payload
records the *salt* it was computed under — by default a digest of every
``repro`` source and data file — so results computed by older code are
treated as misses and silently overwritten: editing any module or
committed JSON under ``src/repro/`` invalidates the whole cache without
touching the files.

Reads and writes go through :meth:`ResultCache.get` /
:meth:`ResultCache.put`, which keep hit/miss/store counts for the CLI's
cache report.  Writes are atomic (tmp file + ``os.replace``) so a
killed sweep never leaves a truncated entry behind.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import pathlib
from dataclasses import dataclass, field

from repro.runner.spec import JobSpec

DEFAULT_CACHE_DIR = ".repro_cache"
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
_SCHEMA_VERSION = 1


#: Everything under ``repro/`` that can change a run's result: source,
#: plus committed data files (fault plans, any future JSON tables).
_SALT_PATTERNS = ("*.py", "*.json")


def _tree_digest(
    root: pathlib.Path, patterns: tuple[str, ...] = _SALT_PATTERNS
) -> str:
    """Digest of every file under ``root`` matching ``patterns``.

    Paths are collected across all patterns and sorted once, so the
    digest depends only on the file set and contents — not on pattern
    order or interleaving.
    """
    root = pathlib.Path(root)
    paths = sorted({p for pattern in patterns for p in root.rglob(pattern)})
    digest = hashlib.sha256()
    for path in paths:
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


@functools.lru_cache(maxsize=1)
def code_salt() -> str:
    """The code-version salt: a digest of the whole ``repro`` package.

    Covers every module *and* committed data file (``*.py`` and
    ``*.json``, including ``validate/fault_plans.json``), so editing any
    of them — not just Python sources — invalidates the cache.  Computed
    once per process; stable across processes for the same checkout.
    """
    package_root = pathlib.Path(__file__).resolve().parent.parent
    return _tree_digest(package_root)


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR`` if set, else ``.repro_cache`` in the cwd."""
    return pathlib.Path(os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR))


@dataclass
class CacheStats:
    """Hit/miss accounting for one runner invocation.

    ``corrupt`` counts entries that existed but could not be used —
    truncated, unparseable, or structurally wrong payloads — each of
    which was quarantined and treated as a miss (``misses`` includes
    them).
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def describe(self) -> str:
        base = f"{self.hits} hits, {self.misses} misses"
        if self.corrupt:
            base += f", {self.corrupt} corrupt entries quarantined"
        return base


@dataclass
class ResultCache:
    """Spec-hash-keyed JSON store of structured run results."""

    root: pathlib.Path = field(default_factory=default_cache_dir)
    salt: str = field(default_factory=code_salt)

    def __post_init__(self) -> None:
        self.root = pathlib.Path(self.root)
        self.stats = CacheStats()

    def path_for(self, spec: JobSpec) -> pathlib.Path:
        return self.root / f"{spec.content_hash()}.json"

    def get(self, spec: JobSpec) -> dict | None:
        """The cached result for ``spec``, or ``None`` on miss.

        A payload written under a different salt (older code) counts as
        a plain miss and is overwritten by the next ``put``.  A file
        that exists but cannot be used — truncated or garbage bytes,
        non-JSON, or a JSON shape without a result — is *corrupt*: it
        is moved to ``<root>/quarantine/`` for inspection, counted in
        :attr:`CacheStats.corrupt`, and treated as a miss rather than
        raised, so one bad entry never takes a sweep down.
        """
        path = self.path_for(spec)
        try:
            raw = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            # json decodes the bytes itself; undecodable garbage raises
            # UnicodeDecodeError, which is a ValueError -> corrupt.
            payload = json.loads(raw)
        except ValueError:
            return self._corrupt_miss(path)
        if not isinstance(payload, dict):
            return self._corrupt_miss(path)
        if (payload.get("salt") != self.salt
                or payload.get("schema") != _SCHEMA_VERSION):
            self.stats.misses += 1
            return None
        result = payload.get("result")
        if not isinstance(result, dict):
            return self._corrupt_miss(path)
        self.stats.hits += 1
        return result

    def _corrupt_miss(self, path: pathlib.Path) -> None:
        """Quarantine a corrupt entry and report a miss."""
        self.stats.corrupt += 1
        self.stats.misses += 1
        try:
            quarantine = self.root / "quarantine"
            quarantine.mkdir(parents=True, exist_ok=True)
            os.replace(path, quarantine / path.name)
        except OSError:
            # Couldn't move it; the next put overwrites it in place.
            pass
        return None

    def put(self, spec: JobSpec, result: dict) -> pathlib.Path:
        """Store ``result`` for ``spec`` (atomically); returns the path."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(spec)
        payload = {
            "schema": _SCHEMA_VERSION,
            "salt": self.salt,
            "spec": spec.to_dict(),
            "result": result,
        }
        tmp = path.with_suffix(".tmp")
        # No sort_keys: scalar-dict insertion order is part of the result
        # (aggregate tables list metrics in the order the experiment
        # defined them), and json round-trips dict order faithfully.
        tmp.write_text(json.dumps(payload, indent=1))
        os.replace(tmp, path)
        self.stats.stores += 1
        return path

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed
