"""Batch grid files: a JSON description of many sweeps at once.

``python -m repro batch grid.json`` expands each entry of the file into
job specs (the cartesian product of its durations × seeds), runs them
all through one :func:`repro.runner.executor.run_grid` call — so the
whole batch shares the worker pool and the cache — and aggregates each
entry's scalars separately.

Grid file shape (a bare list is accepted too)::

    {
      "jobs": [
        {"experiment": "fig9", "seeds": "1..4", "duration_s": 60},
        {"experiment": "fig8", "seeds": [1, 2], "durations": [60, 120]},
        {"scenario": {...}, "seeds": "1..3",
         "overrides": {"temp_limit_c": 40.0}, "label": "hot-limit"}
      ]
    }

Each entry names an ``experiment`` or embeds a ``scenario`` object,
plus ``seeds`` (int, ``"LO..HI"``, ``"a,b,c"``, or a list; optional),
``duration_s`` or a ``durations`` list (optional), ``overrides``
(scenario entries only), and an optional display ``label``.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Any, Mapping

from repro.runner.spec import JobSpec, parse_seeds


@dataclass(frozen=True)
class GridEntry:
    """One grid-file entry, expanded to its spec list."""

    label: str
    specs: tuple[JobSpec, ...]


def _entry_durations(entry: Mapping[str, Any]) -> list[float | None]:
    if "durations" in entry and "duration_s" in entry:
        raise ValueError("give either 'duration_s' or 'durations', not both")
    if "durations" in entry:
        durations = [float(d) for d in entry["durations"]]
        if not durations:
            raise ValueError("'durations' must not be empty")
        return durations
    if "duration_s" in entry:
        return [float(entry["duration_s"])]
    return [None]


def expand_entry(entry: Mapping[str, Any]) -> GridEntry:
    """Expand one grid entry into its cartesian spec list."""
    known = {"experiment", "scenario", "seeds", "duration_s", "durations",
             "overrides", "label"}
    unknown = set(entry) - known
    if unknown:
        raise ValueError(f"unknown grid-entry keys: {sorted(unknown)}")
    seeds = parse_seeds(entry["seeds"]) if "seeds" in entry else (None,)
    specs = tuple(
        JobSpec(
            experiment=entry.get("experiment"),
            scenario=entry.get("scenario"),
            duration_s=duration,
            seed=seed,
            overrides=entry.get("overrides", {}),
        )
        for duration in _entry_durations(entry)
        for seed in seeds
    )
    default_label = entry.get("experiment") or entry.get("scenario", {}).get(
        "name", "scenario"
    )
    return GridEntry(label=str(entry.get("label", default_label)), specs=specs)


def expand_grid(data: Any) -> list[GridEntry]:
    """Expand a parsed grid file into its entries."""
    if isinstance(data, Mapping):
        data = data.get("jobs")
    if not isinstance(data, list) or not data:
        raise ValueError(
            "grid file must be a non-empty list of job entries "
            "(or {'jobs': [...]})"
        )
    return [expand_entry(entry) for entry in data]


def load_grid(path: str | pathlib.Path) -> list[GridEntry]:
    """Parse and expand a grid JSON file."""
    return expand_grid(json.loads(pathlib.Path(path).read_text()))
