"""Parallel experiment runner with on-disk result caching.

The pieces, bottom-up:

* :mod:`repro.runner.spec` — :class:`JobSpec`, a picklable description
  of one run (experiment or scenario + duration/seed/overrides) with a
  stable content hash;
* :mod:`repro.runner.cache` — :class:`ResultCache`, JSON files under
  ``.repro_cache/`` keyed by spec hash, salted by a digest of the
  package source so code changes invalidate stale results;
* :mod:`repro.runner.executor` — :func:`run_grid`, a supervised
  process-pool fan-out (per-job timeout, deterministic backoff retry,
  pool rebuild on worker death, poison-job quarantine, journal-backed
  resume, graceful drain — see :mod:`repro.resilience`) with serial
  fallback;
* :mod:`repro.runner.grid` — batch grid-file expansion for
  ``python -m repro batch``;
* :mod:`repro.runner.fleet_grid` — :func:`run_grid_fleet`, the
  vectorized front end: fleet-eligible scenario jobs advance N machines
  per tick on one :class:`repro.fleet.FleetEngine`, everything else
  falls back to the pool (``python -m repro sweep --engine fleet``).

Typical library use::

    from repro.runner import ResultCache, run_grid, sweep_specs

    specs = sweep_specs("fig9", seeds="1..10", duration_s=200)
    report = run_grid(specs, workers=4, cache=ResultCache())
    samples = report.scalar_samples()   # one scalar dict per seed

See ``docs/running_experiments.md`` for the operations guide.
"""

from repro.runner.cache import (
    CacheStats,
    ResultCache,
    code_salt,
    default_cache_dir,
)
from repro.runner.executor import GridReport, JobOutcome, execute_spec, run_grid
from repro.runner.fleet_grid import run_grid_fleet
from repro.runner.grid import GridEntry, expand_grid, load_grid
from repro.runner.spec import JobSpec, parse_seeds, sweep_specs

__all__ = [
    "CacheStats",
    "GridEntry",
    "GridReport",
    "JobOutcome",
    "JobSpec",
    "ResultCache",
    "code_salt",
    "default_cache_dir",
    "execute_spec",
    "expand_grid",
    "load_grid",
    "parse_seeds",
    "run_grid",
    "run_grid_fleet",
    "sweep_specs",
]
