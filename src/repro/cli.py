"""Command-line interface.

    python -m repro list
    python -m repro run fig9
    python -m repro run table3 --duration 600 --seed 42
    python -m repro sweep fig6-7 --seeds 1..10 --workers 4
    python -m repro batch grid.json --workers 4

``sweep`` and ``batch`` print deterministic results (per-seed scalars
and the mean ± CI aggregate) on stdout; progress, wall-clock, and cache
hit/miss accounting go to stderr, so redirected output is byte-stable
across worker counts and cache states.
"""

from __future__ import annotations

import argparse
import difflib
import json
import sys

from repro.experiments import REGISTRY, run_experiment

#: Version of the ``--json`` report envelope shared by ``perf``,
#: ``validate``, ``trace``, and ``explain``.
REPORT_SCHEMA = 1

#: Default simulated duration for the telemetry commands (``trace`` /
#: ``explain``) when run against a pinned perf scenario — long enough
#: for decisions to fire, short enough for interactive use.
OBS_DEFAULT_DURATION_S = 60.0


def _print_json_report(payload) -> None:
    """Emit the shared ``--json`` envelope on stdout.

    Every subcommand's machine-readable output has the same top level —
    ``{"schema": N, "generated_by": "repro <version>", "payload": ...}``
    — so consumers can dispatch on one shape.
    """
    from repro import __version__

    print(json.dumps(
        {
            "schema": REPORT_SCHEMA,
            "generated_by": f"repro {__version__}",
            "payload": payload,
        },
        indent=2, sort_keys=True,
    ))


def _validate_duration(text: str) -> float | None:
    """``--duration`` for the validate matrix: ``short``, ``full``, or
    seconds.  ``full`` maps to ``None`` (each scenario's pinned perf
    duration)."""
    lowered = text.strip().lower()
    if lowered == "short":
        from repro.validate.runner import SHORT_DURATION_S

        return SHORT_DURATION_S
    if lowered == "full":
        return None
    return _positive_duration(text)


def _positive_duration(text: str) -> float:
    """Argparse type for ``--duration``: a finite, strictly positive float."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid duration {text!r}: not a number"
        ) from None
    if not value > 0 or value != value or value == float("inf"):
        raise argparse.ArgumentTypeError(
            f"invalid duration {text!r}: must be a positive number of seconds"
        )
    return value


def _add_runner_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="worker processes (1 = serial, the default)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk result cache entirely")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="cache directory (default: $REPRO_CACHE_DIR "
                             "or .repro_cache)")
    parser.add_argument("--timeout", type=_positive_duration, default=None,
                        metavar="SECONDS",
                        help="per-job wall-clock timeout (parallel runs only)")
    parser.add_argument("--retries", type=int, default=1, metavar="N",
                        help="re-submissions after a job fails (default: 1)")
    parser.add_argument("--journal", nargs="?", const="auto", default=None,
                        metavar="PATH",
                        help="append every job start/finish to a crash-safe "
                             "journal so the sweep can be finished with "
                             "--resume after a crash or interrupt (PATH "
                             "omitted: <cache dir>/journals/<grid>.jsonl)")
    parser.add_argument("--resume", default=None, metavar="JOURNAL",
                        help="resume an interrupted sweep from its journal: "
                             "completed jobs are served from the journal "
                             "with zero recomputation, in-flight and failed "
                             "ones re-run")
    parser.add_argument("--engine", choices=("pool", "fleet"),
                        default="pool",
                        help="execution engine: 'pool' runs one job per "
                             "worker process; 'fleet' packs fleet-eligible "
                             "scenario jobs into vectorized batches that "
                             "advance N machines per tick (ineligible jobs "
                             "fall back to the pool; results are "
                             "byte-identical either way)")
    _add_telemetry_options(parser)
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of tables")


def _add_telemetry_options(parser: argparse.ArgumentParser) -> None:
    """Live-telemetry options shared by sweep/batch/tournament.

    Both are off by default and telemetry-only: deterministic outputs
    (stdout, cache entries, journals) are byte-identical either way.
    """
    parser.add_argument("--serve-metrics", nargs="?", const=0, type=int,
                        default=None, metavar="PORT", dest="serve_metrics",
                        help="serve live run telemetry over HTTP on "
                             "127.0.0.1 while the run executes (/metrics "
                             "Prometheus text, /snapshot JSON, /events; "
                             "PORT omitted: an ephemeral port, printed to "
                             "stderr; watch it with 'repro top')")
    parser.add_argument("--events", default=None, metavar="PATH",
                        help="append every run event to PATH as one JSON "
                             "line each (crash-safe: flushed and fsynced "
                             "per event)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Merkel & Bellosa, 'Balancing Power Consumption "
            "in Multiprocessor Systems' (EuroSys 2006)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the registered experiments")

    run = sub.add_parser("run", help="run one experiment and print its report")
    run.add_argument("experiment", help="experiment name (see 'list')")
    run.add_argument("--duration", type=_positive_duration, default=None,
                     metavar="SECONDS",
                     help="simulated duration (default: a quick-look value)")
    run.add_argument("--seed", type=int, default=None,
                     help="root random seed (default: the committed one)")

    run_file = sub.add_parser(
        "run-file", help="run a JSON scenario file and print a summary"
    )
    run_file.add_argument("path", help="scenario JSON file (see repro.scenario)")
    run_file.add_argument("--validate", action="store_true",
                          help="run with the invariant checker enabled; "
                               "violations go to stderr and exit non-zero")
    run_file.add_argument("--checkpoint", default=None, metavar="PATH",
                          help="periodically write a resumable checkpoint "
                               "of the simulation to PATH (finish a killed "
                               "run with 'repro resume PATH')")
    run_file.add_argument("--checkpoint-every", type=_positive_duration,
                          default=60.0, metavar="SECONDS",
                          help="simulated seconds between checkpoints "
                               "(default: 60)")

    resume = sub.add_parser(
        "resume",
        help="finish a checkpointed simulation (see run-file --checkpoint)",
    )
    resume.add_argument("checkpoint", help="checkpoint file to load")
    resume.add_argument("--duration", type=_positive_duration, default=None,
                        metavar="SECONDS",
                        help="total planned duration (default: recorded in "
                             "the checkpoint)")
    resume.add_argument("--allow-stale", action="store_true",
                        help="load a checkpoint written by a different code "
                             "version (normally refused)")

    reproduce = sub.add_parser(
        "reproduce", help="run every experiment (quick-look durations)"
    )
    reproduce.add_argument("--duration", type=_positive_duration, default=None,
                           metavar="SECONDS",
                           help="override every experiment's duration")

    sweep = sub.add_parser(
        "sweep",
        help="replicate one experiment over a seed set, in parallel, "
             "with result caching",
    )
    sweep.add_argument("experiment", nargs="?", default=None,
                       help="experiment name (see 'list'); optional with "
                            "--resume, which rebuilds the grid from the "
                            "journal, or with --scenario")
    sweep.add_argument("--scenario", default=None, metavar="PATH",
                       help="sweep a scenario JSON file over the seed set "
                            "instead of a registry experiment (scenario "
                            "sweeps are what --engine fleet vectorizes)")
    sweep.add_argument("--family", default=None, metavar="NAME",
                       help="sweep a scenario generator family (see "
                            "'scenarios') over the seed set: each seed "
                            "generates its own instance via the "
                            "top-level scenario seed")
    sweep.add_argument("--family-params", default=None, metavar="JSON",
                       help="generator parameter overrides as a JSON "
                            "object (only with --family)")
    sweep.add_argument("--seeds", default="1..5", metavar="SET",
                       help="seed set: '1..10', '1,3,5', or one integer "
                            "(default: 1..5)")
    sweep.add_argument("--duration", type=_positive_duration, default=None,
                       metavar="SECONDS",
                       help="simulated duration per job (default: the "
                            "experiment's quick-look value)")
    _add_runner_options(sweep)

    scenarios = sub.add_parser(
        "scenarios",
        help="list the scenario generator families, or instantiate one "
             "as scenario JSON",
    )
    scenarios.add_argument("family", nargs="?", default=None,
                           help="family to instantiate (default: print "
                                "the catalog)")
    scenarios.add_argument("--params", default=None, metavar="JSON",
                           help="parameter overrides as a JSON object")
    scenarios.add_argument("--seed", type=int, default=1, metavar="N",
                           help="generator seed (default: 1)")
    scenarios.add_argument("--digest", action="store_true",
                           help="print only the spec's canonical SHA-256 "
                                "digest")

    batch = sub.add_parser(
        "batch", help="run a JSON grid of experiments/scenarios × seeds"
    )
    batch.add_argument("path", nargs="?", default=None,
                       help="grid JSON file (see repro.runner.grid); "
                            "optional with --resume")
    _add_runner_options(batch)

    perf = sub.add_parser(
        "perf",
        help="benchmark the batched tick loop against the scalar "
             "reference and write BENCH_perf.json",
    )
    perf.add_argument("--scenario", action="append", default=None,
                      metavar="NAME", dest="scenarios",
                      help="run only this scenario (repeatable; default: "
                           "the full reference set)")
    perf.add_argument("--duration", type=_positive_duration, default=None,
                      metavar="SECONDS",
                      help="override every scenario's pinned simulated "
                           "duration")
    perf.add_argument("--repeats", type=int, default=2, metavar="N",
                      help="timing repetitions per path; the best wall "
                           "clock counts (default: 2)")
    perf.add_argument("--output", default="BENCH_perf.json", metavar="PATH",
                      help="result file (default: BENCH_perf.json)")
    perf.add_argument("--history", default=None, metavar="PATH",
                      help="perf-history ledger to append to (default: "
                           "BENCH_history.jsonl next to --output)")
    perf.add_argument("--no-history", action="store_true",
                      help="do not append this run to the history ledger")
    perf.add_argument("--note", default="", metavar="TEXT",
                      help="free-form note recorded in the history entry "
                           "(e.g. the change being measured)")
    perf.add_argument("--compare", nargs="?", const="", default=None,
                      metavar="REF",
                      help="report mode: compare the newest history entry "
                           "against REF (an offset like '2' or a digest "
                           "prefix; omitted: the previous entry) instead "
                           "of running benchmarks; exits 1 on regressions "
                           "beyond --threshold")
    perf.add_argument("--threshold", type=float, default=None,
                      metavar="FRACTION",
                      help="relative throughput drop that counts as a "
                           "regression for --compare (default: 0.25)")
    perf.add_argument("--json", action="store_true",
                      help="print the payload as JSON instead of a table")

    tournament = sub.add_parser(
        "tournament",
        help="race every scheduling policy across the pinned scenarios "
             "and write the BENCH_policies.json leaderboard",
    )
    tournament.add_argument("--scenario", action="append", default=None,
                            metavar="NAME", dest="scenarios",
                            help="race only this scenario (repeatable; "
                                 "default: the full pinned set)")
    tournament.add_argument("--policy", action="append", default=None,
                            metavar="NAME", dest="policies",
                            help="race only this policy (repeatable; "
                                 "default: every registered policy)")
    tournament.add_argument("--duration", type=_positive_duration,
                            default=None, metavar="SECONDS",
                            help="simulated seconds per cell (default: 60)")
    tournament.add_argument("--workers", type=int, default=1, metavar="N",
                            help="worker processes (1 = serial, the default)")
    tournament.add_argument("--no-cache", action="store_true",
                            help="bypass the on-disk result cache entirely")
    tournament.add_argument("--cache-dir", default=None, metavar="DIR",
                            help="cache directory (default: $REPRO_CACHE_DIR "
                                 "or .repro_cache)")
    tournament.add_argument("--skip-oracle", action="store_true",
                            help="skip the scalar-reference differential "
                                 "oracle (faster, but no fast-path check)")
    tournament.add_argument("--output", default="BENCH_policies.json",
                            metavar="PATH",
                            help="result file (default: BENCH_policies.json)")
    _add_telemetry_options(tournament)
    tournament.add_argument("--json", action="store_true",
                            help="print the payload as JSON instead of a "
                                 "table")

    top = sub.add_parser(
        "top",
        help="show the live state of a run started with --serve-metrics",
    )
    top.add_argument("--port", type=int, default=None, metavar="PORT",
                     help="port of the live endpoint on 127.0.0.1")
    top.add_argument("--url", default=None, metavar="URL",
                     help="full endpoint URL (overrides --port)")
    top.add_argument("--watch", nargs="?", const=2.0,
                     type=_positive_duration, default=None,
                     metavar="SECONDS",
                     help="refresh every SECONDS (default 2) until "
                          "interrupted, instead of printing once")
    top.add_argument("--json", action="store_true",
                     help="print the raw /snapshot JSON instead of the "
                          "terminal view")

    validate = sub.add_parser(
        "validate",
        help="run the correctness matrix (invariants + differential "
             "oracle + fault injection) over the pinned scenarios",
    )
    validate.add_argument("--scenario", action="append", default=None,
                          metavar="NAME", dest="scenarios",
                          help="validate only this scenario (repeatable; "
                               "default: the full reference set)")
    validate.add_argument("--duration", type=_validate_duration,
                          default="short", metavar="SECONDS|short|full",
                          help="simulated seconds per run, or 'short' "
                               "(default) / 'full' (each scenario's pinned "
                               "perf duration)")
    validate.add_argument("--sample-every", type=int, default=1, metavar="N",
                          help="evaluate tick invariants every N ticks "
                               "(default: 1)")
    validate.add_argument("--skip-faults", action="store_true",
                          help="run invariants and oracle only, no fault "
                               "injection")
    validate.add_argument("--output", default=None, metavar="PATH",
                          help="also write the report payload as JSON "
                               "(the CI artifact)")
    validate.add_argument("--write-golden", default=None, metavar="DIR",
                          dest="write_golden",
                          help="regenerate the golden traces into DIR and "
                               "exit (documented home: tests/golden)")
    validate.add_argument("--json", action="store_true",
                          help="print the payload as JSON instead of a "
                               "report")

    trace = sub.add_parser(
        "trace",
        help="run a scenario with observability on and export its "
             "telemetry (Chrome trace, Prometheus text, metrics "
             "snapshot, or raw events)",
    )
    _add_obs_source_options(trace)
    trace.add_argument("--format", choices=("chrome", "prometheus",
                                            "metrics", "events"),
                       default="chrome",
                       help="export format (default: chrome — a "
                            "trace-event JSON loadable in Perfetto)")
    trace.add_argument("--output", default=None, metavar="PATH",
                       help="write the export to PATH instead of stdout")
    trace.add_argument("--json", action="store_true",
                       help="wrap stdout output in the shared report "
                            "envelope")

    explain = sub.add_parser(
        "explain",
        help="query the decision audit log of a scenario run "
             "('why did task 7 move to CPU 12?')",
    )
    _add_obs_source_options(explain)
    explain.add_argument("--pid", type=int, default=None,
                         help="show every audit record concerning this "
                              "task (placements, decisions, migrations)")
    explain.add_argument("--site", default=None, metavar="SITE",
                         help="filter by decision site (energy_balance, "
                              "hot_migration, placement, migration)")
    explain.add_argument("--accepted-only", action="store_true",
                         help="show only decisions that resulted in an "
                              "action")
    explain.add_argument("--json", action="store_true",
                         help="print records as JSON in the shared "
                              "report envelope")
    return parser


def _add_obs_source_options(parser: argparse.ArgumentParser) -> None:
    """Shared trace/explain options choosing what to run."""
    parser.add_argument("--scenario", default="mixed-16cpu", metavar="NAME",
                        help="pinned perf scenario to run (default: "
                             "mixed-16cpu)")
    parser.add_argument("--file", default=None, metavar="PATH",
                        help="run a scenario JSON file instead of a "
                             "pinned scenario")
    parser.add_argument("--duration", type=_positive_duration, default=None,
                        metavar="SECONDS",
                        help=f"simulated duration (default: "
                             f"{OBS_DEFAULT_DURATION_S:g} for pinned "
                             f"scenarios, the file's own duration for "
                             f"--file)")


def _resolve_experiment(parser: argparse.ArgumentParser, name: str) -> str:
    """``name`` if registered, else a clean argparse error with suggestions."""
    if name in REGISTRY:
        return name
    close = difflib.get_close_matches(name, REGISTRY, n=3, cutoff=0.4)
    hint = f" — did you mean: {', '.join(close)}?" if close else ""
    parser.error(
        f"unknown experiment {name!r}{hint}\n"
        f"valid experiments: {', '.join(sorted(REGISTRY))}"
    )


def _make_cache(args):
    if args.no_cache:
        return None
    from repro.runner import ResultCache, default_cache_dir

    return ResultCache(root=args.cache_dir or default_cache_dir())


def _journal_path(args, specs, command: str):
    """Where this grid's journal lives: --resume/--journal PATH, or a
    content-addressed default under the cache directory."""
    import hashlib
    import pathlib

    if args.resume is not None:
        return pathlib.Path(args.resume)
    if args.journal is None:
        return None
    if args.journal != "auto":
        return pathlib.Path(args.journal)
    from repro.runner import default_cache_dir

    root = pathlib.Path(args.cache_dir or default_cache_dir())
    digest = hashlib.sha256(
        "\n".join(spec.content_hash() for spec in specs).encode()
    ).hexdigest()[:16]
    return root / "journals" / f"{command}-{digest}.jsonl"


def _resume_specs(parser, args, command: str):
    """The spec list recorded in ``--resume``'s journal meta record."""
    from repro.resilience import replay_journal

    replay = replay_journal(args.resume)
    try:
        specs = replay.specs()
    except ValueError as exc:
        parser.error(f"cannot resume from {args.resume!r}: {exc}")
    meta = replay.meta or {}
    if meta.get("command") not in (None, command):
        parser.error(
            f"{args.resume!r} journals a {meta.get('command')!r} run; "
            f"resume it with 'repro {meta.get('command')} --resume'"
        )
    return specs, meta.get("args") or {}


def _make_bus(args):
    """Build the run event bus requested by the telemetry options.

    Returns ``(bus, server, sink)`` — all ``None`` when neither
    ``--serve-metrics`` nor ``--events`` was given, so the hot paths
    never see a bus (and never import the live module) by default.
    """
    serve_port = getattr(args, "serve_metrics", None)
    events_path = getattr(args, "events", None)
    if serve_port is None and events_path is None:
        return None, None, None
    from repro.obs import EventBus, JsonlSink

    bus = EventBus()
    sink = None
    if events_path is not None:
        sink = JsonlSink(events_path)
        bus.subscribe(sink)
    server = None
    if serve_port is not None:
        from repro.obs.live import serve_bus

        server = serve_bus(bus, port=serve_port)
        print(f"live telemetry: {server.url}/metrics "
              f"(watch with: python -m repro top --port {server.port})",
              file=sys.stderr)
    return bus, server, sink


def _close_bus(server, sink) -> None:
    if server is not None:
        server.close()
    if sink is not None:
        sink.close()


def _run_jobs(parser, args, specs, command="sweep", command_args=None):
    """Shared sweep/batch execution; prints progress+cache info to stderr.

    Opens the journal when journaling is on, wires SIGINT/SIGTERM to a
    graceful drain, and prints the resume command when the sweep stops
    early.
    """
    import signal
    import threading

    from repro.runner import run_grid, run_grid_fleet

    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    if args.retries < 0:
        parser.error(f"--retries must be >= 0, got {args.retries}")
    cache = _make_cache(args)

    def progress(outcome, i, total):
        if outcome.quarantined:
            status = "QUARANTINED"
        elif not outcome.ok:
            status = "FAILED"
        elif outcome.resumed:
            status = "resumed"
        elif outcome.cached:
            status = "cached"
        else:
            status = "ok"
        line = f"  [{i + 1}/{total}] {outcome.spec.label:<32} {status}"
        if not outcome.cached and outcome.ok:
            line += f"  {outcome.elapsed_s:.2f}s"
        print(line, file=sys.stderr)

    journal = None
    journal_path = _journal_path(args, specs, command)
    if journal_path is not None:
        from repro.resilience import SweepJournal

        journal = SweepJournal(
            journal_path, specs, command=command,
            command_args=command_args or {},
        )

    stop_event = threading.Event()

    def _on_signal(signum, frame):
        if stop_event.is_set():
            raise KeyboardInterrupt
        stop_event.set()
        print("\ninterrupt received — draining running jobs and flushing "
              "the journal (interrupt again to abort hard)", file=sys.stderr)

    previous_handlers = {}
    try:
        for sig in (signal.SIGINT, signal.SIGTERM):
            previous_handlers[sig] = signal.signal(sig, _on_signal)
    except ValueError:  # not the main thread (e.g. embedded use)
        pass
    runner = (run_grid_fleet
              if getattr(args, "engine", "pool") == "fleet" else run_grid)
    bus, server, sink = _make_bus(args)
    try:
        report = runner(
            specs, workers=args.workers, cache=cache,
            timeout_s=args.timeout, retries=args.retries,
            progress=progress, journal=journal, stop_event=stop_event,
            bus=bus,
        )
    finally:
        for sig, handler in previous_handlers.items():
            signal.signal(sig, handler)
        if journal is not None:
            journal.close()
        _close_bus(server, sink)
    if report.cache_stats is not None:
        print(f"cache: {report.cache_stats.describe()} "
              f"(dir: {cache.root})", file=sys.stderr)
    if report.exec_stats is not None:
        incidents = report.exec_stats.describe()
        if incidents != "no incidents":
            print(f"incidents: {incidents}", file=sys.stderr)
    print(f"wall clock: {report.wall_s:.1f}s at --workers {args.workers}",
          file=sys.stderr)
    for outcome in report.failures:
        print(f"error: {outcome.spec.label}: {outcome.error} "
              f"({outcome.attempts} attempts)", file=sys.stderr)
    if report.interrupted:
        if journal_path is not None:
            print(f"interrupted — finish with: python -m repro {command} "
                  f"--resume {journal_path}", file=sys.stderr)
        else:
            print("interrupted — no journal was kept (use --journal to "
                  "make sweeps resumable)", file=sys.stderr)
    return report


def _aggregate_json(summaries) -> dict:
    return {
        s.name: {"n": s.n, "mean": s.mean, "std": s.std,
                 "ci95_half": s.ci95_half}
        for s in summaries
    }


def _cmd_sweep(parser, args) -> int:
    from repro.analysis.report import format_scalar_summaries
    from repro.analysis.stats import summarize_scalars
    from repro.runner import sweep_specs

    if args.family_params is not None and args.family is None:
        parser.error("--family-params requires --family")
    if args.resume is not None:
        specs, meta_args = _resume_specs(parser, args, "sweep")
        experiment = (args.experiment or meta_args.get("experiment")
                      or (specs[0].experiment if specs else "sweep"))
    elif args.family is not None:
        if args.experiment is not None or args.scenario is not None:
            parser.error("give an experiment name, --scenario, or "
                         "--family, not several")
        from repro.runner import JobSpec, parse_seeds
        from repro.scenarios import GeneratorSpec

        params = {}
        if args.family_params is not None:
            try:
                params = json.loads(args.family_params)
            except ValueError as exc:
                parser.error(f"bad --family-params JSON: {exc}")
            if not isinstance(params, dict):
                parser.error("--family-params must be a JSON object")
        try:
            # Validate family + params once, up front; the per-seed
            # instances are expanded inside each job from the same spec.
            GeneratorSpec(args.family, params, seed=1)
            data = {"generator": {"family": args.family}}
            if params:
                data["generator"]["params"] = params
            specs = [
                JobSpec(scenario=data, seed=seed, duration_s=args.duration)
                for seed in parse_seeds(args.seeds)
            ]
        except ValueError as exc:
            parser.error(str(exc))
        experiment = args.family
    elif args.scenario is not None:
        if args.experiment is not None:
            parser.error("give an experiment name or --scenario, not both")
        import pathlib

        from repro.runner import JobSpec, parse_seeds

        path = pathlib.Path(args.scenario)
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            parser.error(f"cannot read scenario {args.scenario}: {exc}")
        data.setdefault("name", path.stem)
        try:
            specs = [
                JobSpec(scenario=data, seed=seed, duration_s=args.duration)
                for seed in parse_seeds(args.seeds)
            ]
        except ValueError as exc:
            parser.error(str(exc))
        experiment = data["name"]
    else:
        if args.experiment is None:
            parser.error("an experiment name is required "
                         "(or --resume / --scenario)")
        experiment = _resolve_experiment(parser, args.experiment)
        try:
            specs = sweep_specs(experiment, seeds=args.seeds,
                                duration_s=args.duration)
        except ValueError as exc:
            parser.error(str(exc))
    command_args = {"experiment": experiment, "seeds": args.seeds,
                    "duration": args.duration}
    report = _run_jobs(parser, args, specs, command="sweep",
                       command_args=command_args)
    if report.interrupted:
        return 130
    samples = report.scalar_samples()
    if not samples:
        return 1
    summaries = summarize_scalars(samples)
    if args.json:
        print(json.dumps(
            {
                "experiment": experiment,
                "duration_s": args.duration,
                "seeds": [o.spec.seed for o in report.outcomes if o.ok],
                "jobs": [
                    {"seed": o.spec.seed, "scalars": o.result["scalars"]}
                    for o in report.outcomes if o.ok
                ],
                "aggregate": _aggregate_json(summaries),
            },
            indent=2, sort_keys=True,
        ))
    else:
        print(format_scalar_summaries(
            summaries,
            title=f"{experiment}: {len(samples)} seeds, mean ± 95% CI",
        ))
    return 1 if report.failures else 0


def _cmd_batch(parser, args) -> int:
    from repro.analysis.report import format_scalar_summaries
    from repro.analysis.stats import summarize_scalars
    from repro.runner import load_grid

    if args.resume is not None:
        flat, meta_args = _resume_specs(parser, args, "batch")
        grid_path = args.path or meta_args.get("path")
        entries = None
        if grid_path is not None:
            try:
                entries = load_grid(grid_path)
            except (OSError, ValueError):
                entries = None  # journal specs still carry the grid
        if entries is not None:
            from_grid = [s for e in entries for s in e.specs]
            if ([s.content_hash() for s in from_grid]
                    != [s.content_hash() for s in flat]):
                entries = None  # grid file changed since the journal
        if entries is None:
            from repro.runner.grid import GridEntry

            entries = [GridEntry(label="resumed batch", specs=tuple(flat))]
        command_args = {"path": grid_path}
    else:
        if args.path is None:
            parser.error("a grid JSON file is required (or --resume)")
        try:
            entries = load_grid(args.path)
        except (OSError, ValueError) as exc:
            parser.error(f"cannot load grid {args.path!r}: {exc}")
        flat = [spec for entry in entries for spec in entry.specs]
        command_args = {"path": str(args.path)}
    report = _run_jobs(parser, args, flat, command="batch",
                       command_args=command_args)
    if report.interrupted:
        return 130

    groups = []
    cursor = 0
    for entry in entries:
        outcomes = report.outcomes[cursor:cursor + len(entry.specs)]
        cursor += len(entry.specs)
        samples = [o.result["scalars"] for o in outcomes if o.ok]
        groups.append((entry, outcomes, samples))

    if args.json:
        print(json.dumps(
            [
                {
                    "label": entry.label,
                    "jobs": [
                        {"spec": o.spec.to_dict(), "scalars": o.result["scalars"]}
                        for o in outcomes if o.ok
                    ],
                    "aggregate": (_aggregate_json(summarize_scalars(samples))
                                  if samples else None),
                }
                for entry, outcomes, samples in groups
            ],
            indent=2, sort_keys=True,
        ))
    else:
        blocks = []
        for entry, outcomes, samples in groups:
            if not samples:
                blocks.append(f"{entry.label}: all {len(outcomes)} jobs failed")
                continue
            blocks.append(format_scalar_summaries(
                summarize_scalars(samples),
                title=f"{entry.label}: {len(samples)} jobs, mean ± 95% CI",
            ))
        print("\n\n".join(blocks))
    return 1 if report.failures else 0


def _default_history_path(args) -> str:
    """The ledger next to ``--output`` (repo root by default)."""
    import pathlib

    from repro.perf import HISTORY_PATH

    if args.history is not None:
        return args.history
    return str(pathlib.Path(args.output).parent / HISTORY_PATH)


def _cmd_perf_compare(parser, args) -> int:
    """``perf --compare``: report mode over the history ledger."""
    from repro.perf import (
        DEFAULT_THRESHOLD,
        compare_entries,
        format_compare,
        load_history,
        resolve_reference,
    )

    history_path = _default_history_path(args)
    entries = load_history(history_path)
    if not entries:
        print(f"error: no history at {history_path}; run 'repro perf' "
              f"first to record an entry", file=sys.stderr)
        return 1
    try:
        current, reference = resolve_reference(
            entries, args.compare or None
        )
        report = compare_entries(
            current, reference,
            threshold=(args.threshold if args.threshold is not None
                       else DEFAULT_THRESHOLD),
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        _print_json_report(report)
    else:
        print(format_compare(report))
    return 1 if report["regressions"] else 0


def _cmd_perf(parser, args) -> int:
    from repro.perf import (
        append_history,
        format_bench_report,
        run_benchmarks,
        scenario_by_name,
        write_bench_json,
    )

    if args.threshold is not None and args.threshold < 0:
        parser.error(f"--threshold must be >= 0, got {args.threshold}")
    if args.compare is not None:
        return _cmd_perf_compare(parser, args)
    scenarios = None
    if args.scenarios:
        try:
            scenarios = [scenario_by_name(name) for name in args.scenarios]
        except ValueError as exc:
            parser.error(str(exc))
    if args.repeats < 1:
        parser.error(f"--repeats must be >= 1, got {args.repeats}")
    payload = run_benchmarks(scenarios, duration_s=args.duration,
                             repeats=args.repeats)
    path = write_bench_json(payload, args.output)
    if args.json:
        _print_json_report(payload)
    else:
        print(format_bench_report(payload))
    print(f"wrote {path}", file=sys.stderr)
    if not args.no_history:
        history_path = _default_history_path(args)
        append_history(payload, history_path, note=args.note)
        print(f"appended history entry to {history_path} "
              f"(diff runs with: python -m repro perf --compare)",
              file=sys.stderr)
    if not payload["all_summaries_identical"]:
        print("error: fast path diverged from the scalar reference",
              file=sys.stderr)
        return 1
    fleet = payload.get("fleet")
    if fleet is not None and not fleet["members_identical"]:
        print("error: fleet members diverged from the scalar reference",
              file=sys.stderr)
        return 1
    return 0


def _cmd_tournament(parser, args) -> int:
    from repro.tournament import (
        DEFAULT_DURATION_S,
        format_policy_report,
        run_tournament,
        tournament_scenario_by_name,
        write_policies_json,
    )

    scenarios = None
    if args.scenarios:
        try:
            scenarios = [
                tournament_scenario_by_name(name) for name in args.scenarios
            ]
        except ValueError as exc:
            parser.error(str(exc))
    policies = None
    if args.policies:
        from repro.core.policyspec import PolicySpec

        try:
            policies = [PolicySpec.coerce(name) for name in args.policies]
        except ValueError as exc:
            parser.error(str(exc))
    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    cache = _make_cache(args)

    def progress(outcome, i, total):
        status = "cached" if outcome.cached else ("ok" if outcome.ok
                                                  else "FAILED")
        print(f"  [{i + 1}/{total}] {outcome.spec.label:<40} {status}",
              file=sys.stderr)

    bus, server, sink = _make_bus(args)
    try:
        payload = run_tournament(
            duration_s=args.duration or DEFAULT_DURATION_S,
            scenarios=scenarios,
            policies=policies,
            workers=args.workers,
            cache=cache,
            check_oracle=not args.skip_oracle,
            progress=progress,
            bus=bus,
        )
    except RuntimeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        _close_bus(server, sink)
    path = write_policies_json(payload, args.output)
    if args.json:
        _print_json_report(payload)
    else:
        print(format_policy_report(payload))
    print(f"wrote {path}", file=sys.stderr)
    oracle = payload["oracle"]
    if oracle.get("checked") and not oracle["identical"]:
        print("error: fast path diverged from the scalar reference",
              file=sys.stderr)
        return 1
    return 0


def _cmd_validate(parser, args) -> int:
    from repro.perf import scenario_by_name
    from repro.validate import (
        format_validation_report,
        run_validation,
        write_golden,
        write_validation_json,
    )

    scenarios = None
    if args.scenarios:
        try:
            scenarios = [scenario_by_name(name) for name in args.scenarios]
        except ValueError as exc:
            parser.error(str(exc))
    if args.sample_every < 1:
        parser.error(f"--sample-every must be >= 1, got {args.sample_every}")
    if args.write_golden is not None:
        paths = write_golden(args.write_golden, scenarios)
        for path in paths:
            print(f"wrote {path}", file=sys.stderr)
        return 0
    payload = run_validation(
        scenarios,
        duration_s=args.duration,
        sample_every=args.sample_every,
        include_faults=not args.skip_faults,
    )
    if args.output is not None:
        path = write_validation_json(payload, args.output)
        print(f"wrote {path}", file=sys.stderr)
    if args.json:
        _print_json_report(payload)
    else:
        print(format_validation_report(payload))
    return 0 if payload["ok"] else 1


def _run_observed(parser, args):
    """Shared trace/explain execution: resolve the source, run with
    observability on, return (result, scenario name)."""
    from repro.api import run_simulation

    if args.file is not None:
        from repro.scenario import load_scenario

        try:
            scenario = load_scenario(args.file)
        except (OSError, ValueError, KeyError) as exc:
            parser.error(f"cannot load scenario {args.file!r}: {exc}")
        duration = (
            args.duration if args.duration is not None else scenario.duration_s
        )
        result = run_simulation(
            scenario.config, scenario.workload, policy=scenario.policy,
            duration_s=duration, obs=True,
        )
        return result, scenario.workload.name
    from repro.perf import scenario_by_name

    try:
        scenario = scenario_by_name(args.scenario)
    except ValueError as exc:
        parser.error(str(exc))
    config, workload = scenario.build()
    duration = (
        args.duration if args.duration is not None else OBS_DEFAULT_DURATION_S
    )
    result = run_simulation(
        config, workload, policy=scenario.policy, duration_s=duration,
        obs=True,
    )
    return result, scenario.name


def _cmd_trace(parser, args) -> int:
    from repro.obs import PROMETHEUS_CONTENT_TYPE

    result, name = _run_observed(parser, args)
    try:
        if args.format == "chrome":
            export = result.chrome_trace(scenario=name)
            text = json.dumps(export, indent=2, sort_keys=True)
        elif args.format == "metrics":
            export = result.metrics_snapshot()
            text = json.dumps(export, indent=2, sort_keys=True)
        elif args.format == "prometheus":
            text = result.observer.prometheus().rstrip("\n")
            export = {"content_type": PROMETHEUS_CONTENT_TYPE,
                      "text": text + "\n"}
        else:  # events
            events = list(result.tracer.events)
            if not events:
                print(f"note: {name} recorded no trace events over this "
                      f"duration; the export is an empty event list",
                      file=sys.stderr)
            export = {
                "scenario": name,
                "events": [e.to_dict() for e in events],
            }
            text = json.dumps(export, indent=2, sort_keys=True)
    except (AttributeError, ValueError) as exc:
        # e.g. metrics disabled in the observability config: report why
        # the export is unavailable instead of dumping a traceback.
        print(f"error: cannot export {args.format} telemetry for {name}: "
              f"{exc}", file=sys.stderr)
        return 1
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.write("\n")
        print(f"wrote {args.output}", file=sys.stderr)
        if not args.json:
            return 0
    if args.json:
        _print_json_report(
            {"scenario": name, "format": args.format, "export": export}
        )
    elif args.output is None:
        print(text)
    return 0


def _format_audit_record(record) -> str:
    chosen = str(record.chosen) if record.chosen >= 0 else "-"
    status = "accepted" if record.accepted else "declined"
    line = (
        f"[{record.time_s:9.3f}s] #{record.seq:<6} {record.site:<14} "
        f"cpu={record.cpu:<3} pid={record.pid:<5} -> {chosen:<3} {status}"
    )
    if record.detail:
        line += "\n    " + json.dumps(record.to_dict()["detail"],
                                      sort_keys=True)
    return line


def _cmd_explain(parser, args) -> int:
    from repro.obs import AUDIT_SITES

    if args.site is not None and args.site not in AUDIT_SITES:
        parser.error(
            f"unknown audit site {args.site!r}; expected one of "
            f"{', '.join(AUDIT_SITES)}"
        )
    result, name = _run_observed(parser, args)
    audit = result.audit
    if audit is None:
        # Unreachable through this command (it always runs with obs on),
        # but keep the exit clean if a future path hands us a bare run.
        print(f"error: {name} ran without the decision audit log; re-run "
              f"with observability enabled", file=sys.stderr)
        return 1
    if args.pid is None and args.site is None and not args.accepted_only:
        # Summary mode: what did the audit log capture?
        payload = {
            "scenario": name,
            "records": len(audit),
            "dropped": audit.dropped,
            "sites": audit.sites_seen(),
        }
        if args.json:
            _print_json_report(payload)
        else:
            print(f"{name}: {len(audit)} audit records "
                  f"({audit.dropped} dropped)")
            if not len(audit):
                print("no scheduler decisions fired — the policy has no "
                      "audited decision sites (e.g. baseline) or the "
                      "duration was too short; try --duration 300 or an "
                      "energy-aware scenario")
                return 0
            for site, count in audit.sites_seen().items():
                print(f"  {site:<16} {count}")
            print("use --pid / --site to select records")
        return 0
    records = audit.query(
        site=args.site,
        pid=args.pid,
        accepted=True if args.accepted_only else None,
    )
    if args.json:
        _print_json_report({
            "scenario": name,
            "pid": args.pid,
            "site": args.site,
            "matched": len(records),
            "records": [r.to_dict() for r in records],
        })
    else:
        for record in records:
            print(_format_audit_record(record))
        print(f"{len(records)} record(s) matched", file=sys.stderr)
        if not records and len(audit):
            print(f"hint: {len(audit)} records exist; 'repro explain "
                  f"--scenario {args.scenario}' summarizes the sites and "
                  f"pids seen", file=sys.stderr)
    return 0


def _cmd_top(parser, args) -> int:
    import urllib.error
    import urllib.request

    if args.url is not None:
        base = args.url.rstrip("/")
    elif args.port is not None:
        base = f"http://127.0.0.1:{args.port}"
    else:
        parser.error("give --port PORT or --url URL (printed to stderr by "
                     "the run started with --serve-metrics)")

    def fetch() -> dict:
        with urllib.request.urlopen(f"{base}/snapshot", timeout=5) as resp:
            return json.loads(resp.read())

    from repro.obs.live import render_top

    try:
        while True:
            try:
                payload = fetch()
            except (OSError, urllib.error.URLError, ValueError) as exc:
                print(f"error: cannot read {base}/snapshot: {exc}\n"
                      f"is the run still up, and was it started with "
                      f"--serve-metrics?", file=sys.stderr)
                return 1
            if args.json:
                print(json.dumps(payload, indent=2, sort_keys=True))
            else:
                print(render_top(payload.get("live", {})))
            if args.watch is None:
                return 0
            import time as _time

            _time.sleep(args.watch)
            if not args.json:
                print("", file=sys.stderr)
    except KeyboardInterrupt:
        return 0


def _cmd_scenarios(parser, args) -> int:
    from repro.scenarios import GeneratorSpec, family_by_name, family_names

    if args.family is None:
        if args.params is not None or args.digest:
            parser.error("--params/--digest need a family to instantiate")
        names = family_names()
        width = max(len(name) for name in names)
        for name in names:
            family = family_by_name(name)
            tags = []
            if family.fleet_eligible:
                tags.append("fleet")
            if family.adversarial:
                tags.append("adversarial")
            suffix = f" [{', '.join(tags)}]" if tags else ""
            print(f"{name:<{width}}  {family.description}{suffix}")
        return 0
    params = {}
    if args.params is not None:
        try:
            params = json.loads(args.params)
        except ValueError as exc:
            parser.error(f"bad --params JSON: {exc}")
        if not isinstance(params, dict):
            parser.error("--params must be a JSON object")
    try:
        spec = GeneratorSpec(args.family, params, seed=args.seed)
        if args.digest:
            print(spec.digest())
            return 0
        print(json.dumps(spec.instantiate(), indent=2, sort_keys=True))
    except ValueError as exc:
        parser.error(str(exc))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        width = max(len(name) for name in REGISTRY)
        for name in sorted(REGISTRY):
            print(f"{name:<{width}}  {REGISTRY[name].description}")
        return 0
    if args.command == "run-file":
        from repro.analysis.export import run_summary_json
        from repro.scenario import load_scenario

        scenario = load_scenario(args.path)
        if args.checkpoint is not None:
            from repro.resilience import run_simulation_checkpointed

            def on_checkpoint(path, ticks):
                print(f"checkpoint: {path} at tick {ticks}",
                      file=sys.stderr)

            result = run_simulation_checkpointed(
                scenario.config, scenario.workload,
                checkpoint_path=args.checkpoint, policy=scenario.policy,
                duration_s=scenario.duration_s,
                checkpoint_every_s=args.checkpoint_every,
                validate=args.validate, on_checkpoint=on_checkpoint,
            )
        else:
            result = scenario.run(validate=args.validate)
        print(run_summary_json(result))
        violations = result.violations
        if violations:
            print(f"error: {len(violations)} invariant violation(s):",
                  file=sys.stderr)
            for violation in violations[:20]:
                print(f"  [tick {violation.tick}] {violation.invariant}: "
                      f"{violation.message}", file=sys.stderr)
            return 1
        return 0
    if args.command == "reproduce":
        from repro.experiments import run_all

        print(run_all(duration_s=args.duration))
        return 0
    if args.command == "resume":
        from repro.analysis.export import run_summary_json
        from repro.resilience import CheckpointError, resume_simulation

        try:
            result = resume_simulation(
                args.checkpoint, duration_s=args.duration,
                allow_stale=args.allow_stale,
            )
        except CheckpointError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(run_summary_json(result))
        return 0
    if args.command == "sweep":
        return _cmd_sweep(parser, args)
    if args.command == "scenarios":
        return _cmd_scenarios(parser, args)
    if args.command == "batch":
        return _cmd_batch(parser, args)
    if args.command == "perf":
        return _cmd_perf(parser, args)
    if args.command == "tournament":
        return _cmd_tournament(parser, args)
    if args.command == "validate":
        return _cmd_validate(parser, args)
    if args.command == "trace":
        return _cmd_trace(parser, args)
    if args.command == "explain":
        return _cmd_explain(parser, args)
    if args.command == "top":
        return _cmd_top(parser, args)
    experiment = _resolve_experiment(parser, args.experiment)
    report = run_experiment(experiment, duration_s=args.duration,
                            seed=args.seed)
    print(report)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
