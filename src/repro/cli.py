"""Command-line interface.

    python -m repro list
    python -m repro run fig9
    python -m repro run table3 --duration 600 --seed 42
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import REGISTRY, run_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Merkel & Bellosa, 'Balancing Power Consumption "
            "in Multiprocessor Systems' (EuroSys 2006)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the registered experiments")

    run = sub.add_parser("run", help="run one experiment and print its report")
    run.add_argument("experiment", choices=sorted(REGISTRY),
                     help="experiment name")
    run.add_argument("--duration", type=float, default=None, metavar="SECONDS",
                     help="simulated duration (default: a quick-look value)")
    run.add_argument("--seed", type=int, default=None,
                     help="root random seed (default: the committed one)")

    run_file = sub.add_parser(
        "run-file", help="run a JSON scenario file and print a summary"
    )
    run_file.add_argument("path", help="scenario JSON file (see repro.scenario)")

    reproduce = sub.add_parser(
        "reproduce", help="run every experiment (quick-look durations)"
    )
    reproduce.add_argument("--duration", type=float, default=None,
                           metavar="SECONDS",
                           help="override every experiment's duration")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(name) for name in REGISTRY)
        for name in sorted(REGISTRY):
            print(f"{name:<{width}}  {REGISTRY[name].description}")
        return 0
    if args.command == "run-file":
        from repro.analysis.export import run_summary_json
        from repro.scenario import load_scenario

        result = load_scenario(args.path).run()
        print(run_summary_json(result))
        return 0
    if args.command == "reproduce":
        from repro.experiments import run_all

        print(run_all(duration_s=args.duration))
        return 0
    report = run_experiment(args.experiment, duration_s=args.duration,
                            seed=args.seed)
    print(report)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
