"""Sporadic task-model family (MORA / Nelis et al., PAPERS.md).

A sporadic task is defined by a *minimum inter-arrival time* (its
"period" T) and a worst-case execution time (WCET, C): successive jobs
of the task are released at least T apart, and each job needs at most
C of solo CPU time.  This is the real-time counterpart to the open
loops in :mod:`repro.scenarios.arrivals` — instead of a memoryless
rate, each task has a contract, and total utilization sum(C_i/T_i) is
the tunable pressure knob.

Generation works per task set:

* pick ``n_tasks`` periods log-uniform in ``[period_min_s,
  period_max_s]``;
* split the ``utilization`` budget across tasks with the UUniFast
  algorithm (Bini & Buttazzo) — uniform over the simplex, so small and
  large shares both occur — then ``C_i = U_i * T_i``;
* release jobs sporadically: consecutive releases are separated by
  ``T_i * (1 + jitter)`` with jitter uniform in ``[0, release_slack]``
  (0 = strictly periodic), each release a ``respawn="none"`` fork/exit
  job of length ``C_i``.

Program assignment cycles hot and cool programs through the task set
so the power mix is heterogeneous, which is what makes the energy
policy's placement choices visible.  Instances pin noise to zero and
are fleet-eligible like the other open-loop families.
"""

from __future__ import annotations

import math
import random
from typing import Any, Mapping

from repro.scenarios.registry import (
    ScenarioFamily,
    machine_dict,
    register_family,
    require_int,
    require_number,
    require_programs,
)


def uunifast(
    rng: random.Random, n_tasks: int, utilization: float
) -> list[float]:
    """UUniFast: n_tasks utilizations summing to ``utilization``,
    uniform over the simplex."""
    shares: list[float] = []
    remaining = utilization
    for i in range(n_tasks - 1):
        nxt = remaining * rng.random() ** (1.0 / (n_tasks - 1 - i))
        shares.append(remaining - nxt)
        remaining = nxt
    shares.append(remaining)
    return shares


def _generate_sporadic(
    params: Mapping[str, Any], rng: random.Random
) -> dict[str, Any]:
    fam = "sporadic"
    machine = str(params["machine"])
    n_tasks = require_int(fam, "n_tasks", params["n_tasks"], minimum=1)
    utilization = require_number(fam, "utilization", params["utilization"],
                                 positive=True, maximum=64.0)
    period_min = require_number(fam, "period_min_s", params["period_min_s"],
                                positive=True)
    period_max = require_number(fam, "period_max_s", params["period_max_s"],
                                positive=True)
    if period_max < period_min:
        raise ValueError(
            f"{fam}: period_max_s ({period_max}) must be >= "
            f"period_min_s ({period_min})"
        )
    slack = require_number(fam, "release_slack", params["release_slack"],
                           minimum=0.0, maximum=4.0)
    wcet_min = require_number(fam, "min_wcet_s", params["min_wcet_s"],
                              positive=True)
    horizon = require_number(fam, "horizon_s", params["horizon_s"],
                             positive=True, maximum=3600.0)
    programs = require_programs(fam, "programs", params["programs"])

    shares = uunifast(rng, n_tasks, utilization)
    tasks: list[dict[str, Any]] = []
    for i, share in enumerate(shares):
        log_t = rng.uniform(math.log(period_min), math.log(period_max))
        period = math.exp(log_t)
        wcet = max(wcet_min, share * period)
        program = programs[i % len(programs)]
        # Sporadic releases: at least `period` apart, first release
        # offset uniformly inside one period so tasks do not phase-lock.
        t = rng.uniform(0.0, period)
        while t < horizon:
            tasks.append({
                "program": program,
                "arrival_s": round(t, 6),
                "solo_job_s": round(wcet, 6),
                "respawn": "none",
            })
            t += period * (1.0 + rng.uniform(0.0, slack))

    if not tasks:
        raise ValueError(
            f"{fam}: generated no jobs — horizon shorter than every period"
        )
    tasks.sort(key=lambda task: (task["arrival_s"], task["program"]))
    scenario: dict[str, Any] = {
        "machine": machine_dict(machine),
        "max_power_per_cpu_w": 60.0,
        "counter_jitter_sigma": 0.0,
        "power": {"noise_sigma": 0.0},
        "workload": {
            "name": f"sporadic-n{n_tasks}-u{utilization:g}",
            "tasks": tasks,
        },
        "policy": "energy",
        "duration_s": horizon,
    }
    return scenario


register_family(ScenarioFamily(
    name="sporadic",
    description=(
        "Sporadic real-time task sets (min inter-arrival + WCET, "
        "UUniFast utilization split) released as fork/exit jobs with "
        "bounded release jitter."
    ),
    defaults={
        "machine": "ibm_x445",
        "n_tasks": 12,
        "utilization": 6.0,
        "period_min_s": 2.0,
        "period_max_s": 12.0,
        "release_slack": 0.25,
        "min_wcet_s": 0.3,
        "horizon_s": 30.0,
        "programs": ["bitcnts", "memrw", "aluadd", "pushpop"],
    },
    generate=_generate_sporadic,
    fleet_eligible=True,
))
