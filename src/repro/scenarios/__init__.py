"""Scenario registry + generator DSL (see ``docs/scenarios.md``).

Declarative, seed-deterministic workload generation: a
:class:`GeneratorSpec` (family name + parameter overrides + seed)
expands to the exact JSON shape :func:`repro.scenario.parse_scenario`
accepts, via a family registered here.  Scenario files and grids opt
in with a top-level ``generator`` key; ``repro scenarios`` lists the
catalog from the command line.

Importing this package registers the built-in families:

* ``poisson`` / ``bursty`` — open-loop arrival processes with
  fork/exit churn (:mod:`repro.scenarios.arrivals`);
* ``sporadic`` — minimum-inter-arrival + WCET real-time task sets
  (:mod:`repro.scenarios.sporadic`);
* ``thermal-adversarial`` — engineered hot/cool alternation tuned to
  the §4.2 RC constants (:mod:`repro.scenarios.adversarial`), plus
  :func:`adversarial_search` for ranking instances by observed
  migrations and throttling.
"""

from repro.scenarios.registry import (
    MACHINE_PRESETS,
    GeneratorSpec,
    ScenarioFamily,
    expand_generated,
    family_by_name,
    family_names,
    generate_scenario,
    machine_dict,
    register_family,
)

# Importing the family modules registers them (import order is the
# catalog order shown by `repro scenarios` and docs/scenarios.md).
from repro.scenarios import arrivals as _arrivals  # noqa: F401
from repro.scenarios import sporadic as _sporadic  # noqa: F401
from repro.scenarios import adversarial as _adversarial  # noqa: F401
from repro.scenarios.adversarial import (
    TAU_S,
    SearchResult,
    adversarial_search,
)

__all__ = [
    "MACHINE_PRESETS",
    "TAU_S",
    "GeneratorSpec",
    "ScenarioFamily",
    "SearchResult",
    "adversarial_search",
    "expand_generated",
    "family_by_name",
    "family_names",
    "generate_scenario",
    "machine_dict",
    "register_family",
]
