"""Scenario registry and the generator DSL core.

A *scenario family* is a named, parameterized generator of runnable
scenarios: given a declarative :class:`GeneratorSpec` — family name,
parameter overrides, and a seed — it produces the exact JSON shape
:func:`repro.scenario.parse_scenario` accepts.  Everything downstream
(``sweep --family``, grid files, the tournament, the pinned perf/
validate matrices) enumerates *specs*, not hand-written task lists, so
arrival-process and adversarial workloads flow through the same cache,
journal, and oracle machinery as the static Table-2 mixes.

Determinism contract (tested property-style and across processes):

* generation draws randomness only from :meth:`GeneratorSpec.rng`, a
  Mersenne stream seeded from the SHA-256 of the spec's canonical JSON
  — the same spec + seed reproduces a byte-identical scenario dict in
  any process, regardless of hash randomization;
* parameters equal to the family default are normalized away, so two
  spellings of the same instance share one canonical form, one
  :meth:`GeneratorSpec.digest`, and therefore one result-cache entry;
* :meth:`GeneratorSpec.instantiate` round-trips the generated dict
  through JSON, so tuples, numpy scalars, or other non-JSON types fail
  loudly at generation time, never at cache-compare time.

Scenario JSON files opt in with a top-level ``generator`` key::

    {"generator": {"family": "poisson", "params": {"rate_per_s": 3.0}},
     "policy": "baseline", "duration_s": 20}

:func:`expand_generated` resolves the family, generates the base
scenario, then lets the file's remaining top-level keys override it —
and the generator seed defaults to the scenario ``seed``, which is
exactly the key ``sweep --seeds`` varies, giving deterministic
per-seed instance expansion with stable cache/journal identities.

Fleet eligibility is declared per family
(:attr:`ScenarioFamily.fleet_eligible`) and asserted in tests against
:func:`repro.fleet.check_fleet_supported` on built instances.
"""

from __future__ import annotations

import hashlib
import json
import math
import random
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Callable, Mapping

from repro.workloads.programs import PROGRAMS

#: Machine shorthand accepted by every family's ``machine`` parameter —
#: a flat string so specs stay scalar-valued and trivially hashable.
MACHINE_PRESETS: Mapping[str, Mapping[str, Any]] = MappingProxyType({
    "ibm_x445": {"preset": "ibm_x445", "smt": True},
    "ibm_x445-nosmt": {"preset": "ibm_x445", "smt": False},
    "smp2": {"preset": "smp", "n_cpus": 2},
    "smp4": {"preset": "smp", "n_cpus": 4},
    "smp8": {"preset": "smp", "n_cpus": 8},
    "cmp2x2": {"preset": "cmp", "packages": 2, "cores": 2, "smt": False},
})


def machine_dict(name: str) -> dict[str, Any]:
    """The ``machine`` scenario block for a preset shorthand."""
    try:
        return dict(MACHINE_PRESETS[name])
    except KeyError:
        raise ValueError(
            f"unknown machine shorthand {name!r}; expected one of "
            f"{', '.join(MACHINE_PRESETS)}"
        ) from None


def machine_n_cpus(name: str) -> int:
    """Logical CPU count of a preset — generators that pin affinity
    masks (``cpus_allowed``) need the topology before the scenario is
    parsed."""
    from repro.cpu.topology import MachineSpec

    spec = machine_dict(name)
    preset = spec["preset"]
    if preset == "ibm_x445":
        return MachineSpec.ibm_x445(smt=bool(spec.get("smt", True))).n_cpus
    if preset == "smp":
        return MachineSpec.smp(int(spec["n_cpus"])).n_cpus
    return MachineSpec.cmp(
        packages=int(spec.get("packages", 2)),
        cores=int(spec.get("cores", 2)),
        smt=bool(spec.get("smt", False)),
    ).n_cpus


# ---------------------------------------------------------------------------
# Parameter validation helpers shared by the family generators
# ---------------------------------------------------------------------------

def require_number(
    family: str,
    key: str,
    value: Any,
    *,
    minimum: float | None = None,
    maximum: float | None = None,
    positive: bool = False,
) -> float:
    """A finite float, optionally bounded; errors name family and key."""
    try:
        number = float(value)
    except (TypeError, ValueError):
        raise ValueError(f"{family}: {key} must be a number, got {value!r}")
    if not math.isfinite(number):
        raise ValueError(f"{family}: {key} must be finite, got {value!r}")
    if positive and not number > 0:
        raise ValueError(f"{family}: {key} must be positive, got {number}")
    if minimum is not None and number < minimum:
        raise ValueError(f"{family}: {key} must be >= {minimum}, got {number}")
    if maximum is not None and number > maximum:
        raise ValueError(f"{family}: {key} must be <= {maximum}, got {number}")
    return number


def require_int(
    family: str, key: str, value: Any, *, minimum: int = 0
) -> int:
    """An integer (bools rejected) of at least ``minimum``."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"{family}: {key} must be an integer, got {value!r}")
    if value < minimum:
        raise ValueError(f"{family}: {key} must be >= {minimum}, got {value}")
    return value


def require_programs(family: str, key: str, value: Any) -> list[str]:
    """A non-empty list of known program names."""
    if isinstance(value, str) or not hasattr(value, "__iter__"):
        raise ValueError(
            f"{family}: {key} must be a list of program names, got {value!r}"
        )
    names = list(value)
    if not names:
        raise ValueError(f"{family}: {key} must not be empty")
    for name in names:
        if name not in PROGRAMS:
            raise ValueError(
                f"{family}: {key} names unknown program {name!r}; "
                f"available: {sorted(PROGRAMS)}"
            )
    return names


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class ScenarioFamily:
    """One registered generator family.

    Attributes
    ----------
    name:
        Registry key, lowercase with dashes.
    description:
        One-line catalog entry (``docs/scenarios.md`` mirrors these).
    defaults:
        Every accepted parameter with its default value; a spec may
        only set keys listed here.
    generate:
        ``(params, rng) -> scenario dict``.  ``params`` is the defaults
        mapping with the spec's overrides merged in; ``rng`` is the
        spec-derived stream — the function must draw all randomness
        from it and must validate its parameters up front.
    fleet_eligible:
        Whether generated instances satisfy
        :func:`repro.fleet.check_fleet_supported` (noise pinned to
        zero, no throttling) — declared here, asserted by tests, and
        relied on by ``sweep --engine fleet`` packing.
    adversarial:
        Families engineered to maximize migrations/throttling rather
        than model a benign arrival process.
    """

    name: str
    description: str
    defaults: Mapping[str, Any]
    generate: Callable[[Mapping[str, Any], random.Random], dict]
    fleet_eligible: bool = False
    adversarial: bool = False


_REGISTRY: dict[str, ScenarioFamily] = {}


def register_family(family: ScenarioFamily) -> ScenarioFamily:
    """Add a family to the registry (import-time); duplicate names raise."""
    if family.name in _REGISTRY:
        raise ValueError(f"scenario family {family.name!r} already registered")
    _REGISTRY[family.name] = family
    return family


def family_names() -> tuple[str, ...]:
    """Registered family names, in registration order."""
    return tuple(_REGISTRY)


def family_by_name(name: str) -> ScenarioFamily:
    """Look up a family; ``ValueError`` lists the valid names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario family {name!r}; expected one of "
            f"{', '.join(_REGISTRY) or '(none registered)'}"
        ) from None


# ---------------------------------------------------------------------------
# Generator specs
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class GeneratorSpec:
    """One declarative scenario instance: family + params + seed.

    ``params`` holds only the *overrides* — values equal to the family
    default are dropped at construction so equivalent spellings share
    one canonical JSON form and one digest.
    """

    family: str
    params: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 1

    def __post_init__(self) -> None:
        definition = family_by_name(self.family)
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise ValueError(
                f"{self.family}: seed must be an integer, got {self.seed!r}"
            )
        unknown = set(self.params) - set(definition.defaults)
        if unknown:
            raise ValueError(
                f"{self.family}: unknown parameter(s) {sorted(unknown)}; "
                f"accepted: {sorted(definition.defaults)}"
            )
        normalized = {
            key: value
            for key, value in self.params.items()
            if value != definition.defaults[key]
        }
        object.__setattr__(self, "params", MappingProxyType(normalized))

    # -- identity ----------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """The canonical plain-data form (JSON round-trippable)."""
        out: dict[str, Any] = {"family": self.family, "seed": int(self.seed)}
        if self.params:
            out["params"] = {k: self.params[k] for k in sorted(self.params)}
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "GeneratorSpec":
        unknown = set(data) - {"family", "params", "seed"}
        if unknown:
            raise ValueError(f"unknown generator keys: {sorted(unknown)}")
        if "family" not in data:
            raise ValueError("generator spec needs a 'family' key")
        return cls(
            family=data["family"],
            params=dict(data.get("params") or {}),
            seed=int(data.get("seed", 1)),
        )

    def canonical_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def digest(self) -> str:
        """SHA-256 of the canonical form — the instance identity."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    # -- generation --------------------------------------------------------
    def rng(self) -> random.Random:
        """The spec-derived random stream all generation draws from."""
        digest = hashlib.sha256(
            b"repro-scenario-gen:" + self.canonical_json().encode()
        ).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    def merged_params(self) -> dict[str, Any]:
        defaults = dict(family_by_name(self.family).defaults)
        defaults.update(self.params)
        return defaults

    def instantiate(self) -> dict[str, Any]:
        """Generate the scenario dict (the ``parse_scenario`` shape).

        The result is passed through a JSON round-trip so any non-JSON
        value a generator leaks fails here, and byte comparisons of
        re-generated instances are exact.
        """
        definition = family_by_name(self.family)
        scenario = definition.generate(self.merged_params(), self.rng())
        scenario.setdefault("name", f"{self.family}-s{self.seed}")
        scenario.setdefault("seed", int(self.seed))
        try:
            rebuilt = json.loads(
                json.dumps(scenario, allow_nan=False)
            )
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"{self.family}: generated scenario is not JSON-clean: {exc}"
            ) from None
        if rebuilt != scenario:
            # json.dumps silently coerces tuples (and similar) to lists;
            # a generator that leaks them would break byte-determinism
            # guarantees elsewhere, so refuse rather than normalize.
            raise ValueError(
                f"{self.family}: generated scenario is not JSON-clean: "
                "values changed under a JSON round-trip"
            )
        return rebuilt

    def build(self):
        """Parse the generated dict into a runnable
        :class:`repro.scenario.Scenario`."""
        from repro.scenario import parse_scenario

        return parse_scenario(self.instantiate())


def generate_scenario(
    family: str, params: Mapping[str, Any] | None = None, seed: int = 1
) -> dict[str, Any]:
    """Convenience: instantiate ``family`` with ``params`` at ``seed``."""
    return GeneratorSpec(family, dict(params or {}), seed).instantiate()


def expand_generated(data: Mapping[str, Any]) -> dict[str, Any]:
    """Expand a scenario dict carrying a ``generator`` key.

    The generated scenario forms the base; every other top-level key of
    ``data`` overrides it (policy, duration, seed, cadence knobs...).
    The generator seed defaults to the dict's own ``seed`` — the key a
    sweep varies per job — so seed expansion is deterministic and the
    unexpanded dict remains the stable cache/journal identity.
    """
    gen = data["generator"]
    if not isinstance(gen, Mapping):
        raise ValueError(
            f"'generator' must be a mapping, got {type(gen).__name__}"
        )
    gen = dict(gen)
    if "seed" not in gen and "seed" in data:
        gen["seed"] = int(data["seed"])
    spec = GeneratorSpec.from_dict(gen)
    scenario = spec.instantiate()
    for key, value in data.items():
        if key != "generator":
            scenario[key] = value
    return scenario
