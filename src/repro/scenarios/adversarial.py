"""Thermal-adversarial workload family and the seeded instance search.

Chrobak et al.'s temperature-aware scheduling bounds (PAPERS.md) show
worst cases come from *engineered alternation*: heat a processor just
long enough that control must act, then go quiet so the action is
wasted, then repeat.  This family builds exactly that against the
paper's §4.2 thermal model and §4.4 balancer.

Two mechanisms compose:

* **Phase length vs the RC constant.**  The package heat sink is a
  first-order RC low-pass with time constant ``tau = R * C`` (~20 s at
  the paper's fitted 0.30 K/W x 66.7 J/K).  A hot phase much shorter
  than ``tau`` never trips the limit; much longer parks the system in
  steady throttling any policy handles the same way.  The adversary
  dwells for ``phase_scale * tau`` under a tight per-CPU budget with
  hlt throttling — long enough to bite, short enough that control
  never amortizes.

* **Rotating affinity.**  The §4.4 balancer's dual hotter-than
  condition (slow thermal + fast runqueue ratio, both with margins) is
  designed to damp ping-pong under *uniform* pressure, so waves are
  pinned (``cpus_allowed``) to one of ``rotate_groups`` contiguous CPU
  blocks, advancing each cycle.  The pinned hot population heats one
  block while the others cool, reversing every cycle; the unpinned
  cool fillers are what the balancer can move, and it sloshes them
  away from each wave and back again — sustained migration ping-pong
  on top of the periodic throttle storms.  Each wave's jobs exit
  (``respawn="none"``) and the next wave forks fresh ones, so
  placement decisions are never amortizable either.

Because instances enable hlt throttling they are **not** fleet
eligible (:func:`repro.fleet.check_fleet_supported` rejects throttle
scenarios); sweeps fall back to the scalar/pool path automatically.

:func:`adversarial_search` is the seeded helper from the issue: sample
``n_candidates`` parameter perturbations from one RNG, run each
instance briefly, and rank by observed migrations/s x throttle
fraction.  ``tools/find_adversarial.py`` wraps it on the command line;
the two worst offenders it found are pinned in ``repro.perf.scenarios``
and the tournament matrix with golden traces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Mapping

from repro.cpu.thermal import ThermalParams
from repro.scenarios.registry import (
    GeneratorSpec,
    ScenarioFamily,
    machine_dict,
    machine_n_cpus,
    register_family,
    require_int,
    require_number,
)
from repro.workloads.programs import PROGRAMS

#: The §4.2 package time constant the phase lengths are tuned against.
TAU_S: float = ThermalParams().r_k_per_w * ThermalParams().c_j_per_k


def _generate_thermal_adversarial(
    params: Mapping[str, Any], rng: random.Random
) -> dict[str, Any]:
    fam = "thermal-adversarial"
    machine = str(params["machine"])
    budget = require_number(fam, "budget_w", params["budget_w"],
                            positive=True, maximum=200.0)
    phase_scale = require_number(fam, "phase_scale", params["phase_scale"],
                                 minimum=0.05, maximum=2.0)
    duty = require_number(fam, "duty", params["duty"],
                          minimum=0.1, maximum=0.95)
    hot_jobs = require_int(fam, "hot_jobs", params["hot_jobs"], minimum=1)
    cool_fill = require_int(fam, "cool_fill", params["cool_fill"])
    rotate_groups = require_int(fam, "rotate_groups",
                                params["rotate_groups"], minimum=1)
    jitter = require_number(fam, "jitter", params["jitter"],
                            minimum=0.0, maximum=1.0)
    horizon = require_number(fam, "horizon_s", params["horizon_s"],
                             positive=True, maximum=3600.0)
    hot_program = str(params["hot_program"])
    cool_program = str(params["cool_program"])
    for key, name in (("hot_program", hot_program),
                      ("cool_program", cool_program)):
        if name not in PROGRAMS:
            raise ValueError(
                f"{fam}: {key} names unknown program {name!r}; "
                f"available: {sorted(PROGRAMS)}"
            )
    n_cpus = machine_n_cpus(machine)
    if rotate_groups > n_cpus:
        raise ValueError(
            f"{fam}: rotate_groups ({rotate_groups}) exceeds the "
            f"machine's {n_cpus} CPUs"
        )

    dwell = phase_scale * TAU_S
    cycle = dwell / duty
    # Contiguous CPU blocks the hot waves rotate through; block 0 also
    # absorbs any remainder CPUs.
    size = n_cpus // rotate_groups
    blocks = [
        list(range(i * size, (i + 1) * size if i < rotate_groups - 1
                   else n_cpus))
        for i in range(rotate_groups)
    ]

    # Persistent cool fillers: the movable population.  Unpinned, so
    # every balancing response to a wave is a filler migration the next
    # wave invalidates.
    tasks: list[dict[str, Any]] = [
        {"program": cool_program, "arrival_s": 0.0}
        for _ in range(cool_fill)
    ]
    t, wave = 0.0, 0
    while t < horizon:
        block = blocks[wave % rotate_groups]
        for _ in range(hot_jobs):
            offset = rng.uniform(0.0, jitter * dwell)
            entry: dict[str, Any] = {
                "program": hot_program,
                "arrival_s": round(t + offset, 6),
                "solo_job_s": round(dwell, 6),
                "respawn": "none",
            }
            if rotate_groups > 1:
                entry["cpus_allowed"] = block
            tasks.append(entry)
        t += cycle
        wave += 1

    return {
        "machine": machine_dict(machine),
        "max_power_per_cpu_w": budget,
        "throttle": {"enabled": True, "scope": "logical", "mode": "hlt"},
        "counter_jitter_sigma": 0.0,
        "power": {"noise_sigma": 0.0},
        "workload": {
            "name": (f"thermal-adv-p{phase_scale:g}-d{duty:g}"
                     f"-b{budget:g}-g{rotate_groups}"),
            "tasks": tasks,
        },
        "policy": "energy",
        "duration_s": horizon,
    }


register_family(ScenarioFamily(
    name="thermal-adversarial",
    description=(
        "Hot/cool phases tuned to the RC time constant (~20 s): waves "
        "of short-lived hot jobs pinned to rotating CPU blocks under a "
        "tight per-CPU budget with hlt throttling, engineered for "
        "migration ping-pong and throttle storms."
    ),
    defaults={
        "machine": "ibm_x445",
        "budget_w": 18.0,
        "phase_scale": 0.25,
        "duty": 0.6,
        "hot_jobs": 10,
        "cool_fill": 16,
        "rotate_groups": 2,
        "jitter": 0.1,
        "horizon_s": 40.0,
        "hot_program": "bitcnts",
        "cool_program": "memrw",
    },
    generate=_generate_thermal_adversarial,
    fleet_eligible=False,
    adversarial=True,
))


# ---------------------------------------------------------------------------
# Seeded adversarial search
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class SearchResult:
    """One evaluated candidate, ranked by :func:`adversarial_search`."""

    spec: GeneratorSpec
    migrations_per_s: float
    throttle_fraction: float

    @property
    def score(self) -> float:
        """Ranking key: both failure modes must fire to score high."""
        return self.migrations_per_s * self.throttle_fraction

    def to_dict(self) -> dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "digest": self.spec.digest(),
            "migrations_per_s": self.migrations_per_s,
            "throttle_fraction": self.throttle_fraction,
            "score": self.score,
        }


def _sample_params(rng: random.Random) -> dict[str, Any]:
    """One candidate parameter point, snapped to a coarse lattice so
    distinct draws that would behave identically share a canonical
    spec (and a cache entry)."""
    return {
        "budget_w": round(rng.uniform(14.0, 22.0) * 2) / 2,
        "phase_scale": round(rng.uniform(0.08, 0.5), 2),
        "duty": round(rng.uniform(0.4, 0.9), 2),
        "hot_jobs": rng.randrange(6, 15),
        "cool_fill": rng.randrange(8, 25),
        "rotate_groups": rng.choice([1, 2, 4]),
        "jitter": round(rng.uniform(0.0, 0.3), 2),
    }


def adversarial_search(
    n_candidates: int = 12,
    seed: int = 0,
    duration_s: float = 20.0,
    family: str = "thermal-adversarial",
) -> list[SearchResult]:
    """Sample, run, and rank adversarial candidates (worst first).

    One seeded RNG drives both the parameter draws and each candidate's
    generator seed, so the whole search — candidates, runs, ranking —
    is a pure function of ``(n_candidates, seed, duration_s)``.
    """
    from repro.scenario import parse_scenario

    if n_candidates < 1:
        raise ValueError("need at least one candidate")
    if not duration_s > 0:
        raise ValueError("duration_s must be positive")
    rng = random.Random(seed)
    results: list[SearchResult] = []
    for _ in range(n_candidates):
        spec = GeneratorSpec(
            family, _sample_params(rng), seed=rng.randrange(1, 10_000)
        )
        data = spec.instantiate()
        data["duration_s"] = duration_s
        result = parse_scenario(data).run()
        results.append(SearchResult(
            spec=spec,
            migrations_per_s=result.migrations() / duration_s,
            throttle_fraction=result.average_throttle_fraction(),
        ))
    results.sort(
        key=lambda r: (r.score, r.migrations_per_s, r.spec.digest()),
        reverse=True,
    )
    return results
