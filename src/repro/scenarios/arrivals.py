"""Open-loop arrival-process workload families (poisson, bursty).

The paper's experiments run *closed-loop* slots: a fixed population of
tasks where a new job starts the moment the previous one finishes.
Real systems see the opposite — an open loop where work arrives on its
own schedule, forks a fresh task, runs, and exits.  These families
model that with the existing churn machinery: every arrival becomes a
:class:`~repro.workloads.generator.TaskSpec` with ``respawn="none"``
(run one job through the fork/exec placement path (§4.6), then exit),
an arrival time drawn from the process, and a service time drawn from
an exponential.

``poisson`` is the memoryless open loop: exponential inter-arrivals at
a constant rate.  ``bursty`` modulates the rate sinusoidally —
a diurnal load curve compressed to simulation scale — via Lewis &
Shedler thinning: candidates are drawn at the peak rate and accepted
with probability ``rate(t)/rate_max``, which keeps the draw count (and
therefore determinism) a pure function of the spec stream.

Both families pin ``counter_jitter_sigma`` and power ``noise_sigma``
to zero and leave throttling off, so their instances are fleet-eligible
(:func:`repro.fleet.check_fleet_supported`) and sweeps over them can
pack onto the vectorized engine.
"""

from __future__ import annotations

import math
import random
from typing import Any, Mapping

from repro.scenarios.registry import (
    ScenarioFamily,
    machine_dict,
    register_family,
    require_int,
    require_number,
    require_programs,
)

#: The six Table-2 programs — the default population arriving work is
#: drawn from.
TABLE2_PROGRAMS: tuple[str, ...] = (
    "bitcnts", "memrw", "aluadd", "pushpop", "openssl", "bzip2",
)

#: Scenario keys shared by the open-loop families: paper budget, noise
#: pinned to zero (fleet eligibility + one fewer source of run-to-run
#: spread in sweep aggregates).
_OPEN_LOOP_BASE: Mapping[str, Any] = {
    "max_power_per_cpu_w": 60.0,
    "counter_jitter_sigma": 0.0,
    "power": {"noise_sigma": 0.0},
    "policy": "energy",
}


def _service_s(
    rng: random.Random, mean_job_s: float, min_job_s: float
) -> float:
    """One exponential service time, floored at ``min_job_s``."""
    return round(max(min_job_s, rng.expovariate(1.0 / mean_job_s)), 6)


def _churn_task(
    rng: random.Random,
    programs: list[str],
    arrival_s: float,
    mean_job_s: float,
    min_job_s: float,
) -> dict[str, Any]:
    """One fork-run-exit task for an arrival at ``arrival_s``."""
    return {
        "program": rng.choice(programs),
        "arrival_s": round(arrival_s, 6),
        "solo_job_s": _service_s(rng, mean_job_s, min_job_s),
        "respawn": "none",
    }


def _backlog_tasks(
    rng: random.Random, programs: list[str], backlog: int
) -> list[dict[str, Any]]:
    """Persistent closed-loop tasks keeping the machine from idling."""
    return [
        {"program": rng.choice(programs), "arrival_s": 0.0}
        for _ in range(backlog)
    ]


def _open_loop_scenario(
    name: str,
    machine: str,
    tasks: list[dict[str, Any]],
    horizon_s: float,
) -> dict[str, Any]:
    if not tasks:
        raise ValueError(
            f"{name}: generated no tasks — raise the rate, the horizon, "
            f"or the backlog"
        )
    scenario: dict[str, Any] = {"machine": machine_dict(machine)}
    scenario.update(_OPEN_LOOP_BASE)
    scenario["workload"] = {"name": name, "tasks": tasks}
    scenario["duration_s"] = horizon_s
    return scenario


# ---------------------------------------------------------------------------
# poisson: constant-rate open loop
# ---------------------------------------------------------------------------

def _generate_poisson(
    params: Mapping[str, Any], rng: random.Random
) -> dict[str, Any]:
    fam = "poisson"
    machine = str(params["machine"])
    rate = require_number(fam, "rate_per_s", params["rate_per_s"],
                          positive=True, maximum=1000.0)
    horizon = require_number(fam, "horizon_s", params["horizon_s"],
                             positive=True, maximum=3600.0)
    mean_job = require_number(fam, "mean_job_s", params["mean_job_s"],
                              positive=True)
    min_job = require_number(fam, "min_job_s", params["min_job_s"],
                             positive=True)
    backlog = require_int(fam, "backlog", params["backlog"])
    programs = require_programs(fam, "programs", params["programs"])

    tasks = _backlog_tasks(rng, programs, backlog)
    t = 0.0
    while True:
        t += rng.expovariate(rate)
        if t >= horizon:
            break
        tasks.append(_churn_task(rng, programs, t, mean_job, min_job))
    return _open_loop_scenario(
        f"poisson-r{rate:g}", machine, tasks, horizon
    )


register_family(ScenarioFamily(
    name="poisson",
    description=(
        "Open-loop Poisson arrivals: fork/exit task churn at a constant "
        "rate with exponential service times over a persistent backlog."
    ),
    defaults={
        "machine": "ibm_x445",
        "rate_per_s": 2.0,
        "mean_job_s": 4.0,
        "min_job_s": 0.5,
        "horizon_s": 30.0,
        "backlog": 2,
        "programs": list(TABLE2_PROGRAMS),
    },
    generate=_generate_poisson,
    fleet_eligible=True,
))


# ---------------------------------------------------------------------------
# bursty: sinusoidally modulated (diurnal) open loop
# ---------------------------------------------------------------------------

def _generate_bursty(
    params: Mapping[str, Any], rng: random.Random
) -> dict[str, Any]:
    fam = "bursty"
    machine = str(params["machine"])
    base = require_number(fam, "base_rate_per_s", params["base_rate_per_s"],
                          positive=True, maximum=1000.0)
    depth = require_number(fam, "depth", params["depth"],
                           minimum=0.0, maximum=1.0)
    period = require_number(fam, "period_s", params["period_s"],
                            positive=True)
    phase = require_number(fam, "phase", params["phase"],
                           minimum=0.0, maximum=1.0)
    horizon = require_number(fam, "horizon_s", params["horizon_s"],
                             positive=True, maximum=3600.0)
    mean_job = require_number(fam, "mean_job_s", params["mean_job_s"],
                              positive=True)
    min_job = require_number(fam, "min_job_s", params["min_job_s"],
                             positive=True)
    backlog = require_int(fam, "backlog", params["backlog"])
    programs = require_programs(fam, "programs", params["programs"])

    tasks = _backlog_tasks(rng, programs, backlog)
    rate_max = base * (1.0 + depth)
    t = 0.0
    while True:
        t += rng.expovariate(rate_max)
        if t >= horizon:
            break
        rate_t = base * (
            1.0 + depth * math.sin(2.0 * math.pi * (t / period + phase))
        )
        # Thinning: the acceptance draw happens for every candidate, so
        # the stream position depends only on the candidate count.
        if rng.random() * rate_max <= rate_t:
            tasks.append(_churn_task(rng, programs, t, mean_job, min_job))
    return _open_loop_scenario(
        f"bursty-r{base:g}-d{depth:g}", machine, tasks, horizon
    )


register_family(ScenarioFamily(
    name="bursty",
    description=(
        "Bursty/diurnal arrivals: a Poisson process whose rate swings "
        "sinusoidally (depth x base rate) over the period — rush hours "
        "and troughs compressed to simulation scale."
    ),
    defaults={
        "machine": "ibm_x445",
        "base_rate_per_s": 2.5,
        "depth": 0.8,
        "period_s": 20.0,
        "phase": 0.0,
        "mean_job_s": 3.0,
        "min_job_s": 0.5,
        "horizon_s": 40.0,
        "backlog": 2,
        "programs": list(TABLE2_PROGRAMS),
    },
    generate=_generate_bursty,
    fleet_eligible=True,
))
