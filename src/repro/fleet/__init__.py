"""Vectorized fleet engine: N independent machines per tick.

See :mod:`repro.fleet.engine` for the structure-of-arrays layout and
the eligibility/homogeneity rules, and ``docs/fleet_engine.md`` for the
user-facing guide.
"""

from repro.fleet.engine import (
    FLEET_CHECKPOINT_SCHEMA,
    FleetEngine,
    FleetStats,
    FleetUnsupported,
    check_fleet_supported,
)

__all__ = [
    "FLEET_CHECKPOINT_SCHEMA",
    "FleetEngine",
    "FleetStats",
    "FleetUnsupported",
    "check_fleet_supported",
]
