"""Structure-of-arrays fleet engine: N independent machines per tick.

A sweep grid is mostly *many copies of the same machine* run under
different seeds, policies and workloads.  :class:`FleetEngine` takes M
fully-constructed :class:`repro.system.System` instances that share a
machine topology and advances all of them per ``tick()`` by lifting the
hot per-CPU state into numpy arrays with a leading machine axis:

====================  =========  ==============================================
array                 shape      scalar counterpart
====================  =========  ==============================================
``counts``            (M, C, E)  ``System._counts_mx`` (PMC counter matrix)
``base_inc``          (M, C, E)  ``TickEnergyCache`` entry's base increments
``thermal``           (M, C)     ``MetricsBoard.thermal_w`` (EWMA column)
``true_t``/``est_t``  (M, P)     ``ThermalRC._temp_c`` (both RC networks)
``ts_rem``            (M, C)     current task's ``timeslice_remaining_ms``
``instr_rem``         (M, C)     current task's ``instructions_remaining``
``run_rem``           (M, C)     current task's ``run_remaining_s`` (inf=None)
====================  =========  ==============================================

The engine reuses the scalar fast path's *math* — the factored Eq. 1
energy expression, the ``TickEnergyCache``, ``rc_decay``/``thermal_alpha``
memos — broadcast across machines, and falls back to the member
``System``'s own methods (``_complete_job``, ``_block``, ``_fork``,
``policy.periodic_balance`` ...) for the rare control-flow events, so
per-machine results are bit-identical to running each machine alone.

Equivalence rules (each asserted by ``tests/test_fleet_equivalence.py``):

* every vector expression is an elementwise IEEE-754 double op with the
  same operands in the same order as the scalar path (``x*1.0 == x``,
  ``x+0.0 == x`` for the non-negative finite values involved, masked
  lanes discard garbage via ``np.where``);
* every RNG draw that produces an *observable* value happens inside the
  member System's own methods in the scalar order.  The one divergence:
  at ``noise_sigma == 0`` the scalar path still calls ``gauss(0.0, 0.0)``
  per package per tick (value exactly 0.0, multiplied in as
  ``clean * (1.0 + 0.0)``); the fleet skips the dead draw.  Results are
  bitwise unchanged, only the hidden position of the meter Mersenne
  streams differs — visible in nothing but raw checkpoint bytes.
* ``instructions_retired`` is folded per task slot as a lump sum instead
  of per tick; no exported summary or probe reads that dict, so the
  (at most 1-ulp) different dict values are invisible in all
  byte-compared outputs.

Eligibility (:func:`check_fleet_supported`) restricts members to the
configurations the arrays model: fast path, no validator/observer, no
throttling/DVFS, no energy containers, ``counter_jitter_sigma == 0``,
``power.noise_sigma == 0``.  Seeds, policies, workloads, thermal
parameters and cadences may differ per machine; the machine *topology*
and tick length must match across the fleet.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.ewma import thermal_alpha
from repro.cpu.thermal import rc_decay
from repro.sim.clock import Clock
from repro.system import System

#: Fleet checkpoint format identity (header + per-member System snapshots).
FLEET_CHECKPOINT_SCHEMA = "repro-fleet-checkpoint"
FLEET_CHECKPOINT_VERSION = 1

_INF = float("inf")


class FleetUnsupported(ValueError):
    """A System cannot be advanced by the fleet engine as configured."""


@dataclass
class FleetStats:
    """Aggregate bookkeeping counters of one or more fleet engines.

    Per-member observers are fleet-ineligible, so these coarse counters
    are what makes a fleet sweep *countable*: how many machine-ticks
    were advanced, how often array state was written back into member
    Systems (``flushes``), how often a slot's current task was reloaded
    into the arrays (``resyncs``), and how many housekeeping cadences
    actually fired a member call.  Pure telemetry — nothing reads them
    back into the simulation.
    """

    machine_ticks: int = 0
    batches: int = 0
    members: int = 0
    flushes: int = 0
    resyncs: int = 0
    housekeeping_fires: int = 0

    def merge(self, other: "FleetStats") -> None:
        self.machine_ticks += other.machine_ticks
        self.batches += other.batches
        self.members += other.members
        self.flushes += other.flushes
        self.resyncs += other.resyncs
        self.housekeeping_fires += other.housekeeping_fires

    def as_dict(self) -> dict:
        return {
            "machine_ticks": self.machine_ticks,
            "batches": self.batches,
            "members": self.members,
            "flushes": self.flushes,
            "resyncs": self.resyncs,
            "housekeeping_fires": self.housekeeping_fires,
        }


def check_fleet_supported(system: System) -> None:
    """Raise :class:`FleetUnsupported` unless ``system`` is fleet-eligible.

    The checks mirror exactly what the array layout models; anything
    else must run on the scalar engine (the runner falls back to the
    process pool for such jobs).
    """
    reasons = []
    if not system.fast_path:
        reasons.append("fast_path=False (scalar reference path requested)")
    if system.validator is not None:
        reasons.append("runtime validator installed")
    if system.observer is not None:
        reasons.append("observer installed")
    if system.fault_injector is not None:
        reasons.append("fault injector installed")
    if system.config.throttle.enabled:
        reasons.append("throttling/DVFS enabled")
    if system._has_power_caps:
        reasons.append("energy containers (power caps) in the workload")
    if system.config.counter_jitter_sigma != 0.0:
        reasons.append(
            f"counter_jitter_sigma={system.config.counter_jitter_sigma} != 0"
        )
    if system.config.power.noise_sigma != 0.0:
        reasons.append(f"power.noise_sigma={system.config.power.noise_sigma} != 0")
    if system.config.machine.threads_per_core > 2:
        reasons.append("threads_per_core > 2 (sibling map is single-valued)")
    if len({len(cpus) for cpus in system._pkg_cpus}) != 1:
        reasons.append("ragged package sizes (thermal reduction needs a matrix)")
    if reasons:
        raise FleetUnsupported(
            "system not fleet-eligible: " + "; ".join(reasons)
        )


class FleetEngine:
    """Advance M homogeneous-topology Systems one tick at a time.

    Parameters
    ----------
    systems:
        Fully-constructed, fleet-eligible members, all at the same
        simulated time.  The engine *aliases* their counter matrices
        (each member's ``_counts_mx`` becomes a view into the fleet
        tensor) and treats the per-CPU lists and thermal objects as a
        write-back cache: array state is flushed into the member before
        any member method that could read it runs, and re-synced after
        any member method that could write it runs.
    """

    def __init__(self, systems: list[System]) -> None:
        if not systems:
            raise ValueError("fleet needs at least one system")
        for sys_ in systems:
            check_fleet_supported(sys_)
        first = systems[0]
        for sys_ in systems[1:]:
            if sys_.config.machine != first.config.machine:
                raise FleetUnsupported(
                    "fleet members must share the machine topology; "
                    f"{sys_.config.machine} != {first.config.machine}"
                )
            if sys_.config.tick_ms != first.config.tick_ms:
                raise FleetUnsupported("fleet members must share tick_ms")
            if sys_._now_ms != first._now_ms:
                raise FleetUnsupported(
                    "fleet members must be at the same simulated time "
                    f"({sys_._now_ms} ms != {first._now_ms} ms)"
                )
            if sys_._counter_modulus != first._counter_modulus:
                raise FleetUnsupported("fleet members must share counter width")
        self.systems = list(systems)
        self.tick_ms = first.config.tick_ms
        self.clock = Clock.at(self.tick_ms, ticks=first._now_ms // self.tick_ms)
        #: Optional :class:`repro.obs.events.EventBus`; when set,
        #: :meth:`run_ticks` emits ``fleet_tick_progress`` events every
        #: :attr:`progress_every_ticks` ticks.  Telemetry only — the
        #: tick sequence is identical with or without a bus (the run is
        #: merely split into sub-chunks of the same consecutive ticks).
        self.event_bus = None
        self.stats = FleetStats(members=len(systems), batches=1)
        self._attach()

    #: Tick interval between ``fleet_tick_progress`` emissions when an
    #: event bus is attached.
    progress_every_ticks = 1000

    # ------------------------------------------------------------------
    # Attach: allocate the SoA block and pull state out of the members
    # ------------------------------------------------------------------
    def _attach(self) -> None:
        systems = self.systems
        M = len(systems)
        first = systems[0]
        C = first.n_cpus
        P = first.config.machine.n_packages
        E = first._counts_mx.shape[1]
        tick_s = self.tick_ms / 1000.0
        self.n_machines = M
        self.n_cpus = C
        self.n_packages = P

        f = lambda shape: np.zeros(shape, dtype=np.float64)
        # -- per-(machine, cpu) ------------------------------------------------
        self.ts_rem = np.full((M, C), _INF)
        self.run_rem = np.full((M, C), _INF)
        self.instr_rem = np.full((M, C), _INF)
        self.tot_busy = f((M, C))
        self.tot_energy = f((M, C))
        self.interval_e = f((M, C))
        self.interval_b = f((M, C))
        self.wob_rem = np.full((M, C), _INF)
        self.phase_rem = np.full((M, C), _INF)
        self.unit_nj = f((M, C))
        self.dyn_base = f((M, C))
        self.ipc = np.ones((M, C))
        self.cyc_valid = f((M, C))
        self.retired_acc = f((M, C))
        self.thermal = f((M, C))
        self.alpha = f((M, C))
        self.has_cur = np.zeros((M, C), dtype=bool)
        self.cold = np.zeros((M, C), dtype=bool)
        self.mixok = np.zeros((M, C), dtype=bool)
        self.busy_acc = np.zeros((M, C), dtype=np.int64)
        self.busy_base = np.zeros((M, C), dtype=np.int64)
        # -- per-(machine, cpu, event) -----------------------------------------
        self.base_inc = f((M, C, E))
        self.counts = f((M, C, E))
        # -- per-(machine, package) --------------------------------------------
        self.true_t = f((M, P))
        self.est_t = f((M, P))
        self.ambient = f((M, P))
        self.r_k = f((M, P))
        self.decay = f((M, P))
        self.est_pkg = f((M, P))
        self.pkg_energy = f((M, P))
        # -- per-machine columns ------------------------------------------------
        self.bw_ts = f((M, 1))
        self.cyc_solo = f((M, 1))
        self.cyc_smt = f((M, 1))
        self.smt = f((M, 1))
        self.halted_pkg = f((M, 1))
        self.base_act = f((M, 1))
        self.halted_share = f((M, 1))
        self.max_err = f(M)
        self.max_seen = f(M)
        self.wake_next = np.full(M, _INF)
        self.fork_next = np.full(M, _INF)
        self.total_base = [0] * M
        self.ticks_done = 0
        # -- python-side bookkeeping -------------------------------------------
        self.mix_ref: list[list[object]] = [[None] * C for _ in range(M)]
        self.acc_name: list[list[str | None]] = [[None] * C for _ in range(M)]
        self.rq_lists = [s._rq_list for s in systems]
        self.dispatch_set: set[int] = set(range(M))
        self.note_slots: list[tuple[int, int]] = []
        self.modulus = first._counter_modulus
        self.pkg_cpus = first._pkg_cpus
        self.pkg_of = np.asarray(first._pkg_of, dtype=np.intp)
        # single SMT sibling per cpu (threads_per_core <= 2); when SMT is
        # off, siblings_of() is empty and the sibling-busy mask stays False
        self.has_smt = first.config.machine.threads_per_core == 2
        self.sib = np.asarray(
            [
                (first._siblings[c][0] if first._siblings[c] else c)
                for c in range(C)
            ],
            dtype=np.intp,
        )
        self.sample_every = [s._sample_every for s in systems]
        self.bal_ticks = [s._balance_ticks for s in systems]
        self.idle_ticks = [s._idle_balance_ticks for s in systems]
        self.hot_ticks = [s._hot_check_ticks for s in systems]
        self.uniform = (
            len(set(self.bal_ticks)) == 1
            and len(set(self.idle_ticks)) == 1
            and len(set(self.hot_ticks)) == 1
        )
        self._fire_tables: dict[tuple[int, int, int], tuple] = {}
        # last-tick scratch, referenced by the flush methods
        self.est_power_a = f((M, C))
        self.dyn_power_a = f((M, C))
        self.thermal_in = f((M, C))
        self.running = np.zeros((M, C), dtype=bool)
        # preallocated per-tick scratch (no per-tick allocations on the
        # vector path); b* are bool masks, f* float workspaces
        self._sc_b1 = np.zeros((M, C), dtype=bool)
        self._sc_b2 = np.zeros((M, C), dtype=bool)
        self._sc_b3 = np.zeros((M, C), dtype=bool)
        self._sc_f1 = f((M, C))
        self._sc_f2 = f((M, C))
        self._sc_f3 = f((M, C))
        self._sc_cnt = f((M, C, E))
        self._sc_pkg_any = np.zeros((M, P), dtype=bool)
        self._sc_pkg_f1 = f((M, P))
        self._sc_pkg_f2 = f((M, P))
        self._sc_pkg_f3 = f((M, P))
        self._sc_pkg_f4 = f((M, P))
        # (P, k) cpu-index matrix when every package has the same number
        # of cpus (column j = j-th cpu of each package, ascending) —
        # lets _thermal reduce packages in k vector steps instead of a
        # python loop over P packages
        sizes = {len(cs) for cs in self.pkg_cpus}
        self.pkg_idx = (
            np.asarray(self.pkg_cpus, dtype=np.intp) if len(sizes) == 1 else None
        )
        # lane caches refreshed only when some slot's current changes
        # (dirty flag set by _resync_slot); constants for the all-busy
        # fast path; scalar gates for the wake/fork scans
        self._sib_busy = np.zeros((M, C), dtype=bool)
        self._cycles = f((M, C))
        self._est_base = f((M, C))
        self._smt_fac = np.ones((M, C))
        self._all_run = False
        self._top_dirty = True
        self._have_cold = False
        self._b_full = np.full((M, C), tick_s)
        self._ts_full = np.full((M, C), float(self.tick_ms))
        # counter-modulus amortisation: the remainder is the identity
        # while every counter is below the modulus; countdown is a safe
        # lower bound on ticks until any counter could reach it
        self._max_inc = 0.0
        self._mod_countdown = 0
        self._wake_min = _INF
        self._fork_min = _INF
        ses = set(self.sample_every)
        self._se0 = self.sample_every[0] if len(ses) == 1 else None

        # hot-trigger ceilings: should_trigger(c) can only be True when
        # the package heat exceeds budget - margin; +inf when the policy
        # cannot hot-migrate at all (baseline, or migration disabled)
        self.hot_ceiling = np.full((M, P), _INF)
        for m, sys_ in enumerate(systems):
            pol = sys_.policy
            migrator = getattr(pol, "hot_migrator", None)
            pol_cfg = getattr(pol, "config", None)
            if migrator is None or pol_cfg is None:
                continue
            if not getattr(pol_cfg, "enable_hot_migration", False):
                continue
            margin = migrator.config.trigger_margin_w
            for p in range(P):
                self.hot_ceiling[m, p] = (
                    sys_.metrics.package_max_power_w(self.pkg_cpus[p][0])
                    - margin
                )

        for m, sys_ in enumerate(systems):
            spec = sys_.config.machine
            power = sys_.config.power
            self.bw_ts[m, 0] = sys_.estimator.base_w * tick_s
            self.cyc_solo[m, 0] = sys_.exec_model.effective_cycles(tick_s, False)
            self.cyc_smt[m, 0] = sys_.exec_model.effective_cycles(tick_s, True)
            self.smt[m, 0] = sys_.exec_model.smt_thread_factor
            self.halted_pkg[m, 0] = power.halted_package_w
            self.base_act[m, 0] = power.base_active_w
            self.halted_share[m, 0] = sys_._halted_share_w
            self.total_base[m] = sys_._total_ticks
            for c in range(C):
                self.alpha[m, c] = thermal_alpha(sys_.metrics.tau_s[c], tick_s)
                self.busy_base[m, c] = sys_._busy_ticks[c]
            self.thermal[m, :] = sys_.metrics.thermal_w
            for p in range(P):
                rc = sys_.true_rc[p]
                self.true_t[m, p] = rc._temp_c
                self.est_t[m, p] = sys_.est_rc[p]._temp_c
                self.ambient[m, p] = rc._ambient_c
                self.r_k[m, p] = rc._r_k_per_w
                self.decay[m, p] = rc_decay(rc.params.tau_s, tick_s)
                self.est_pkg[m, p] = sys_._est_pkg_power[p]
                self.pkg_energy[m, p] = sys_._pkg_energy_j[p]
            self.max_err[m] = sys_.max_temp_err_k
            self.max_seen[m] = sys_.max_temp_seen_c
            # alias the member's counter matrix onto the fleet tensor
            self.counts[m, :, :] = sys_._counts_mx
            sys_._counts_mx = self.counts[m]
            for c, bank in enumerate(sys_.banks):
                bank.bind_row(self.counts[m, c])
            sys_._bank_rows = [self.counts[m, c] for c in range(C)]
            self._recompute_wake_next(m)
            self._recompute_fork_next(m)
            for c in range(C):
                self._resync_slot(m, c)
        # bw_ts * recip with recip = 0.5 (SMT-shared lanes), hoisted: the
        # product of two per-machine constants
        self.bw_ts_half = self.bw_ts * 0.5
        # constant (M, C)/(M, P) broadcast views, hoisted out of the tick
        # (np.broadcast_to is a python-level call; these never change)
        self._bw_ts_b = np.broadcast_to(self.bw_ts, (M, C))
        self._bw_ts_half_b = np.broadcast_to(self.bw_ts_half, (M, C))
        self._cyc_solo_b = np.broadcast_to(self.cyc_solo, (M, C))
        self._cyc_smt_b = np.broadcast_to(self.cyc_smt, (M, C))
        self._halted_share_b = np.broadcast_to(self.halted_share, (M, C))
        self._halted_pkg_b = np.broadcast_to(self.halted_pkg, (M, P))
        self._smt_b = np.broadcast_to(self.smt, (M, C))

    # ------------------------------------------------------------------
    # Slot <-> array synchronisation
    # ------------------------------------------------------------------
    def _resync_slot(self, m: int, c: int) -> None:
        """Load the current task of (machine, cpu) into the arrays."""
        self.stats.resyncs += 1
        self._top_dirty = True
        sys_ = self.systems[m]
        task = self.rq_lists[m][c].current
        self.interval_e[m, c] = sys_._interval_energy[c]
        self.interval_b[m, c] = sys_._interval_busy[c]
        name = task.name if task is not None else None
        if name != self.acc_name[m][c]:
            acc = self.retired_acc[m, c]
            old = self.acc_name[m][c]
            if acc != 0.0 and old is not None:
                retired = sys_.instructions_retired
                retired[old] = retired.get(old, 0.0) + float(acc)
            self.retired_acc[m, c] = 0.0
            self.acc_name[m][c] = name
        if task is None:
            self.has_cur[m, c] = False
            self.ts_rem[m, c] = _INF
            self.run_rem[m, c] = _INF
            self.instr_rem[m, c] = _INF
            self.tot_busy[m, c] = 0.0
            self.tot_energy[m, c] = 0.0
            self.wob_rem[m, c] = _INF
            self.phase_rem[m, c] = _INF
            self.mixok[m, c] = False
            self.cold[m, c] = False
            return
        self.has_cur[m, c] = True
        self.ts_rem[m, c] = task.timeslice_remaining_ms
        self.run_rem[m, c] = (
            _INF if task.run_remaining_s is None else task.run_remaining_s
        )
        self.instr_rem[m, c] = task.instructions_remaining
        self.tot_busy[m, c] = task.total_busy_s
        self.tot_energy[m, c] = task.total_energy_j
        beh = task.behavior
        self.wob_rem[m, c] = beh._wobble_remaining_s
        self.phase_rem[m, c] = beh._phase_remaining_s
        # force the per-slot handler next tick: it replicates the scalar
        # inline-vs-step decision against the live behavior object
        self.mixok[m, c] = False
        cold = task.cold_instructions_remaining > 0.0
        self.cold[m, c] = cold
        if cold:
            self._have_cold = True
        if task.ready_since_ms is not None:
            self.note_slots.append((m, c))

    def _writeback_slot(self, m: int, c: int) -> None:
        """Write the arrays' view of (m, c)'s current task back to it."""
        task = self.rq_lists[m][c].current
        if task is None:
            return
        task.timeslice_remaining_ms = float(self.ts_rem[m, c])
        rr = self.run_rem[m, c]
        task.run_remaining_s = None if math.isinf(rr) else float(rr)
        task.instructions_remaining = float(self.instr_rem[m, c])
        task.total_busy_s = float(self.tot_busy[m, c])
        task.total_energy_j = float(self.tot_energy[m, c])
        beh = task.behavior
        beh._wobble_remaining_s = float(self.wob_rem[m, c])
        beh._phase_remaining_s = float(self.phase_rem[m, c])

    def _resync_machine(self, m: int) -> None:
        for c in range(self.n_cpus):
            self._resync_slot(m, c)

    def _recompute_wake_next(self, m: int) -> None:
        blocked = self.systems[m]._blocked
        self.wake_next[m] = (
            min(entry[0] for entry in blocked) if blocked else _INF
        )
        self._wake_min = float(self.wake_next.min())

    def _recompute_fork_next(self, m: int) -> None:
        pending = [
            slot.spec.arrival_s * 1000.0
            for slot in self.systems[m].slots
            if not slot.forked
        ]
        self.fork_next[m] = min(pending) if pending else _INF
        self._fork_min = float(self.fork_next.min())

    # ------------------------------------------------------------------
    # Flushes: array -> member System state
    # ------------------------------------------------------------------
    def _flush_thermal(self, m: int) -> None:
        metrics = self.systems[m].metrics
        metrics.thermal_w[:] = self.thermal[m].tolist()
        metrics.thermal_epoch += 1

    def _flush_policy_view(self, m: int) -> None:
        """What the balancers / hot migrator / placement read."""
        sys_ = self.systems[m]
        self._flush_thermal(m)
        sys_._interval_energy[:] = self.interval_e[m].tolist()
        sys_._interval_busy[:] = self.interval_b[m].tolist()

    def _flush_sample_view(self, m: int) -> None:
        """What ``_sample_traces`` reads."""
        sys_ = self.systems[m]
        self._flush_thermal(m)
        for p in range(self.n_packages):
            sys_.true_rc[p]._temp_c = float(self.true_t[m, p])
            sys_.est_rc[p]._temp_c = float(self.est_t[m, p])
        sys_._est_pkg_power[:] = self.est_pkg[m].tolist()

    def _flush_machine(self, m: int) -> None:
        """Full write-back: results, probes, checkpoints all read this."""
        self.stats.flushes += 1
        sys_ = self.systems[m]
        sys_._now_ms = self.clock.now_ms
        self._flush_policy_view(m)
        self._flush_sample_view(m)
        sys_._est_power[:] = self.est_power_a[m].tolist()
        sys_._dyn_power[:] = self.dyn_power_a[m].tolist()
        sys_._thermal_in_w[:] = self.thermal_in[m].tolist()
        sys_._running[:] = [bool(x) for x in self.running[m]]
        sys_._pkg_temp_c[:] = self.true_t[m].tolist()
        sys_._pkg_est_temp_c[:] = self.est_t[m].tolist()
        sys_._pkg_energy_j[:] = self.pkg_energy[m].tolist()
        sys_._busy_ticks[:] = (self.busy_base[m] + self.busy_acc[m]).tolist()
        sys_._total_ticks = self.total_base[m] + self.ticks_done
        sys_.max_temp_err_k = float(self.max_err[m])
        sys_.max_temp_seen_c = float(self.max_seen[m])
        retired = sys_.instructions_retired
        for c in range(self.n_cpus):
            acc = self.retired_acc[m, c]
            name = self.acc_name[m][c]
            if acc != 0.0 and name is not None:
                retired[name] = retired.get(name, 0.0) + float(acc)
                self.retired_acc[m, c] = 0.0
            self._writeback_slot(m, c)

    def sync(self) -> None:
        """Flush every machine's array state into its System."""
        for m in range(self.n_machines):
            self._flush_machine(m)

    # ------------------------------------------------------------------
    # The fleet tick
    # ------------------------------------------------------------------
    def tick(self, clock: Clock) -> None:
        now_ms = clock.now_ms
        tick_s = clock.tick_s
        systems = self.systems
        M = self.n_machines
        # -- wakeups / forks (member methods; same draw order as scalar) ----
        if self._wake_min <= now_ms:
            for m in np.nonzero(self.wake_next <= now_ms)[0]:
                m = int(m)
                systems[m]._now_ms = now_ms
                systems[m]._wake_due(now_ms)
                self._recompute_wake_next(m)
                self.dispatch_set.add(m)
        if self._fork_min <= now_ms:
            for m in np.nonzero(self.fork_next <= now_ms)[0]:
                m = int(m)
                systems[m]._now_ms = now_ms
                self._flush_policy_view(m)  # placement reads metrics
                systems[m]._fork_due(now_ms)
                self._recompute_fork_next(m)
                self.dispatch_set.add(m)
        # -- dispatch ---------------------------------------------------------
        if self.dispatch_set:
            for m in sorted(self.dispatch_set):
                sys_ = systems[m]
                for c, rq in enumerate(self.rq_lists[m]):
                    if rq.current is None and rq.nr:
                        task = rq.pick_next(None)
                        if task is not None and task.timeslice_remaining_ms <= 0:
                            task.timeslice_remaining_ms = sys_._timeslice_for(task)
                        self._resync_slot(m, c)
            self.dispatch_set.clear()
        self._execute(clock, now_ms, tick_s)
        self._thermal(clock, tick_s)
        self._housekeeping(clock)
        ticks = clock.ticks
        se0 = self._se0
        if se0 is None:
            for m in range(M):
                se = self.sample_every[m]
                if ticks == 1 or ticks % se == 0:
                    systems[m]._now_ms = now_ms
                    self._flush_sample_view(m)
                    systems[m]._sample_traces(clock)
        elif ticks == 1 or ticks % se0 == 0:
            for m in range(M):
                systems[m]._now_ms = now_ms
                self._flush_sample_view(m)
                systems[m]._sample_traces(clock)

    # -- execution ----------------------------------------------------------
    def _execute(self, clock: Clock, now_ms: int, tick_s: float) -> None:
        systems = self.systems
        rq_lists = self.rq_lists
        # pending ready->running latency notes for freshly-picked tasks
        if self.note_slots:
            for m, c in self.note_slots:
                task = rq_lists[m][c].current
                if task is not None and task.ready_since_ms is not None:
                    task.note_dispatched(now_ms)
            self.note_slots.clear()
        self.ticks_done += 1
        r = self.has_cur  # throttling is fleet-ineligible: current => running
        if self._top_dirty:
            self._refresh_lane_cache()
        all_run = self._all_run
        np.copyto(self.running, r)
        self.busy_acc += r
        cycles = self._cycles
        # -- slots whose behavior must run in python --------------------------
        need = self._sc_b1
        scratch = self._sc_b2
        np.less_equal(self.wob_rem, 0.0, out=need)
        np.less_equal(self.phase_rem, tick_s, out=scratch)
        np.logical_or(need, scratch, out=need)
        np.logical_not(self.mixok, out=scratch)
        np.logical_or(need, scratch, out=need)
        if not all_run:
            np.logical_and(need, r, out=need)
        stepped = need  # mutated in place below is fine: need not reused
        if need.any():
            for m, c in zip(*np.nonzero(need)):
                m = int(m)
                c = int(c)
                sys_ = systems[m]
                task = rq_lists[m][c].current
                beh = task.behavior
                beh._wobble_remaining_s = float(self.wob_rem[m, c])
                beh._phase_remaining_s = float(self.phase_rem[m, c])
                # exact scalar fast-path branch (system._execute_fast)
                if (
                    beh._wobble_remaining_s > 0.0
                    and beh._phase_remaining_s > tick_s
                    and beh._cached_mix is not None
                ):
                    mix = beh._cached_mix
                    beh._phase_remaining_s -= tick_s
                    beh._wobble_remaining_s -= tick_s
                else:
                    mix = beh.step(tick_s)
                self.wob_rem[m, c] = beh._wobble_remaining_s
                self.phase_rem[m, c] = beh._phase_remaining_s
                cyc = float(cycles[m, c])
                cache = sys_._tick_cache
                entry = cache.cache.get((id(mix), cyc))
                if entry is None or entry[0] is not mix:
                    entry = cache.miss(mix, cyc)
                self.mix_ref[m][c] = mix
                self.base_inc[m, c, :] = entry[1]
                mi = float(entry[1].max())
                if mi > self._max_inc:
                    self._max_inc = mi
                    self._mod_countdown = 0
                self.unit_nj[m, c] = entry[2]
                self.dyn_base[m, c] = entry[3]
                self.ipc[m, c] = mix.ipc
                self.cyc_valid[m, c] = cyc
                # A phase transition inside step() leaves _cached_mix None
                # (this tick still ran the old mix); the scalar re-enters
                # step() next tick to pick up the new phase's mix, so the
                # handler must run again then.
                self.mixok[m, c] = beh._cached_mix is not None
        # -- slots whose SMT sibling state changed: refresh the entry only ----
        notstep = self._sc_b2
        np.logical_not(stepped, out=notstep)
        stale = self._sc_b3
        np.not_equal(cycles, self.cyc_valid, out=stale)
        np.logical_and(stale, notstep, out=stale)
        if not all_run:
            np.logical_and(stale, r, out=stale)
        if stale.any():
            for m, c in zip(*np.nonzero(stale)):
                m = int(m)
                c = int(c)
                mix = self.mix_ref[m][c]
                cyc = float(cycles[m, c])
                cache = systems[m]._tick_cache
                entry = cache.cache.get((id(mix), cyc))
                if entry is None or entry[0] is not mix:
                    entry = cache.miss(mix, cyc)
                self.base_inc[m, c, :] = entry[1]
                mi = float(entry[1].max())
                if mi > self._max_inc:
                    self._max_inc = mi
                    self._mod_countdown = 0
                self.unit_nj[m, c] = entry[2]
                self.dyn_base[m, c] = entry[3]
                self.cyc_valid[m, c] = cyc
        # -- universal vector math (identical expressions to _execute_fast,
        # masking spelled as *mask which is bit-exact on finite values;
        # on an all-busy fleet the masks are all-ones and are skipped) -------
        # est_e = bw_ts * recip + unit_nj * 1e-9, recip in {1.0, 0.5};
        # the bw_ts * recip half lives in the lane cache (_est_base)
        est_e = self._sc_f1
        np.multiply(self.unit_nj, 1e-9, out=est_e)
        est_e += self._est_base
        # dyn = dyn_base, SMT-contended lanes scaled by the thread factor
        dynp = self.dyn_power_a
        np.multiply(self.dyn_base, self._smt_fac, out=dynp)
        if all_run:
            e_masked = est_e
            b_masked = self._b_full
            self.counts += self.base_inc
        else:
            dynp *= r
            e_masked = self._sc_f2
            np.multiply(est_e, r, out=e_masked)
            b_masked = self._sc_f3
            np.multiply(r, tick_s, out=b_masked)
            self.counts += np.multiply(
                self.base_inc, r[..., None], out=self._sc_cnt
            )
        # counters stay below the modulus for _mod_countdown more ticks,
        # over which the per-tick remainder is the bitwise identity
        self._mod_countdown -= 1
        if self._mod_countdown <= 0:
            self.counts %= self.modulus
            mx = float(self.counts.max())
            self._mod_countdown = max(
                1, int((self.modulus - mx) / max(self._max_inc, 1.0)) - 2
            )
        self.interval_e += e_masked
        self.tot_energy += e_masked
        np.divide(e_masked, tick_s, out=self.est_power_a)
        self.interval_b += b_masked
        self.tot_busy += b_masked
        self.run_rem -= b_masked
        instr_step = self._sc_f3  # b_masked consumed by the updates above
        np.multiply(cycles, self.ipc, out=instr_step)
        if self._have_cold:
            live = self._sc_b3  # stale already consumed
            np.logical_not(self.cold, out=live)
            if not all_run:
                np.logical_and(live, r, out=live)
            instr_step *= live
        elif not all_run:
            instr_step *= r
        self.retired_acc += instr_step
        self.instr_rem -= instr_step
        if all_run:
            self.ts_rem -= self._ts_full
        else:
            tmp = self._sc_f2
            np.multiply(r, float(clock.tick_ms), out=tmp)
            self.ts_rem -= tmp
            np.logical_and(notstep, r, out=notstep)
        timer_dec = self._sc_f2
        np.multiply(notstep, tick_s, out=timer_dec)
        self.wob_rem -= timer_dec
        self.phase_rem -= timer_dec
        # -- cache-cold slots retire through the warmup model -----------------
        if self._have_cold:
            cold_now = self._sc_b2  # notstep consumed by timer_dec above
            np.logical_and(r, self.cold, out=cold_now)
            if cold_now.any():
                for m, c in zip(*np.nonzero(cold_now)):
                    m = int(m)
                    c = int(c)
                    task = rq_lists[m][c].current
                    instructions = float(cycles[m, c]) * float(self.ipc[m, c])
                    executed = systems[m]._apply_cache_warmup(task, instructions)
                    self.retired_acc[m, c] += executed
                    self.instr_rem[m, c] -= executed
                    if task.cold_instructions_remaining <= 0.0:
                        self.cold[m, c] = False
        # -- consequences: job end, block, timeslice expiry -------------------
        cons = self._sc_b1
        scratch = self._sc_b2
        np.less_equal(self.instr_rem, 0.0, out=cons)
        np.less_equal(self.run_rem, 0.0, out=scratch)
        np.logical_or(cons, scratch, out=cons)
        np.less_equal(self.ts_rem, 0.0, out=scratch)
        np.logical_or(cons, scratch, out=cons)
        if not all_run:
            np.logical_and(cons, r, out=cons)
        if cons.any():
            for m, c in zip(*np.nonzero(cons)):
                self._consequences(int(m), int(c), clock)

    def _refresh_lane_cache(self) -> None:
        """Recompute per-lane quantities that depend only on which slots
        hold a current task: the SMT sibling-busy mask, effective cycles,
        the static half of the energy estimate (bw_ts * recip), and the
        SMT dynamic-power factor.  Only runs after some slot's current
        changed (_resync_slot raises the dirty flag)."""
        r = self.has_cur
        sib = self._sib_busy
        if self.has_smt:
            np.take(r, self.sib, axis=1, out=sib)
            np.logical_and(sib, r, out=sib)
        else:
            sib[:] = False
        np.copyto(self._cycles, self._cyc_solo_b)
        np.copyto(self._cycles, self._cyc_smt_b, where=sib)
        np.copyto(self._est_base, self._bw_ts_b)
        np.copyto(self._est_base, self._bw_ts_half_b, where=sib)
        self._smt_fac.fill(1.0)
        np.copyto(self._smt_fac, self._smt_b, where=sib)
        self._all_run = bool(r.all())
        self._top_dirty = False

    def _consequences(self, m: int, c: int, clock: Clock) -> None:
        """Fold (m, c) back to objects and run the scalar control flow."""
        sys_ = self.systems[m]
        sys_._now_ms = clock.now_ms
        rq = self.rq_lists[m][c]
        task = rq.current
        job_done = self.instr_rem[m, c] <= 0.0
        self._writeback_slot(m, c)
        sys_._interval_energy[c] = float(self.interval_e[m, c])
        sys_._interval_busy[c] = float(self.interval_b[m, c])
        if job_done:
            task.jobs_completed += 1  # Task.retire()'s side effect
            respawn = task.spec.respawn if task.spec else "restart_same"
            if respawn != "restart_same":
                # exit path runs _end_interval and possibly _fork/placement
                self._flush_policy_view(m)
            sys_._complete_job(task, clock)
            if rq.current is not task:  # task exited (fork_new/none)
                self._resync_slot(m, c)
                self.dispatch_set.add(m)
                return
        if task.run_remaining_s is not None and task.run_remaining_s <= 0:
            self._flush_policy_view(m)  # _end_interval reads intervals
            sys_._block(task, clock)
            blocked = sys_._blocked
            wake_ms = blocked[-1][0]
            if wake_ms < self.wake_next[m]:
                self.wake_next[m] = wake_ms
            if wake_ms < self._wake_min:
                self._wake_min = wake_ms
            self._resync_slot(m, c)
            self.dispatch_set.add(m)
            return
        if task.timeslice_remaining_ms <= 0:
            sys_._end_interval(c, task)
            nxt = rq.pick_next(None)
            if nxt is not None and nxt.timeslice_remaining_ms <= 0:
                nxt.timeslice_remaining_ms = sys_._timeslice_for(nxt)
            self._resync_slot(m, c)
            return
        self._resync_slot(m, c)  # restart_same refreshed instructions

    # -- thermal -------------------------------------------------------------
    def _thermal(self, clock: Clock, tick_s: float) -> None:
        r = self.running
        M = self.n_machines
        idx = self.pkg_idx  # (P, k): column j = j-th cpu of each package
        any_run = self._sc_pkg_any
        dyn_pkg = self._sc_pkg_f1
        est_pkg_sum = self._sc_pkg_f2
        any_run[:] = False
        dyn_pkg[:] = 0.0
        est_pkg_sum[:] = 0.0
        # per-package sums, accumulated cpu-by-cpu in the scalar's
        # ascending order (dyn/est power rows are already 0.0 on halted
        # lanes, so the masked adds are the plain column values)
        for j in range(idx.shape[1]):
            cols = idx[:, j]
            any_run |= r[:, cols]
            dyn_pkg += self.dyn_power_a[:, cols]
            est_pkg_sum += self.est_power_a[:, cols]
        all_halted = self._sc_pkg_any  # alias note: negated in place below
        np.logical_not(any_run, out=all_halted)
        # noise_sigma == 0: the scalar's gauss(0.0, 0.0) draw is exactly
        # 0.0 and clean * (1.0 + 0.0) is bitwise clean — skip the draw
        true_w_pkg = self._sc_pkg_f3
        np.add(dyn_pkg, self.base_act, out=true_w_pkg)
        np.copyto(true_w_pkg, self._halted_pkg_b, where=all_halted)
        target = self._sc_pkg_f4
        np.multiply(true_w_pkg, self.r_k, out=target)
        target += self.ambient
        self.true_t -= target
        self.true_t *= self.decay
        self.true_t += target
        est_w_pkg = self.est_pkg  # reused as this tick's estimate storage
        np.copyto(est_w_pkg, est_pkg_sum)
        np.copyto(est_w_pkg, self._halted_pkg_b, where=all_halted)
        np.multiply(est_w_pkg, self.r_k, out=target)
        target += self.ambient
        self.est_t -= target
        self.est_t *= self.decay
        self.est_t += target
        # frequency-aware Eq. 1 ledger: elementwise est_w * tick_s then
        # add — the same two IEEE ops as the scalar's `+= est_w * tick_s`
        # (target/f4 is free until the err computation rebuilds it)
        np.multiply(est_w_pkg, tick_s, out=target)
        self.pkg_energy += target
        # restore any_run for the thermal-input cascade below
        np.logical_not(all_halted, out=any_run)
        err = target  # f4 free after the est_t update
        np.subtract(self.est_t, self.true_t, out=err)
        np.abs(err, out=err)
        np.maximum(self.max_err, err.max(axis=1), out=self.max_err)
        np.maximum(self.max_seen, self.true_t.max(axis=1), out=self.max_seen)
        # per-logical thermal input (same values as the scalar's where
        # cascade: est_power_a is already 0.0 on non-running lanes)
        pkg_halted = self._sc_b1
        np.take(any_run, self.pkg_of, axis=1, out=pkg_halted)
        np.logical_not(pkg_halted, out=pkg_halted)
        np.copyto(self.thermal_in, self.est_power_a)
        np.copyto(self.thermal_in, self._halted_share_b, where=pkg_halted)
        # estimation-error accrual on each machine's sample ticks, package
        # ascending, accumulated on the member (scalar summation order)
        ticks = clock.ticks
        if self._se0 is None or ticks % self._se0 == 0:
            for m in range(M):
                if ticks % self.sample_every[m] != 0:
                    continue
                sys_ = self.systems[m]
                for pkg in range(self.n_packages):
                    if any_run[m, pkg]:
                        true_w = float(true_w_pkg[m, pkg])
                        sys_._est_err_sum += (
                            abs(float(est_w_pkg[m, pkg]) - true_w) / true_w
                        )
                        sys_._est_err_n += 1
        # EWMA advance: identical expression to ewma_update_batch
        ew = self._sc_f1
        np.subtract(self.thermal_in, self.thermal, out=ew)
        ew *= self.alpha
        self.thermal += ew

    # -- housekeeping --------------------------------------------------------
    def _fire_table(self, bt: int, it: int, ht: int) -> tuple:
        key = (bt, it, ht)
        cached = self._fire_tables.get(key)
        if cached is not None:
            return cached
        C = self.n_cpus
        bal = [
            frozenset(c for c in range(C) if (rr + 3 * c) % bt == 0)
            for rr in range(bt)
        ]
        idle = [
            frozenset(c for c in range(C) if (rr + c) % it == 0)
            for rr in range(it)
        ]
        hot = [
            frozenset(c for c in range(C) if (rr + c) % ht == 0)
            for rr in range(ht)
        ]
        # idle-residue cpu indices as arrays: the idle-only tick uses
        # them to column-slice has_cur and skip machines whose idle
        # candidates are all occupied (nr == 0 implies current is None,
        # so the slice test over-approximates the fire condition and
        # never skips a machine the scalar loop would act on)
        idle_cols = [
            np.fromiter(sorted(cands), dtype=np.intp, count=len(cands))
            for cands in idle
        ]
        merged_sets = {}
        table = (bal, idle, hot, idle_cols, merged_sets)
        self._fire_tables[key] = table
        return table

    def _housekeeping(self, clock: Clock) -> None:
        ticks = clock.ticks
        M = self.n_machines
        if self.uniform:
            bt, it, ht = self.bal_ticks[0], self.idle_ticks[0], self.hot_ticks[0]
            bal_t, idle_t, hot_t, idle_cols, merged_sets = self._fire_table(
                bt, it, ht
            )
            rb, ri, rh = ticks % bt, ticks % it, ticks % ht
            balset = bal_t[rb]
            idleset = idle_t[ri]
            hotset = hot_t[rh]
            if not balset:
                # No balance pass anywhere: gate idle and hot candidates
                # per machine with over-approximating vector tests, so
                # machines where provably nothing can fire skip the
                # python call entirely.  Idle: a candidate CPU must be
                # unoccupied (nr == 0 implies current is None).  Hot:
                # should_trigger() is a pure read that is False whenever
                # the candidate's package heat is at or below the
                # trigger ceiling, whatever the queue length.
                if idleset:
                    cols = idle_cols[ri]
                    idle_need = ~self.has_cur[:, cols].all(axis=1)
                else:
                    idle_need = None
                if hotset:
                    hot_need = self._hot_possible(hotset)
                    need = (
                        hot_need if idle_need is None
                        else (hot_need | idle_need)
                    )
                else:
                    if idle_need is None:
                        return
                    need = idle_need
                if not need.any():
                    return
                now_ms = clock.now_ms
                key = (rb, ri, rh)
                merged = merged_sets.get(key)
                if merged is None:
                    merged = merged_sets[key] = sorted(idleset | hotset)
                for m in np.nonzero(need)[0]:
                    self._housekeep_machine(
                        int(m), merged, balset, idleset, hotset, now_ms
                    )
                return
            now_ms = clock.now_ms
            merged = sorted(balset | idleset | hotset)
            for m in range(M):
                self._housekeep_machine(
                    m, merged, balset, idleset, hotset, now_ms
                )
        else:
            now_ms = clock.now_ms
            for m in range(M):
                bal_t, idle_t, hot_t, _cols, _msets = self._fire_table(
                    self.bal_ticks[m], self.idle_ticks[m], self.hot_ticks[m]
                )
                balset = bal_t[ticks % self.bal_ticks[m]]
                idleset = idle_t[ticks % self.idle_ticks[m]]
                hotset = hot_t[ticks % self.hot_ticks[m]]
                if not balset and not hotset and not idleset:
                    continue
                merged = sorted(balset | idleset | hotset)
                self._housekeep_machine(m, merged, balset, idleset, hotset, now_ms)

    def _hot_possible(self, hotset) -> np.ndarray:
        """(M,) mask: could should_trigger() pass on any hot candidate?

        Package heat is summed left-associated in ascending-CPU order —
        bit-identical to ``MetricsBoard.package_thermal_sum_w`` — and
        compared against the precomputed trigger ceiling.  False means
        every candidate's check is a no-op read, so the machine's
        housekeeping call can be skipped without changing any state.
        """
        thermal = self.thermal
        need = None
        for p in {int(self.pkg_of[c]) for c in hotset}:
            cpus = self.pkg_cpus[p]
            acc = thermal[:, cpus[0]].copy()
            for c in cpus[1:]:
                acc += thermal[:, c]
            mask = acc > self.hot_ceiling[:, p]
            need = mask if need is None else (need | mask)
        return need

    def _housekeep_machine(self, m, merged, balset, idleset, hotset, now_ms) -> None:
        self.stats.housekeeping_fires += 1
        rqs = self.rq_lists[m]
        # flush only if some call will read the metrics board: a balance
        # fires, or a hot check passes its single-task pre-gate
        need_flush = False
        for c in merged:
            if c in balset or (c in idleset and rqs[c].nr == 0):
                need_flush = True
                break
            if c in hotset and rqs[c].nr == 1:
                need_flush = True
                break
        if not need_flush:
            # hot checks on multi/zero-task queues read nothing and change
            # nothing; run them anyway to keep the call sequence identical
            policy = self.systems[m].policy
            for c in merged:
                if c in hotset:
                    policy.check_active_migration(c)
            return
        # balancers read the thermal board and task profiles, never the
        # interval lists (_end_interval is per-cpu and only reachable via
        # a hot migration of a current task, handled below)
        self._flush_thermal(m)
        sys_ = self.systems[m]
        sys_._now_ms = now_ms  # migration event records read the member clock
        currents = [rq.current for rq in rqs]
        policy = sys_.policy
        moved = 0
        for c in merged:  # same c-ascending order as System._housekeeping
            if c in balset or (rqs[c].nr == 0 and c in idleset):
                moved += policy.periodic_balance(c)
            if c in hotset:
                # Hot migration is the only path that can move a *current*
                # task (single-task queue).  Balance moves queued tasks,
                # whose objects are already authoritative.  Write the
                # candidate slot back first so the migrated object carries
                # this tick's post-execute timers (the nr gate is live:
                # an earlier balance in this pass may have drained the
                # queue to one task).
                rq = rqs[c]
                if rq.nr == 1 and rq.current is not None:
                    self._writeback_slot(m, c)
                    sys_._interval_energy[c] = float(self.interval_e[m, c])
                    sys_._interval_busy[c] = float(self.interval_b[m, c])
                if policy.check_active_migration(c):
                    moved += 1
        if moved:
            # Reload only the slots whose current changed (migration of a
            # running task, queue drained, ...).  Untouched slots keep the
            # arrays authoritative — resyncing them from their stale task
            # objects would erase this tick's decrements.
            for c in range(self.n_cpus):
                if rqs[c].current is not currents[c]:
                    self._resync_slot(m, c)
            self.dispatch_set.add(m)

    # ------------------------------------------------------------------
    # Run helpers (Engine-compatible surface)
    # ------------------------------------------------------------------
    def run_ticks(self, n_ticks: int) -> None:
        if n_ticks < 0:
            raise ValueError(f"n_ticks must be non-negative, got {n_ticks}")
        clock = self.clock
        bus = self.event_bus
        if bus is None:
            for _ in range(n_ticks):
                clock.advance()
                self.tick(clock)
        else:
            # Same consecutive tick sequence, merely split into
            # sub-chunks so progress events flow while the run is live.
            done = 0
            while done < n_ticks:
                chunk = min(self.progress_every_ticks, n_ticks - done)
                for _ in range(chunk):
                    clock.advance()
                    self.tick(clock)
                done += chunk
                bus.emit(
                    "fleet_tick_progress",
                    ticks=chunk,
                    machines=self.n_machines,
                    ticks_total=clock.ticks,
                )
        self.stats.machine_ticks += n_ticks * self.n_machines

    def run_until_tick(self, total_ticks: int) -> None:
        remaining = total_ticks - self.clock.ticks
        if remaining > 0:
            self.run_ticks(remaining)

    def run_for(self, seconds: float) -> None:
        if seconds <= 0:
            raise ValueError(f"duration must be positive, got {seconds}")
        self.run_ticks(self.clock.ticks_for_ms(seconds * 1000.0))

    def results(self, duration_s: float) -> list:
        """Flush everything and wrap each member in a SimulationResult."""
        from repro.api import SimulationResult

        self.sync()
        return [
            SimulationResult(system=sys_, duration_s=duration_s)
            for sys_ in self.systems
        ]

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A versioned fleet checkpoint: header + per-member snapshots.

        Restoring (:meth:`restore`) rebuilds every member System and
        re-attaches a fresh fleet; the continued run is bit-identical to
        the uninterrupted one (asserted by tests/test_fleet_checkpoint.py).
        """
        self.sync()
        return {
            "schema": f"{FLEET_CHECKPOINT_SCHEMA}/{FLEET_CHECKPOINT_VERSION}",
            "version": FLEET_CHECKPOINT_VERSION,
            "tick_ms": self.tick_ms,
            "now_ms": self.clock.now_ms,
            "ticks": self.clock.ticks,
            "n_machines": self.n_machines,
            "members": [sys_.snapshot() for sys_ in self.systems],
        }

    @classmethod
    def restore(cls, snapshot: dict) -> "FleetEngine":
        schema = snapshot.get("schema")
        expected = f"{FLEET_CHECKPOINT_SCHEMA}/{FLEET_CHECKPOINT_VERSION}"
        if schema != expected:
            raise ValueError(
                f"unsupported fleet checkpoint schema {schema!r}; this build "
                f"reads {expected!r}"
            )
        systems = [System.restore(member) for member in snapshot["members"]]
        return cls(systems)

