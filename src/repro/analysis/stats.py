"""Experiment statistics: the quantities the paper's tables report."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.timeseries import band_width
from repro.api import SimulationResult


@dataclass(frozen=True, slots=True)
class PhaseChangeStats:
    """Table 1 statistics for one program.

    ``max_change`` / ``avg_change`` are relative changes of power between
    successive timeslices: ``|P_i - P_{i-1}| / P_{i-1}``.
    """

    program: str
    max_change: float
    avg_change: float
    n_slices: int


def phase_change_stats(program: str, powers_w: np.ndarray) -> PhaseChangeStats:
    """Compute Table 1 statistics from a sequence of timeslice powers."""
    powers_w = np.asarray(powers_w, dtype=float)
    if len(powers_w) < 2:
        raise ValueError("need at least two timeslices")
    if np.any(powers_w <= 0):
        raise ValueError("timeslice powers must be positive")
    changes = np.abs(np.diff(powers_w)) / powers_w[:-1]
    return PhaseChangeStats(
        program=program,
        max_change=float(changes.max()),
        avg_change=float(changes.mean()),
        n_slices=len(powers_w),
    )


@dataclass(frozen=True, slots=True)
class ThrottleRow:
    """One row of Table 3."""

    cpu: int
    disabled_pct: float
    enabled_pct: float


def throttle_table(
    baseline: SimulationResult, energy: SimulationResult, min_pct: float = 0.5
) -> list[ThrottleRow]:
    """Per-CPU throttling percentages for two runs (Table 3).

    CPUs throttled below ``min_pct`` percent in both runs are omitted,
    as the paper omits CPUs "that had to be throttled in neither run".
    """
    n = baseline.system.n_cpus
    rows = []
    for cpu in range(n):
        off = baseline.throttle_fraction(cpu) * 100.0
        on = energy.throttle_fraction(cpu) * 100.0
        if off >= min_pct or on >= min_pct:
            rows.append(ThrottleRow(cpu=cpu, disabled_pct=off, enabled_pct=on))
    return rows


def throughput_gain(baseline: SimulationResult, energy: SimulationResult) -> float:
    """Relative throughput increase of the energy-aware run."""
    base = baseline.fractional_jobs()
    if base <= 0:
        raise ValueError("baseline made no progress")
    return energy.fractional_jobs() / base - 1.0


def curve_band(result: SimulationResult, skip_s: float = 60.0) -> dict[str, float]:
    """Summary of the thermal-power curve family (Figures 6/7).

    Returns mean/max band width plus the overall maximum thermal power
    after the warm-up transient.
    """
    series = result.all_thermal_power_series()
    widths = band_width(series, skip_s=skip_s)
    n = min(len(s) for s in series)
    times = series[0].times[:n]
    mask = times >= skip_s
    peak = max(float(s.values[:n][mask].max()) for s in series)
    return {
        "mean_width_w": float(widths.mean()),
        "max_width_w": float(widths.max()),
        "peak_thermal_power_w": peak,
    }
