"""Experiment statistics: the quantities the paper's tables report,
plus the seed-replication aggregates the sweep runner prints."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.analysis.timeseries import band_width
from repro.api import SimulationResult


@dataclass(frozen=True, slots=True)
class PhaseChangeStats:
    """Table 1 statistics for one program.

    ``max_change`` / ``avg_change`` are relative changes of power between
    successive timeslices: ``|P_i - P_{i-1}| / P_{i-1}``.
    """

    program: str
    max_change: float
    avg_change: float
    n_slices: int


def phase_change_stats(program: str, powers_w: np.ndarray) -> PhaseChangeStats:
    """Compute Table 1 statistics from a sequence of timeslice powers."""
    powers_w = np.asarray(powers_w, dtype=float)
    if len(powers_w) < 2:
        raise ValueError("need at least two timeslices")
    if np.any(powers_w <= 0):
        raise ValueError("timeslice powers must be positive")
    changes = np.abs(np.diff(powers_w)) / powers_w[:-1]
    return PhaseChangeStats(
        program=program,
        max_change=float(changes.max()),
        avg_change=float(changes.mean()),
        n_slices=len(powers_w),
    )


@dataclass(frozen=True, slots=True)
class ThrottleRow:
    """One row of Table 3."""

    cpu: int
    disabled_pct: float
    enabled_pct: float


def throttle_table(
    baseline: SimulationResult, energy: SimulationResult, min_pct: float = 0.5
) -> list[ThrottleRow]:
    """Per-CPU throttling percentages for two runs (Table 3).

    CPUs throttled below ``min_pct`` percent in both runs are omitted,
    as the paper omits CPUs "that had to be throttled in neither run".
    """
    n = baseline.system.n_cpus
    rows = []
    for cpu in range(n):
        off = baseline.throttle_fraction(cpu) * 100.0
        on = energy.throttle_fraction(cpu) * 100.0
        if off >= min_pct or on >= min_pct:
            rows.append(ThrottleRow(cpu=cpu, disabled_pct=off, enabled_pct=on))
    return rows


def throughput_gain(baseline: SimulationResult, energy: SimulationResult) -> float:
    """Relative throughput increase of the energy-aware run."""
    base = baseline.fractional_jobs()
    if base <= 0:
        raise ValueError("baseline made no progress")
    return energy.fractional_jobs() / base - 1.0


def curve_band(result: SimulationResult, skip_s: float = 60.0) -> dict[str, float]:
    """Summary of the thermal-power curve family (Figures 6/7).

    Returns mean/max band width plus the overall maximum thermal power
    after the warm-up transient.
    """
    series = result.all_thermal_power_series()
    widths = band_width(series, skip_s=skip_s)
    n = min(len(s) for s in series)
    times = series[0].times[:n]
    mask = times >= skip_s
    peak = max(float(s.values[:n][mask].max()) for s in series)
    return {
        "mean_width_w": float(widths.mean()),
        "max_width_w": float(widths.max()),
        "peak_thermal_power_w": peak,
    }


# -- seed-replication aggregation ---------------------------------------------

# Two-sided 95 % Student-t critical values by degrees of freedom; sweeps
# rarely exceed a few dozen seeds, so a small table plus the asymptote
# avoids a scipy dependency.
_T95 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
)


def t_critical_95(df: int) -> float:
    """Two-sided 95 % Student-t critical value for ``df`` degrees of freedom."""
    if df < 1:
        raise ValueError("need at least one degree of freedom")
    if df <= len(_T95):
        return _T95[df - 1]
    return 1.960


@dataclass(frozen=True, slots=True)
class ScalarSummary:
    """One metric folded over seed replicates: mean ± 95 % CI."""

    name: str
    n: int
    mean: float
    std: float
    ci95_half: float

    @property
    def lo(self) -> float:
        return self.mean - self.ci95_half

    @property
    def hi(self) -> float:
        return self.mean + self.ci95_half


def summarize_scalars(
    samples: Sequence[Mapping[str, float]],
) -> list[ScalarSummary]:
    """Fold per-seed scalar dicts into mean ± CI summaries.

    Metrics are taken in the first sample's key order (the order the
    experiment's metrics function built them), restricted to keys every
    sample has — so heterogeneous batches only aggregate what is
    actually comparable.  ``std`` is the sample standard deviation
    (ddof=1); the half-width is ``t_{0.975,n-1} * std / sqrt(n)``, zero
    for a single replicate.
    """
    if not samples:
        raise ValueError("need at least one sample")
    shared = [
        key for key in samples[0] if all(key in s for s in samples[1:])
    ]
    out = []
    for key in shared:
        values = np.array([float(s[key]) for s in samples])
        n = len(values)
        mean = float(values.mean())
        if n > 1:
            std = float(values.std(ddof=1))
            ci = t_critical_95(n - 1) * std / n ** 0.5
        else:
            std = 0.0
            ci = 0.0
        out.append(ScalarSummary(name=key, n=n, mean=mean, std=std,
                                 ci95_half=ci))
    return out
