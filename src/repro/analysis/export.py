"""Trace export: CSV time series and JSON run summaries.

Lets downstream users pull simulation results into pandas / gnuplot /
notebooks without depending on this package's internals.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable

import numpy as np

from repro.api import SimulationResult
from repro.sim.trace import TimeSeries


def series_to_csv(series_list: Iterable[TimeSeries]) -> str:
    """Render series sharing a sampling schedule as one CSV table.

    The first column is time; one column per series.  Series sampled on
    different schedules are linearly interpolated onto the first
    series' time grid.
    """
    series_list = list(series_list)
    if not series_list:
        raise ValueError("need at least one series")
    base = series_list[0]
    if len(base) < 2:
        raise ValueError("series too short to export")
    grid = base.times
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["time_s"] + [s.name for s in series_list])
    columns = [
        s.values if len(s) == len(grid) else np.interp(grid, s.times, s.values)
        for s in series_list
    ]
    for i, t in enumerate(grid):
        writer.writerow([f"{t:.3f}"] + [f"{col[i]:.4f}" for col in columns])
    return out.getvalue()


def events_to_csv(result: SimulationResult) -> str:
    """All trace events as CSV (time, kind, cpu, pid, detail JSON)."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["time_ms", "kind", "cpu", "pid", "detail"])
    for event in result.tracer.events:
        writer.writerow(
            [event.time_ms, event.kind.value, event.cpu, event.pid,
             json.dumps(event.detail, sort_keys=True)]
        )
    return out.getvalue()


def run_summary(result: SimulationResult) -> dict:
    """A JSON-serialisable summary of one run."""
    system = result.system
    summary = {
        "policy": system.policy_name,
        "duration_s": result.duration_s,
        "seed": system.config.seed,
        "machine": {
            "nodes": system.config.machine.nodes,
            "packages_per_node": system.config.machine.packages_per_node,
            "cores_per_package": system.config.machine.cores_per_package,
            "threads_per_core": system.config.machine.threads_per_core,
            "n_cpus": system.n_cpus,
        },
        "workload": {
            "name": system.workload.name,
            "tasks": system.workload.program_counts(),
        },
        "throughput": {
            "jobs_completed": result.jobs_completed,
            "fractional_jobs": result.fractional_jobs(),
            "jobs_per_min": result.throughput_jobs_per_min(),
        },
        "migrations": {
            "total": result.migrations(),
            "by_reason": {
                reason: result.migrations(reason)
                for reason in ("load_balance", "energy_balance", "hot_task",
                               "exchange", "placement")
                if result.migrations(reason)
            },
        },
        "throttling": {
            "average_fraction": result.average_throttle_fraction(),
            "per_cpu": [
                result.throttle_fraction(c) for c in range(system.n_cpus)
            ],
        },
        "energy": {
            "total_j": result.total_energy_j(),
            "package_j": [
                result.package_energy_j(p)
                for p in range(system.config.machine.n_packages)
            ],
            "average_frequency_scale": result.average_frequency_scale(),
            "dvfs_scaled_fraction": result.average_dvfs_scaled_fraction(),
        },
        "utilization": {
            "average": result.average_utilization(),
            "per_cpu": [
                result.cpu_utilization(c) for c in range(system.n_cpus)
            ],
        },
        "responsiveness": {
            "mean_wake_latency_ms": result.mean_wake_latency_ms(),
            "max_wake_latency_ms": result.max_wake_latency_ms(),
        },
        "estimation": {
            "mean_relative_error": result.estimation_error(),
            "max_temperature_error_k": result.max_temperature_error_k,
            "max_temperature_c": result.max_temperature_c,
        },
        "counters": result.tracer.counters.as_dict(),
    }
    return summary


def run_summary_json(result: SimulationResult, indent: int = 2) -> str:
    """The run summary serialised to JSON text."""
    return json.dumps(run_summary(result), indent=indent, sort_keys=True)
