"""Time-series utilities: resampling, band widths, exponential fits.

The paper's figures are families of thermal-power curves; the statistics
here quantify what the figures show — how wide the family of curves is
(Figures 6/7) and the exponential rise the thermal model predicts
(Figure 3, §4.2 calibration).
"""

from __future__ import annotations

import numpy as np

from repro.sim.trace import TimeSeries


def resample(series: TimeSeries, grid_s: np.ndarray) -> np.ndarray:
    """Linear interpolation of a series onto a common time grid."""
    times, values = series.times, series.values
    if len(times) < 2:
        raise ValueError(f"series {series.name!r} too short to resample")
    return np.interp(grid_s, times, values)


def band_width(series_list: list[TimeSeries], skip_s: float = 0.0) -> np.ndarray:
    """Width (max - min across curves) of a family of series over time.

    ``skip_s`` drops the initial warm-up transient.  All series must be
    sampled on the same schedule (true for tracer output).
    """
    if not series_list:
        raise ValueError("need at least one series")
    n = min(len(s) for s in series_list)
    times = series_list[0].times[:n]
    mask = times >= skip_s
    stacked = np.vstack([s.values[:n] for s in series_list])[:, mask]
    return stacked.max(axis=0) - stacked.min(axis=0)


def steady_window(series: TimeSeries, fraction: float = 0.5) -> np.ndarray:
    """Values from the trailing ``fraction`` of the run (steady state)."""
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    values = series.values
    start = int(len(values) * (1 - fraction))
    return values[start:]


def fit_exponential_rise(
    times_s: np.ndarray, values: np.ndarray
) -> tuple[float, float, float]:
    """Fit ``v(t) = final + (initial - final) * exp(-t / tau)``.

    Returns ``(initial, final, tau_s)``.  This is the calibration
    procedure of §4.2: record temperature over time after a heat step
    and fit the exponential.  Uses a grid search over tau refined by
    golden-section, with initial/final solved linearly for each tau —
    robust without scipy.
    """
    times_s = np.asarray(times_s, dtype=float)
    values = np.asarray(values, dtype=float)
    if len(times_s) != len(values) or len(times_s) < 4:
        raise ValueError("need >= 4 matched samples")
    span = times_s[-1] - times_s[0]
    if span <= 0:
        raise ValueError("times must span a positive interval")

    def solve_linear(tau: float) -> tuple[float, float, float]:
        basis = np.exp(-(times_s - times_s[0]) / tau)
        a = np.column_stack([1.0 - basis, basis])
        coeffs, *_ = np.linalg.lstsq(a, values, rcond=None)
        final, initial = coeffs
        resid = values - a @ coeffs
        return initial, final, float(resid @ resid)

    taus = np.geomspace(span / 200.0, span * 3.0, 60)
    errors = [solve_linear(t)[2] for t in taus]
    best = int(np.argmin(errors))
    lo = taus[max(0, best - 1)]
    hi = taus[min(len(taus) - 1, best + 1)]
    golden = (np.sqrt(5.0) - 1.0) / 2.0
    for _ in range(40):
        mid1 = hi - golden * (hi - lo)
        mid2 = lo + golden * (hi - lo)
        if solve_linear(mid1)[2] < solve_linear(mid2)[2]:
            hi = mid2
        else:
            lo = mid1
    tau = (lo + hi) / 2.0
    initial, final, _ = solve_linear(tau)
    return float(initial), float(final), float(tau)
