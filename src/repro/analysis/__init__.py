"""Measurement and reporting helpers for the benchmark harness."""

from repro.analysis.stats import (
    PhaseChangeStats,
    ThrottleRow,
    curve_band,
    phase_change_stats,
    throttle_table,
    throughput_gain,
)
from repro.analysis.timeseries import (
    band_width,
    fit_exponential_rise,
    resample,
    steady_window,
)
from repro.analysis.export import (
    events_to_csv,
    run_summary,
    run_summary_json,
    series_to_csv,
)
from repro.analysis.report import ascii_chart, format_table, task_table

__all__ = [
    "PhaseChangeStats",
    "ThrottleRow",
    "ascii_chart",
    "band_width",
    "curve_band",
    "events_to_csv",
    "fit_exponential_rise",
    "format_table",
    "phase_change_stats",
    "resample",
    "run_summary",
    "run_summary_json",
    "series_to_csv",
    "steady_window",
    "task_table",
    "throttle_table",
    "throughput_gain",
]
