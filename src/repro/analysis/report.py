"""Plain-text rendering for the benchmark harness.

The harness prints the same rows/series the paper's tables and figures
report; these helpers keep that output aligned and readable in a
terminal and in the committed ``bench_output.txt``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a fixed-width text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def format_scalar_summaries(summaries, title: str | None = None) -> str:
    """Render seed-replication aggregates as a mean ± CI table.

    ``summaries`` is the output of
    :func:`repro.analysis.stats.summarize_scalars`; formatting is fully
    deterministic, so a sweep's aggregate block is byte-identical for
    any worker count.
    """
    rows = [
        [s.name, s.n, _sig(s.mean), _sig(s.std), f"±{_sig(s.ci95_half)}"]
        for s in summaries
    ]
    return format_table(["metric", "n", "mean", "std", "95% CI"], rows,
                        title=title)


def _sig(value: float) -> str:
    """Fixed significant-digit float rendering for aggregate tables."""
    if value == 0:
        return "0"
    return f"{value:.4g}"


def task_table(result, include_exited: bool = False) -> str:
    """Per-task accounting table for a finished run.

    Columns: pid, program, CPU, jobs done, busy seconds, average power
    (estimated energy / busy time), current profile, migrations, and
    mean wakeup latency.
    """
    tasks = list(result.system.live_tasks())
    if include_exited:
        tasks += result.system.exited_tasks
    tasks.sort(key=lambda t: t.pid)
    rows = []
    for t in tasks:
        avg_power = t.total_energy_j / t.total_busy_s if t.total_busy_s else 0.0
        rows.append(
            [t.pid, t.name, t.cpu, t.jobs_completed, f"{t.total_busy_s:.1f}",
             f"{avg_power:.1f}", f"{t.profile_power_w:.1f}", t.migrations,
             f"{t.mean_wake_latency_ms:.1f}"]
        )
    return format_table(
        ["pid", "program", "cpu", "jobs", "busy [s]", "avg [W]",
         "profile [W]", "migr", "lat [ms]"],
        rows,
        title=f"per-task accounting ({len(tasks)} tasks)",
    )


def ascii_chart(
    series: Sequence[tuple[str, np.ndarray]],
    height: int = 12,
    width: int = 72,
    title: str | None = None,
    y_label: str = "",
) -> str:
    """Render one or more equally-sampled series as an ASCII line chart.

    Each series gets a distinct glyph; overlapping points show the glyph
    of the last series drawn.  Good enough to eyeball the Figure 6/7
    curve families in a terminal without any plotting dependency.
    """
    if not series:
        raise ValueError("need at least one series")
    glyphs = "abcdefghijklmnop"
    all_vals = np.concatenate([np.asarray(v, dtype=float) for _, v in series])
    lo, hi = float(all_vals.min()), float(all_vals.max())
    if hi - lo < 1e-12:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for idx, (_, values) in enumerate(series):
        values = np.asarray(values, dtype=float)
        xs = np.linspace(0, len(values) - 1, width).astype(int)
        for col, x in enumerate(xs):
            frac = (values[x] - lo) / (hi - lo)
            row = height - 1 - int(round(frac * (height - 1)))
            grid[row][col] = glyphs[idx % len(glyphs)]
    lines = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        if r == 0:
            label = f"{hi:8.1f} |"
        elif r == height - 1:
            label = f"{lo:8.1f} |"
        else:
            label = "         |"
        lines.append(label + "".join(row))
    lines.append("         +" + "-" * width)
    if y_label:
        lines.append(f"          {y_label}")
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]}={name}" for i, (name, _) in enumerate(series)
    )
    lines.append("          " + legend)
    return "\n".join(lines)
