"""Top-level simulation configuration.

:class:`SystemConfig` gathers every substrate knob in one frozen object;
experiment harnesses construct one per scenario, so runs are fully
described by (config, workload, policy, duration, seed).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.power import PowerModelParams
from repro.cpu.thermal import ThermalParams
from repro.cpu.throttle import ThrottleConfig
from repro.cpu.topology import MachineSpec


@dataclass(frozen=True, slots=True)
class SystemConfig:
    """Everything about the simulated system except workload and policy.

    Attributes
    ----------
    machine:
        Topology and clock frequency.
    tick_ms / timeslice_ms:
        Simulation quantum and the scheduler's timeslice.
    balance_interval_ms:
        Period of each CPU's periodic balancing pass (staggered).
    idle_balance_interval_ms:
        How often an idle CPU retries pulling work.
    hot_check_interval_ms:
        Period of hot-task-migration trigger checks.
    power:
        Ground-truth power model parameters.
    thermal:
        Heat-sink parameters — one :class:`ThermalParams` for a
        homogeneous machine, or one per package for heterogeneous
        cooling (Table 3 / Figure 8 setups).
    temp_limit_c:
        Temperature limit; per-package maximum power is derived via each
        package's thermal resistance.  Mutually exclusive with
        ``max_power_per_cpu_w``.
    max_power_per_cpu_w:
        Directly sets every logical CPU's maximum power (the §6.1 setup
        "we set the maximum power of all CPUs to 60 W").
    throttle:
        Temperature-control settings (disabled for the §6.1 runs).
    smt_thread_factor:
        Per-thread throughput with a busy sibling.
    counter_jitter_sigma:
        Multiplicative noise on counter readings.
    cache_warmup_instructions:
        Instructions a migrated task executes at reduced speed while
        re-warming caches (§6.5: "caches can be considered warm after
        executing some millions of instructions").  0 disables
        migration-cost modelling.
    numa_warmup_factor:
        Multiplier on the warmup for migrations that cross the NUMA
        node boundary (§4.1's node affinity: remote memory must be
        re-fetched or accessed remotely).
    cold_cache_ipc_factor:
        Relative execution speed while caches are cold.
    sample_interval_s:
        Trace decimation interval.
    seed:
        Root seed for all random streams.
    """

    machine: MachineSpec = field(default_factory=MachineSpec.ibm_x445)
    tick_ms: int = 10
    timeslice_ms: int = 100
    balance_interval_ms: int = 240
    idle_balance_interval_ms: int = 50
    hot_check_interval_ms: int = 100
    power: PowerModelParams = field(default_factory=PowerModelParams)
    thermal: ThermalParams | tuple[ThermalParams, ...] = field(
        default_factory=ThermalParams
    )
    temp_limit_c: float | None = None
    max_power_per_cpu_w: float | None = None
    throttle: ThrottleConfig = field(default_factory=lambda: ThrottleConfig(enabled=False))
    smt_thread_factor: float = 0.62
    counter_jitter_sigma: float = 0.01
    cache_warmup_instructions: float = 2e7
    numa_warmup_factor: float = 3.0
    cold_cache_ipc_factor: float = 0.7
    sample_interval_s: float = 1.0
    seed: int = 1

    def __post_init__(self) -> None:
        if self.tick_ms < 1:
            raise ValueError("tick must be >= 1 ms")
        if self.timeslice_ms < self.tick_ms:
            raise ValueError("timeslice must be >= one tick")
        if self.temp_limit_c is not None and self.max_power_per_cpu_w is not None:
            raise ValueError("set either temp_limit_c or max_power_per_cpu_w, not both")
        thermal = self.thermal
        if isinstance(thermal, tuple) and len(thermal) != self.machine.n_packages:
            raise ValueError(
                f"need {self.machine.n_packages} per-package thermal params, "
                f"got {len(thermal)}"
            )
        if self.cache_warmup_instructions < 0:
            raise ValueError("cache warmup must be non-negative")
        if self.numa_warmup_factor < 1.0:
            raise ValueError("NUMA warmup factor must be >= 1")
        if not 0.0 < self.cold_cache_ipc_factor <= 1.0:
            raise ValueError("cold-cache IPC factor must be in (0, 1]")

    # -- resolution helpers ----------------------------------------------------
    def thermal_for_package(self, package: int) -> ThermalParams:
        if isinstance(self.thermal, tuple):
            return self.thermal[package]
        return self.thermal

    def package_max_power_w(self, package: int) -> float:
        """Maximum sustainable power of one package."""
        threads = self.machine.threads_per_core * self.machine.cores_per_package
        if self.max_power_per_cpu_w is not None:
            return self.max_power_per_cpu_w * threads
        if self.temp_limit_c is not None:
            return self.thermal_for_package(package).power_for_temperature(
                self.temp_limit_c
            )
        # No limit configured: effectively unconstrained, but finite so
        # ratios stay well defined.
        return 1e9

    def cpu_max_power_w(self, package: int) -> float:
        """Per-logical-CPU share of the package budget (§4.7)."""
        threads = self.machine.threads_per_core * self.machine.cores_per_package
        return self.package_max_power_w(package) / threads
