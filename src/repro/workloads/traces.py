"""Trace-driven task behaviours.

The built-in programs are phase *models*; this module lets users bring
their own applications as explicit power traces — e.g. from a recorded
production workload — and schedule them on the simulated machine:

    trace = PowerTrace.from_csv('''
        duration_s,power_w
        5.0,45.0
        2.0,61.0
        5.0,38.0
    ''')
    spec = trace.to_program("myapp", inode=9001, looping=True)

Each trace segment becomes a behaviour phase whose event mix is solved
against the ground-truth power model, exactly as the built-in programs
are calibrated, so the estimator and every scheduling policy treat
trace-driven tasks identically to modelled ones.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass

from repro.workloads.programs import FLAVOR_CONTROL, PhaseDef, ProgramSpec


@dataclass(frozen=True, slots=True)
class TraceSegment:
    """One step of a power trace."""

    duration_s: float
    power_w: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("segment duration must be positive")
        if self.power_w <= 0:
            raise ValueError("segment power must be positive")


@dataclass(frozen=True, slots=True)
class PowerTrace:
    """A sequence of (duration, package power) segments."""

    segments: tuple[TraceSegment, ...]

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError("trace needs at least one segment")

    @property
    def total_duration_s(self) -> float:
        return sum(s.duration_s for s in self.segments)

    def mean_power_w(self) -> float:
        """Duration-weighted average power of the trace."""
        return (
            sum(s.duration_s * s.power_w for s in self.segments)
            / self.total_duration_s
        )

    @staticmethod
    def from_pairs(pairs: list[tuple[float, float]]) -> "PowerTrace":
        """Build from ``(duration_s, power_w)`` tuples."""
        return PowerTrace(tuple(TraceSegment(d, p) for d, p in pairs))

    @staticmethod
    def from_csv(text: str) -> "PowerTrace":
        """Parse ``duration_s,power_w`` CSV text (header required)."""
        reader = csv.DictReader(io.StringIO(text.strip()))
        if reader.fieldnames is None or set(reader.fieldnames) != {
            "duration_s", "power_w",
        }:
            raise ValueError(
                "trace CSV needs exactly the columns duration_s, power_w"
            )
        pairs = [
            (float(row["duration_s"]), float(row["power_w"])) for row in reader
        ]
        if not pairs:
            raise ValueError("trace CSV has no data rows")
        return PowerTrace.from_pairs(pairs)

    def to_program(
        self,
        name: str,
        inode: int,
        ipc: float = 1.0,
        flavor: tuple[float, ...] = FLAVOR_CONTROL,
        looping: bool = True,
        wobble_sigma: float = 0.01,
        solo_job_s: float | None = None,
    ) -> ProgramSpec:
        """Turn the trace into a schedulable :class:`ProgramSpec`.

        ``looping`` repeats the trace cyclically (a long-running
        service); otherwise the last segment holds.  The trace's
        durations are *busy-time* phase dwells, as for modelled
        programs.
        """
        phases = tuple(
            PhaseDef(
                total_power_w=segment.power_w,
                mean_duration_s=segment.duration_s,
                label=f"t{i}",
                duration_jitter=0.0,
            )
            for i, segment in enumerate(self.segments)
        )
        if len(phases) == 1:
            kind = "static"
        elif looping:
            kind = "cyclic"
        else:
            # Non-looping: hold the last phase for a very long time.
            phases = phases[:-1] + (
                PhaseDef(
                    total_power_w=self.segments[-1].power_w,
                    mean_duration_s=1e9,
                    label=f"t{len(phases) - 1}",
                    duration_jitter=0.0,
                ),
            )
            kind = "cyclic"
        return ProgramSpec(
            name=name,
            inode=inode,
            kind=kind if len(phases) > 1 else "static",
            phases=phases,
            flavor=flavor,
            ipc=ipc,
            wobble_sigma=wobble_sigma,
            solo_job_s=(
                solo_job_s if solo_job_s is not None else self.total_duration_s
            ),
        )
