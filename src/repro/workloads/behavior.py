"""Task behaviour as phase machines over instruction mixes.

The paper's premise (§3.1, citing Bellosa's TR): a task's power draw is
"fairly static most of the time, but exhibits changes as the task
experiences different phases of execution".  Behaviours here produce,
tick by tick, the event rates the PMC substrate credits, and implement
four phase structures sufficient for the paper's program set:

* :class:`StaticBehavior` — one phase (bitcnts, memrw, aluadd, pushpop).
* :class:`CyclicBehavior` — fixed phase rotation (openssl's successive
  cipher/digest sub-benchmarks).
* :class:`AlternatingBehavior` — two phases with random dwell times
  (bzip2's compress/flush alternation).
* :class:`SpikyBehavior` — a base phase with rare short excursions
  (grep's page-cache-miss bursts; also used for interactive daemons).

All behaviours add a slowly-wobbling activity factor, resampled every
``wobble_interval_s`` of busy time, producing the small
successive-timeslice power changes of Table 1.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.cpu.events import N_EVENTS


@dataclass(frozen=True, slots=True)
class InstructionMix:
    """Concrete per-cycle event rates plus the mix's IPC."""

    rates_per_cycle: np.ndarray
    ipc: float
    label: str = ""

    def __post_init__(self) -> None:
        rates = np.asarray(self.rates_per_cycle, dtype=float)
        if rates.shape != (N_EVENTS,):
            raise ValueError(f"rates must have shape ({N_EVENTS},)")
        if np.any(rates < 0):
            raise ValueError("event rates must be non-negative")
        if self.ipc <= 0:
            raise ValueError("IPC must be positive")
        object.__setattr__(self, "rates_per_cycle", rates)


@dataclass(frozen=True, slots=True)
class PhaseSpec:
    """One phase: a mix plus a dwell-time distribution (busy seconds)."""

    mix: InstructionMix
    mean_duration_s: float
    duration_jitter: float = 0.2  #: relative sigma of the dwell time

    def __post_init__(self) -> None:
        if self.mean_duration_s <= 0:
            raise ValueError("phase duration must be positive")
        if not 0 <= self.duration_jitter < 1:
            raise ValueError("duration jitter must be in [0, 1)")

    def sample_duration(self, rng: random.Random) -> float:
        jitter = rng.gauss(0.0, self.duration_jitter)
        return max(0.1 * self.mean_duration_s, self.mean_duration_s * (1.0 + jitter))


class Behavior:
    """Base phase machine.

    Subclasses define the phase sequence via :meth:`_next_phase`.
    The executor calls :meth:`step` once per tick of *busy* time; halted
    or blocked time does not advance the phase clock (phases are
    execution progress, not wall time).
    """

    def __init__(
        self,
        phases: list[PhaseSpec],
        rng: random.Random,
        wobble_sigma: float = 0.01,
        wobble_interval_s: float = 0.1,
    ) -> None:
        if not phases:
            raise ValueError("behavior needs at least one phase")
        if wobble_sigma < 0:
            raise ValueError("wobble sigma must be non-negative")
        if wobble_interval_s <= 0:
            raise ValueError("wobble interval must be positive")
        self.phases = phases
        self._rng = rng
        self._wobble_sigma = wobble_sigma
        self._wobble_interval_s = wobble_interval_s
        self._phase_index = 0
        self._phase_remaining_s = phases[0].sample_duration(rng)
        self._wobble = 1.0
        self._wobble_remaining_s = 0.0
        self._cached_mix: InstructionMix | None = None
        self.phase_changes = 0

    # -- subclass hook ------------------------------------------------------
    def _next_phase(self) -> int:
        """Index of the phase to enter when the current one expires."""
        raise NotImplementedError

    # -- executor interface ---------------------------------------------------
    @property
    def current_phase(self) -> PhaseSpec:
        return self.phases[self._phase_index]

    @property
    def phase_label(self) -> str:
        return self.current_phase.mix.label

    def step(self, busy_dt_s: float) -> InstructionMix:
        """Advance ``busy_dt_s`` of execution; return the mix to run.

        The returned mix has the wobble factor already applied to its
        rates.  Phase transitions take effect on the *next* step (a tick
        is far shorter than any phase, so sub-tick splitting is noise).
        """
        if busy_dt_s < 0:
            raise ValueError("busy time must be non-negative")
        if self._wobble_remaining_s <= 0:
            if self._wobble_sigma:
                self._wobble = max(0.5, 1.0 + self._rng.gauss(0.0, self._wobble_sigma))
            self._wobble_remaining_s = self._wobble_interval_s
            self._cached_mix = None
        if self._cached_mix is None:
            mix = self.phases[self._phase_index].mix
            # Scaling a validated mix cannot invalidate it, so skip the
            # dataclass validation on this per-wobble hot path.
            scaled = object.__new__(InstructionMix)
            object.__setattr__(scaled, "rates_per_cycle", mix.rates_per_cycle * self._wobble)
            object.__setattr__(scaled, "ipc", mix.ipc)
            object.__setattr__(scaled, "label", mix.label)
            self._cached_mix = scaled
        scaled = self._cached_mix
        self._phase_remaining_s -= busy_dt_s
        self._wobble_remaining_s -= busy_dt_s
        if self._phase_remaining_s <= 0:
            new_index = self._next_phase()
            if new_index != self._phase_index:
                self.phase_changes += 1
                self._cached_mix = None
            self._phase_index = new_index
            self._phase_remaining_s = self.phases[new_index].sample_duration(self._rng)
        return scaled


class StaticBehavior(Behavior):
    """A single phase forever."""

    def __init__(
        self,
        phase: PhaseSpec,
        rng: random.Random,
        wobble_sigma: float = 0.01,
        wobble_interval_s: float = 0.1,
    ) -> None:
        super().__init__([phase], rng, wobble_sigma, wobble_interval_s)

    def _next_phase(self) -> int:
        return 0


class CyclicBehavior(Behavior):
    """Rotates through phases in order, wrapping around."""

    def _next_phase(self) -> int:
        return (self._phase_index + 1) % len(self.phases)


class AlternatingBehavior(Behavior):
    """Alternates between exactly two phases."""

    def __init__(self, phases: list[PhaseSpec], rng: random.Random, **kwargs) -> None:
        if len(phases) != 2:
            raise ValueError("alternating behavior needs exactly two phases")
        super().__init__(phases, rng, **kwargs)

    def _next_phase(self) -> int:
        return 1 - self._phase_index


class SpikyBehavior(Behavior):
    """Phase 0 is the base; other phases are rare excursions.

    After each base dwell a spike phase is entered with probability
    ``spike_probability``; spikes always return to the base phase.
    """

    def __init__(
        self,
        phases: list[PhaseSpec],
        rng: random.Random,
        spike_probability: float = 0.05,
        **kwargs,
    ) -> None:
        if len(phases) < 2:
            raise ValueError("spiky behavior needs a base and >= 1 spike phase")
        if not 0 <= spike_probability <= 1:
            raise ValueError("spike probability must be in [0, 1]")
        super().__init__(phases, rng, **kwargs)
        self.spike_probability = spike_probability

    def _next_phase(self) -> int:
        if self._phase_index != 0:
            return 0
        if self._rng.random() < self.spike_probability:
            return self._rng.randrange(1, len(self.phases))
        return 0
