"""The paper's test programs as calibrated behaviour models.

Table 2 (measured package power while running each program):

    bitcnts 61 W | memrw 38 W | aluadd 50 W | pushpop 47 W
    openssl 42-57 W (phase-dependent) | bzip2 48 W

Table 1 (successive-timeslice power change, max / average):

    bash 19.0/2.05 % | bzip2 88.8/5.45 % | grep 84.3/1.06 %
    sshd 18.3/1.38 % | openssl 63.2/2.48 %

Each :class:`ProgramSpec` declares its phases by *total package power*
target and an event-mix flavour; concrete per-cycle rates are solved
against the ground-truth power model at build time, so Table 2 powers
are matched exactly by construction and Table 1 volatility emerges from
the phase structure plus a per-program wobble.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.cpu.power import GroundTruthPower
from repro.workloads.behavior import (
    AlternatingBehavior,
    Behavior,
    CyclicBehavior,
    InstructionMix,
    PhaseSpec,
    SpikyBehavior,
    StaticBehavior,
)

# Event-mix flavours (relative rates: UOPS, ALU, FP, MEM, L2_MISS, BRANCH).
FLAVOR_ALU = (1.8, 1.6, 0.0, 0.10, 0.001, 0.35)
FLAVOR_MEM = (0.6, 0.10, 0.0, 0.55, 0.020, 0.05)
FLAVOR_STACK = (1.4, 0.70, 0.0, 1.20, 0.001, 0.10)
FLAVOR_CRYPTO = (1.5, 1.10, 0.6, 0.40, 0.002, 0.20)
FLAVOR_COMPRESS = (1.1, 0.80, 0.0, 0.70, 0.008, 0.25)
FLAVOR_CONTROL = (0.8, 0.40, 0.0, 0.45, 0.004, 0.30)


@dataclass(frozen=True, slots=True)
class PhaseDef:
    """Declarative phase: total package power target + dwell time."""

    total_power_w: float
    mean_duration_s: float
    label: str
    flavor: tuple[float, ...] | None = None  #: defaults to the program flavour
    duration_jitter: float = 0.2


@dataclass(frozen=True, slots=True)
class ProgramSpec:
    """A synthetic program.

    Attributes
    ----------
    name / inode:
        Identity; ``inode`` keys the initial-placement hash table (§4.6).
    kind:
        Phase structure: ``static`` | ``cyclic`` | ``alternating`` |
        ``spiky``.
    phases:
        Phase definitions (first is the base phase for ``spiky``).
    flavor:
        Default event-mix flavour.
    ipc:
        Instructions per cycle for progress accounting.
    wobble_sigma:
        Within-phase activity wobble (drives Table 1 averages).
    wobble_interval_s:
        Busy time between wobble resamples (Table 1's successive
        timeslices).  Coarser intervals give steadier power draw; the
        fleet perf scenarios use them to model steady-state tasks.
    spike_probability:
        For ``spiky`` programs: chance of an excursion after each base
        dwell.
    interactive:
        ``(mean_run_s, mean_block_s)`` for programs that block on I/O
        (bash, sshd); ``None`` for CPU-bound programs.
    solo_job_s:
        Nominal duration of one job when run alone on an unthrottled,
        non-SMT-contended CPU; defines ``job_instructions``.
    """

    name: str
    inode: int
    kind: str
    phases: tuple[PhaseDef, ...]
    flavor: tuple[float, ...]
    ipc: float
    wobble_sigma: float = 0.01
    wobble_interval_s: float = 0.1
    spike_probability: float = 0.0
    interactive: tuple[float, float] | None = None
    solo_job_s: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in ("static", "cyclic", "alternating", "spiky"):
            raise ValueError(f"unknown behavior kind {self.kind!r}")
        if not self.phases:
            raise ValueError("program needs at least one phase")
        if self.ipc <= 0:
            raise ValueError("IPC must be positive")
        if self.solo_job_s <= 0:
            raise ValueError("solo job duration must be positive")

    # -- derived -----------------------------------------------------------
    def nominal_power_w(self) -> float:
        """Dwell-weighted mean package power across phases."""
        total_time = sum(p.mean_duration_s for p in self.phases)
        return sum(p.total_power_w * p.mean_duration_s for p in self.phases) / total_time

    def job_instructions(self, freq_hz: float) -> float:
        """Instructions in one job (closed-loop throughput unit)."""
        return freq_hz * self.ipc * self.solo_job_s

    def build_behavior(
        self, power: GroundTruthPower, freq_hz: float, rng: random.Random
    ) -> Behavior:
        """Solve phase mixes against the power model and build the machine."""
        base_w = power.params.base_active_w
        specs: list[PhaseSpec] = []
        for phase in self.phases:
            dyn_target = phase.total_power_w - base_w
            if dyn_target < 0:
                raise ValueError(
                    f"{self.name}: phase {phase.label!r} targets "
                    f"{phase.total_power_w} W below base power {base_w} W"
                )
            flavor = np.asarray(phase.flavor or self.flavor, dtype=float)
            rates = power.rates_for_dynamic_power(flavor, dyn_target, freq_hz)
            mix = InstructionMix(rates, ipc=self.ipc, label=f"{self.name}:{phase.label}")
            specs.append(
                PhaseSpec(
                    mix=mix,
                    mean_duration_s=phase.mean_duration_s,
                    duration_jitter=phase.duration_jitter,
                )
            )
        common = dict(
            wobble_sigma=self.wobble_sigma,
            wobble_interval_s=self.wobble_interval_s,
        )
        if self.kind == "static":
            return StaticBehavior(specs[0], rng, **common)
        if self.kind == "cyclic":
            return CyclicBehavior(specs, rng, **common)
        if self.kind == "alternating":
            return AlternatingBehavior(specs, rng, **common)
        return SpikyBehavior(
            specs, rng, spike_probability=self.spike_probability, **common
        )


def _static(name, inode, power_w, flavor, ipc, wobble, solo_job_s=30.0):
    return ProgramSpec(
        name=name,
        inode=inode,
        kind="static",
        phases=(PhaseDef(power_w, 1e9, "main"),),
        flavor=flavor,
        ipc=ipc,
        wobble_sigma=wobble,
        solo_job_s=solo_job_s,
    )


# --------------------------------------------------------------------------
# Table 2 programs
# --------------------------------------------------------------------------
BITCNTS = _static("bitcnts", 1001, 61.0, FLAVOR_ALU, ipc=1.7, wobble=0.010)
MEMRW = _static("memrw", 1002, 38.0, FLAVOR_MEM, ipc=0.5, wobble=0.010)
ALUADD = _static("aluadd", 1003, 50.0, FLAVOR_ALU, ipc=1.5, wobble=0.010)
PUSHPOP = _static("pushpop", 1004, 47.0, FLAVOR_STACK, ipc=1.3, wobble=0.010)

OPENSSL = ProgramSpec(
    name="openssl",
    inode=1005,
    kind="cyclic",
    phases=(
        PhaseDef(57.0, 20.0, "rc4"),
        PhaseDef(42.0, 20.0, "sha"),
        PhaseDef(54.0, 20.0, "aes"),
        PhaseDef(44.0, 20.0, "des"),
        PhaseDef(51.0, 20.0, "md5"),
        PhaseDef(35.0, 4.0, "keygen"),
    ),
    flavor=FLAVOR_CRYPTO,
    ipc=1.2,
    wobble_sigma=0.032,
    solo_job_s=30.0,
)

BZIP2 = ProgramSpec(
    name="bzip2",
    inode=1006,
    kind="alternating",
    phases=(
        PhaseDef(53.0, 4.0, "compress", duration_jitter=0.3),
        PhaseDef(28.0, 0.8, "flush", duration_jitter=0.3),
    ),
    flavor=FLAVOR_COMPRESS,
    ipc=0.9,
    wobble_sigma=0.028,
    interactive=(20.0, 0.05),  # file I/O between compression blocks
    solo_job_s=30.0,
)

# --------------------------------------------------------------------------
# Table 1 interactive / streaming programs
# --------------------------------------------------------------------------
BASH = ProgramSpec(
    name="bash",
    inode=1007,
    kind="spiky",
    phases=(
        PhaseDef(30.0, 2.0, "prompt"),
        PhaseDef(35.5, 0.3, "builtin"),
    ),
    flavor=FLAVOR_CONTROL,
    ipc=0.8,
    wobble_sigma=0.054,
    spike_probability=0.05,
    interactive=(0.5, 0.5),
    solo_job_s=30.0,
)

GREP = ProgramSpec(
    name="grep",
    inode=1008,
    kind="spiky",
    phases=(
        PhaseDef(30.0, 2.0, "scan"),
        PhaseDef(55.0, 0.15, "burst", flavor=FLAVOR_MEM),
    ),
    flavor=FLAVOR_CONTROL,
    ipc=0.7,
    wobble_sigma=0.028,
    spike_probability=0.04,
    solo_job_s=30.0,
)

SSHD = ProgramSpec(
    name="sshd",
    inode=1009,
    kind="spiky",
    phases=(
        PhaseDef(35.0, 2.0, "session"),
        PhaseDef(41.0, 0.3, "rekey", flavor=FLAVOR_CRYPTO),
    ),
    flavor=FLAVOR_CRYPTO,
    ipc=0.8,
    wobble_sigma=0.028,
    spike_probability=0.05,
    interactive=(0.6, 0.4),
    solo_job_s=30.0,
)

#: All modelled programs by name.
PROGRAMS: dict[str, ProgramSpec] = {
    p.name: p
    for p in (BITCNTS, MEMRW, ALUADD, PUSHPOP, OPENSSL, BZIP2, BASH, GREP, SSHD)
}


def program(name: str) -> ProgramSpec:
    """Look up a program spec by name with a helpful error."""
    try:
        return PROGRAMS[name]
    except KeyError:
        raise KeyError(
            f"unknown program {name!r}; available: {sorted(PROGRAMS)}"
        ) from None
