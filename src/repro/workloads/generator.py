"""Workload scenario builders for the paper's experiments.

A :class:`WorkloadSpec` is a list of :class:`TaskSpec` slots.  Each slot
runs jobs of one program in a closed loop (a new job starts when the
previous finishes), so *throughput* — jobs finished per unit time, the
paper's metric — is well defined and saturates the machine for the
all-CPUs-busy scenarios.

Respawn semantics matter for §4.6: with ``respawn="fork_new"`` every job
is a fresh task created through the scheduler's fork/exec path, so the
initial-placement policy decides its CPU (the short-task experiment);
with ``respawn="restart_same"`` the task persists and simply starts the
next job (the long-running experiments).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.sched.priorities import validate_nice
from repro.workloads.programs import PROGRAMS, ProgramSpec, program


@dataclass(frozen=True, slots=True)
class TaskSpec:
    """One closed-loop task slot.

    Attributes
    ----------
    program:
        The program this slot runs.
    arrival_s:
        When the first job of the slot is forked.
    solo_job_s:
        Override of the program's nominal solo job duration.
    respawn:
        ``restart_same`` | ``fork_new`` | ``none`` (run one job, exit).
    nice:
        Unix nice level; scales the timeslice per the 2.6 O(1) rules.
    cpus_allowed:
        Optional CPU affinity mask for the slot's tasks.
    power_cap_w:
        Optional energy-container cap: the task's long-run average
        power is limited to this value (§2.3's orthogonal limiting
        policy, combinable with energy-aware scheduling).
    """

    program: ProgramSpec
    arrival_s: float = 0.0
    solo_job_s: float | None = None
    respawn: str = "restart_same"
    nice: int = 0
    cpus_allowed: tuple[int, ...] | None = None
    power_cap_w: float | None = None

    def __post_init__(self) -> None:
        # NaN compares False against every bound, so each numeric check
        # requires finiteness explicitly — a NaN arrival or duration
        # would otherwise wander into the tick loop and poison every
        # derived quantity (same failure mode as the Tracer interval
        # fix).
        if not math.isfinite(self.arrival_s) or self.arrival_s < 0:
            raise ValueError(
                f"arrival time must be finite and non-negative, "
                f"got {self.arrival_s!r}"
            )
        if self.solo_job_s is not None and not (
            math.isfinite(self.solo_job_s) and self.solo_job_s > 0
        ):
            raise ValueError(
                f"solo job duration must be finite and positive, "
                f"got {self.solo_job_s!r}"
            )
        if self.respawn not in ("restart_same", "fork_new", "none"):
            raise ValueError(f"unknown respawn mode {self.respawn!r}")
        validate_nice(self.nice)
        if self.cpus_allowed is not None and not self.cpus_allowed:
            raise ValueError("cpus_allowed must not be empty")
        if self.power_cap_w is not None and not (
            math.isfinite(self.power_cap_w) and self.power_cap_w > 0
        ):
            raise ValueError(
                f"power cap must be finite and positive, "
                f"got {self.power_cap_w!r}"
            )

    def job_instructions(self, freq_hz: float) -> float:
        solo_s = self.solo_job_s if self.solo_job_s is not None else self.program.solo_job_s
        return freq_hz * self.program.ipc * solo_s


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """A named collection of task slots."""

    name: str
    tasks: tuple[TaskSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ValueError(f"workload {self.name!r} has no tasks")

    def __len__(self) -> int:
        return len(self.tasks)

    def program_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for t in self.tasks:
            counts[t.program.name] = counts.get(t.program.name, 0) + 1
        return counts


def n_copies(
    program_name: str,
    n: int,
    respawn: str = "restart_same",
    solo_job_s: float | None = None,
) -> list[TaskSpec]:
    """``n`` identical slots of one program."""
    if n < 0:
        raise ValueError("count must be non-negative")
    spec = program(program_name)
    return [
        TaskSpec(program=spec, respawn=respawn, solo_job_s=solo_job_s)
        for _ in range(n)
    ]


def mixed_table2_workload(copies: int = 3) -> WorkloadSpec:
    """The §6.1 mix: each Table 2 program started ``copies`` times.

    ``copies=3`` gives the paper's 18 tasks for 8 CPUs (SMT off);
    ``copies=6`` gives the 36 tasks for 16 logical CPUs (SMT on).
    """
    table2 = ("bitcnts", "memrw", "aluadd", "pushpop", "openssl", "bzip2")
    tasks: list[TaskSpec] = []
    for name in table2:
        tasks.extend(n_copies(name, copies))
    return WorkloadSpec(name=f"mixed-table2-x{copies}", tasks=tuple(tasks))


def steady_mix_workload(
    copies: int = 4, wobble_interval_s: float = 10.0
) -> WorkloadSpec:
    """Steady-state mix for fleet throughput runs: the four static
    Table 2 programs with a coarse wobble-resample interval.

    Long-running batch tasks re-draw their activity wobble rarely, so a
    tick is almost always the pure fast-path math; this is the workload
    the pinned fleet benchmark scenarios run on both engines (scalar
    baseline and fleet), keeping the comparison apples to apples.
    """
    from dataclasses import replace as _replace

    if not (math.isfinite(wobble_interval_s) and wobble_interval_s > 0):
        raise ValueError(
            f"wobble interval must be finite and positive, "
            f"got {wobble_interval_s!r}"
        )
    statics = ("bitcnts", "memrw", "aluadd", "pushpop")
    tasks = [
        TaskSpec(program=_replace(program(name), wobble_interval_s=wobble_interval_s))
        for name in statics
        for _ in range(copies)
    ]
    return WorkloadSpec(name=f"steady-mix-x{copies}", tasks=tuple(tasks))


def homogeneity_scenario(n_memrw: int, n_pushpop: int, n_bitcnts: int) -> WorkloadSpec:
    """One Figure 8 scenario: ``#memrw / #pushpop / #bitcnts``."""
    tasks = (
        n_copies("memrw", n_memrw)
        + n_copies("pushpop", n_pushpop)
        + n_copies("bitcnts", n_bitcnts)
    )
    return WorkloadSpec(
        name=f"{n_memrw}/{n_pushpop}/{n_bitcnts}", tasks=tuple(tasks)
    )


def homogeneity_sweep(total: int = 18) -> list[WorkloadSpec]:
    """The Figure 8 sweep: 9/0/9, 8/2/8, ... 1/16/1, 0/18/0.

    Starts fully heterogeneous (half memrw, half bitcnts) and replaces
    one memrw and one bitcnts with two pushpop instances per step until
    the workload is homogeneous.
    """
    if total % 2 != 0:
        raise ValueError("total task count must be even")
    half = total // 2
    scenarios = []
    for hot_cool in range(half, -1, -1):
        medium = total - 2 * hot_cool
        scenarios.append(homogeneity_scenario(hot_cool, medium, hot_cool))
    return scenarios


def short_task_storm(
    total_slots: int = 18,
    job_s: float = 0.6,
    programs: tuple[str, ...] = ("bitcnts", "memrw", "aluadd", "pushpop", "bzip2", "openssl"),
) -> WorkloadSpec:
    """The §6.2 short-task workload (execution times < 1 s).

    Every job is forked as a brand-new task so the initial-placement
    policy (§4.6) governs where it runs.
    """
    if total_slots < 1:
        raise ValueError("need at least one slot")
    if not (math.isfinite(job_s) and job_s > 0):
        raise ValueError(
            f"job duration must be finite and positive, got {job_s!r}"
        )
    tasks = [
        TaskSpec(
            program=PROGRAMS[programs[i % len(programs)]],
            respawn="fork_new",
            solo_job_s=job_s,
        )
        for i in range(total_slots)
    ]
    return WorkloadSpec(name=f"short-tasks-x{total_slots}", tasks=tuple(tasks))


def single_program_workload(
    program_name: str, n: int = 1, respawn: str = "restart_same"
) -> WorkloadSpec:
    """``n`` instances of one program (Figures 9 and 10)."""
    return WorkloadSpec(
        name=f"{program_name}-x{n}",
        tasks=tuple(n_copies(program_name, n, respawn=respawn)),
    )
