"""Synthetic programs and workload scenario builders.

The paper's test programs (Table 2: bitcnts, memrw, aluadd, pushpop,
openssl, bzip2 — plus the Table 1 interactive set: bash, grep, sshd) are
modelled as *phase machines* over instruction mixes, calibrated so their
simulated power draw matches the published values and their
timeslice-to-timeslice power volatility matches Table 1.
"""

from repro.workloads.behavior import (
    AlternatingBehavior,
    Behavior,
    CyclicBehavior,
    InstructionMix,
    PhaseSpec,
    SpikyBehavior,
    StaticBehavior,
)
from repro.workloads.generator import (
    WorkloadSpec,
    TaskSpec,
    homogeneity_scenario,
    homogeneity_sweep,
    mixed_table2_workload,
    n_copies,
    short_task_storm,
    single_program_workload,
)
from repro.workloads.programs import PROGRAMS, ProgramSpec, program
from repro.workloads.traces import PowerTrace, TraceSegment

__all__ = [
    "AlternatingBehavior",
    "Behavior",
    "CyclicBehavior",
    "InstructionMix",
    "PROGRAMS",
    "PhaseSpec",
    "PowerTrace",
    "ProgramSpec",
    "TraceSegment",
    "SpikyBehavior",
    "StaticBehavior",
    "TaskSpec",
    "WorkloadSpec",
    "homogeneity_scenario",
    "homogeneity_sweep",
    "mixed_table2_workload",
    "n_copies",
    "program",
    "short_task_storm",
    "single_program_workload",
]
