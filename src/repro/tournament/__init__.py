"""Cross-policy tournament: every policy raced on the pinned scenarios.

See :mod:`repro.tournament.harness` for the scenario set, the scoring
rules, and the ``BENCH_policies.json`` payload format.
"""

from repro.tournament.harness import (
    DEFAULT_DURATION_S,
    POLICY_LINEUP,
    SCHEMA,
    TOURNAMENT_SCENARIOS,
    TournamentScenario,
    format_policy_report,
    run_tournament,
    tournament_scenario_by_name,
    write_policies_json,
)

__all__ = [
    "DEFAULT_DURATION_S",
    "POLICY_LINEUP",
    "SCHEMA",
    "TOURNAMENT_SCENARIOS",
    "TournamentScenario",
    "format_policy_report",
    "run_tournament",
    "tournament_scenario_by_name",
    "write_policies_json",
]
