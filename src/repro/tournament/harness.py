"""The cross-policy tournament: every registered policy, head to head.

The paper's machine has no frequency scaling (§2.3), so its policies
answer thermal pressure with migration and ``hlt`` alone; the DVFS
family models the lever the hardware lacked.  The tournament quantifies
that design space: it races every policy in
:data:`~repro.core.policyspec.POLICY_REGISTRY` across the eight pinned
benchmark configurations and emits one deterministic leaderboard,
``BENCH_policies.json``.

Determinism rules match the perf harness: the payload carries no
timings, every cell is keyed by a :class:`~repro.runner.spec.JobSpec`
whose content hash is stable across processes, and an optional
differential oracle re-runs every cell on the scalar reference path and
byte-compares the scalar summaries — so a fast-path regression in any
policy regime fails the tournament, not just the pinned-policy perf
set.

Scenario set: the eight pinned perf configurations (same machines,
seeds, workloads, and power budgets as ``repro.perf.scenarios``), minus
their pinned policies — the policy axis belongs to the tournament.
Because ``mixed-16cpu`` and ``mixed-16cpu-baseline`` differed only by
pinned policy, their tournament columns share a configuration; the
duplicate is kept deliberately — the two columns are computed
independently and must agree exactly, a determinism cross-check inside
the payload.  The two ``adv-*`` columns are :mod:`repro.scenarios`
generator specs (the adversarial worst offenders); their cells expand
the spec deterministically at run time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.core.policyspec import (
    PolicySpec,
    canonical_policy_value,
    policy_names,
)
from repro.runner.executor import JobOutcome, run_grid
from repro.runner.spec import JobSpec

SCHEMA = "repro-policies/1"

#: Uniform simulated duration per cell.  Policies race on identical
#: workloads for identical simulated time, so energy totals compare
#: directly; 60 s is long enough for balancing, hot checks, and DVFS
#: governors to reach steady behaviour on every pinned scenario.
DEFAULT_DURATION_S = 60.0

#: Everything in the registry, in registry order.  New policies join
#: the race by registering — the lineup is never hand-maintained.
POLICY_LINEUP: tuple[str, ...] = tuple(policy_names())


@dataclass(frozen=True, slots=True)
class TournamentScenario:
    """One pinned race configuration.

    ``scenario`` is the :func:`repro.scenario.parse_scenario` JSON
    shape without ``policy`` or ``duration_s`` — the tournament supplies
    both axes.
    """

    name: str
    description: str
    scenario: Mapping[str, Any]


def _mixed16(
    name: str,
    smt: bool = True,
    seed: int = 42,
    copies: int = 6,
    max_power_per_cpu_w: float | None = None,
    throttle_scope: str | None = None,
) -> dict[str, Any]:
    """The ``_Mixed16`` perf configuration as a scenario dict."""
    data: dict[str, Any] = {
        "name": name,
        "machine": {"preset": "ibm_x445", "smt": smt},
        "seed": seed,
        "workload": {"builder": "mixed_table2", "copies": copies},
    }
    if max_power_per_cpu_w is not None:
        data["max_power_per_cpu_w"] = max_power_per_cpu_w
    if throttle_scope is not None:
        data["throttle"] = {"enabled": True, "scope": throttle_scope,
                            "mode": "hlt"}
    return data


TOURNAMENT_SCENARIOS: tuple[TournamentScenario, ...] = (
    TournamentScenario(
        name="mixed-16cpu",
        description="16-CPU SMT, mixed Table-2 workload, no power budget",
        scenario=_mixed16("mixed-16cpu"),
    ),
    TournamentScenario(
        name="mixed-16cpu-baseline",
        description=(
            "same configuration as mixed-16cpu (the perf set varied only "
            "the pinned policy); doubles as a determinism cross-check"
        ),
        scenario=_mixed16("mixed-16cpu-baseline"),
    ),
    TournamentScenario(
        name="mixed-8cpu-nosmt",
        description="8-CPU non-SMT, mixed Table-2 workload, no power budget",
        scenario=_mixed16("mixed-8cpu-nosmt", smt=False, seed=7, copies=4),
    ),
    TournamentScenario(
        name="throttle-hlt",
        description="16-CPU SMT, 20 W per logical CPU budget",
        scenario=_mixed16("throttle-hlt", seed=11, max_power_per_cpu_w=20.0,
                          throttle_scope="logical"),
    ),
    TournamentScenario(
        name="throttle-package",
        description="16-CPU SMT, 40 W per package budget",
        scenario=_mixed16("throttle-package", seed=11,
                          max_power_per_cpu_w=20.0,
                          throttle_scope="package"),
    ),
    TournamentScenario(
        name="throttle-dvfs",
        description="16-CPU SMT, 20 W per logical CPU budget, seed 13",
        scenario=_mixed16("throttle-dvfs", seed=13, max_power_per_cpu_w=20.0,
                          throttle_scope="logical"),
    ),
    # The two adversarial worst offenders from repro.scenarios (same
    # generator specs as the pinned perf entries).  The dict stays the
    # *unexpanded* generator form — cell JobSpecs hash the spec, not the
    # expanded task list, so cache keys are stable and tiny.  The
    # tournament strips the generated policy/duration like any other
    # scenario keys it owns.
    TournamentScenario(
        name="adv-pingpong",
        description=(
            "Adversarial hot/cool rotation (18 W budget, 4 CPU blocks), "
            "migration ping-pong worst case"
        ),
        scenario={
            "name": "adv-pingpong",
            "generator": {
                "family": "thermal-adversarial",
                "seed": 1,
                "params": {
                    "budget_w": 18.0, "phase_scale": 0.1, "duty": 0.9,
                    "hot_jobs": 10, "cool_fill": 20, "rotate_groups": 4,
                    "jitter": 0.0, "horizon_s": 60.0,
                },
            },
        },
    ),
    TournamentScenario(
        name="adv-throttle-storm",
        description=(
            "Adversarial hot/cool rotation (15 W budget, 4 CPU blocks), "
            "hlt throttle-storm worst case"
        ),
        scenario={
            "name": "adv-throttle-storm",
            "generator": {
                "family": "thermal-adversarial",
                "seed": 1,
                "params": {
                    "budget_w": 15.0, "phase_scale": 0.12, "duty": 0.9,
                    "hot_jobs": 10, "cool_fill": 20, "rotate_groups": 4,
                    "jitter": 0.0, "horizon_s": 60.0,
                },
            },
        },
    ),
)


def tournament_scenario_by_name(name: str) -> TournamentScenario:
    """Look up a tournament scenario; ``ValueError`` lists valid names."""
    for scenario in TOURNAMENT_SCENARIOS:
        if scenario.name == name:
            return scenario
    valid = ", ".join(s.name for s in TOURNAMENT_SCENARIOS)
    raise ValueError(
        f"unknown tournament scenario {name!r}; expected one of {valid}"
    )


def cell_spec(
    scenario: TournamentScenario,
    policy: str | PolicySpec,
    duration_s: float,
    fast_path: bool = True,
) -> JobSpec:
    """The job spec for one (scenario, policy) cell.

    The scalar-reference variant differs only by the scenario
    ``options`` key, so fast and scalar results cache independently.
    """
    data = dict(scenario.scenario)
    data["policy"] = canonical_policy_value(policy)
    if not fast_path:
        data["options"] = {"fast_path": False}
    return JobSpec(scenario=data, duration_s=duration_s)


def _cell_metrics(outcome: JobOutcome) -> dict[str, Any]:
    summary = outcome.result["summary"]
    return {
        "energy_j": summary["energy"]["total_j"],
        "jobs_per_min": summary["throughput"]["jobs_per_min"],
        "throttle_fraction": summary["throttling"]["average_fraction"],
        "migrations": summary["migrations"]["total"],
        "average_frequency_scale": summary["energy"]["average_frequency_scale"],
        "dvfs_scaled_fraction": summary["energy"]["dvfs_scaled_fraction"],
    }


def _scalars_bytes(outcome: JobOutcome) -> str:
    """The canonical byte form the oracle compares."""
    return json.dumps(outcome.result["scalars"], sort_keys=True)


def _leaderboard(policies: Sequence[str], cells: list[dict]) -> list[dict]:
    """Rank policies by mean energy across the raced scenarios.

    ``wins`` counts scenarios where the policy spent the least energy
    (ties share the win); ranking tie-breaks on policy name so the
    order is total and deterministic.
    """
    by_policy: dict[str, list[dict]] = {p: [] for p in policies}
    for cell in cells:
        by_policy[cell["policy"]].append(cell)
    wins = {p: 0 for p in policies}
    by_scenario: dict[str, list[dict]] = {}
    for cell in cells:
        by_scenario.setdefault(cell["scenario"], []).append(cell)
    for group in by_scenario.values():
        best = min(cell["energy_j"] for cell in group)
        for cell in group:
            if cell["energy_j"] == best:
                wins[cell["policy"]] += 1
    rows = []
    for policy in policies:
        group = by_policy[policy]
        n = len(group)
        rows.append({
            "policy": policy,
            "mean_energy_j": sum(c["energy_j"] for c in group) / n,
            "mean_jobs_per_min": sum(c["jobs_per_min"] for c in group) / n,
            "mean_throttle_fraction": (
                sum(c["throttle_fraction"] for c in group) / n
            ),
            "mean_frequency_scale": (
                sum(c["average_frequency_scale"] for c in group) / n
            ),
            "total_migrations": sum(c["migrations"] for c in group),
            "scenarios": n,
            "wins": wins[policy],
        })
    rows.sort(key=lambda row: (row["mean_energy_j"], row["policy"]))
    for rank, row in enumerate(rows, start=1):
        row["rank"] = rank
    return rows


ProgressFn = Callable[[JobOutcome, int, int], None]


def run_tournament(
    duration_s: float = DEFAULT_DURATION_S,
    scenarios: Sequence[TournamentScenario] | None = None,
    policies: Sequence[str | PolicySpec] | None = None,
    workers: int = 1,
    cache=None,
    check_oracle: bool = True,
    progress: ProgressFn | None = None,
    bus=None,
) -> dict:
    """Race every policy on every scenario; return the payload.

    The payload is pure simulation output — no wall clocks — so two
    runs of the same tree produce byte-identical JSON whatever the
    worker count or cache state.  Raises ``RuntimeError`` if any cell
    fails to execute; an oracle mismatch is *reported* (in
    ``payload["oracle"]``), mirroring the perf harness's exit-code
    contract.
    """
    scenarios = tuple(scenarios) if scenarios else TOURNAMENT_SCENARIOS
    lineup = [
        PolicySpec.coerce(p) for p in (policies or POLICY_LINEUP)
    ]
    pairs = [(scen, pol) for scen in scenarios for pol in lineup]
    specs = [cell_spec(scen, pol, duration_s) for scen, pol in pairs]
    report = run_grid(specs, workers=workers, cache=cache, progress=progress,
                      bus=bus)
    failures = report.failures
    if failures:
        details = "; ".join(
            f"{o.spec.label}: {o.error}" for o in failures[:5]
        )
        raise RuntimeError(
            f"{len(failures)} tournament cell(s) failed: {details}"
        )

    cells = []
    for (scen, pol), outcome in zip(pairs, report.outcomes):
        cell = {"scenario": scen.name, "policy": pol.name}
        cell.update(_cell_metrics(outcome))
        cells.append(cell)

    oracle: dict[str, Any] = {"checked": False}
    if check_oracle:
        scalar_specs = [
            cell_spec(scen, pol, duration_s, fast_path=False)
            for scen, pol in pairs
        ]
        scalar_report = run_grid(
            scalar_specs, workers=workers, cache=cache, progress=progress,
            bus=bus,
        )
        scalar_failures = scalar_report.failures
        if scalar_failures:
            details = "; ".join(
                f"{o.spec.label}: {o.error}" for o in scalar_failures[:5]
            )
            raise RuntimeError(
                f"{len(scalar_failures)} oracle cell(s) failed: {details}"
            )
        mismatches = [
            f"{scen.name}/{pol.name}"
            for (scen, pol), fast, scalar in zip(
                pairs, report.outcomes, scalar_report.outcomes
            )
            if _scalars_bytes(fast) != _scalars_bytes(scalar)
        ]
        oracle = {
            "checked": True,
            "identical": not mismatches,
            "cells_compared": len(pairs),
            "mismatches": mismatches,
        }

    payload = {
        "schema": SCHEMA,
        "duration_s": float(duration_s),
        "policies": [pol.name for pol in lineup],
        "scenarios": [
            {"name": s.name, "description": s.description} for s in scenarios
        ],
        "cells": cells,
        "leaderboard": _leaderboard([pol.name for pol in lineup], cells),
        "oracle": oracle,
    }
    return payload


def write_policies_json(payload: dict, path: str = "BENCH_policies.json") -> str:
    """Write the payload (sorted keys, trailing newline); returns the path."""
    from repro.perf.harness import write_bench_json

    return write_bench_json(payload, path)


def format_policy_report(payload: dict) -> str:
    """Human-readable leaderboard plus the per-scenario energy matrix."""
    lines = [
        f"policy tournament: {len(payload['scenarios'])} scenarios x "
        f"{len(payload['policies'])} policies, "
        f"{payload['duration_s']:g} s simulated each",
        "",
        f"{'rank':>4} {'policy':<16} {'energy kJ':>10} {'jobs/min':>9} "
        f"{'thr%':>6} {'freq':>6} {'migr':>6} {'wins':>5}",
    ]
    for row in payload["leaderboard"]:
        lines.append(
            f"{row['rank']:>4} {row['policy']:<16} "
            f"{row['mean_energy_j'] / 1000.0:>10.1f} "
            f"{row['mean_jobs_per_min']:>9.2f} "
            f"{row['mean_throttle_fraction'] * 100.0:>6.1f} "
            f"{row['mean_frequency_scale']:>6.3f} "
            f"{row['total_migrations']:>6d} {row['wins']:>5d}"
        )
    lines.append("")
    lines.append(f"{'scenario':<22} " + " ".join(
        f"{p:>15}" for p in payload["policies"]
    ))
    by_key = {
        (c["scenario"], c["policy"]): c for c in payload["cells"]
    }
    for scen in payload["scenarios"]:
        cells = [
            by_key.get((scen["name"], policy))
            for policy in payload["policies"]
        ]
        lines.append(f"{scen['name']:<22} " + " ".join(
            f"{cell['energy_j'] / 1000.0:>13.1f}kJ" if cell else f"{'-':>15}"
            for cell in cells
        ))
    oracle = payload["oracle"]
    if oracle.get("checked"):
        verdict = ("scalar reference identical"
                   if oracle["identical"]
                   else f"MISMATCH in {', '.join(oracle['mismatches'])}")
        lines.append("")
        lines.append(
            f"oracle: {oracle['cells_compared']} cells re-run on the "
            f"scalar path — {verdict}"
        )
    return "\n".join(lines)
