"""Scenario files: declare an experiment as JSON, run it anywhere.

A scenario file describes machine, workload, policy, and duration:

    {
      "machine": {"preset": "ibm_x445", "smt": false},
      "max_power_per_cpu_w": 60.0,
      "seed": 7,
      "workload": {"builder": "mixed_table2", "copies": 3},
      "policy": "energy",
      "duration_s": 300
    }

Workload builders: ``mixed_table2`` (copies), ``steady_mix`` (copies,
wobble_interval_s), ``single_program`` (program, n), ``homogeneity``
(memrw/pushpop/bitcnts counts), ``short_tasks`` (slots, job_s), or an
explicit ``tasks`` list of ``{program, arrival_s?, solo_job_s?,
respawn?, nice?, cpus_allowed?, power_cap_w?}`` objects.

Optional cadence / noise keys (all pass through to
:class:`~repro.config.SystemConfig`, defaults unchanged when omitted):
``tick_ms``, ``timeslice_ms``, ``balance_interval_ms``,
``idle_balance_interval_ms``, ``hot_check_interval_ms``,
``sample_interval_s``, ``smt_thread_factor``, ``counter_jitter_sigma``,
and ``power: {"noise_sigma": ...}``.  Fleet-eligible scenarios (see
:mod:`repro.fleet`) pin ``counter_jitter_sigma`` and ``noise_sigma``
to 0.

Used by ``python -m repro run-file <scenario.json>`` and directly via
:func:`load_scenario` / :func:`run_scenario_dict`.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, replace as dataclasses_replace

from repro.api import RunOptions, SimulationResult, run_simulation
from repro.config import SystemConfig
from repro.core.policyspec import PolicySpec
from repro.cpu.thermal import ThermalParams
from repro.cpu.throttle import ThrottleConfig
from repro.cpu.topology import MachineSpec
from repro.cpu.power import PowerModelParams
from repro.workloads.generator import (
    TaskSpec,
    WorkloadSpec,
    homogeneity_scenario,
    mixed_table2_workload,
    short_task_storm,
    single_program_workload,
    steady_mix_workload,
)
from repro.workloads.programs import program


@dataclass(frozen=True, slots=True)
class Scenario:
    """A parsed, runnable scenario.

    ``policy`` stays a plain string for param-less policies (everything
    pre-PolicySpec scenario files can express), and becomes a
    :class:`~repro.core.policyspec.PolicySpec` when the scenario sets
    policy parameters — either spelling coerces wherever it is used.
    """

    config: SystemConfig
    workload: WorkloadSpec
    policy: str | PolicySpec
    duration_s: float

    def run(
        self, validate=False, obs=False, options: RunOptions | None = None
    ) -> SimulationResult:
        if options is not None:
            if validate or obs:
                raise ValueError(
                    "pass validate/obs inside options= when using RunOptions"
                )
            # The scenario's own policy/duration fill unset option fields.
            merged = dataclasses_replace(
                options,
                policy=(
                    options.policy if options.policy is not None else self.policy
                ),
                duration_s=(
                    options.duration_s
                    if options.duration_s is not None
                    else self.duration_s
                ),
            )
            return run_simulation(self.config, self.workload, options=merged)
        return run_simulation(
            self.config, self.workload, policy=self.policy,
            duration_s=self.duration_s, validate=validate, obs=obs,
        )


def _parse_machine(spec: dict) -> MachineSpec:
    preset = spec.get("preset")
    if preset == "ibm_x445":
        return MachineSpec.ibm_x445(smt=bool(spec.get("smt", True)))
    if preset == "smp":
        return MachineSpec.smp(int(spec["n_cpus"]))
    if preset == "cmp":
        return MachineSpec.cmp(
            packages=int(spec.get("packages", 2)),
            cores=int(spec.get("cores", 2)),
            smt=bool(spec.get("smt", False)),
        )
    if preset is not None:
        raise ValueError(f"unknown machine preset {preset!r}")
    return MachineSpec(
        nodes=int(spec.get("nodes", 1)),
        packages_per_node=int(spec.get("packages_per_node", 1)),
        cores_per_package=int(spec.get("cores_per_package", 1)),
        threads_per_core=int(spec.get("threads_per_core", 1)),
    )


def _parse_thermal(spec, n_packages: int):
    if spec is None:
        return ThermalParams()
    if isinstance(spec, list):
        if len(spec) != n_packages:
            raise ValueError(
                f"need {n_packages} per-package thermal entries, got {len(spec)}"
            )
        return tuple(_parse_thermal(entry, 1) for entry in spec)
    return ThermalParams(
        r_k_per_w=float(spec.get("r_k_per_w", 0.30)),
        c_j_per_k=float(spec.get("c_j_per_k", 66.7)),
        ambient_c=float(spec.get("ambient_c", 25.0)),
    )


def _parse_task(entry: dict) -> TaskSpec:
    return TaskSpec(
        program=program(entry["program"]),
        arrival_s=float(entry.get("arrival_s", 0.0)),
        solo_job_s=(
            float(entry["solo_job_s"]) if "solo_job_s" in entry else None
        ),
        respawn=entry.get("respawn", "restart_same"),
        nice=int(entry.get("nice", 0)),
        cpus_allowed=(
            tuple(entry["cpus_allowed"]) if "cpus_allowed" in entry else None
        ),
        power_cap_w=(
            float(entry["power_cap_w"]) if "power_cap_w" in entry else None
        ),
    )


def _parse_workload(spec: dict) -> WorkloadSpec:
    if "tasks" in spec:
        tasks = tuple(_parse_task(entry) for entry in spec["tasks"])
        return WorkloadSpec(name=spec.get("name", "scenario"), tasks=tasks)
    builder = spec.get("builder")
    if builder == "mixed_table2":
        return mixed_table2_workload(int(spec.get("copies", 3)))
    if builder == "steady_mix":
        return steady_mix_workload(
            int(spec.get("copies", 4)),
            wobble_interval_s=float(spec.get("wobble_interval_s", 10.0)),
        )
    if builder == "single_program":
        return single_program_workload(
            spec["program"], int(spec.get("n", 1))
        )
    if builder == "homogeneity":
        return homogeneity_scenario(
            int(spec["memrw"]), int(spec["pushpop"]), int(spec["bitcnts"])
        )
    if builder == "short_tasks":
        return short_task_storm(
            total_slots=int(spec.get("slots", 18)),
            job_s=float(spec.get("job_s", 0.6)),
        )
    raise ValueError(f"unknown workload builder {builder!r}")


def parse_scenario(data: dict) -> Scenario:
    """Build a runnable scenario from a parsed JSON object.

    A dict carrying a top-level ``generator`` key is expanded through
    the scenario registry first (:mod:`repro.scenarios`): the named
    family generates the base scenario from the spec's seed, and the
    dict's remaining keys override it.  The import is lazy because
    ``repro.scenarios`` builds on this module.
    """
    if "generator" in data:
        from repro.scenarios import expand_generated

        data = expand_generated(data)
    machine = _parse_machine(data.get("machine", {"preset": "ibm_x445"}))
    throttle_spec = data.get("throttle", {})
    throttle = ThrottleConfig(
        enabled=bool(throttle_spec.get("enabled", False)),
        scope=throttle_spec.get("scope", "logical"),
        mode=throttle_spec.get("mode", "hlt"),
    )
    kwargs = {}
    # Cadence / noise knobs pass straight through to SystemConfig when
    # present; omitted keys keep the dataclass defaults (so existing
    # scenario files parse to the exact same config as before).  The
    # fleet engine's eligibility rules read these — a fleet-ready
    # scenario pins noise_sigma and counter_jitter_sigma to 0.
    for key, conv in (
        ("tick_ms", int),
        ("timeslice_ms", int),
        ("balance_interval_ms", int),
        ("idle_balance_interval_ms", int),
        ("hot_check_interval_ms", int),
        ("sample_interval_s", float),
        ("smt_thread_factor", float),
        ("counter_jitter_sigma", float),
    ):
        if key in data:
            kwargs[key] = conv(data[key])
    power_spec = data.get("power")
    if power_spec is not None:
        kwargs["power"] = PowerModelParams(
            noise_sigma=float(power_spec.get("noise_sigma", 0.015)),
        )
    config = SystemConfig(
        machine=machine,
        thermal=_parse_thermal(data.get("thermal"), machine.n_packages),
        temp_limit_c=data.get("temp_limit_c"),
        max_power_per_cpu_w=data.get("max_power_per_cpu_w"),
        throttle=throttle,
        seed=int(data.get("seed", 1)),
        **kwargs,
    )
    # Accepts a name string or a {"name": ..., "params": {...}} mapping;
    # unknown names/params raise here, before any run starts.  Param-less
    # policies stay plain strings so `scenario.policy == "energy"` and
    # every older call site keep working byte-for-byte.
    spec = PolicySpec.coerce(data.get("policy", "energy"))
    return Scenario(
        config=config,
        workload=_parse_workload(data["workload"]),
        policy=spec.name if not spec.params else spec,
        duration_s=float(data.get("duration_s", 300.0)),
    )


def load_scenario(path: str | pathlib.Path) -> Scenario:
    """Parse a scenario JSON file."""
    text = pathlib.Path(path).read_text()
    return parse_scenario(json.loads(text))
