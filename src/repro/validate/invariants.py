"""Runtime invariant registry and checker.

The paper's correctness rests on properties the simulator asserts
nowhere at runtime: Eq. 1 energy accounting must conserve, the §4.4
dual hysteresis must forbid a pull unless *both* power ratios exceed
the local ones, §4.5 hot-task migration must never fire off a
multi-task runqueue.  This module catalogues those properties as
checkable predicates over :class:`repro.system.System` state and
installs lightweight hooks to evaluate them while a simulation runs —
the schedule-against-invariants shape of temperature-aware scheduling
analyses (arXiv:0801.4238) rather than endpoint-only testing.

Three hook surfaces:

* :meth:`InvariantChecker.after_tick` — tick invariants (energy
  conservation, thermal bounds, EWMA decay, bookkeeping), sampled every
  ``sample_every`` ticks;
* :meth:`InvariantChecker.before_migration` — event invariants
  evaluated on the pre-migration state (hysteresis, hot-migration
  preconditions);
* :meth:`InvariantChecker.on_placement` — the §4.6 minimum-runqueue-
  length rule for newly forked tasks.

Validation is off by default; :class:`repro.system.System` installs a
checker only when built with ``validate=``, and the disabled cost is a
single ``is None`` test per hook site.  The pure ``*_violation``
helpers at the bottom take scheduler state directly so property tests
can drive them over arbitrary topologies without a full system.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.core.energy_balance import EnergyBalanceConfig
from repro.core.hot_migration import HotMigrationConfig
from repro.core.metrics import MetricsBoard
from repro.cpu.topology import Topology
from repro.sched.runqueue import RunQueue
from repro.sched.task import Task, TaskState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.sim.clock import Clock
    from repro.system import System

#: Fault kinds a :class:`repro.validate.faults.FaultPlan` can activate;
#: each invariant lists the kinds that legitimately break it.
FAULT_KINDS = (
    "counter_read",      # jitter spikes on counter reads
    "counter_register",  # raw corruption of a counter register
    "migration_drop",    # migration requests silently dropped
    "thermal",           # heat-sink coefficient jitter / sensor drift
)


class InvariantViolation(AssertionError):
    """Raised in ``mode='raise'`` when an invariant fails."""


@dataclass(frozen=True, slots=True)
class Violation:
    """One recorded invariant failure."""

    tick: int
    invariant: str
    message: str

    def to_dict(self) -> dict:
        return {
            "tick": self.tick,
            "invariant": self.invariant,
            "message": self.message,
        }


@dataclass(frozen=True, slots=True)
class Invariant:
    """Registry entry: one checkable predicate over system state.

    Attributes
    ----------
    name:
        Stable identifier (violations and reports key on it).
    kind:
        ``tick`` (evaluated by :meth:`InvariantChecker.after_tick`),
        ``migration`` or ``placement`` (event hooks).
    paper_ref:
        The paper section the predicate encodes.
    fault_sensitive:
        Fault kinds (see :data:`FAULT_KINDS`) that are *expected* to
        break the invariant — under such a fault a failure is reported,
        not treated as a breach.
    """

    name: str
    kind: str
    paper_ref: str
    description: str
    fault_sensitive: frozenset[str] = frozenset()


REGISTRY: tuple[Invariant, ...] = (
    Invariant(
        "energy-package-conservation", "tick", "§3.2, Eq. 1",
        "Estimated package power equals the sum of its running CPUs' "
        "per-tick Eq. 1 estimates (halted packages draw the hlt power).",
    ),
    Invariant(
        "energy-task-accounting", "tick", "§3.3",
        "Between consecutive ticks the total energy charged to tasks "
        "grows by exactly the energy the execution step estimated.",
    ),
    Invariant(
        "energy-nonnegative", "tick", "§3.2",
        "Every power and energy quantity is finite and non-negative.",
    ),
    Invariant(
        "temperature-rc-bounds", "tick", "§4.2",
        "Package temperatures stay between ambient and the RC model's "
        "steady state for a generous power cap.",
        fault_sensitive=frozenset({"thermal"}),
    ),
    Invariant(
        "ewma-thermal-decay", "tick", "§4.3",
        "Each thermal-power EWMA step is a contraction: the new value "
        "lies between the previous value and the tick's input power.",
    ),
    Invariant(
        "counter-bounds", "tick", "§3.1/§5",
        "Event counter registers stay within [0, 2^40).",
        fault_sensitive=frozenset({"counter_register"}),
    ),
    Invariant(
        "runqueue-bookkeeping", "tick", "§4.1/§5",
        "Each runqueue's cached length matches its membership and every "
        "member's CPU back-reference and state are consistent.",
    ),
    Invariant(
        "task-residency", "tick", "§4.1",
        "Every runnable task sits on exactly one runqueue, blocked "
        "tasks on none, and domain groups partition their spans.",
    ),
    Invariant(
        "throttle-state", "tick", "§6.2",
        "Throttle and DVFS state agree with the configured temperature-"
        "control mode; frequency scales stay in (0, 1].",
    ),
    Invariant(
        "dvfs-energy-accounting", "tick", "§2.3/Eq. 1",
        "Frequency scales come off the configured DVFS ladder (exactly "
        "1.0 outside DVFS mode) and each package's accumulated energy "
        "grows by estimated power x tick time between consecutive ticks.",
    ),
    Invariant(
        "placement-cache-consistency", "tick", "§4.6",
        "The inode-keyed first-timeslice table holds finite non-negative "
        "powers for inodes the workload actually runs.",
    ),
    Invariant(
        "balance-hysteresis", "migration", "§4.4",
        "An energy-balance pull requires the source to exceed the "
        "destination on *both* enabled power ratios plus margins.",
    ),
    Invariant(
        "hot-migration-preconditions", "migration", "§4.5/§4.7",
        "Hot-task migration fires only off a single-task queue near its "
        "package power limit, onto a considerably cooler package.",
    ),
    Invariant(
        "placement-min-length", "placement", "§4.6",
        "A new task is placed on a CPU with the minimum runqueue length "
        "among its allowed CPUs.",
    ),
)

_BY_NAME: dict[str, Invariant] = {inv.name: inv for inv in REGISTRY}


def invariant_by_name(name: str) -> Invariant:
    """Look up a registry entry; raises ``ValueError`` with valid names."""
    try:
        return _BY_NAME[name]
    except KeyError:
        valid = ", ".join(sorted(_BY_NAME))
        raise ValueError(
            f"unknown invariant {name!r}; expected one of {valid}"
        ) from None


@dataclass(frozen=True, slots=True)
class ValidationConfig:
    """How the checker runs.

    Attributes
    ----------
    sample_every:
        Evaluate tick invariants every N ticks (1 = every tick).  The
        two history-coupled invariants (task-energy accounting, EWMA
        decay) need consecutive samples and skip themselves when N > 1.
    mode:
        ``record`` collects :class:`Violation` objects; ``raise``
        raises :class:`InvariantViolation` on the first failure.
    only:
        Restrict checking to these invariant names (``None`` = all).
    """

    sample_every: int = 1
    mode: str = "record"
    only: frozenset[str] | None = None

    def __post_init__(self) -> None:
        if self.sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        if self.mode not in ("record", "raise"):
            raise ValueError(f"unknown validation mode {self.mode!r}")
        if self.only is not None:
            for name in self.only:
                invariant_by_name(name)


class InvariantChecker:
    """Evaluates the registry against one live :class:`System`.

    Installed by ``System(..., validate=...)``; the system calls the
    three hooks from its tick loop, migration callback, and fork path.
    """

    #: Tolerance for recomputed-float comparisons.  Both tick paths are
    #: bit-identical by construction, so the slack only absorbs the
    #: one-ulp effects of re-deriving sums in a different expression.
    REL_TOL = 1e-9
    ABS_TOL = 1e-9

    def __init__(self, system: "System", config: ValidationConfig | None = None) -> None:
        self.system = system
        self.config = config if config is not None else ValidationConfig()
        self.violations: list[Violation] = []
        #: invariant name -> evaluations performed (reporting/tests).
        self.checks_run: dict[str, int] = {}
        self._enabled = {
            inv.name
            for inv in REGISTRY
            if self.config.only is None or inv.name in self.config.only
        }
        self._last_tick = -1
        # History for the consecutive-tick invariants.
        self._prev_tick = -1
        self._prev_thermal: list[float] | None = None
        self._prev_task_energy: float | None = None
        self._prev_pkg_energy: list[float] | None = None

    # -- reporting ----------------------------------------------------------
    @property
    def violation_count(self) -> int:
        return len(self.violations)

    def violations_for(self, name: str) -> list[Violation]:
        return [v for v in self.violations if v.invariant == name]

    def _emit(self, tick: int, name: str, message: str) -> None:
        violation = Violation(tick=tick, invariant=name, message=message)
        if self.config.mode == "raise":
            raise InvariantViolation(f"[tick {tick}] {name}: {message}")
        self.violations.append(violation)

    def _ran(self, name: str) -> None:
        self.checks_run[name] = self.checks_run.get(name, 0) + 1

    # -- hook: per tick -----------------------------------------------------
    def after_tick(self, clock: "Clock") -> None:
        if clock.ticks % self.config.sample_every != 0:
            return
        self.check_now(clock.ticks, clock.tick_s)

    def check_now(self, tick: int, tick_s: float) -> None:
        """Run every enabled tick invariant against the current state."""
        self._last_tick = tick
        enabled = self._enabled
        if "energy-package-conservation" in enabled:
            self._check_package_conservation(tick)
        if "energy-task-accounting" in enabled:
            self._check_task_accounting(tick, tick_s)
        if "energy-nonnegative" in enabled:
            self._check_nonnegative(tick)
        if "temperature-rc-bounds" in enabled:
            self._check_temperature_bounds(tick)
        if "ewma-thermal-decay" in enabled:
            self._check_ewma_decay(tick)
        if "counter-bounds" in enabled:
            self._check_counter_bounds(tick)
        if "runqueue-bookkeeping" in enabled:
            self._check_runqueue_bookkeeping(tick)
        if "task-residency" in enabled:
            self._check_task_residency(tick)
        if "throttle-state" in enabled:
            self._check_throttle_state(tick)
        if "dvfs-energy-accounting" in enabled:
            self._check_dvfs_energy(tick, tick_s)
        if "placement-cache-consistency" in enabled:
            self._check_placement_cache(tick)
        # Snapshot for the next sample's history-coupled checks.
        self._prev_tick = tick
        self._prev_thermal = list(self.system.metrics.thermal_w)
        self._prev_task_energy = self._task_energy_sum()
        self._prev_pkg_energy = list(self.system._pkg_energy_j)

    # -- hook: migration events --------------------------------------------
    def before_migration(self, task: Task, src: int, dst: int, reason: str) -> None:
        """Validate a migration request against the pre-move state."""
        system = self.system
        tick = self._last_tick if self._last_tick >= 0 else 0
        policy_config = getattr(system.policy, "config", None)
        if reason == "energy_balance" and "balance-hysteresis" in self._enabled:
            self._ran("balance-hysteresis")
            balance = getattr(policy_config, "balance", None)
            message = hysteresis_violation(
                system.metrics,
                balance if balance is not None else EnergyBalanceConfig(),
                src,
                dst,
            )
            if message is not None:
                self._emit(tick, "balance-hysteresis", message)
        elif reason == "hot_task" and "hot-migration-preconditions" in self._enabled:
            self._ran("hot-migration-preconditions")
            hot = getattr(policy_config, "hot", None)
            message = hot_migration_violation(
                system.metrics,
                system.runqueues,
                system.topology,
                hot if hot is not None else HotMigrationConfig(),
                task,
                src,
                dst,
            )
            if message is not None:
                self._emit(tick, "hot-migration-preconditions", message)

    # -- hook: placement ----------------------------------------------------
    def on_placement(self, task: Task, chosen: int) -> None:
        """Validate a §4.6 placement decision before the enqueue."""
        if "placement-min-length" not in self._enabled:
            return
        self._ran("placement-min-length")
        message = placement_violation(self.system.runqueues, task, chosen)
        if message is not None:
            tick = self._last_tick if self._last_tick >= 0 else 0
            self._emit(tick, "placement-min-length", message)

    # -- tick invariants ----------------------------------------------------
    def _close(self, a: float, b: float) -> bool:
        return math.isclose(a, b, rel_tol=self.REL_TOL, abs_tol=self.ABS_TOL)

    def _task_energy_sum(self) -> float:
        """Total energy charged to tasks, summed in stable pid order.

        Sorting makes the accumulation independent of slot/exit order,
        so violation diffs are stable across runs and Python versions
        (the same reason the Eq. 1 counter summary sorts its keys).
        """
        system = self.system
        tasks = [t for t in system.live_tasks()] + list(system.exited_tasks)
        return sum(t.total_energy_j for t in sorted(tasks, key=lambda t: t.pid))

    def _check_package_conservation(self, tick: int) -> None:
        self._ran("energy-package-conservation")
        system = self.system
        halted_w = system.config.power.halted_package_w
        for pkg, cpus in enumerate(system._pkg_cpus):
            est_sum = 0.0
            any_running = False
            for c in cpus:
                if system._running[c]:
                    any_running = True
                    est_sum += system._est_power[c]
            expected = est_sum if any_running else halted_w
            actual = system._est_pkg_power[pkg]
            if not self._close(actual, expected):
                self._emit(
                    tick, "energy-package-conservation",
                    f"package {pkg}: recorded {actual!r} W but running-CPU "
                    f"Eq. 1 estimates sum to {expected!r} W",
                )

    def _check_task_accounting(self, tick: int, tick_s: float) -> None:
        if self._prev_tick != tick - 1 or self._prev_task_energy is None:
            return  # needs consecutive samples
        self._ran("energy-task-accounting")
        system = self.system
        charged = sum(p * tick_s for p in system._est_power)
        actual = self._task_energy_sum() - self._prev_task_energy
        if not math.isclose(actual, charged, rel_tol=1e-6, abs_tol=1e-9):
            self._emit(
                tick, "energy-task-accounting",
                f"task energies grew by {actual!r} J this tick but the "
                f"execution step estimated {charged!r} J",
            )

    def _check_nonnegative(self, tick: int) -> None:
        self._ran("energy-nonnegative")
        system = self.system

        def bad(value: float) -> bool:
            return not math.isfinite(value) or value < 0.0

        for c in range(system.n_cpus):
            if bad(system._est_power[c]) or bad(system._dyn_power[c]):
                self._emit(
                    tick, "energy-nonnegative",
                    f"CPU {c}: est/dyn power "
                    f"({system._est_power[c]!r}/{system._dyn_power[c]!r}) W",
                )
            if bad(system._interval_energy[c]):
                self._emit(
                    tick, "energy-nonnegative",
                    f"CPU {c}: interval energy {system._interval_energy[c]!r} J",
                )
            if bad(system.metrics.thermal_w[c]):
                self._emit(
                    tick, "energy-nonnegative",
                    f"CPU {c}: thermal power {system.metrics.thermal_w[c]!r} W",
                )
        for task in system.live_tasks() + system.exited_tasks:
            if bad(task.total_energy_j) or bad(task.profile_power_w):
                self._emit(
                    tick, "energy-nonnegative",
                    f"task pid={task.pid}: energy {task.total_energy_j!r} J, "
                    f"profile {task.profile_power_w!r} W",
                )

    def _check_temperature_bounds(self, tick: int) -> None:
        self._ran("temperature-rc-bounds")
        system = self.system
        config = system.config
        floor_slack_c = 1.0
        for pkg in range(config.machine.n_packages):
            cap_c = temperature_cap_c(config, pkg)
            floor_c = config.thermal_for_package(pkg).ambient_c - floor_slack_c
            for label, temp in (
                ("true", system.true_rc[pkg].temperature_c),
                ("estimated", system.est_rc[pkg].temperature_c),
            ):
                if not (floor_c <= temp <= cap_c) or not math.isfinite(temp):
                    self._emit(
                        tick, "temperature-rc-bounds",
                        f"package {pkg}: {label} temperature {temp!r} degC "
                        f"outside RC bounds [{floor_c:.1f}, {cap_c:.1f}]",
                    )

    def _ewma_inputs(self) -> list[float]:
        """Recompute this tick's thermal-EWMA input powers.

        Mirrors the idle/halted attribution of both thermal steps: a
        running CPU feeds its Eq. 1 estimate, a fully halted package
        spreads the hlt draw over its threads, an idle thread beside a
        busy sibling contributes nothing.
        """
        system = self.system
        pkg_all_halted = [
            not any(system._running[c] for c in cpus)
            for cpus in system._pkg_cpus
        ]
        inputs = []
        for c in range(system.n_cpus):
            if system._running[c]:
                inputs.append(system._est_power[c])
            elif pkg_all_halted[system._pkg_of[c]]:
                inputs.append(system._halted_share_w)
            else:
                inputs.append(0.0)
        return inputs

    def _check_ewma_decay(self, tick: int) -> None:
        if self._prev_tick != tick - 1 or self._prev_thermal is None:
            return  # needs consecutive samples
        self._ran("ewma-thermal-decay")
        system = self.system
        inputs = self._ewma_inputs()
        thermal = system.metrics.thermal_w
        for c in range(system.n_cpus):
            prev = self._prev_thermal[c]
            new = thermal[c]
            lo = min(prev, inputs[c])
            hi = max(prev, inputs[c])
            slack = self.ABS_TOL + self.REL_TOL * max(abs(lo), abs(hi))
            if not (lo - slack <= new <= hi + slack):
                self._emit(
                    tick, "ewma-thermal-decay",
                    f"CPU {c}: thermal EWMA moved {prev!r} -> {new!r} W, "
                    f"outside the contraction toward input {inputs[c]!r} W",
                )

    def _check_counter_bounds(self, tick: int) -> None:
        self._ran("counter-bounds")
        system = self.system
        counts = system._counts_mx
        modulus = system._counter_modulus
        # The valid-mask form (not its complement) catches NaN corruption
        # too: a NaN register fails *both* range comparisons.
        valid = (counts >= 0.0) & (counts < modulus)
        if not valid.all():
            for c in range(system.n_cpus):
                if not valid[c].all():
                    self._emit(
                        tick, "counter-bounds",
                        f"CPU {c}: counter registers {counts[c].tolist()} "
                        f"outside [0, {modulus:.0f})",
                    )

    def _check_runqueue_bookkeeping(self, tick: int) -> None:
        self._ran("runqueue-bookkeeping")
        for rq in self.system.runqueues.values():
            expected_nr = (1 if rq.current is not None else 0) + len(rq._queue)
            if rq.nr != expected_nr:
                self._emit(
                    tick, "runqueue-bookkeeping",
                    f"CPU {rq.cpu_id}: nr={rq.nr} but membership counts "
                    f"{expected_nr}",
                )
            if rq.current is not None and rq.current.state is not TaskState.RUNNING:
                self._emit(
                    tick, "runqueue-bookkeeping",
                    f"CPU {rq.cpu_id}: current pid={rq.current.pid} in state "
                    f"{rq.current.state.value}",
                )
            for task in rq._queue:
                if task.state is not TaskState.READY:
                    self._emit(
                        tick, "runqueue-bookkeeping",
                        f"CPU {rq.cpu_id}: queued pid={task.pid} in state "
                        f"{task.state.value}",
                    )
            for task in rq.tasks():
                if task.cpu != rq.cpu_id:
                    self._emit(
                        tick, "runqueue-bookkeeping",
                        f"CPU {rq.cpu_id}: member pid={task.pid} back-"
                        f"references CPU {task.cpu}",
                    )

    def _check_task_residency(self, tick: int) -> None:
        self._ran("task-residency")
        system = self.system
        occurrences: dict[int, int] = {}
        for rq in system.runqueues.values():
            for task in rq.tasks():
                occurrences[task.pid] = occurrences.get(task.pid, 0) + 1
        blocked_pids = {task.pid for _, task, _ in system._blocked}
        for task in system.live_tasks():
            count = occurrences.get(task.pid, 0)
            if task.is_runnable and count != 1:
                self._emit(
                    tick, "task-residency",
                    f"runnable pid={task.pid} appears on {count} runqueues",
                )
            elif task.state is TaskState.BLOCKED and (
                count != 0 or task.pid not in blocked_pids
            ):
                self._emit(
                    tick, "task-residency",
                    f"blocked pid={task.pid} on {count} runqueues "
                    f"(in wait list: {task.pid in blocked_pids})",
                )
        for cpu in range(system.n_cpus):
            for domain in system.hierarchy.chain(cpu):
                covered = sorted(c for g in domain.groups for c in g.cpus)
                if covered != sorted(domain.span):
                    self._emit(
                        tick, "task-residency",
                        f"domain {domain.name!r}: groups do not partition "
                        f"span {domain.span}",
                    )

    def _check_throttle_state(self, tick: int) -> None:
        self._ran("throttle-state")
        system = self.system
        throttle_config = system.config.throttle
        hlt_active = throttle_config.enabled and throttle_config.mode == "hlt"
        for c in range(system.n_cpus):
            scale = system._freq_scale[c]
            if not (0.0 < scale <= 1.0):
                self._emit(
                    tick, "throttle-state",
                    f"CPU {c}: frequency scale {scale!r} outside (0, 1]",
                )
            if system.throttle.throttled[c] and not hlt_active:
                self._emit(
                    tick, "throttle-state",
                    f"CPU {c}: throttled although hlt temperature control "
                    f"is not active (enabled={throttle_config.enabled}, "
                    f"mode={throttle_config.mode!r})",
                )
            if scale < 1.0 and not system._dvfs_mode:
                self._emit(
                    tick, "throttle-state",
                    f"CPU {c}: frequency scale {scale!r} < 1 outside DVFS mode",
                )

    def _check_dvfs_energy(self, tick: int, tick_s: float) -> None:
        self._ran("dvfs-energy-accounting")
        system = self.system
        ladder = set(system.dvfs.config.levels)
        for c in range(system.n_cpus):
            scale = system._freq_scale[c]
            if system._dvfs_mode:
                if scale not in ladder:
                    self._emit(
                        tick, "dvfs-energy-accounting",
                        f"CPU {c}: frequency scale {scale!r} is not on the "
                        f"configured ladder {sorted(ladder, reverse=True)}",
                    )
            elif scale != 1.0:
                self._emit(
                    tick, "dvfs-energy-accounting",
                    f"CPU {c}: frequency scale {scale!r} != 1.0 although "
                    "DVFS is not active",
                )
        for pkg, total in enumerate(system._pkg_energy_j):
            if not math.isfinite(total) or total < 0.0:
                self._emit(
                    tick, "dvfs-energy-accounting",
                    f"package {pkg}: accumulated energy {total!r} J",
                )
        # Frequency-aware Eq. 1 conservation: between consecutive ticks
        # the ledger grows by exactly est-power x tick (the DVFS-scaled
        # estimate, so the invariant holds at any frequency).
        if self._prev_tick != tick - 1 or self._prev_pkg_energy is None:
            return  # needs consecutive samples
        for pkg in range(len(system._pkg_energy_j)):
            grew = system._pkg_energy_j[pkg] - self._prev_pkg_energy[pkg]
            expected = system._est_pkg_power[pkg] * tick_s
            if not self._close(grew, expected):
                self._emit(
                    tick, "dvfs-energy-accounting",
                    f"package {pkg}: energy grew {grew!r} J this tick but "
                    f"estimated power x tick is {expected!r} J",
                )

    def _check_placement_cache(self, tick: int) -> None:
        placement = getattr(self.system.policy, "placement", None)
        if placement is None:
            return  # baseline policy has no first-timeslice table
        self._ran("placement-cache-consistency")
        known_inodes = {
            slot.spec.program.inode for slot in self.system.slots
        }
        for inode, power_w in sorted(placement._first_slice_power.items()):
            if not math.isfinite(power_w) or power_w < 0.0:
                self._emit(
                    tick, "placement-cache-consistency",
                    f"inode {inode}: first-timeslice power {power_w!r} W",
                )
            if inode not in known_inodes:
                self._emit(
                    tick, "placement-cache-consistency",
                    f"inode {inode} in the first-timeslice table but no "
                    f"workload slot runs that binary",
                )


# ---------------------------------------------------------------------------
# Pure predicate helpers — usable without a System (property tests, the
# event hooks above, ad-hoc harnesses).
# ---------------------------------------------------------------------------

def temperature_cap_c(config, package: int) -> float:
    """A generous upper bound on a package's RC temperature.

    Derived from the *configured* thermal parameters (not the live RC
    objects), so a fault that perturbs the heat-sink coefficients or
    drifts the sensor is detected as a model mismatch.  The power cap
    allows 60 W of dynamic power per thread on top of the active base —
    far above any calibrated program — plus 25% meter-noise headroom.
    """
    params = config.thermal_for_package(package)
    threads = config.machine.threads_per_core * config.machine.cores_per_package
    cap_w = (config.power.base_active_w + 60.0 * threads) * 1.25
    return params.steady_state_c(cap_w)


def hysteresis_violation(
    metrics: MetricsBoard,
    config: EnergyBalanceConfig,
    src: int,
    dst: int,
) -> str | None:
    """§4.4 dual condition for an ``energy_balance`` pull from ``src``
    to ``dst``; returns a message when the pull is forbidden."""
    problems = []
    if config.use_thermal_condition:
        src_ratio = metrics.thermal_power_ratio(src)
        dst_ratio = metrics.thermal_power_ratio(dst)
        if not src_ratio > dst_ratio + config.thermal_margin_ratio:
            problems.append(
                f"thermal ratio {src_ratio:.4f} !> {dst_ratio:.4f} + "
                f"{config.thermal_margin_ratio}"
            )
    if config.use_rq_condition:
        src_ratio = metrics.runqueue_power_ratio(src)
        dst_ratio = metrics.runqueue_power_ratio(dst)
        if not src_ratio > dst_ratio + config.rq_margin_ratio:
            problems.append(
                f"runqueue ratio {src_ratio:.4f} !> {dst_ratio:.4f} + "
                f"{config.rq_margin_ratio}"
            )
    if not problems:
        return None
    return (
        f"energy-balance pull {src} -> {dst} without hysteresis: "
        + "; ".join(problems)
    )


def hot_migration_violation(
    metrics: MetricsBoard,
    runqueues: Mapping[int, RunQueue],
    topology: Topology,
    config: HotMigrationConfig,
    task: Task,
    src: int,
    dst: int,
) -> str | None:
    """§4.5 preconditions for a ``hot_task`` move; ``None`` when legal."""
    problems = []
    if runqueues[src].nr_running != 1:
        problems.append(
            f"source queue holds {runqueues[src].nr_running} tasks (need 1)"
        )
    source_heat = metrics.package_thermal_sum_w(src)
    limit = metrics.package_max_power_w(src)
    if not source_heat > limit - config.trigger_margin_w:
        problems.append(
            f"source package {source_heat:.2f} W not within "
            f"{config.trigger_margin_w} W of its {limit:.2f} W limit"
        )
    dest_heat = metrics.package_thermal_sum_w(dst)
    if source_heat - dest_heat < config.min_delta_w:
        problems.append(
            f"destination only {source_heat - dest_heat:.2f} W cooler "
            f"(need >= {config.min_delta_w} W)"
        )
    if topology.package_of(src) == topology.package_of(dst):
        problems.append("destination shares the source package (§4.7)")
    dest_rq = runqueues[dst]
    if not dest_rq.is_idle:
        current = dest_rq.current
        single_cool = (
            dest_rq.nr_running == 1
            and current is not None
            and current.profile_power_w
            < task.profile_power_w - config.cool_task_margin_w
        )
        if not single_cool:
            problems.append(
                f"destination queue neither idle nor running a single "
                f"cool task (nr={dest_rq.nr_running})"
            )
    if not problems:
        return None
    return f"hot-task migration {src} -> {dst}: " + "; ".join(problems)


def placement_violation(
    runqueues: Mapping[int, RunQueue],
    task: Task,
    chosen: int,
) -> str | None:
    """§4.6 minimum-runqueue-length rule; ``None`` when legal."""
    allowed = [cpu for cpu in runqueues if task.allowed_on(cpu)]
    if chosen not in allowed:
        return (
            f"placement chose CPU {chosen}, outside the affinity set "
            f"{sorted(allowed)}"
        )
    min_len = min(runqueues[cpu].nr_running for cpu in allowed)
    if runqueues[chosen].nr_running != min_len:
        return (
            f"placement chose CPU {chosen} with {runqueues[chosen].nr_running} "
            f"runnable tasks; minimum over allowed CPUs is {min_len}"
        )
    return None
