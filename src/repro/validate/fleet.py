"""Lockstep differential validation of the fleet engine.

The fleet engine (:mod:`repro.fleet`) is an independent implementation
of the tick loop — SoA arrays with a leading machine axis instead of
per-system Python objects — so the scalar engine doubles as its
differential oracle.  :func:`fleet_lockstep` advances N scalar systems
and one N-member :class:`~repro.fleet.FleetEngine` built from identical
configurations tick by tick, flushing the fleet's arrays back into its
member ``System`` objects and diffing each member against its scalar
twin with the same :func:`repro.validate.oracle.probe` snapshot the
fast/scalar oracle uses.

Reporting is per machine: the first divergent probe of *each* member is
recorded (tick, unequal fields, both values), so one bad machine in a
64-wide batch is named by index and seed instead of drowning in an
aggregate mismatch.  As with :func:`~repro.validate.oracle.replay_pair`,
the replay runs to completion and final summaries are compared byte for
byte — a divergence that cancels out is distinguished from one that
compounds.

``python -m repro validate`` runs this check over the pinned fleet
benchmark scenario (see :mod:`repro.validate.runner`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.sim.clock import Clock
from repro.system import System
from repro.validate.oracle import probe


@dataclass(frozen=True, slots=True)
class MemberDivergence:
    """First divergent probe of one fleet member vs its scalar twin."""

    member: int
    seed: int
    tick: int
    fields: tuple[str, ...]
    details: dict

    def to_dict(self) -> dict:
        return {
            "member": self.member,
            "seed": self.seed,
            "tick": self.tick,
            "fields": list(self.fields),
        }

    def describe(self) -> str:
        return (
            f"member {self.member} (seed {self.seed}) diverged at tick "
            f"{self.tick}: {', '.join(self.fields)}"
        )


@dataclass(frozen=True, slots=True)
class FleetOracleReport:
    """Outcome of one fleet-vs-scalar lockstep replay."""

    n_ticks: int
    n_machines: int
    divergences: tuple[MemberDivergence, ...]
    summaries_identical: bool

    @property
    def identical(self) -> bool:
        return not self.divergences and self.summaries_identical

    def to_dict(self) -> dict:
        return {
            "n_ticks": self.n_ticks,
            "n_machines": self.n_machines,
            "identical": self.identical,
            "summaries_identical": self.summaries_identical,
            "divergences": [d.to_dict() for d in self.divergences],
        }


def _encode(summary: dict) -> str:
    return json.dumps(summary, sort_keys=True)


def fleet_lockstep(
    builders: Sequence[Callable[[], System]],
    n_ticks: int,
    probe_every: int = 1,
) -> FleetOracleReport:
    """Advance fleet and scalar twins in lockstep, diffing per member.

    ``builders`` is one zero-argument ``System`` factory per machine;
    each is called twice so the fleet member and its scalar twin start
    from byte-identical state.  Probes are taken every ``probe_every``
    ticks (the fleet's arrays are flushed back first); each member's
    first divergence is recorded and that member stops being probed,
    but every machine still runs to completion so the final
    ``scalar_summary()`` comparison is meaningful.
    """
    from repro.fleet import FleetEngine

    if n_ticks < 1:
        raise ValueError(f"n_ticks must be >= 1, got {n_ticks}")
    if probe_every < 1:
        raise ValueError(f"probe_every must be >= 1, got {probe_every}")
    if not builders:
        raise ValueError("need at least one system builder")

    scalars = [build() for build in builders]
    fleet = FleetEngine([build() for build in builders])
    clocks = [Clock(system.config.tick_ms) for system in scalars]
    diverged: dict[int, MemberDivergence] = {}

    for _ in range(n_ticks):
        fleet.clock.advance()
        fleet.tick(fleet.clock)
        for clock, system in zip(clocks, scalars):
            clock.advance()
            system.tick(clock)
        if fleet.clock.ticks % probe_every != 0:
            continue
        if len(diverged) == len(scalars):
            continue
        fleet.sync()
        for m, system in enumerate(scalars):
            if m in diverged:
                continue
            probe_scalar = probe(system)
            probe_fleet = probe(fleet.systems[m])
            if probe_fleet != probe_scalar:
                unequal = tuple(
                    name for name in probe_scalar
                    if probe_scalar[name] != probe_fleet[name]
                )
                diverged[m] = MemberDivergence(
                    member=m,
                    seed=system.config.seed,
                    tick=fleet.clock.ticks,
                    fields=unequal,
                    details={
                        name: (probe_fleet[name], probe_scalar[name])
                        for name in unequal
                    },
                )

    from repro.api import SimulationResult  # local: api imports System

    fleet.sync()
    duration_s = n_ticks * scalars[0].config.tick_ms / 1000.0
    summaries_identical = all(
        _encode(SimulationResult(fleet.systems[m], duration_s).scalar_summary())
        == _encode(SimulationResult(system, duration_s).scalar_summary())
        for m, system in enumerate(scalars)
    )
    return FleetOracleReport(
        n_ticks=n_ticks,
        n_machines=len(scalars),
        divergences=tuple(diverged[m] for m in sorted(diverged)),
        summaries_identical=summaries_identical,
    )


def fleet_oracle_check(
    n_machines: int = 8,
    duration_s: float = 5.0,
    probe_every: int = 1,
    first_seed: int = 1,
) -> FleetOracleReport:
    """Run the lockstep check on the pinned fleet benchmark config.

    A scaled-down (``n_machines`` wide, ``duration_s`` long) instance
    of :data:`repro.perf.scenarios.FLEET_SCENARIO`, so the validated
    configuration is the benchmarked configuration.
    """
    from dataclasses import replace

    from repro.core.policy import Policy
    from repro.perf.scenarios import FLEET_SCENARIO

    scenario = replace(
        FLEET_SCENARIO, n_machines=n_machines, first_seed=first_seed
    )
    policy = Policy.coerce(scenario.policy)

    def make_builder(seed: int) -> Callable[[], System]:
        def build() -> System:
            config, workload = scenario.build_member(seed)
            return System(config, workload, policy=policy)

        return build

    builders = [make_builder(seed) for seed in scenario.seeds()]
    n_ticks = Clock(
        scenario.build_member(first_seed)[0].tick_ms
    ).ticks_for_ms(duration_s * 1000.0)
    return fleet_lockstep(builders, n_ticks, probe_every=probe_every)
