"""Runtime correctness layer: invariants, differential oracle, faults.

Three complementary instruments over the same simulator:

* :mod:`repro.validate.invariants` — predicates over live
  :class:`~repro.system.System` state (energy conservation, thermal
  bounds, hysteresis, migration preconditions, bookkeeping), checked
  via opt-in hooks while a simulation runs;
* :mod:`repro.validate.oracle` — per-tick lockstep replay of the fast
  and scalar tick paths with first-divergence reporting, plus the
  SMT-sibling relabeling metamorphic check;
* :mod:`repro.validate.faults` — seeded perturbation of counter reads,
  counter registers, migration requests, and thermal coefficients,
  asserting graceful degradation;
* :mod:`repro.validate.fleet` — lockstep replay of the vectorized
  fleet engine against N scalar twins with per-machine
  first-divergence reporting.

``python -m repro validate`` (see :mod:`repro.validate.runner`) runs
the full matrix over the pinned perf scenarios.
"""

from repro.validate.faults import FaultInjector, FaultPlan, load_fault_plans
from repro.validate.fleet import (
    FleetOracleReport,
    MemberDivergence,
    fleet_lockstep,
    fleet_oracle_check,
)
from repro.validate.invariants import (
    FAULT_KINDS,
    REGISTRY,
    Invariant,
    InvariantChecker,
    InvariantViolation,
    ValidationConfig,
    Violation,
    invariant_by_name,
)
from repro.validate.oracle import (
    MetamorphicReport,
    OracleReport,
    differential_replay,
    replay_pair,
    smt_relabel_check,
)
from repro.validate.runner import (
    format_validation_report,
    golden_trace,
    run_validation,
    write_golden,
    write_validation_json,
)

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FleetOracleReport",
    "Invariant",
    "InvariantChecker",
    "InvariantViolation",
    "MemberDivergence",
    "MetamorphicReport",
    "OracleReport",
    "REGISTRY",
    "ValidationConfig",
    "Violation",
    "differential_replay",
    "fleet_lockstep",
    "fleet_oracle_check",
    "format_validation_report",
    "golden_trace",
    "invariant_by_name",
    "load_fault_plans",
    "replay_pair",
    "run_validation",
    "smt_relabel_check",
    "write_golden",
    "write_validation_json",
]
