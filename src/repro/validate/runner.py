"""The full validation matrix over the pinned perf scenarios.

``python -m repro validate`` drives this module.  For every reference
scenario it runs:

1. **clean invariant runs** — the scenario on the fast and the scalar
   tick path with the full invariant registry checking every sampled
   tick; any recorded violation is a breach;
2. **the differential oracle** — a per-tick lockstep replay of both
   paths with a first-divergence report;
3. **the metamorphic check** — SMT-sibling relabeling (skipped on
   non-SMT machines, reported as inapplicable);
4. **the fault matrix** — one run per committed
   :class:`~repro.validate.faults.FaultPlan` with the invariants
   enabled.  A crash is a breach; violations of invariants *not*
   declared sensitive to the plan's fault kinds are breaches;
   violations of sensitive invariants are the expected detections and
   are reported, not raised.

The payload (``schema: repro-validate/1``) is deterministic for a given
code state: scenarios are pinned and every fault plan is seeded, so CI
can diff reports across commits.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import traceback
from typing import Iterable, Sequence

from repro.api import SimulationResult
from repro.perf.scenarios import REFERENCE_SCENARIOS, PerfScenario
from repro.sim.clock import Clock
from repro.sim.engine import Engine
from repro.system import System
from repro.validate.faults import FaultInjector, FaultPlan, load_fault_plans
from repro.validate.invariants import (
    ValidationConfig,
    invariant_by_name,
)
from repro.validate.oracle import differential_replay, smt_relabel_check

SCHEMA = "repro-validate/1"
GOLDEN_SCHEMA = "repro-golden/1"

#: ``--duration short``: long enough for forks, balancing passes, hot
#: checks, throttling, and job completions to all occur on every pinned
#: scenario; short enough for CI.
SHORT_DURATION_S = 5.0
#: Golden traces are cut at the same length, for the same reason.
GOLDEN_DURATION_S = 5.0


def _violations_json(violations) -> list[dict]:
    return [v.to_dict() for v in violations]


def _run_system(
    scenario: PerfScenario,
    duration_s: float,
    fast_path: bool,
    sample_every: int,
    plan: FaultPlan | None = None,
) -> tuple[System, FaultInjector | None]:
    config, workload = scenario.build()
    clock = Clock(config.tick_ms)
    system = System(
        config,
        workload,
        policy=scenario.policy,
        fast_path=fast_path,
        validate=ValidationConfig(sample_every=sample_every),
    )
    injector = FaultInjector(system, plan) if plan is not None else None
    engine = Engine(clock, system.tracer)
    engine.register(system)
    if injector is not None:
        engine.register(injector)
    engine.run_for(duration_s)
    return system, injector


def _fault_entry(
    scenario: PerfScenario,
    duration_s: float,
    sample_every: int,
    plan: FaultPlan,
    breaches: list[str],
) -> dict:
    """One fault run; classifies violations and appends any breaches."""
    active_kinds = plan.fault_kinds()
    try:
        system, injector = _run_system(
            scenario, duration_s, True, sample_every, plan
        )
    except Exception:  # noqa: BLE001 - any crash is precisely the breach
        breaches.append(
            f"{scenario.name}/fault:{plan.name}: crashed instead of "
            f"degrading gracefully"
        )
        return {
            "plan": plan.name,
            "crashed": True,
            "traceback": traceback.format_exc(limit=8),
        }
    expected, unexpected = [], []
    for violation in system.validator.violations:
        sensitive = invariant_by_name(violation.invariant).fault_sensitive
        (expected if sensitive & active_kinds else unexpected).append(violation)
    if unexpected:
        names = sorted({v.invariant for v in unexpected})
        breaches.append(
            f"{scenario.name}/fault:{plan.name}: fault-insensitive "
            f"invariant(s) violated: {', '.join(names)}"
        )
    return {
        "plan": plan.name,
        "crashed": False,
        "injector": injector.summary(),
        "expected_detections": len(expected),
        "expected_invariants": sorted({v.invariant for v in expected}),
        "unexpected_violations": _violations_json(unexpected[:20]),
    }


def run_validation(
    scenarios: Iterable[PerfScenario] | None = None,
    duration_s: float | None = SHORT_DURATION_S,
    sample_every: int = 1,
    include_faults: bool = True,
    probe_every: int = 1,
    fault_plans: Sequence[FaultPlan] | None = None,
) -> dict:
    """Run the matrix; returns the report payload.

    ``duration_s=None`` uses each scenario's pinned perf duration (the
    exhaustive mode); the default trims every scenario to
    :data:`SHORT_DURATION_S`.
    """
    chosen: Sequence[PerfScenario] = (
        tuple(scenarios) if scenarios is not None else REFERENCE_SCENARIOS
    )
    if not chosen:
        raise ValueError("no scenarios to validate")
    plans = (
        tuple(fault_plans) if fault_plans is not None else load_fault_plans()
    ) if include_faults else ()
    breaches: list[str] = []
    scenario_reports = []
    for scenario in chosen:
        duration = duration_s if duration_s is not None else scenario.duration_s
        entry: dict = {"name": scenario.name, "duration_s": duration}

        clean = {}
        for label, fast in (("fast", True), ("scalar", False)):
            system, _ = _run_system(scenario, duration, fast, sample_every)
            validator = system.validator
            clean[label] = {
                "violations": _violations_json(validator.violations[:20]),
                "n_violations": len(validator.violations),
                "checks_run": dict(sorted(validator.checks_run.items())),
            }
            if validator.violations:
                names = sorted({v.invariant for v in validator.violations})
                breaches.append(
                    f"{scenario.name}/clean-{label}: invariant(s) violated "
                    f"on a clean run: {', '.join(names)}"
                )
        entry["clean"] = clean

        config, workload = scenario.build()
        oracle = differential_replay(
            config, workload, policy=scenario.policy,
            duration_s=duration, probe_every=probe_every,
        )
        entry["oracle"] = oracle.to_dict()
        if not oracle.identical:
            where = (
                f"first divergence at tick {oracle.divergence.tick} "
                f"({', '.join(oracle.divergence.fields)})"
                if oracle.divergence is not None
                else "final summaries differ"
            )
            breaches.append(
                f"{scenario.name}/oracle: fast and scalar paths diverged — {where}"
            )

        metamorphic = smt_relabel_check(
            config, workload, policy=scenario.policy, duration_s=duration,
        )
        entry["metamorphic"] = metamorphic.to_dict()
        if metamorphic.applicable and not metamorphic.ok:
            breaches.append(
                f"{scenario.name}/metamorphic: SMT relabeling changed "
                f"aggregate energy ({metamorphic.energy_a_j!r} J vs "
                f"{metamorphic.energy_b_j!r} J)"
            )

        entry["faults"] = [
            _fault_entry(scenario, duration, sample_every, plan, breaches)
            for plan in plans
        ]
        scenario_reports.append(entry)

    # -- fleet engine vs scalar twins, per-member lockstep ------------------
    from repro.validate.fleet import fleet_oracle_check

    fleet_duration = (
        duration_s if duration_s is not None else SHORT_DURATION_S
    )
    fleet_report = fleet_oracle_check(
        duration_s=fleet_duration, probe_every=probe_every
    )
    for divergence in fleet_report.divergences:
        breaches.append(f"fleet/oracle: {divergence.describe()}")
    if not fleet_report.divergences and not fleet_report.summaries_identical:
        breaches.append(
            "fleet/oracle: per-tick probes agree but final member "
            "summaries differ"
        )
    return {
        "schema": SCHEMA,
        "ok": not breaches,
        "breaches": breaches,
        "fault_plans": [p.name for p in plans],
        "scenarios": scenario_reports,
        "fleet": fleet_report.to_dict(),
    }


def write_validation_json(payload: dict, path: str) -> str:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def format_validation_report(payload: dict) -> str:
    """Human-readable summary of one validation payload."""
    lines = []
    for entry in payload["scenarios"]:
        clean_n = sum(c["n_violations"] for c in entry["clean"].values())
        oracle_ok = entry["oracle"]["identical"]
        meta = entry["metamorphic"]
        meta_text = (
            "n/a" if not meta["applicable"] else ("ok" if meta["ok"] else "FAILED")
        )
        fault_bits = []
        for fault in entry["faults"]:
            if fault.get("crashed"):
                status = "CRASHED"
            elif fault["unexpected_violations"]:
                status = "BREACH"
            elif fault["expected_detections"]:
                status = f"detected×{fault['expected_detections']}"
            else:
                status = "survived"
            fault_bits.append(f"{fault['plan']}:{status}")
        lines.append(
            f"{entry['name']:<22} {entry['duration_s']:>5.1f}s  "
            f"clean:{'ok' if clean_n == 0 else f'{clean_n} VIOLATIONS'}  "
            f"oracle:{'identical' if oracle_ok else 'DIVERGED'}  "
            f"metamorphic:{meta_text}"
        )
        if fault_bits:
            lines.append(f"{'':<22} faults: {'  '.join(fault_bits)}")
    fleet = payload.get("fleet")
    if fleet is not None:
        lines.append(
            f"{'fleet-oracle':<22} {fleet['n_machines']} machines x "
            f"{fleet['n_ticks']} ticks  "
            f"{'identical' if fleet['identical'] else 'DIVERGED'}"
        )
    if payload["breaches"]:
        lines.append("")
        lines.append(f"{len(payload['breaches'])} breach(es):")
        lines.extend(f"  - {b}" for b in payload["breaches"])
    else:
        lines.append("")
        lines.append(
            f"all {len(payload['scenarios'])} scenarios clean: invariants "
            f"hold, paths agree, faults degrade gracefully"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Golden traces
# ---------------------------------------------------------------------------

def _event_digest(events) -> str:
    """Order-sensitive SHA-256 over the canonical event log encoding."""
    digest = hashlib.sha256()
    for event in events:
        line = (
            f"{event.time_ms} {event.kind.value} {event.cpu} {event.pid} "
            f"{json.dumps(event.detail, sort_keys=True)}\n"
        )
        digest.update(line.encode("utf-8"))
    return digest.hexdigest()


def golden_trace(
    scenario: PerfScenario, duration_s: float = GOLDEN_DURATION_S
) -> dict:
    """The canonical short-trace payload for one pinned scenario.

    Byte-identical across replays of the same code state: the summary,
    the sorted counters, and a digest of the full event log.  Regenerate
    the committed copies with::

        PYTHONPATH=src python -m repro validate --write-golden tests/golden
    """
    config, workload = scenario.build()
    clock = Clock(config.tick_ms)
    system = System(config, workload, policy=scenario.policy, fast_path=True)
    engine = Engine(clock, system.tracer)
    engine.register(system)
    engine.run_for(duration_s)
    result = SimulationResult(system=system, duration_s=duration_s)
    tracer = system.tracer
    return {
        "schema": GOLDEN_SCHEMA,
        "scenario": scenario.name,
        "policy": scenario.policy.value,
        "duration_s": duration_s,
        "summary": result.scalar_summary(),
        "counters": tracer.counters.as_dict(),
        "n_events": len(tracer.events),
        "events_sha256": _event_digest(tracer.events),
    }


def write_golden(
    directory: str | pathlib.Path,
    scenarios: Iterable[PerfScenario] | None = None,
    duration_s: float = GOLDEN_DURATION_S,
) -> list[str]:
    """Write one golden-trace JSON per scenario; returns the paths."""
    chosen = tuple(scenarios) if scenarios is not None else REFERENCE_SCENARIOS
    out_dir = pathlib.Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    paths = []
    for scenario in chosen:
        payload = golden_trace(scenario, duration_s)
        path = out_dir / f"{scenario.name}.json"
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        paths.append(str(path))
    return paths
