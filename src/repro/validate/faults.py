"""Seeded fault injection against a live :class:`System`.

Each :class:`FaultPlan` perturbs the machine the way real hardware
misbehaves around the paper's mechanisms:

* **counter-read spikes** — event-counter jitter occasionally far
  outside its calibrated sigma (§3.1's "counters are noisy" taken to a
  hostile extreme): the Eq. 1 estimate inflates, but stays internally
  consistent, so every invariant must survive;
* **counter-register corruption** — a raw register clobbered to NaN.
  The registers feed nothing downstream (estimates consume per-tick
  increments directly), so the scheduler must keep running while the
  ``counter-bounds`` invariant reports the corruption;
* **migration drops** — the request reaches the migration callback and
  vanishes (the kernel analogue: the target runqueue lock was
  contended and the move was abandoned).  Balancing decisions are
  re-derived every pass from live state, so dropped moves degrade
  balance quality, never consistency;
* **thermal coefficient jitter + sensor drift** — the physical heat
  sink degrades (higher R than calibrated) and the true temperature
  drifts upward each tick.  The RC-bounds invariant is *expected* to
  fire (it checks the live model against the configured coefficients);
  nothing may crash.

The injector hooks the same surfaces the fast/scalar equivalence relies
on — the per-CPU PMC jitter RNG streams (shared by both paths), the
shared counter matrix, the migration callback — and registers as an
engine component ticking *after* the system, so per-tick perturbations
land on settled state.
"""

from __future__ import annotations

import dataclasses
import json
import math
import pathlib
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.sim.clock import Clock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sched.task import Task
    from repro.system import System

_PLANS_PATH = pathlib.Path(__file__).resolve().parent / "fault_plans.json"


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """One seeded perturbation recipe.

    All rates are per-opportunity probabilities drawn from the plan's
    own RNG (seeded, so every fault run is reproducible).
    """

    name: str
    seed: int
    #: probability a counter-jitter draw gains ``counter_spike_magnitude``
    counter_spike_rate: float = 0.0
    counter_spike_magnitude: float = 0.5
    #: per-tick probability one random counter register is clobbered
    counter_corrupt_rate: float = 0.0
    #: probability a migration request is silently dropped
    migration_drop_rate: float = 0.0
    #: multiplier on the true heat sinks' thermal resistance
    thermal_r_factor: float = 1.0
    #: upward drift of every true package temperature, per tick
    temp_drift_c_per_tick: float = 0.0

    def __post_init__(self) -> None:
        for rate_name in (
            "counter_spike_rate", "counter_corrupt_rate", "migration_drop_rate",
        ):
            rate = getattr(self, rate_name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{rate_name} must be in [0, 1], got {rate}")
        if self.thermal_r_factor <= 0.0:
            raise ValueError("thermal_r_factor must be positive")
        if self.temp_drift_c_per_tick < 0.0:
            raise ValueError("temp_drift_c_per_tick must be non-negative")

    def fault_kinds(self) -> frozenset[str]:
        """The active fault kinds (matching ``Invariant.fault_sensitive``)."""
        kinds = set()
        if self.counter_spike_rate > 0.0:
            kinds.add("counter_read")
        if self.counter_corrupt_rate > 0.0:
            kinds.add("counter_register")
        if self.migration_drop_rate > 0.0:
            kinds.add("migration_drop")
        if self.thermal_r_factor != 1.0 or self.temp_drift_c_per_tick > 0.0:
            kinds.add("thermal")
        return frozenset(kinds)

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


def load_fault_plans(path: str | pathlib.Path | None = None) -> tuple[FaultPlan, ...]:
    """The committed fault matrix (``fault_plans.json`` next to this
    module); the file is data, not code, so the runner cache salts it."""
    plans_path = pathlib.Path(path) if path is not None else _PLANS_PATH
    payload = json.loads(plans_path.read_text())
    if payload.get("schema") != "repro-fault-plans/1":
        raise ValueError(
            f"unexpected fault-plan schema {payload.get('schema')!r} "
            f"in {plans_path}"
        )
    plans = tuple(FaultPlan(**entry) for entry in payload["plans"])
    names = [p.name for p in plans]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate fault-plan names in {plans_path}: {names}")
    return plans


class FaultInjector:
    """Applies one :class:`FaultPlan` to one system.

    Construction installs the always-on perturbations (RNG wrappers,
    the thermal-resistance factor) and attaches the injector as
    ``system.fault_injector`` so the migration callback consults it.
    Register the injector with the engine *after* the system so its
    per-tick faults (register corruption, temperature drift) perturb
    settled end-of-tick state.
    """

    def __init__(self, system: "System", plan: FaultPlan) -> None:
        if system.fault_injector is not None:
            raise ValueError("system already has a fault injector attached")
        self.system = system
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self.stats = {
            "counter_spikes": 0,
            "counter_corruptions": 0,
            "migrations_seen": 0,
            "migrations_dropped": 0,
            "drift_ticks": 0,
        }
        system.fault_injector = self
        if plan.counter_spike_rate > 0.0:
            self._wrap_counter_streams()
        if plan.thermal_r_factor != 1.0:
            self._degrade_heat_sinks()

    # -- installation -------------------------------------------------------
    def _wrap_counter_streams(self) -> None:
        """Shadow each PMC stream's ``gauss`` with a spiking wrapper.

        The stream objects are cached by the RNG factory and shared by
        the scalar path (``CounterBank._rng``) and the fast path's bound
        ``_pmc_gauss`` methods — both must be rebound, or only one tick
        path would see the fault.
        """
        system = self.system
        plan = self.plan
        fault_rng = self.rng
        stats = self.stats
        for c in range(system.n_cpus):
            stream = system.rng.stream(f"pmc:{c}")

            def gauss(mu, sigma, _orig=stream.gauss):
                value = _orig(mu, sigma)
                if fault_rng.random() < plan.counter_spike_rate:
                    stats["counter_spikes"] += 1
                    value += plan.counter_spike_magnitude
                return value

            stream.gauss = gauss          # scalar path: bank._rng is this object
            system._pmc_gauss[c] = gauss  # fast path: bound method captured at init

    def _degrade_heat_sinks(self) -> None:
        """Raise the *true* RCs' thermal resistance.

        The estimation RCs keep the calibrated coefficients — the fault
        models a physical heat sink degrading underneath an unchanged
        model.  Both the frozen params (scalar ``step`` reads them
        fresh) and the cached ``_r_k_per_w`` (the fast path's inlined
        integration reads the cache) must change, and the fast path's
        memoised decay factors are invalidated so the new tau is picked
        up even when the injector is installed mid-run.
        """
        system = self.system
        for rc in system.true_rc:
            rc.params = dataclasses.replace(
                rc.params, r_k_per_w=rc.params.r_k_per_w * self.plan.thermal_r_factor
            )
            rc._r_k_per_w = rc.params.r_k_per_w
        system._rc_decay_dt = None

    # -- per-tick faults -----------------------------------------------------
    def tick(self, clock: Clock) -> None:
        plan = self.plan
        system = self.system
        rng = self.rng
        if plan.counter_corrupt_rate > 0.0 and rng.random() < plan.counter_corrupt_rate:
            counts = system._counts_mx
            cpu = rng.randrange(counts.shape[0])
            event = rng.randrange(counts.shape[1])
            # NaN survives both the per-tick credit and the wraparound
            # modulus, so the corruption stays observable; a large
            # finite value would be silently healed by ``%`` next tick.
            counts[cpu, event] = math.nan
            self.stats["counter_corruptions"] += 1
        if plan.temp_drift_c_per_tick > 0.0:
            for rc in system.true_rc:
                rc._temp_c += plan.temp_drift_c_per_tick
            self.stats["drift_ticks"] += 1

    # -- migration interception ----------------------------------------------
    def intercept_migration(
        self, task: "Task", src: int, dst: int, reason: str
    ) -> bool:
        """True to drop the request (called before any runqueue mutation)."""
        self.stats["migrations_seen"] += 1
        if (
            self.plan.migration_drop_rate > 0.0
            and self.rng.random() < self.plan.migration_drop_rate
        ):
            self.stats["migrations_dropped"] += 1
            return True
        return False

    def summary(self) -> dict:
        return {"plan": self.plan.name, **self.stats}
