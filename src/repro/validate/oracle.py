"""Differential oracle: fast vs. scalar replay and metamorphic checks.

The perf harness asserts that the batched and scalar tick loops agree on
the *final* summary; this module strengthens that into a per-tick
lockstep oracle.  Two systems are built from the same (config, workload,
policy) triple — one per tick path — and advanced tick by tick.  After
each tick a canonical probe of the machine state (per-CPU powers, the
thermal EWMA column, package temperatures, runqueue lengths, job and
migration counters) is compared *exactly*: the paths are bit-identical
by construction, so the first unequal probe pinpoints the tick a
regression was introduced, not just that one happened.

The metamorphic check exploits a symmetry of the model rather than a
second implementation: with counter jitter disabled and every task
pinned, relabeling each task's CPU to its SMT sibling permutes state
that the policy treats symmetrically (siblings share the package,
the RC model, and the power budget — §4.7), so aggregate energy and
throughput must be invariant under the swap.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, replace

from repro.config import SystemConfig
from repro.core.policy import EnergyAwareConfig, Policy
from repro.sim.clock import Clock
from repro.system import System
from repro.workloads.generator import TaskSpec, WorkloadSpec


@dataclass(frozen=True, slots=True)
class Divergence:
    """First point where the two replayed systems disagreed."""

    tick: int
    fields: tuple[str, ...]
    details: dict[str, tuple[object, object]] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "tick": self.tick,
            "fields": list(self.fields),
            "details": {
                k: {"a": repr(a), "b": repr(b)}
                for k, (a, b) in sorted(self.details.items())
            },
        }


@dataclass(frozen=True, slots=True)
class OracleReport:
    """Outcome of one differential replay."""

    n_ticks: int
    divergence: Divergence | None
    summaries_identical: bool
    summary_a: dict
    summary_b: dict

    @property
    def identical(self) -> bool:
        return self.divergence is None and self.summaries_identical

    def to_dict(self) -> dict:
        return {
            "n_ticks": self.n_ticks,
            "identical": self.identical,
            "summaries_identical": self.summaries_identical,
            "divergence": (
                self.divergence.to_dict() if self.divergence is not None else None
            ),
        }


def probe(system: System) -> dict[str, object]:
    """Canonical per-tick snapshot of the state both paths must share.

    Everything here is either copied (lists) or immutable, so probes
    from different ticks can be compared after the fact.
    """
    tracer = system.tracer
    return {
        "est_power": list(system._est_power),
        "dyn_power": list(system._dyn_power),
        "thermal_w": list(system.metrics.thermal_w),
        "pkg_temp_c": list(system._pkg_temp_c),
        "pkg_est_temp_c": list(system._pkg_est_temp_c),
        "pkg_est_power_w": list(system._est_pkg_power),
        "running": list(system._running),
        "rq_nr": [system.runqueues[c].nr for c in range(system.n_cpus)],
        "rq_pids": [
            tuple(t.pid for t in system.runqueues[c].tasks())
            for c in range(system.n_cpus)
        ],
        "jobs_total": tracer.counters.get("jobs_total"),
        "migrations": tracer.counters.get("migrations"),
        "throttled": list(system.throttle.throttled),
        "freq_scale": list(system._freq_scale),
    }


def summary_bytes(summary: dict) -> str:
    """Key-sorted JSON encoding — byte-stable across dict orders."""
    return json.dumps(summary, sort_keys=True)


def replay_pair(
    system_a: System,
    system_b: System,
    n_ticks: int,
    probe_every: int = 1,
) -> OracleReport:
    """Advance both systems in lockstep, diffing probes as they go.

    The first divergent probe is recorded (tick and unequal fields) but
    the replay runs to completion so the final summaries are still
    comparable — a divergence that later cancels out is a different,
    nastier bug than one that compounds, and the report distinguishes
    them.
    """
    if n_ticks < 1:
        raise ValueError(f"n_ticks must be >= 1, got {n_ticks}")
    if probe_every < 1:
        raise ValueError(f"probe_every must be >= 1, got {probe_every}")
    clock_a = Clock(system_a.config.tick_ms)
    clock_b = Clock(system_b.config.tick_ms)
    divergence: Divergence | None = None
    for _ in range(n_ticks):
        clock_a.advance()
        clock_b.advance()
        system_a.tick(clock_a)
        system_b.tick(clock_b)
        if divergence is not None or clock_a.ticks % probe_every != 0:
            continue
        probe_a = probe(system_a)
        probe_b = probe(system_b)
        if probe_a != probe_b:
            unequal = tuple(
                name for name in probe_a if probe_a[name] != probe_b[name]
            )
            divergence = Divergence(
                tick=clock_a.ticks,
                fields=unequal,
                details={name: (probe_a[name], probe_b[name]) for name in unequal},
            )
    from repro.api import SimulationResult  # local: api imports System

    duration_s = n_ticks * clock_a.tick_s
    summary_a = SimulationResult(system_a, duration_s).scalar_summary()
    summary_b = SimulationResult(system_b, duration_s).scalar_summary()
    return OracleReport(
        n_ticks=n_ticks,
        divergence=divergence,
        summaries_identical=summary_bytes(summary_a) == summary_bytes(summary_b),
        summary_a=summary_a,
        summary_b=summary_b,
    )


def differential_replay(
    config: SystemConfig,
    workload: WorkloadSpec,
    policy: Policy | str = Policy.ENERGY,
    policy_config: EnergyAwareConfig | None = None,
    duration_s: float = 5.0,
    probe_every: int = 1,
    validate: bool = False,
) -> OracleReport:
    """Replay one job spec through the fast and scalar tick paths."""
    policy = Policy.coerce(policy)

    def build(fast: bool) -> System:
        return System(
            config,
            workload,
            policy=policy,
            policy_config=policy_config,
            fast_path=fast,
            validate=validate,
        )

    n_ticks = Clock(config.tick_ms).ticks_for_ms(duration_s * 1000.0)
    return replay_pair(build(True), build(False), n_ticks, probe_every)


# ---------------------------------------------------------------------------
# Metamorphic check: SMT sibling relabeling
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class MetamorphicReport:
    """Outcome of the sibling-relabeling energy-invariance check."""

    applicable: bool
    reason: str
    energy_a_j: float = 0.0
    energy_b_j: float = 0.0
    jobs_a: float = 0.0
    jobs_b: float = 0.0
    ok: bool = True

    def to_dict(self) -> dict:
        return {
            "applicable": self.applicable,
            "reason": self.reason,
            "ok": self.ok,
            "energy_a_j": self.energy_a_j,
            "energy_b_j": self.energy_b_j,
            "jobs_a": self.jobs_a,
            "jobs_b": self.jobs_b,
        }


def _total_energy_j(system: System) -> float:
    tasks = system.live_tasks() + system.exited_tasks
    return sum(t.total_energy_j for t in sorted(tasks, key=lambda t: t.pid))


def smt_relabel_check(
    config: SystemConfig,
    workload: WorkloadSpec,
    policy: Policy | str = Policy.ENERGY,
    policy_config: EnergyAwareConfig | None = None,
    duration_s: float = 5.0,
    rel_tol: float = 1e-9,
) -> MetamorphicReport:
    """Swapping each pinned task onto its SMT sibling must not change
    aggregate energy or throughput.

    Counter jitter is disabled for both runs (the per-CPU jitter RNG
    streams are the one part of the model that is *not* symmetric under
    relabeling); everything else — package power, the RC model, SMT
    slowdown, the §4.7 budget split — treats siblings identically, so
    the two schedules are exact mirror images.
    """
    spec = config.machine
    if spec.threads_per_core < 2:
        return MetamorphicReport(
            applicable=False,
            reason=f"machine has threads_per_core={spec.threads_per_core}; "
                   f"no SMT sibling pairs to relabel",
        )
    policy = Policy.coerce(policy)
    quiet = replace(config, counter_jitter_sigma=0.0)

    def run(flip: bool) -> System:
        system_probe = System(quiet, workload, policy=policy,
                              policy_config=policy_config)
        n_cpus = system_probe.n_cpus
        siblings = system_probe._siblings
        pinned = []
        for i, task_spec in enumerate(workload.tasks):
            cpu = i % n_cpus
            if flip:
                cpu = siblings[cpu][0]
            pinned.append(replace(task_spec, cpus_allowed=(cpu,)))
        pinned_workload = WorkloadSpec(
            name=f"{workload.name}-pinned{'-flipped' if flip else ''}",
            tasks=tuple(pinned),
        )
        system = System(quiet, pinned_workload, policy=policy,
                        policy_config=policy_config)
        clock = Clock(quiet.tick_ms)
        for _ in range(clock.ticks_for_ms(duration_s * 1000.0)):
            clock.advance()
            system.tick(clock)
        return system

    system_a = run(flip=False)
    system_b = run(flip=True)
    energy_a = _total_energy_j(system_a)
    energy_b = _total_energy_j(system_b)
    jobs_a = system_a.fractional_jobs()
    jobs_b = system_b.fractional_jobs()
    ok = math.isclose(energy_a, energy_b, rel_tol=rel_tol, abs_tol=1e-9) and (
        math.isclose(jobs_a, jobs_b, rel_tol=rel_tol, abs_tol=1e-9)
    )
    return MetamorphicReport(
        applicable=True,
        reason="relabeled each pinned task onto its SMT sibling",
        energy_a_j=energy_a,
        energy_b_j=energy_b,
        jobs_a=jobs_a,
        jobs_b=jobs_b,
        ok=ok,
    )
