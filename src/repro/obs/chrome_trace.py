"""Chrome trace-event export (loadable in Perfetto / chrome://tracing).

Renders a run's :class:`~repro.sim.events.EventRecord` stream as the
timelines the paper's evaluation reads off its figures: one lane per
logical CPU showing task residency, arrows (flow events) for every
migration, and shaded intervals while a CPU is throttled.

The export needs nothing beyond the tracer the simulator always fills —
observability does not have to be enabled — because it is a pure
re-projection of the existing event log:

* residency slices (``ph: "X"``) span a task's stay on one runqueue,
  opened by ``TASK_START``/``TASK_WAKE``/migration-in and closed by
  ``TASK_BLOCK``/``TASK_EXIT``/migration-out (or end of run);
* each migration emits a flow-start (``ph: "s"``) on the source lane
  and a flow-finish (``ph: "f"``) on the destination lane sharing one
  flow id, which viewers draw as an arrow;
* ``THROTTLE_ON``/``THROTTLE_OFF`` pairs become ``throttled`` slices.

Timestamps are microseconds, as the trace-event format specifies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.events import EventKind, EventRecord
from repro.sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api import SimulationResult

#: ``otherData.schema`` tag of the emitted payload.
CHROME_TRACE_SCHEMA = "repro-chrome-trace/1"

#: The single trace-event "process" all CPU lanes live under.
_PID = 0


def _slice(name: str, cat: str, start_ms: int, end_ms: int, cpu: int,
           args: dict | None = None) -> dict:
    event = {
        "name": name,
        "cat": cat,
        "ph": "X",
        "ts": start_ms * 1000,
        "dur": max(0, (end_ms - start_ms) * 1000),
        "pid": _PID,
        "tid": cpu,
    }
    if args:
        event["args"] = args
    return event


def chrome_trace_events(
    tracer: Tracer, n_cpus: int, end_ms: int
) -> list[dict]:
    """The trace-event list for one run's event log."""
    events: list[dict] = []
    for cpu in range(n_cpus):
        events.append({
            "name": "thread_name", "ph": "M", "pid": _PID, "tid": cpu,
            "args": {"name": f"cpu {cpu:02d}"},
        })
    events.append({
        "name": "process_name", "ph": "M", "pid": _PID, "tid": 0,
        "args": {"name": "repro simulated machine"},
    })

    pid_names: dict[int, str] = {}
    residency: dict[int, tuple[int, int]] = {}  # pid -> (cpu, since_ms)
    throttled_since: dict[int, int] = {}
    flow_id = 0

    def close_residency(pid: int, until_ms: int) -> None:
        open_interval = residency.pop(pid, None)
        if open_interval is None:
            return
        cpu, since_ms = open_interval
        name = pid_names.get(pid, "task")
        events.append(
            _slice(f"{name} pid={pid}", "task", since_ms, until_ms, cpu,
                   args={"pid": pid})
        )

    for record in tracer.events:
        kind = record.kind
        if kind is EventKind.TASK_START:
            pid_names[record.pid] = record.detail.get("name", "task")
            residency[record.pid] = (record.cpu, record.time_ms)
        elif kind is EventKind.TASK_WAKE:
            close_residency(record.pid, record.time_ms)
            residency[record.pid] = (record.cpu, record.time_ms)
        elif kind in (EventKind.TASK_BLOCK, EventKind.TASK_EXIT):
            close_residency(record.pid, record.time_ms)
        elif kind is EventKind.MIGRATION:
            src = record.detail.get("src", -1)
            dst = record.detail.get("dst", record.cpu)
            reason = record.detail.get("reason", "")
            close_residency(record.pid, record.time_ms)
            residency[record.pid] = (dst, record.time_ms)
            flow_id += 1
            name = pid_names.get(record.pid, "task")
            common = {
                "name": f"migrate {name} pid={record.pid}",
                "cat": "migration",
                "id": flow_id,
                "pid": _PID,
                "args": {"pid": record.pid, "reason": reason,
                         "src": src, "dst": dst},
            }
            events.append({**common, "ph": "s", "ts": record.time_ms * 1000,
                           "tid": src})
            events.append({**common, "ph": "f", "bp": "e",
                           "ts": record.time_ms * 1000 + 1, "tid": dst})
        elif kind is EventKind.THROTTLE_ON:
            throttled_since.setdefault(record.cpu, record.time_ms)
        elif kind is EventKind.THROTTLE_OFF:
            since_ms = throttled_since.pop(record.cpu, None)
            if since_ms is not None:
                events.append(
                    _slice("throttled", "throttle", since_ms,
                           record.time_ms, record.cpu)
                )

    for pid in sorted(residency):
        close_residency(pid, end_ms)
    for cpu in sorted(throttled_since):
        events.append(
            _slice("throttled", "throttle", throttled_since[cpu], end_ms, cpu)
        )
    return events


def chrome_trace(
    tracer: Tracer, n_cpus: int, duration_s: float, scenario: str = ""
) -> dict:
    """The complete JSON-object-form trace payload."""
    end_ms = int(round(duration_s * 1000))
    return {
        "traceEvents": chrome_trace_events(tracer, n_cpus, end_ms),
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": CHROME_TRACE_SCHEMA,
            "scenario": scenario,
            "duration_s": duration_s,
            "n_cpus": n_cpus,
        },
    }


def export_chrome_trace(result: "SimulationResult", scenario: str = "") -> dict:
    """Convenience wrapper taking a finished simulation result."""
    return chrome_trace(
        result.tracer, result.system.n_cpus, result.duration_s,
        scenario=scenario,
    )


def migration_flow_events(payload: dict) -> list[dict]:
    """The flow-start events of a trace payload (one per migration).

    Used by tests and the CI smoke job to assert the export carries
    the migration arrows.
    """
    return [
        e for e in payload["traceEvents"]
        if e.get("ph") == "s" and e.get("cat") == "migration"
    ]
