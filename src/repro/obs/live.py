"""Live telemetry: an in-process metrics endpoint for running sweeps.

:class:`LiveAggregator` subscribes to a run :class:`~repro.obs.events.EventBus`
and folds the event stream into the numbers an operator actually wants
mid-flight — jobs done/total, failure and cache-hit counts, rolling
throughput and the ETA it implies, worker incidents, aggregate fleet
machine-ticks.  :class:`MetricsServer` serves that state from a
stdlib ``http.server`` thread:

* ``GET /metrics``  — Prometheus text exposition (scrape target);
* ``GET /snapshot`` — the ``repro-metrics/1`` JSON snapshot;
* ``GET /events``   — the newest events from the attached ring buffer;
* ``GET /healthz``  — liveness probe (``ok``).

The server binds ``127.0.0.1`` only — run telemetry is operational
data for the local operator, not a public surface — and is entirely
opt-in (``--serve-metrics``); when it is off, none of this module is
even imported by the hot paths.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.events import EventBus, RingBufferSink, RunEvent
from repro.obs.exporters import (
    PROMETHEUS_CONTENT_TYPE,
    json_snapshot,
    prometheus_text,
)
from repro.obs.metrics import MetricsRegistry

#: Completions kept for the rolling-throughput estimate.
THROUGHPUT_WINDOW = 64


class LiveAggregator:
    """Fold the run event stream into live sweep state.

    Subscribe the instance itself to a bus (it is a sink callable).
    All reads go through :meth:`snapshot` / :meth:`registry`, which
    take the same lock the event path takes, so a scrape mid-sweep
    sees a consistent view.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started = time.time()
        self.jobs_total = 0
        self.jobs_finished = 0
        self.jobs_failed = 0
        self.jobs_quarantined = 0
        self.cache_hits = 0
        self.jobs_running = 0
        self.worker_deaths = 0
        self.pool_rebuilds = 0
        self.worker_backoffs = 0
        self.checkpoints = 0
        self.fleet_machine_ticks = 0
        self.events_by_kind: dict[str, int] = {}
        # (wall time, completions so far) pairs for the rolling rate.
        self._completions: deque[tuple[float, int]] = deque(
            maxlen=THROUGHPUT_WINDOW
        )
        self._fleet_rate_window: deque[tuple[float, int]] = deque(
            maxlen=THROUGHPUT_WINDOW
        )

    # -- the sink ----------------------------------------------------------
    def __call__(self, event: RunEvent) -> None:
        kind = event.kind
        data = event.data
        with self._lock:
            self.events_by_kind[kind] = self.events_by_kind.get(kind, 0) + 1
            if kind == "grid_started":
                self.jobs_total = int(data.get("total", 0))
            elif kind == "job_started":
                self.jobs_running += 1
            elif kind in ("job_finished", "job_failed", "job_quarantined",
                          "job_cache_hit"):
                if kind == "job_finished":
                    self.jobs_finished += 1
                elif kind == "job_failed":
                    self.jobs_failed += 1
                elif kind == "job_quarantined":
                    self.jobs_quarantined += 1
                else:
                    self.cache_hits += 1
                    self.jobs_finished += 1
                if kind != "job_cache_hit" and self.jobs_running > 0:
                    self.jobs_running -= 1
                self._completions.append((event.t, self.jobs_done_locked()))
            elif kind == "worker_death":
                self.worker_deaths += 1
            elif kind == "pool_rebuild":
                self.pool_rebuilds += 1
            elif kind == "worker_backoff":
                self.worker_backoffs += 1
            elif kind == "checkpoint_written":
                self.checkpoints += 1
            elif kind == "fleet_tick_progress":
                ticks = int(data.get("ticks", 0))
                machines = int(data.get("machines", 1))
                self.fleet_machine_ticks += ticks * machines
                self._fleet_rate_window.append(
                    (event.t, self.fleet_machine_ticks)
                )

    # -- derived numbers ---------------------------------------------------
    def jobs_done_locked(self) -> int:
        return self.jobs_finished + self.jobs_failed + self.jobs_quarantined

    @staticmethod
    def _window_rate(window: deque) -> float:
        """Units/second across a (time, cumulative count) window."""
        if len(window) < 2:
            return 0.0
        (t0, n0), (t1, n1) = window[0], window[-1]
        if t1 <= t0:
            return 0.0
        return (n1 - n0) / (t1 - t0)

    def snapshot(self) -> dict:
        """Plain-dict view of the live state (for ``repro top``)."""
        with self._lock:
            done = self.jobs_done_locked()
            rate = self._window_rate(self._completions)
            remaining = max(0, self.jobs_total - done)
            eta = remaining / rate if rate > 0 else float("inf")
            return {
                "elapsed_s": time.time() - self._started,
                "jobs_total": self.jobs_total,
                "jobs_done": done,
                "jobs_finished": self.jobs_finished,
                "jobs_failed": self.jobs_failed,
                "jobs_quarantined": self.jobs_quarantined,
                "jobs_running": self.jobs_running,
                "cache_hits": self.cache_hits,
                "throughput_jobs_per_s": rate,
                "eta_s": eta if eta != float("inf") else None,
                "worker_deaths": self.worker_deaths,
                "pool_rebuilds": self.pool_rebuilds,
                "worker_backoffs": self.worker_backoffs,
                "checkpoints": self.checkpoints,
                "fleet_machine_ticks": self.fleet_machine_ticks,
                "fleet_machine_ticks_per_s":
                    self._window_rate(self._fleet_rate_window),
                "events_by_kind": dict(sorted(self.events_by_kind.items())),
            }

    def registry(self) -> MetricsRegistry:
        """The live state as a fresh metrics registry.

        Rebuilt per scrape — the aggregator's own counters are the
        source of truth and a scrape must not mutate shared state.
        """
        snap = self.snapshot()
        registry = MetricsRegistry()
        gauges = (
            ("repro_live_elapsed_seconds", "elapsed_s",
             "Wall-clock seconds since the aggregator started."),
            ("repro_live_jobs_total", "jobs_total",
             "Jobs in the grid being executed."),
            ("repro_live_jobs_done", "jobs_done",
             "Jobs with a terminal outcome so far."),
            ("repro_live_jobs_finished", "jobs_finished",
             "Jobs completed successfully (including cache hits)."),
            ("repro_live_jobs_failed", "jobs_failed",
             "Jobs that exhausted retries."),
            ("repro_live_jobs_quarantined", "jobs_quarantined",
             "Poison jobs quarantined."),
            ("repro_live_jobs_running", "jobs_running",
             "Jobs currently executing on workers."),
            ("repro_live_cache_hits", "cache_hits",
             "Jobs served from cache or journal replay."),
            ("repro_live_throughput_jobs_per_s", "throughput_jobs_per_s",
             "Rolling completion rate over the recent window."),
            ("repro_live_worker_deaths", "worker_deaths",
             "Worker processes lost mid-sweep."),
            ("repro_live_pool_rebuilds", "pool_rebuilds",
             "Worker pools torn down and rebuilt."),
            ("repro_live_worker_backoffs", "worker_backoffs",
             "Retry backoff waits taken."),
            ("repro_live_checkpoints_written", "checkpoints",
             "Simulation checkpoints written."),
            ("repro_live_fleet_machine_ticks", "fleet_machine_ticks",
             "Aggregate machine-ticks advanced by fleet engines."),
            ("repro_live_fleet_machine_ticks_per_s",
             "fleet_machine_ticks_per_s",
             "Rolling aggregate fleet tick rate."),
        )
        for name, key, help_text in gauges:
            registry.gauge(name, help_text).set(float(snap[key]))
        eta = snap["eta_s"]
        registry.gauge(
            "repro_live_eta_seconds",
            "Estimated seconds to grid completion (-1 when unknown).",
        ).set(float(eta) if eta is not None else -1.0)
        events = registry.counter(
            "repro_live_events_total", "Run events observed, by kind."
        )
        for kind, count in snap["events_by_kind"].items():
            events.set_sample(float(count), {"kind": kind})
        return registry


def render_top(snap: dict) -> str:
    """Terminal rendering of a live snapshot (the ``repro top`` view)."""
    lines = []
    total = snap.get("jobs_total", 0)
    done = snap.get("jobs_done", 0)
    width = 30
    filled = int(width * done / total) if total else 0
    bar = "#" * filled + "-" * (width - filled)
    eta = snap.get("eta_s")
    eta_text = f"{eta:,.0f}s" if isinstance(eta, (int, float)) else "--"
    rate = snap.get("throughput_jobs_per_s", 0.0)
    lines.append(f"jobs     [{bar}] {done}/{total}"
                 f"  ({rate:.2f} jobs/s, eta {eta_text})")
    lines.append(
        f"outcomes ok={snap.get('jobs_finished', 0)}"
        f" failed={snap.get('jobs_failed', 0)}"
        f" quarantined={snap.get('jobs_quarantined', 0)}"
        f" cache-hits={snap.get('cache_hits', 0)}"
        f" running={snap.get('jobs_running', 0)}"
    )
    lines.append(
        f"workers  deaths={snap.get('worker_deaths', 0)}"
        f" rebuilds={snap.get('pool_rebuilds', 0)}"
        f" backoffs={snap.get('worker_backoffs', 0)}"
        f" checkpoints={snap.get('checkpoints', 0)}"
    )
    fleet_ticks = snap.get("fleet_machine_ticks", 0)
    if fleet_ticks:
        lines.append(
            f"fleet    {fleet_ticks:,} machine-ticks"
            f" ({snap.get('fleet_machine_ticks_per_s', 0.0):,.0f}/s)"
        )
    lines.append(f"elapsed  {snap.get('elapsed_s', 0.0):,.1f}s")
    return "\n".join(lines)


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-live/1"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        live: "MetricsServer" = self.server.live  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = prometheus_text(live.aggregator.registry()).encode()
            self._reply(200, PROMETHEUS_CONTENT_TYPE, body)
        elif path == "/snapshot":
            payload = json_snapshot(live.aggregator.registry())
            payload["live"] = live.aggregator.snapshot()
            body = (json.dumps(payload, sort_keys=True, indent=2)
                    + "\n").encode()
            self._reply(200, "application/json", body)
        elif path == "/events":
            ring = live.ring
            events = [e.to_dict() for e in ring.events()] if ring else []
            payload = {"events": events,
                       "dropped": ring.dropped if ring else 0}
            body = (json.dumps(payload, sort_keys=True) + "\n").encode()
            self._reply(200, "application/json", body)
        elif path == "/healthz":
            self._reply(200, "text/plain", b"ok\n")
        else:
            self._reply(404, "text/plain", b"not found\n")

    def _reply(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args) -> None:  # pragma: no cover - silence
        pass


class MetricsServer:
    """Serve live sweep telemetry over HTTP from a daemon thread.

    Binds ``127.0.0.1`` only (see module docstring); ``port=0`` asks
    the OS for an ephemeral port, read back from :attr:`port`.
    """

    def __init__(
        self,
        aggregator: LiveAggregator,
        port: int = 0,
        ring: RingBufferSink | None = None,
    ) -> None:
        self.aggregator = aggregator
        self.ring = ring
        self._httpd = ThreadingHTTPServer(("127.0.0.1", port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.live = self  # type: ignore[attr-defined]
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-live-metrics",
            daemon=True,
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def serve_bus(
    bus: EventBus, port: int = 0, ring_capacity: int = 1024
) -> MetricsServer:
    """Wire an aggregator + ring buffer onto ``bus`` and serve them."""
    aggregator = LiveAggregator()
    ring = RingBufferSink(ring_capacity)
    bus.subscribe(aggregator)
    bus.subscribe(ring)
    return MetricsServer(aggregator, port=port, ring=ring)
