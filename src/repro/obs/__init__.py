"""Opt-in observability: audit log, metrics, trace export, profiling.

Enable with ``run_simulation(..., obs=True)`` (or an
:class:`ObservabilityConfig`); query via ``result.observer``.  The
Chrome-trace exporter works on any result — it re-projects the event
log the tracer always collects.

Sweep-scale telemetry (the run event bus and its sinks) is exported
here; the live HTTP endpoint lives in :mod:`repro.obs.live` and is
imported lazily by the CLI so the hot paths never pay for
``http.server``.
"""

from repro.obs.audit import AUDIT_SCHEMA, AUDIT_SITES, AuditLog, AuditRecord
from repro.obs.chrome_trace import (
    CHROME_TRACE_SCHEMA,
    chrome_trace,
    export_chrome_trace,
    migration_flow_events,
)
from repro.obs.events import (
    EVENT_KINDS,
    RUN_EVENT_SCHEMA,
    CallbackSink,
    EventBus,
    JsonlSink,
    RingBufferSink,
    RunEvent,
    count_by_kind,
    read_events,
)
from repro.obs.exporters import (
    METRICS_SCHEMA,
    PROMETHEUS_CONTENT_TYPE,
    json_snapshot,
    prometheus_text,
    runner_metrics_registry,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.observer import ObservabilityConfig, Observer
from repro.obs.profiling import TICK_PHASES, PhaseTimers

__all__ = [
    "AUDIT_SCHEMA",
    "AUDIT_SITES",
    "AuditLog",
    "AuditRecord",
    "CHROME_TRACE_SCHEMA",
    "chrome_trace",
    "export_chrome_trace",
    "migration_flow_events",
    "EVENT_KINDS",
    "RUN_EVENT_SCHEMA",
    "CallbackSink",
    "EventBus",
    "JsonlSink",
    "RingBufferSink",
    "RunEvent",
    "count_by_kind",
    "read_events",
    "METRICS_SCHEMA",
    "PROMETHEUS_CONTENT_TYPE",
    "json_snapshot",
    "prometheus_text",
    "runner_metrics_registry",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObservabilityConfig",
    "Observer",
    "TICK_PHASES",
    "PhaseTimers",
]
