"""Render a :class:`~repro.obs.metrics.MetricsRegistry` for consumers.

Two formats:

* Prometheus text exposition (``text/plain; version=0.0.4``) — what a
  scrape endpoint or node-exporter textfile collector would serve;
* a JSON snapshot — what the parallel runner embeds per job and the
  ``trace --format metrics-json`` subcommand prints.

Both render metrics sorted by name and samples sorted by label set, so
two exports of the same registry are byte-identical.
"""

from __future__ import annotations

from repro.obs.metrics import Histogram, Metric, MetricsRegistry

#: Schema tag for the JSON snapshot; bump on layout changes.
METRICS_SCHEMA = "repro-metrics/1"

#: Content type of the Prometheus text format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4"


def _format_value(value: float) -> str:
    """Prometheus-style number: integers without the trailing ``.0``."""
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _label_text(labels, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = list(labels) + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label(v)}"' for k, v in pairs)
    return "{" + body + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    lines: list[str] = []
    for metric in registry.collect():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.metric_type}")
        if isinstance(metric, Histogram):
            for labels, counts, total, n in metric.samples():
                # Bucket counts are already cumulative (see
                # Histogram.observe), as the text format requires.
                for bound, count in zip(metric.bounds, counts):
                    lines.append(
                        f"{metric.name}_bucket"
                        f"{_label_text(labels, (('le', _format_value(bound)),))}"
                        f" {count}"
                    )
                lines.append(
                    f"{metric.name}_bucket"
                    f"{_label_text(labels, (('le', '+Inf'),))} {n}"
                )
                lines.append(
                    f"{metric.name}_sum{_label_text(labels)} "
                    f"{_format_value(total)}"
                )
                lines.append(f"{metric.name}_count{_label_text(labels)} {n}")
        else:
            for labels, value in metric.samples():
                lines.append(
                    f"{metric.name}{_label_text(labels)} "
                    f"{_format_value(value)}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def runner_metrics_registry(
    exec_stats, cache_stats=None, checkpoints: int | None = None,
    fleet_stats=None,
) -> MetricsRegistry:
    """Mirror one sweep's resilience accounting into a registry.

    ``exec_stats`` is an :class:`repro.resilience.supervisor.ExecutorStats`
    and ``cache_stats`` a :class:`repro.runner.cache.CacheStats`; both are
    duck-typed (attribute reads only) so the obs layer keeps no runner
    import.  ``checkpoints`` counts checkpoint files written, for
    checkpointed runs.  ``fleet_stats`` is a
    :class:`repro.fleet.engine.FleetStats` (also duck-typed) — the
    aggregate counters of a fleet-engine sweep, whose members cannot
    carry per-run observers.  The result renders through
    :func:`prometheus_text` / :func:`json_snapshot` like any other
    registry, e.g. for a CI artifact or a node-exporter textfile.
    """
    registry = MetricsRegistry()
    counters = (
        ("retries", "repro_runner_retries_total",
         "Job re-submissions after transient failures."),
        ("worker_crashes", "repro_runner_worker_crashes_total",
         "Worker processes that died mid-job."),
        ("pool_rebuilds", "repro_runner_pool_rebuilds_total",
         "Times the worker pool was torn down and rebuilt."),
        ("timeouts", "repro_runner_timeouts_total",
         "Jobs cancelled for exceeding their wall-clock deadline."),
        ("quarantined", "repro_runner_quarantined_total",
         "Poison jobs quarantined instead of retried."),
    )
    for attr, name, help_text in counters:
        registry.counter(name, help_text).set_sample(
            float(getattr(exec_stats, attr))
        )
    registry.gauge(
        "repro_runner_interrupted",
        "1 when the sweep was stopped before every job completed.",
    ).set(1.0 if getattr(exec_stats, "interrupted", False) else 0.0)
    if cache_stats is not None:
        cache_counters = (
            ("hits", "repro_runner_cache_hits_total",
             "Jobs served from the on-disk result cache."),
            ("misses", "repro_runner_cache_misses_total",
             "Cache lookups that had to run the job."),
            ("stores", "repro_runner_cache_stores_total",
             "Results written to the cache."),
            ("corrupt", "repro_runner_cache_corrupt_total",
             "Corrupt cache entries quarantined on read."),
        )
        for attr, name, help_text in cache_counters:
            registry.counter(name, help_text).set_sample(
                float(getattr(cache_stats, attr, 0))
            )
    if checkpoints is not None:
        registry.counter(
            "repro_checkpoints_written_total",
            "Simulation checkpoint files written.",
        ).set_sample(float(checkpoints))
    if fleet_stats is not None:
        fleet_counters = (
            ("machine_ticks", "repro_fleet_machine_ticks_total",
             "Aggregate machine-ticks advanced by fleet engines."),
            ("batches", "repro_fleet_batches_total",
             "Fleet engine batches executed."),
            ("members", "repro_fleet_members_total",
             "Member systems advanced inside fleet batches."),
            ("flushes", "repro_fleet_flushes_total",
             "Full array-to-member state write-backs."),
            ("resyncs", "repro_fleet_resyncs_total",
             "Slot reloads of member task state into the arrays."),
            ("housekeeping_fires", "repro_fleet_housekeeping_fires_total",
             "Housekeeping cadences that fired a member call."),
        )
        for attr, name, help_text in fleet_counters:
            registry.counter(name, help_text).set_sample(
                float(getattr(fleet_stats, attr, 0))
            )
    return registry


def json_snapshot(registry: MetricsRegistry) -> dict:
    """The registry as a JSON-serialisable snapshot."""
    metrics: dict[str, dict] = {}
    for metric in registry.collect():
        entry: dict = {
            "type": metric.metric_type,
            "help": metric.help,
        }
        if isinstance(metric, Histogram):
            entry["samples"] = [
                {
                    "labels": dict(labels),
                    "buckets": {
                        _format_value(bound): count
                        for bound, count in zip(metric.bounds, counts)
                    },
                    "sum": total,
                    "count": n,
                }
                for labels, counts, total, n in metric.samples()
            ]
        else:
            entry["samples"] = [
                {"labels": dict(labels), "value": value}
                for labels, value in metric.samples()
            ]
        metrics[metric.name] = entry
    return {"schema": METRICS_SCHEMA, "metrics": metrics}
