"""Binding the observability pieces to a running :class:`~repro.system.System`.

:class:`Observer` owns the run's :class:`~repro.obs.audit.AuditLog`,
:class:`~repro.obs.metrics.MetricsRegistry`, and
:class:`~repro.obs.profiling.PhaseTimers`, and installs the audit hooks
on the policy components.  It is built by ``System`` when the run is
constructed with ``obs=`` and reachable as ``system.observer`` /
``SimulationResult.observer`` afterwards.

Design rule carried over from the PR-3 validator: observation must not
perturb the simulation.  Audit hooks read memoised metrics (no RNG, no
state writes), metrics are populated by *snapshot* at export time
(:meth:`Observer.refresh`), and the only live instrumentation —
wall-clock phase timers and the balance-pass latency histogram — is a
separate ``profiling`` opt-in whose numbers never enter deterministic
payloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.obs.audit import AuditLog
from repro.obs.exporters import json_snapshot, prometheus_text
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.profiling import PhaseTimers

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system import System


@dataclass(frozen=True, slots=True)
class ObservabilityConfig:
    """What the observer records.

    Attributes
    ----------
    audit:
        Emit decision audit records (§4.4/§4.5/§4.6 sites plus one
        record per committed migration).
    metrics:
        Keep a metrics registry for the Prometheus/JSON exporters.
    profiling:
        Time the tick-loop phases and balance passes with wall clocks.
        Off by default: durations are nondeterministic.
    max_audit_records:
        Optional cap on retained audit records (see
        :class:`~repro.obs.audit.AuditLog`).
    """

    audit: bool = True
    metrics: bool = True
    profiling: bool = False
    max_audit_records: int | None = None

    @classmethod
    def coerce(cls, value) -> "ObservabilityConfig | None":
        """Normalise an ``obs=`` argument: False/None disables, True
        means the default configuration."""
        if value is None or value is False:
            return None
        if value is True:
            return cls()
        if isinstance(value, cls):
            return value
        raise TypeError(
            f"obs must be a bool or ObservabilityConfig, got {type(value).__name__}"
        )


class Observer:
    """One run's observability state, bound to its system."""

    def __init__(self, system: "System", config: ObservabilityConfig) -> None:
        self.config = config
        self.system = system
        self.audit: AuditLog | None = None
        if config.audit:
            self.audit = AuditLog(
                lambda: system._now_ms, limit=config.max_audit_records
            )
        self.registry: MetricsRegistry | None = (
            MetricsRegistry() if config.metrics else None
        )
        self.profile: PhaseTimers | None = (
            PhaseTimers() if config.profiling else None
        )
        # The one live-fed metric: balance-pass wall latency.  Exists
        # only when both profiling (wall clocks allowed) and metrics
        # (somewhere to put it) are on; System._housekeeping feeds it.
        self.balance_hist: Histogram | None = None
        if self.profile is not None and self.registry is not None:
            self.balance_hist = self.registry.histogram(
                "repro_balance_pass_seconds",
                "Wall-clock latency of one periodic balance pass.",
            )
        self._install()

    def _install(self) -> None:
        """Hand the audit log to the policy components that emit records.

        The components carry an ``audit`` attribute that defaults to
        ``None``; the baseline policy has no components and simply gets
        no hooks.
        """
        if self.audit is None:
            return
        policy = self.system.policy
        for name in ("balancer", "hot_migrator", "placement"):
            component = getattr(policy, name, None)
            if component is not None:
                component.audit = self.audit

    # -- metrics snapshot -----------------------------------------------------
    def refresh(self) -> MetricsRegistry:
        """Sync the registry with the system's current state.

        Counters mirror the tracer's :class:`CounterSet`; gauges read
        the live machine state.  Called by the exporters' entry points,
        so a registry is always current when rendered.
        """
        registry = self.registry
        if registry is None:
            raise ValueError("metrics are disabled in this ObservabilityConfig")
        system = self.system

        migrations = registry.counter(
            "repro_migrations_total", "Committed migrations by reason."
        )
        jobs = registry.counter(
            "repro_jobs_completed_total", "Jobs completed by program."
        )
        other = registry.counter(
            "repro_events_total", "Remaining tracer counters, by name."
        )
        for key, value in system.tracer.counters.as_dict().items():
            if key.startswith("migrations:"):
                migrations.set_sample(value, {"reason": key.split(":", 1)[1]})
            elif key.startswith("jobs:"):
                jobs.set_sample(value, {"program": key.split(":", 1)[1]})
            elif key not in ("migrations", "jobs_total"):
                # the unlabelled totals are the sums of the labelled
                # families above; anything else is mirrored verbatim
                other.set_sample(value, {"counter": key})

        thermal = registry.gauge(
            "repro_cpu_thermal_power_watts",
            "Per-logical-CPU thermal power (the §4.1 slow metric).",
        )
        utilization = registry.gauge(
            "repro_cpu_utilization_ratio", "Busy fraction of the run so far."
        )
        throttled = registry.gauge(
            "repro_cpu_throttled_fraction", "Fraction of the run spent throttled."
        )
        freq_scale = registry.gauge(
            "repro_cpu_frequency_scale_ratio",
            "Relative DVFS clock (1.0 = full frequency).",
        )
        dvfs_scaled = registry.gauge(
            "repro_cpu_dvfs_scaled_fraction",
            "Fraction of the run spent below full frequency.",
        )
        for c in range(system.n_cpus):
            labels = {"cpu": str(c)}
            thermal.set_sample(system.metrics.thermal_power_w(c), labels)
            utilization.set_sample(system.cpu_utilization(c), labels)
            throttled.set_sample(system.throttle.throttled_fraction(c), labels)
            freq_scale.set_sample(system._freq_scale[c], labels)
            dvfs_scaled.set_sample(system.dvfs.scaled_fraction(c), labels)

        pkg_temp = registry.gauge(
            "repro_package_temperature_celsius", "True RC die temperature."
        )
        pkg_power = registry.gauge(
            "repro_package_est_power_watts",
            "Counter-estimated package power (§3.1).",
        )
        pkg_energy = registry.gauge(
            "repro_package_energy_joules",
            "Accumulated estimated package energy (frequency-aware Eq. 1).",
        )
        for pkg in range(system.config.machine.n_packages):
            labels = {"package": str(pkg)}
            pkg_temp.set_sample(system.true_rc[pkg].temperature_c, labels)
            pkg_power.set_sample(system._est_pkg_power[pkg], labels)
            pkg_energy.set_sample(system._pkg_energy_j[pkg], labels)

        registry.gauge(
            "repro_max_temperature_celsius", "Hottest die temperature seen."
        ).set_sample(system.max_temp_seen_c)
        registry.gauge(
            "repro_estimation_error_ratio",
            "Mean relative package-power estimation error (§4.2).",
        ).set_sample(system.estimation_error())

        if self.audit is not None:
            audited = registry.counter(
                "repro_audit_records_total", "Audit records by decision site."
            )
            for site, count in self.audit.sites_seen().items():
                audited.set_sample(count, {"site": site})
            registry.counter(
                "repro_audit_records_dropped_total",
                "Audit records dropped by the retention limit.",
            ).set_sample(self.audit.dropped)
        return registry

    # -- export conveniences ----------------------------------------------------
    def prometheus(self) -> str:
        """Current state in Prometheus text exposition format."""
        return prometheus_text(self.refresh())

    def metrics_snapshot(self) -> dict:
        """Current state as the JSON metrics snapshot."""
        return json_snapshot(self.refresh())

    def phase_report(self) -> dict | None:
        """The tick-phase profile, or None when profiling is off."""
        return self.profile.report() if self.profile is not None else None

    def __repr__(self) -> str:
        parts = []
        if self.audit is not None:
            parts.append(f"audit={len(self.audit)}")
        if self.registry is not None:
            parts.append(f"metrics={len(self.registry)}")
        if self.profile is not None:
            parts.append(f"profiled_ticks={self.profile.ticks}")
        return f"Observer({', '.join(parts) or 'disabled'})"
