"""Structured run events: the sweep-scale telemetry bus.

``repro.obs`` (the audit log, metrics registries, traces) explains one
*finished* simulation.  This module is the live counterpart for the
heavy multi-job paths — supervised-pool sweeps, fleet-engine batches,
tournaments — which emit :class:`RunEvent` records while they execute:
job lifecycle (started / finished / failed / quarantined / cache hit),
worker incidents (death / pool rebuild / retry backoff), fleet chunk
progress, and checkpoint writes.

Events fan out through an :class:`EventBus` to pluggable sinks:

* :class:`JsonlSink` — one sorted-key JSON line per event, flushed and
  fsynced with the same discipline as the sweep journal, so the stream
  is current even if the driver dies mid-sweep;
* :class:`RingBufferSink` — a bounded in-memory window of the latest
  events (what the live ``/events`` endpoint serves);
* :class:`CallbackSink` — an arbitrary callable (how the live metrics
  aggregator subscribes).

The bus preserves the repo's bit-identity contract: no bus is created
unless telemetry is requested, hot paths guard every emission behind a
``bus is not None`` check, and a sink that raises is detached from the
event — counted in ``EventBus.sink_errors`` — rather than allowed to
kill the sweep.  Event payloads carry wall-clock timestamps and are
therefore never part of any deterministic artifact.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable

#: Event record identity; bump on incompatible layout changes.
RUN_EVENT_SCHEMA = "repro-run-event/1"

#: Every event kind the bus can carry.  ``tools/check_docs.py``
#: requires each of these to be documented in docs/live_telemetry.md.
EVENT_KINDS = (
    "grid_started",
    "grid_finished",
    "job_started",
    "job_finished",
    "job_failed",
    "job_quarantined",
    "job_cache_hit",
    "worker_death",
    "pool_rebuild",
    "worker_backoff",
    "fleet_chunk_started",
    "fleet_chunk_finished",
    "fleet_tick_progress",
    "checkpoint_written",
)

_KIND_SET = frozenset(EVENT_KINDS)


@dataclass(frozen=True)
class RunEvent:
    """One telemetry event.

    ``seq`` is a per-bus monotonic sequence number, ``t`` the wall-clock
    emission time (``time.time()``), ``data`` the kind-specific payload
    of JSON-safe scalars.
    """

    kind: str
    seq: int
    t: float
    data: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "schema": RUN_EVENT_SCHEMA,
            "kind": self.kind,
            "seq": self.seq,
            "t": self.t,
            "data": dict(self.data),
        }

    def to_json(self) -> str:
        """Sorted-key canonical JSON line (no trailing newline)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))


class EventBus:
    """Fan-out point for :class:`RunEvent` records.

    Thread-safe: pool callbacks and the emitting driver may run on
    different threads.  Sinks are callables taking one event; a sink
    that raises is skipped for that event and the failure counted in
    ``sink_errors`` — telemetry must never take down the work it
    observes.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sinks: list[Callable[[RunEvent], None]] = []
        self._seq = 0
        self.sink_errors = 0

    def subscribe(self, sink: Callable[[RunEvent], None]) -> None:
        with self._lock:
            self._sinks.append(sink)

    def unsubscribe(self, sink: Callable[[RunEvent], None]) -> None:
        with self._lock:
            try:
                self._sinks.remove(sink)
            except ValueError:
                pass

    def emit(self, kind: str, **data) -> RunEvent:
        if kind not in _KIND_SET:
            raise ValueError(
                f"unknown event kind {kind!r}; expected one of "
                f"{', '.join(EVENT_KINDS)}"
            )
        with self._lock:
            self._seq += 1
            event = RunEvent(kind=kind, seq=self._seq, t=time.time(),
                             data=data)
            sinks = list(self._sinks)
        for sink in sinks:
            try:
                sink(event)
            except Exception:
                with self._lock:
                    self.sink_errors += 1
        return event

    def __len__(self) -> int:
        with self._lock:
            return len(self._sinks)


class JsonlSink:
    """Durable JSONL event stream.

    One sorted-key JSON line per event; every append is flushed and
    fsynced before returning (the sweep journal's discipline), so a
    SIGKILL leaves at most one torn final line.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "ab")
        self._lock = threading.Lock()

    def __call__(self, event: RunEvent) -> None:
        line = (event.to_json() + "\n").encode()
        with self._lock:
            if self._fh.closed:
                return
            self._fh.write(line)
            self._fh.flush()
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_events(path: str | os.PathLike) -> list[RunEvent]:
    """Replay a :class:`JsonlSink` file, tolerant of a torn tail.

    A missing file yields an empty list, like journal replay.
    """
    events: list[RunEvent] = []
    try:
        raw = pathlib.Path(path).read_bytes()
    except OSError:
        return events
    for line in raw.split(b"\n"):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue  # torn tail
        if not isinstance(record, dict) or "kind" not in record:
            continue
        events.append(
            RunEvent(
                kind=record.get("kind", ""),
                seq=int(record.get("seq", 0)),
                t=float(record.get("t", 0.0)),
                data=dict(record.get("data") or {}),
            )
        )
    return events


class RingBufferSink:
    """Bounded in-memory window over the newest events.

    Older events beyond ``capacity`` are dropped (counted in
    ``dropped``); :meth:`events` returns a snapshot of the window.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._events: deque[RunEvent] = deque(maxlen=capacity)
        self.dropped = 0

    def __call__(self, event: RunEvent) -> None:
        with self._lock:
            if len(self._events) == self.capacity:
                self.dropped += 1
            self._events.append(event)

    def events(self) -> list[RunEvent]:
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


class CallbackSink:
    """Adapter wrapping any callable as a sink (mostly documentation:
    a bare callable works too — this names the intent and carries a
    repr for debugging)."""

    def __init__(self, fn: Callable[[RunEvent], None]) -> None:
        self.fn = fn

    def __call__(self, event: RunEvent) -> None:
        self.fn(event)

    def __repr__(self) -> str:
        return f"CallbackSink({self.fn!r})"


def count_by_kind(events: Iterable[RunEvent]) -> dict[str, int]:
    """Event counts keyed by kind (sorted keys, for stable reports)."""
    counts: dict[str, int] = {}
    for event in events:
        counts[event.kind] = counts.get(event.kind, 0) + 1
    return dict(sorted(counts.items()))
