"""Tick-loop self-profiling: where does wall time go?

:class:`PhaseTimers` accumulates wall-clock time per tick phase
(dispatch, execute, thermal, throttle, housekeeping, sample, validate)
so perf work can see *which* phase regressed instead of only the
end-to-end ticks/s number.  The profiled tick loop in
:class:`~repro.system.System` feeds it; the perf harness reports it
next to ``BENCH_perf.json``.

Wall-clock durations are nondeterministic by nature, so profiling is a
separate opt-in from the rest of observability and its numbers never
enter deterministic payloads (summaries, goldens, cache keys).
"""

from __future__ import annotations

from time import perf_counter

#: The tick phases the profiled loop times, in execution order.
TICK_PHASES = (
    "wake_fork",      # wakeup scan + workload forks
    "dispatch",       # pick_next on idle runqueues
    "execute",        # the execution step (fast or scalar)
    "thermal",        # RC integration + estimation-error tracking
    "throttle",       # throttle / DVFS controller update
    "housekeeping",   # periodic balance + hot-migration checks
    "sample",         # tracer series decimation
    "validate",       # invariant checker (when installed)
)


class PhaseTimers:
    """Per-phase wall-clock accumulator.

    ``add`` is the hot call — one dict update per phase per tick — so it
    stays free of any per-call allocation.  Unknown phase names are
    accepted (callers may time ad-hoc sections); :data:`TICK_PHASES`
    only fixes the report order of the standard ones.
    """

    __slots__ = ("totals", "counts", "ticks", "total_s")

    def __init__(self) -> None:
        self.totals: dict[str, float] = {}
        self.counts: dict[str, int] = {}
        self.ticks = 0
        self.total_s = 0.0

    def add(self, phase: str, dt_s: float) -> None:
        self.totals[phase] = self.totals.get(phase, 0.0) + dt_s
        self.counts[phase] = self.counts.get(phase, 0) + 1
        self.total_s += dt_s

    def tick_done(self) -> None:
        self.ticks += 1

    @staticmethod
    def now() -> float:
        return perf_counter()

    def report(self) -> dict:
        """Per-phase totals, means, and fractions of the timed total.

        Phases are reported in :data:`TICK_PHASES` order, then any
        extras sorted by name.
        """
        ordered = [p for p in TICK_PHASES if p in self.totals]
        ordered += sorted(set(self.totals) - set(TICK_PHASES))
        total = self.total_s
        phases = {}
        for phase in ordered:
            phase_total = self.totals[phase]
            count = self.counts[phase]
            phases[phase] = {
                "total_s": phase_total,
                "calls": count,
                "mean_us": (phase_total / count) * 1e6 if count else 0.0,
                "fraction": phase_total / total if total > 0 else 0.0,
            }
        return {
            "ticks": self.ticks,
            "timed_total_s": total,
            "phases": phases,
        }

    def __repr__(self) -> str:
        return (
            f"PhaseTimers(ticks={self.ticks}, "
            f"phases={sorted(self.totals)})"
        )
