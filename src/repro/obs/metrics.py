"""Metrics registry: counters, gauges, and histograms with labels.

The shape follows the Prometheus data model (the sensor/metrics-bus
layer of runtime resource managers like NRM): a metric has a name, a
help string, a type, and one sample per distinct label set.  The
registry is deliberately tiny — the simulator populates it either live
(histograms fed by the profiling hooks) or by snapshot at export time
(counters mirrored from the tracer, gauges read from system state), and
the exporters in :mod:`repro.obs.exporters` render it.
"""

from __future__ import annotations

import re
from typing import Iterable, Mapping

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets (seconds) tuned for tick-loop phase and
#: balance-pass latencies: 10 µs up to 100 ms.
DEFAULT_BUCKETS = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2, 1e-1,
)

LabelSet = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, str] | None) -> LabelSet:
    if not labels:
        return ()
    for name in labels:
        if not _LABEL_RE.match(name):
            raise ValueError(f"invalid label name {name!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Metric:
    """Base: name, help, type, and one value per label set."""

    metric_type = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self._samples: dict[LabelSet, float] = {}

    def value(self, labels: Mapping[str, str] | None = None) -> float:
        """Current value for a label set (0.0 if never touched)."""
        return self._samples.get(_label_key(labels), 0.0)

    def set_sample(
        self, value: float, labels: Mapping[str, str] | None = None
    ) -> None:
        """Overwrite a sample — the snapshot-sync path exporters use
        when mirroring already-aggregated values (tracer counters,
        live gauges) into the registry."""
        self._samples[_label_key(labels)] = float(value)

    def samples(self) -> list[tuple[LabelSet, float]]:
        """(labels, value) pairs sorted by labels for stable export."""
        return sorted(self._samples.items())

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.name!r}, "
            f"samples={len(self._samples)})"
        )


class Counter(Metric):
    """Monotonically increasing value (per label set)."""

    metric_type = "counter"

    def inc(
        self, amount: float = 1.0, labels: Mapping[str, str] | None = None
    ) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        key = _label_key(labels)
        self._samples[key] = self._samples.get(key, 0.0) + amount


class Gauge(Metric):
    """Point-in-time value that can move both ways."""

    metric_type = "gauge"

    def set(self, value: float, labels: Mapping[str, str] | None = None) -> None:
        self._samples[_label_key(labels)] = float(value)


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    Buckets are upper bounds; an observation lands in every bucket
    whose bound is >= the value, plus the implicit ``+Inf`` bucket.
    """

    metric_type = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("need at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError("bucket bounds must be distinct")
        self.name = name
        self.help = help
        self.bounds = bounds
        # label set -> (per-bound counts, sum, count)
        self._series: dict[LabelSet, list] = {}

    def observe(
        self, value: float, labels: Mapping[str, str] | None = None
    ) -> None:
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = [[0] * len(self.bounds), 0.0, 0]
            self._series[key] = series
        counts, _, _ = series
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                counts[i] += 1
        series[1] += value
        series[2] += 1

    def samples(self) -> list[tuple[LabelSet, list[int], float, int]]:
        """(labels, bucket counts, sum, count), sorted by labels."""
        return [
            (key, list(counts), total, n)
            for key, (counts, total, n) in sorted(self._series.items())
        ]

    def count(self, labels: Mapping[str, str] | None = None) -> int:
        series = self._series.get(_label_key(labels))
        return series[2] if series is not None else 0

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, series={len(self._series)})"


class MetricsRegistry:
    """Named metrics with get-or-create registration.

    Re-registering a name returns the existing metric; registering the
    same name as a different type is an error (exporters key output on
    the type line).
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric | Histogram] = {}

    def _register(self, cls, name: str, help: str, **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.metric_type}"
                )
            return existing
        metric = cls(name, help, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> Metric | Histogram:
        try:
            return self._metrics[name]
        except KeyError:
            raise KeyError(
                f"no metric {name!r}; registered: {sorted(self._metrics)}"
            ) from None

    def collect(self) -> list[Metric | Histogram]:
        """All metrics sorted by name (the export order)."""
        return [self._metrics[name] for name in sorted(self._metrics)]

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __repr__(self) -> str:
        return f"MetricsRegistry({sorted(self._metrics)!r})"
