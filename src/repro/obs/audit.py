"""Decision audit log: *why* the scheduler did what it did.

The paper's §4.4–§4.6 decisions — the dual-hysteresis pull, the hot-task
migration walk, the initial-placement choice — each compare concrete
power ratios and reject concrete alternatives, yet the simulator only
records their *outcomes* (``EventRecord`` migrations).  The audit log
captures the decisions themselves: every record stores the site, the
quantities compared, the chosen CPU, and the rejected alternatives, so a
post-run query can answer "why did task 7 move to CPU 12 at t=3.2s?".

Records are emitted by hook attributes (``audit``) on the policy
components; the hooks are ``None`` unless the run was built with
``obs=`` (see :mod:`repro.obs.observer`), so the disabled cost is one
attribute test per decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

#: Version tag for serialised audit records; bump on layout changes.
AUDIT_SCHEMA = 1

#: The decision sites that emit records.  ``migration`` is the outcome
#: site (one record per committed move, emitted by the kernel); the
#: others are decision sites emitted by the policy components.
AUDIT_SITES = (
    "energy_balance",   # §4.4 dual-hysteresis pull evaluation
    "hot_migration",    # §4.5 Figure-5 destination walk
    "placement",        # §4.6 initial placement choice
    "migration",        # committed migration (any reason)
    "dvfs",             # frequency-governor level changes (§2.3 family)
)


@dataclass(frozen=True, slots=True)
class AuditRecord:
    """One audited decision.

    Attributes
    ----------
    seq:
        Monotonic sequence number within the run (records at the same
        simulated time keep their emission order).
    time_ms:
        Simulated time of the decision.
    site:
        One of :data:`AUDIT_SITES`.
    cpu:
        The CPU the decision ran for (balancing CPU, triggering CPU,
        or the chosen CPU for placements).
    pid:
        Task the decision concerned, or ``-1``.
    chosen:
        Destination CPU the decision selected, or ``-1`` when the
        decision rejected every alternative.
    accepted:
        Whether the decision resulted in an action (pull, migration,
        placement) or was declined.
    detail:
        The quantities compared and the rejected alternatives.
    """

    seq: int
    time_ms: int
    site: str
    cpu: int = -1
    pid: int = -1
    chosen: int = -1
    accepted: bool = False
    detail: dict = field(default_factory=dict)

    @property
    def time_s(self) -> float:
        return self.time_ms / 1000.0

    def to_dict(self) -> dict:
        """JSON-ready form; ``detail`` is key-sorted for stable output."""
        return {
            "schema": AUDIT_SCHEMA,
            "seq": self.seq,
            "time_ms": self.time_ms,
            "site": self.site,
            "cpu": self.cpu,
            "pid": self.pid,
            "chosen": self.chosen,
            "accepted": self.accepted,
            "detail": _sorted_detail(self.detail),
        }


def _sorted_detail(detail: dict) -> dict:
    """Key-sort ``detail`` recursively (lists keep their order)."""
    out = {}
    for key in sorted(detail):
        value = detail[key]
        if isinstance(value, dict):
            value = _sorted_detail(value)
        elif isinstance(value, list):
            value = [
                _sorted_detail(v) if isinstance(v, dict) else v for v in value
            ]
        out[key] = value
    return out


class AuditLog:
    """Append-only log of :class:`AuditRecord` with post-run queries.

    Parameters
    ----------
    now_ms:
        Callable returning the current simulated time in milliseconds;
        the log stamps every record with it so emitting components do
        not need a clock.
    limit:
        Optional cap on retained records.  Once reached, further
        records are counted in :attr:`dropped` instead of stored —
        long sweeps can bound audit memory without disabling it.
    """

    def __init__(
        self, now_ms: Callable[[], int], limit: int | None = None
    ) -> None:
        if limit is not None and limit < 1:
            raise ValueError(f"limit must be positive or None, got {limit}")
        self._now_ms = now_ms
        self._limit = limit
        self.records: list[AuditRecord] = []
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.records)

    # -- pickling ---------------------------------------------------------
    # The clock callable is a closure over the owning system and cannot
    # be pickled; checkpointing drops it and the restoring system
    # re-installs its own (see System.__setstate__).  An AuditLog
    # unpickled standalone keeps its records and queries but cannot
    # record until rearm() is called.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_now_ms"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def rearm(self, now_ms: Callable[[], int]) -> None:
        """Re-install the clock callable after unpickling."""
        self._now_ms = now_ms

    # -- emission ---------------------------------------------------------
    def record(
        self,
        site: str,
        cpu: int = -1,
        pid: int = -1,
        chosen: int = -1,
        accepted: bool = False,
        detail: dict | None = None,
    ) -> None:
        """Append one decision record stamped with the current time."""
        if site not in AUDIT_SITES:
            raise ValueError(
                f"unknown audit site {site!r}; expected one of {AUDIT_SITES}"
            )
        if self._limit is not None and len(self.records) >= self._limit:
            self.dropped += 1
            return
        self.records.append(
            AuditRecord(
                seq=len(self.records) + self.dropped,
                time_ms=self._now_ms(),
                site=site,
                cpu=cpu,
                pid=pid,
                chosen=chosen,
                accepted=accepted,
                detail=detail if detail is not None else {},
            )
        )

    # -- queries ----------------------------------------------------------
    def query(
        self,
        site: str | None = None,
        pid: int | None = None,
        cpu: int | None = None,
        accepted: bool | None = None,
        since_ms: int | None = None,
        until_ms: int | None = None,
    ) -> list[AuditRecord]:
        """Records matching every given filter, in emission order."""
        out = []
        for r in self.records:
            if site is not None and r.site != site:
                continue
            if pid is not None and r.pid != pid:
                continue
            if cpu is not None and r.cpu != cpu and r.chosen != cpu:
                continue
            if accepted is not None and r.accepted is not accepted:
                continue
            if since_ms is not None and r.time_ms < since_ms:
                continue
            if until_ms is not None and r.time_ms > until_ms:
                continue
            out.append(r)
        return out

    def migrations_of(self, pid: int) -> list[AuditRecord]:
        """The committed-migration records for one task.

        There is exactly one ``migration``-site record per migration
        the kernel performed, so this list answers "when and why did
        this task move" completely.
        """
        return self.query(site="migration", pid=pid)

    def explain(self, pid: int) -> list[AuditRecord]:
        """Every record concerning one task: its placements, the
        decisions that selected it, and its committed migrations."""
        return self.query(pid=pid)

    def sites_seen(self) -> dict[str, int]:
        """Record counts by site, key-sorted."""
        counts: dict[str, int] = {}
        for r in self.records:
            counts[r.site] = counts.get(r.site, 0) + 1
        return {site: counts[site] for site in sorted(counts)}

    def to_dicts(self, records: Iterable[AuditRecord] | None = None) -> list[dict]:
        """Serialise ``records`` (default: all) via ``to_dict``."""
        chosen = self.records if records is None else records
        return [r.to_dict() for r in chosen]

    def __repr__(self) -> str:
        return (
            f"AuditLog(records={len(self.records)}, dropped={self.dropped})"
        )
