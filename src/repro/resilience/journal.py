"""Sweep journals: an append-only record of grid progress.

``run_grid`` appends one JSON line per event to a journal file under
``.repro_cache/``: a ``meta`` record describing the grid (command, code
salt, and the full spec list, so the journal alone rebuilds the sweep),
then ``start``/``finish``/``fail`` records keyed by spec content hash.
Every append is flushed and fsynced before the job proceeds, so the
journal is current even when the driver is SIGKILLed; a kill mid-append
leaves at most one torn final line, which replay skips.

``finish`` records carry the job's result inline.  Resuming therefore
needs zero recomputation of journaled-complete jobs even when the
result cache is disabled or has been cleared: ``sweep --resume
<journal>`` loads completed results straight from the journal, re-queues
jobs that were in flight (a ``start`` without a matching ``finish``),
re-runs failures, and skips quarantined poison jobs.

Salt semantics mirror the result cache: records are valid only under
the code salt of the most recent ``meta`` record, and opening a journal
with a different salt appends a fresh ``meta`` — prior completions are
then treated as stale and recomputed, exactly like cache misses.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.runner.cache import code_salt
from repro.runner.spec import JobSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runner.executor import JobOutcome

#: Journal format identity; bump on incompatible record-layout changes.
JOURNAL_SCHEMA = "repro-sweep-journal/1"


@dataclass
class JournalReplay:
    """What a journal says happened, tolerant of a torn tail.

    ``completed``/``failed``/``quarantined`` map spec content hashes to
    their latest record under the journal's current salt; ``in_flight``
    holds hashes with a ``start`` but no terminal record — jobs the
    dead driver had running, to be re-queued.  ``torn_lines`` counts
    undecodable lines (a SIGKILL mid-append leaves at most one).
    """

    meta: dict | None = None
    salt: str | None = None
    completed: dict[str, dict] = field(default_factory=dict)
    failed: dict[str, dict] = field(default_factory=dict)
    quarantined: dict[str, dict] = field(default_factory=dict)
    in_flight: set[str] = field(default_factory=set)
    records: int = 0
    torn_lines: int = 0

    def specs(self) -> list[JobSpec]:
        """The grid recorded by the meta record, rebuilt as specs."""
        if self.meta is None or not self.meta.get("specs"):
            raise ValueError(
                "journal has no meta record with a spec list; it predates "
                "the grid description or is torn at the very first line"
            )
        return [JobSpec.from_dict(d) for d in self.meta["specs"]]

    def result_of(self, spec_hash: str) -> dict | None:
        record = self.completed.get(spec_hash)
        return record.get("result") if record is not None else None

    def _apply(self, record: dict) -> None:
        kind = record.get("kind")
        if kind == "meta":
            if self.meta is not None and record.get("salt") != self.salt:
                # New code version: journaled results are stale, exactly
                # like salted cache entries.
                self.completed.clear()
                self.failed.clear()
                self.quarantined.clear()
                self.in_flight.clear()
            self.meta = record
            self.salt = record.get("salt")
            return
        spec_hash = record.get("hash")
        if not isinstance(spec_hash, str):
            return
        if kind == "start":
            self.in_flight.add(spec_hash)
        elif kind == "finish":
            self.in_flight.discard(spec_hash)
            self.failed.pop(spec_hash, None)
            self.completed[spec_hash] = record
        elif kind == "fail":
            self.in_flight.discard(spec_hash)
            self.failed[spec_hash] = record
            if record.get("quarantined"):
                self.quarantined[spec_hash] = record


def replay_journal(path: str | pathlib.Path) -> JournalReplay:
    """Replay a journal file; a missing file yields an empty replay."""
    replay = JournalReplay()
    try:
        raw = pathlib.Path(path).read_bytes()
    except OSError:
        return replay
    for line in raw.split(b"\n"):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            replay.torn_lines += 1
            continue
        if not isinstance(record, dict):
            replay.torn_lines += 1
            continue
        replay.records += 1
        replay._apply(record)
    return replay


class SweepJournal:
    """Append-only journal of one sweep's job lifecycle.

    Opening an existing journal replays it first: completed results are
    then served from :meth:`completed_result`, and in-flight or failed
    jobs are left for the executor to re-run.  Appends are atomic at
    the record level (single ``write`` of one line) and durable (flush
    + fsync) so the journal survives a SIGKILL of the driver.
    """

    def __init__(
        self,
        path: str | pathlib.Path,
        specs: Sequence[JobSpec] = (),
        command: str = "sweep",
        command_args: dict | None = None,
        salt: str | None = None,
    ) -> None:
        self.path = pathlib.Path(path)
        self.salt = salt if salt is not None else code_salt()
        self.replay = replay_journal(self.path)
        if self.replay.meta is not None and self.replay.salt != self.salt:
            # Same clearing rule as JournalReplay._apply: results from
            # another code version do not count as complete.
            self.replay.completed.clear()
            self.replay.failed.clear()
            self.replay.quarantined.clear()
            self.replay.in_flight.clear()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "ab")
        specs = list(specs)
        spec_dicts = [s.to_dict() for s in specs]
        meta = self.replay.meta
        if (
            meta is None
            or meta.get("salt") != self.salt
            or (spec_dicts and meta.get("specs") != spec_dicts)
        ):
            self._append(
                {
                    "kind": "meta",
                    "schema": JOURNAL_SCHEMA,
                    "salt": self.salt,
                    "command": command,
                    "args": command_args or {},
                    "specs": spec_dicts,
                }
            )
            self.replay.meta = None  # force the fresh meta to apply cleanly
            self.replay._apply(
                {
                    "kind": "meta",
                    "schema": JOURNAL_SCHEMA,
                    "salt": self.salt,
                    "specs": spec_dicts,
                }
            )

    # -- queries used before execution ------------------------------------
    def completed_result(self, spec: JobSpec) -> dict | None:
        """The journaled result for ``spec``, or ``None``."""
        return self.replay.result_of(spec.content_hash())

    def is_quarantined(self, spec: JobSpec) -> bool:
        return spec.content_hash() in self.replay.quarantined

    def quarantine_error(self, spec: JobSpec) -> str | None:
        record = self.replay.quarantined.get(spec.content_hash())
        return record.get("error") if record is not None else None

    # -- appends during execution ------------------------------------------
    def record_start(self, index: int, spec: JobSpec) -> None:
        self._append(
            {"kind": "start", "index": index, "hash": spec.content_hash()}
        )

    def record_outcome(self, index: int, outcome: "JobOutcome") -> None:
        spec_hash = outcome.spec.content_hash()
        if outcome.ok:
            record = {
                "kind": "finish",
                "index": index,
                "hash": spec_hash,
                "cached": outcome.cached,
                "elapsed_s": outcome.elapsed_s,
                "result": outcome.result,
            }
        else:
            record = {
                "kind": "fail",
                "index": index,
                "hash": spec_hash,
                "error": outcome.error,
                "quarantined": outcome.quarantined,
            }
        self._append(record)
        self.replay._apply(record)

    def _append(self, record: dict) -> None:
        line = json.dumps(record, separators=(",", ":")) + "\n"
        self._fh.write(line.encode())
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"SweepJournal({self.path}, completed={len(self.replay.completed)}, "
            f"in_flight={len(self.replay.in_flight)})"
        )
