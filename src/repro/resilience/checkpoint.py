"""Simulation checkpoints: stop a run at tick T, finish it later.

On-disk format (``repro-checkpoint/1``): one JSON header line —
schema/version, tick position, policy, the planned duration, and the
code salt the snapshot was taken under — followed by the pickled
machine.  Writes are atomic (tmp file + fsync + ``os.replace``), so a
checkpoint file is either the previous complete snapshot or the new
one, never a torn mix.

Version policy: the schema version bumps on any incompatible change to
the header layout or payload semantics, and loaders reject versions
they do not read.  Because the payload is a pickle of internal classes,
a checkpoint is additionally tied to the exact code tree that wrote it:
:func:`load_checkpoint` refuses a salt mismatch by default rather than
risk unpickling across refactors (``allow_stale=True`` overrides for
same-layout edits such as comment changes).

Determinism contract: resuming runs the remaining ticks on a clock
restored to the snapshot tick, so tick-phase arithmetic, RNG draws, and
trace sampling line up exactly — ``scalar_summary()`` and the event
trace of a checkpointed-and-resumed run are byte-identical to the
uninterrupted run on both tick paths (asserted per pinned perf scenario
in ``tests/test_resilience_checkpoint.py``).
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Callable

from repro.api import SimulationResult
from repro.config import SystemConfig
from repro.core.policy import EnergyAwareConfig, Policy
from repro.runner.cache import code_salt
from repro.sim.clock import Clock
from repro.sim.engine import Engine
from repro.system import CHECKPOINT_SCHEMA, CHECKPOINT_VERSION, System
from repro.workloads.generator import WorkloadSpec


class CheckpointError(RuntimeError):
    """A checkpoint file is unreadable, corrupt, or not loadable here."""


def _expected_schema() -> str:
    return f"{CHECKPOINT_SCHEMA}/{CHECKPOINT_VERSION}"


def save_checkpoint(
    path: str | pathlib.Path,
    system: System,
    duration_s: float | None = None,
) -> pathlib.Path:
    """Write ``system.snapshot()`` to ``path`` atomically.

    ``duration_s`` records the run's planned total duration so
    :func:`resume_simulation` can finish the run without being told how
    long it was meant to be.
    """
    snapshot = system.snapshot()
    payload = snapshot.pop("payload")
    header = dict(snapshot)
    header["code_salt"] = code_salt()
    if duration_s is not None:
        if duration_s <= 0:
            raise ValueError(f"duration must be positive, got {duration_s}")
        header["duration_s"] = float(duration_s)
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(json.dumps(header, sort_keys=True).encode() + b"\n")
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return path


def read_checkpoint(path: str | pathlib.Path) -> dict:
    """Parse a checkpoint file into a snapshot dict (payload unpickled
    lazily by :meth:`System.restore`).

    Raises :class:`CheckpointError` on missing files, corrupt or
    truncated headers, unsupported schema versions, and empty payloads.
    """
    path = pathlib.Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    newline = raw.find(b"\n")
    if newline < 0:
        raise CheckpointError(f"{path} is not a checkpoint (no header line)")
    try:
        header = json.loads(raw[:newline])
    except ValueError as exc:
        raise CheckpointError(f"{path} has a corrupt header: {exc}") from exc
    if not isinstance(header, dict):
        raise CheckpointError(f"{path} has a corrupt header: not an object")
    schema = header.get("schema")
    if schema != _expected_schema():
        raise CheckpointError(
            f"{path} has checkpoint schema {schema!r}; this build reads "
            f"{_expected_schema()!r}"
        )
    snapshot = dict(header)
    snapshot["payload"] = raw[newline + 1:]
    if not snapshot["payload"]:
        raise CheckpointError(f"{path} is truncated (empty payload)")
    return snapshot


def load_checkpoint(
    path: str | pathlib.Path, allow_stale: bool = False
) -> tuple[System, dict]:
    """Rebuild the machine from a checkpoint file.

    Returns ``(system, snapshot_header)``.  A checkpoint written under
    a different code salt is refused unless ``allow_stale=True`` — the
    payload pickles internal classes, so loading it across code changes
    can fail in arbitrary ways or, worse, silently diverge.
    """
    snapshot = read_checkpoint(path)
    salt = snapshot.get("code_salt")
    if not allow_stale and salt is not None and salt != code_salt():
        raise CheckpointError(
            f"checkpoint {path} was written by a different code version "
            f"(salt {salt}, current {code_salt()}); re-run from scratch or "
            "pass allow_stale=True / --allow-stale to load it anyway"
        )
    try:
        system = System.restore(snapshot)
    except CheckpointError:
        raise
    except Exception as exc:
        raise CheckpointError(
            f"cannot load checkpoint {path}: {type(exc).__name__}: {exc}"
        ) from exc
    return system, snapshot


def resume_simulation(
    path: str | pathlib.Path,
    duration_s: float | None = None,
    allow_stale: bool = False,
) -> SimulationResult:
    """Finish a checkpointed run and return its result.

    ``duration_s`` is the run's *total* planned duration; omitted, it
    comes from the checkpoint header (:func:`save_checkpoint`'s
    ``duration_s``).  A checkpoint taken at or past the target duration
    simply yields its result without running further ticks.
    """
    system, snapshot = load_checkpoint(path, allow_stale=allow_stale)
    if duration_s is None:
        duration_s = snapshot.get("duration_s")
        if duration_s is None:
            raise CheckpointError(
                f"checkpoint {path} does not record a planned duration; "
                "pass duration_s"
            )
    duration_s = float(duration_s)
    if duration_s <= 0:
        raise ValueError(f"duration must be positive, got {duration_s}")
    clock = Clock.at(int(snapshot["tick_ms"]), int(snapshot["ticks"]))
    engine = Engine(clock, system.tracer)
    engine.register(system)
    engine.run_until_tick(clock.ticks_for_ms(duration_s * 1000.0))
    return SimulationResult(system=system, duration_s=duration_s)


def run_simulation_checkpointed(
    config: SystemConfig,
    workload: WorkloadSpec,
    checkpoint_path: str | pathlib.Path,
    policy: Policy | str = Policy.ENERGY,
    policy_config: EnergyAwareConfig | None = None,
    duration_s: float = 300.0,
    checkpoint_every_s: float = 60.0,
    fast_path: bool = True,
    validate=False,
    obs=False,
    on_checkpoint: Callable[[pathlib.Path, int], None] | None = None,
    bus=None,
) -> SimulationResult:
    """:func:`repro.api.run_simulation` with periodic checkpoints.

    Every ``checkpoint_every_s`` of *simulated* time the current state
    overwrites ``checkpoint_path`` (atomically — a crash leaves the
    previous complete snapshot).  ``on_checkpoint(path, ticks)`` is
    called after each write, e.g. to count checkpoints for metrics;
    ``bus`` (an optional :class:`repro.obs.events.EventBus`) receives a
    ``checkpoint_written`` event per write.  Checkpointing only reads
    state, so the result is bit-identical to an unchecked run.
    """
    if checkpoint_every_s <= 0:
        raise ValueError(
            f"checkpoint interval must be positive, got {checkpoint_every_s}"
        )
    clock = Clock(config.tick_ms)
    system = System(
        config,
        workload,
        policy=Policy.coerce(policy),
        policy_config=policy_config,
        fast_path=fast_path,
        validate=validate,
        obs=obs,
    )
    engine = Engine(clock, system.tracer)
    engine.register(system)
    total_ticks = clock.ticks_for_ms(duration_s * 1000.0)
    every_ticks = clock.ticks_for_ms(checkpoint_every_s * 1000.0)
    while clock.ticks < total_ticks:
        engine.run_ticks(min(every_ticks, total_ticks - clock.ticks))
        save_checkpoint(checkpoint_path, system, duration_s=duration_s)
        if bus is not None:
            bus.emit("checkpoint_written", path=str(checkpoint_path),
                     ticks=clock.ticks)
        if on_checkpoint is not None:
            on_checkpoint(pathlib.Path(checkpoint_path), clock.ticks)
    return SimulationResult(system=system, duration_s=duration_s)
