"""The supervised worker pool behind :func:`repro.runner.run_grid`.

The plain ``ProcessPoolExecutor`` fails badly under real faults: one
dead worker breaks the whole pool and every in-flight job with it, a
timed-out job's slot is abandoned forever, and a poison job (one that
kills its worker deterministically) would break the pool on every
retry.  :class:`SupervisedPool` wraps the executor with the recovery
policies a long sweep needs:

* **Pool rebuild** — after a worker death or a timeout the pool is torn
  down and rebuilt at full width, so effective parallelism never
  shrinks permanently.
* **Blame and quarantine** — when a pool breaks with several jobs in
  flight, the dead worker's job cannot be told apart from its victims;
  every suspect gets one *kill strike* and is re-run **solo** (one at a
  time, nothing else in flight), which makes the next crash definitive.
  A job that reaches ``max_worker_kills`` strikes (default 2) is
  quarantined: its spec is serialized for offline reproduction and it
  is never retried.  Innocent victims are exonerated by their solo run
  succeeding.
* **Deadline watchdog** — jobs exceeding ``timeout_s`` fail permanently
  (a job that blew its budget once will blow it again); the workers
  running them are terminated with the pool rebuild, and innocent
  in-flight jobs are re-queued without a strike.
* **Heartbeat** — the loop polls worker liveness, so a worker that dies
  while idle is replaced before the next submission trips over the
  broken pool.
* **Deterministic backoff** — transient failures retry after
  :func:`backoff_delay_s`, a capped exponential whose jitter is seeded
  from the spec digest: reproducible across runs, decorrelated across
  specs.
* **Graceful drain** — when the caller's ``stop_event`` is set (the CLI
  wires SIGINT/SIGTERM to it), already-finished futures are harvested,
  everything else is cancelled, and the loop returns so the journal can
  be flushed and a resume command printed.
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.runner.spec import JobSpec

#: Serialized quarantined-spec format; bump on layout changes.
QUARANTINE_SCHEMA = "repro-quarantine/1"


@dataclass
class ExecutorStats:
    """Supervision counters for one :func:`run_grid` call."""

    retries: int = 0
    worker_crashes: int = 0
    pool_rebuilds: int = 0
    timeouts: int = 0
    quarantined: int = 0
    interrupted: bool = False

    def as_dict(self) -> dict:
        return {
            "retries": self.retries,
            "worker_crashes": self.worker_crashes,
            "pool_rebuilds": self.pool_rebuilds,
            "timeouts": self.timeouts,
            "quarantined": self.quarantined,
            "interrupted": self.interrupted,
        }

    def describe(self) -> str:
        parts = []
        if self.retries:
            parts.append(f"{self.retries} retries")
        if self.worker_crashes:
            parts.append(f"{self.worker_crashes} worker crashes")
        if self.pool_rebuilds:
            parts.append(f"{self.pool_rebuilds} pool rebuilds")
        if self.timeouts:
            parts.append(f"{self.timeouts} timeouts")
        if self.quarantined:
            parts.append(f"{self.quarantined} quarantined")
        return ", ".join(parts) if parts else "no incidents"


@dataclass(frozen=True)
class SupervisorConfig:
    """Tunables of the supervised pool.

    The backoff defaults keep retry latency negligible against
    simulation runtimes while still decorrelating retry storms; tests
    shrink them to keep failure-path suites fast.
    """

    timeout_s: float | None = None
    retries: int = 1
    max_worker_kills: int = 2
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    poll_s: float = 0.05
    quarantine_dir: pathlib.Path | None = None


def backoff_delay_s(
    spec: JobSpec, attempt: int, base_s: float = 0.05, cap_s: float = 2.0
) -> float:
    """Deterministic capped exponential backoff with jitter.

    ``min(cap, base * 2**(attempt-1) * jitter)`` with jitter drawn
    uniformly from [0.5, 1.5) by a generator seeded from the spec's
    content hash and the attempt number — the same spec failing the
    same way waits exactly as long in every run, while different specs
    spread out instead of retrying in lockstep.
    """
    if attempt < 1:
        raise ValueError(f"attempt must be >= 1, got {attempt}")
    jitter = 0.5 + random.Random(f"{spec.content_hash()}:{attempt}").random()
    return min(cap_s, base_s * (2 ** (attempt - 1)) * jitter)


def quarantine_spec(
    directory: str | pathlib.Path, spec: JobSpec, kills: int, error: str
) -> pathlib.Path:
    """Serialize a poison job's spec for offline reproduction.

    Written atomically as ``<hash>.spec.json`` so a quarantined job can
    be re-run by hand (``python -m repro`` on the recorded spec) without
    digging through the journal.
    """
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{spec.content_hash()}.spec.json"
    payload = {
        "schema": QUARANTINE_SCHEMA,
        "spec": spec.to_dict(),
        "worker_kills": kills,
        "error": error,
    }
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, indent=1, sort_keys=True))
    os.replace(tmp, path)
    return path


#: record(index, result, error, attempts, elapsed_s, quarantined)
RecordFn = Callable[[int, dict | None, str | None, int, float, bool], None]


class SupervisedPool:
    """One supervised parallel execution of a set of grid indices.

    The caller owns outcome bookkeeping: the pool reports every
    terminal event through ``record`` and every (re)submission through
    ``on_start`` — :func:`repro.runner.run_grid` maps those onto
    ``JobOutcome`` rows and journal appends.  Indices left unrecorded
    when :meth:`run` returns were never completed (pool unavailable or
    drain requested); the caller decides between serial fallback and
    reporting an interrupted sweep.
    """

    def __init__(
        self,
        specs: Sequence[JobSpec],
        indices: Sequence[int],
        workers: int,
        run_fn: Callable[[JobSpec], dict],
        config: SupervisorConfig,
        stats: ExecutorStats,
        record: RecordFn,
        on_start: Callable[[int], None] | None = None,
        stop_event=None,
        bus=None,
    ) -> None:
        self.specs = specs
        self.config = config
        self.stats = stats
        self.run_fn = run_fn
        self.record = record
        self.on_start = on_start
        self.stop_event = stop_event
        self.bus = bus
        self._max_workers = max(1, min(workers, len(indices)))
        self.pending: deque[int] = deque(indices)
        self.solo: deque[int] = deque()
        self.delayed: list[tuple[float, int]] = []
        self.running: dict = {}  # future -> (index, start time)
        self.submissions: dict[int, int] = dict.fromkeys(indices, 0)
        self.failures: dict[int, int] = dict.fromkeys(indices, 0)
        self.kills: dict[int, int] = dict.fromkeys(indices, 0)
        self.recorded: set[int] = set()
        self._pool = None
        self._submit_failures = 0

    # -- lifecycle ---------------------------------------------------------
    def run(self) -> None:
        from concurrent.futures import FIRST_COMPLETED, wait
        from concurrent.futures.process import BrokenProcessPool

        if not self._build_pool(count=False):
            return  # no multiprocessing here; caller falls back to serial
        try:
            while self.pending or self.solo or self.delayed or self.running:
                if self.stop_event is not None and self.stop_event.is_set():
                    self._drain()
                    return
                self._promote_delayed()
                self._check_idle_liveness()
                self._fill_slots()
                if not self.running:
                    if self.delayed:
                        # Everything runnable is backing off; sleep until
                        # the nearest retry comes due.
                        due = min(t for t, _ in self.delayed)
                        time.sleep(
                            max(0.0, min(self.config.poll_s, due - time.monotonic()))
                        )
                    elif (self.pending or self.solo) and self._pool is None:
                        return  # pool gone for good → serial fallback
                    continue
                done, _ = wait(
                    set(self.running),
                    timeout=self.config.poll_s,
                    return_when=FIRST_COMPLETED,
                )
                now = time.monotonic()
                broken = False
                for future in done:
                    if future not in self.running:
                        continue
                    i, start = self.running.pop(future)
                    try:
                        result = future.result()
                    except BrokenProcessPool:
                        self._on_pool_break(i, start, now)
                        broken = True
                        break
                    except Exception as exc:
                        self._on_exception(i, exc, now - start)
                    else:
                        self._record_success(i, result, now - start)
                if not broken:
                    self._check_timeouts(now)
        finally:
            if self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None

    def _build_pool(self, count: bool = True) -> bool:
        from concurrent.futures import ProcessPoolExecutor

        if count:
            self.stats.pool_rebuilds += 1
            if self.bus is not None:
                self.bus.emit("pool_rebuild", workers=self._max_workers)
        try:
            self._pool = ProcessPoolExecutor(max_workers=self._max_workers)
        except (OSError, ValueError):
            self._pool = None
            return False
        return True

    def _rebuild_pool(self, kill_workers: bool = False) -> None:
        pool = self._pool
        if pool is not None:
            if kill_workers:
                # A worker stuck past its deadline cannot be interrupted
                # politely; terminate the whole crew with the rebuild.
                # _processes is a CPython implementation detail, hence
                # the guard — without it the old workers drain in the
                # background, which is still correct, just wasteful.
                for proc in list(getattr(pool, "_processes", {}).values()):
                    proc.terminate()
            pool.shutdown(wait=False, cancel_futures=True)
        self._build_pool()

    # -- submission --------------------------------------------------------
    def _fill_slots(self) -> None:
        from concurrent.futures.process import BrokenProcessPool

        if self.solo:
            # Suspects run one at a time with nothing else in flight, so
            # a crash during the run blames them definitively.
            if not self.running:
                self._submit(self.solo.popleft(), BrokenProcessPool)
            return
        while self.pending and len(self.running) < self._max_workers:
            if not self._submit(self.pending.popleft(), BrokenProcessPool):
                break

    def _submit(self, i: int, broken_exc) -> bool:
        if self._pool is None:
            self.pending.appendleft(i)
            return False
        try:
            future = self._pool.submit(self.run_fn, self.specs[i])
        except broken_exc:
            # A worker died while idle and the pool noticed at submit
            # time; rebuild and re-queue.  Repeated failures without a
            # single successful submission mean workers die at startup
            # (environment trouble, not a poison job) — give up on the
            # pool and let the caller fall back to serial.
            self.stats.worker_crashes += 1
            if self.bus is not None:
                self.bus.emit("worker_death", where="submit", index=i)
            self._submit_failures += 1
            if self._submit_failures > 3:
                if self._pool is not None:
                    self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None
            else:
                self._rebuild_pool()
            self.pending.appendleft(i)
            return False
        except RuntimeError:
            self._pool = None
            self.pending.appendleft(i)
            return False
        self._submit_failures = 0
        self.submissions[i] += 1
        if self.on_start is not None:
            self.on_start(i)
        self.running[future] = (i, time.monotonic())
        return True

    def _promote_delayed(self) -> None:
        if not self.delayed:
            return
        now = time.monotonic()
        due = sorted(i for t, i in self.delayed if t <= now)
        if due:
            self.delayed = [(t, i) for t, i in self.delayed if t > now]
            self.pending.extend(due)

    # -- supervision -------------------------------------------------------
    def _check_idle_liveness(self) -> None:
        """Heartbeat: replace dead-while-idle workers proactively.

        With futures in flight a worker death surfaces through them;
        this catches the window where the pool sits idle between
        submissions with a corpse in the crew.
        """
        if self.running or self._pool is None:
            return
        procs = getattr(self._pool, "_processes", None)
        if procs and any(p.exitcode is not None for p in list(procs.values())):
            self.stats.worker_crashes += 1
            if self.bus is not None:
                self.bus.emit("worker_death", where="idle")
            self._rebuild_pool()

    def _on_pool_break(self, primary: int, primary_start: float, now: float) -> None:
        from concurrent.futures.process import BrokenProcessPool

        self.stats.worker_crashes += 1
        if self.bus is not None:
            self.bus.emit("worker_death", where="run", index=primary)
        suspects = [(primary, primary_start)]
        for future, (i, start) in list(self.running.items()):
            if future.done() and not future.cancelled():
                exc = future.exception()
                if exc is None:
                    # Finished before the break: real result, keep it.
                    self._record_success(i, future.result(), now - start)
                    continue
                if not isinstance(exc, BrokenProcessPool):
                    self._on_exception(i, exc, now - start)
                    continue
            suspects.append((i, start))
        self.running.clear()
        self._rebuild_pool()
        for i, start in suspects:
            self.kills[i] += 1
            if self.kills[i] >= self.config.max_worker_kills:
                self._quarantine(i, now - start)
            else:
                self.solo.append(i)

    def _check_timeouts(self, now: float) -> None:
        timeout_s = self.config.timeout_s
        if timeout_s is None or not self.running:
            return
        expired = [
            (future, i, start)
            for future, (i, start) in self.running.items()
            if now - start > timeout_s
        ]
        if not expired:
            return
        for future, i, start in expired:
            del self.running[future]
            future.cancel()
            self.stats.timeouts += 1
            self._record_failure(
                i, f"timeout after {timeout_s:g}s", now - start
            )
        # Harvest finished bystanders, re-queue the rest without a
        # strike, and rebuild with the stuck workers terminated so the
        # sweep keeps its full width.
        victims = []
        for future, (i, start) in list(self.running.items()):
            if (
                future.done()
                and not future.cancelled()
                and future.exception() is None
            ):
                self._record_success(i, future.result(), now - start)
            else:
                victims.append(i)
        self.running.clear()
        self._rebuild_pool(kill_workers=True)
        for i in reversed(victims):
            self.pending.appendleft(i)

    def _drain(self) -> None:
        """Graceful stop: keep finished work, cancel everything else."""
        from concurrent.futures.process import BrokenProcessPool

        self.stats.interrupted = True
        now = time.monotonic()
        for future, (i, start) in list(self.running.items()):
            if future.done() and not future.cancelled():
                exc = future.exception()
                if exc is None:
                    self._record_success(i, future.result(), now - start)
                elif not isinstance(exc, BrokenProcessPool):
                    self._record_failure(i, _describe(exc), now - start)
        self.running.clear()

    # -- terminal events ---------------------------------------------------
    def _on_exception(self, i: int, exc: BaseException, elapsed: float) -> None:
        self.failures[i] += 1
        if self.failures[i] <= self.config.retries:
            self.stats.retries += 1
            delay = backoff_delay_s(
                self.specs[i],
                self.failures[i],
                self.config.backoff_base_s,
                self.config.backoff_cap_s,
            )
            if self.bus is not None:
                self.bus.emit(
                    "worker_backoff", index=i, attempt=self.failures[i],
                    delay_s=delay, error=_describe(exc),
                )
            self.delayed.append((time.monotonic() + delay, i))
        else:
            self._record_failure(i, _describe(exc), elapsed)

    def _quarantine(self, i: int, elapsed: float) -> None:
        self.stats.quarantined += 1
        spec = self.specs[i]
        kills = self.kills[i]
        error = (
            f"worker process died {kills} times running this job; quarantined"
        )
        if self.config.quarantine_dir is not None:
            path = quarantine_spec(self.config.quarantine_dir, spec, kills, error)
            error = f"{error} (spec saved to {path})"
        self._record_failure(i, error, elapsed, quarantined=True)

    def _record_success(self, i: int, result: dict, elapsed: float) -> None:
        self.recorded.add(i)
        self.record(i, result, None, self.submissions[i], elapsed, False)

    def _record_failure(
        self, i: int, error: str, elapsed: float, quarantined: bool = False
    ) -> None:
        self.recorded.add(i)
        self.record(i, None, error, self.submissions[i], elapsed, quarantined)


def _describe(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"
