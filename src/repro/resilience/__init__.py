"""Crash-safe execution: checkpoint/resume, sweep journals, supervision.

The simulator is deterministic, so every long computation here is
restartable from recorded state instead of from scratch:

* :mod:`repro.resilience.checkpoint` — whole-machine simulation
  checkpoints (``System.snapshot()``/``System.restore()``) with a
  versioned, atomically-written on-disk format; a run checkpointed at
  tick T and resumed is bit-identical to the uninterrupted run.
* :mod:`repro.resilience.journal` — append-only, fsynced journal of
  sweep job starts/finishes/failures under ``.repro_cache/``; a killed
  sweep resumes with ``sweep --resume <journal>`` without recomputing
  journaled-complete jobs.
* :mod:`repro.resilience.supervisor` — the supervised worker pool
  behind :func:`repro.runner.run_grid`: watchdog timeouts, pool rebuild
  after worker death, poison-job quarantine, deterministic capped
  exponential backoff, and graceful SIGINT/SIGTERM drain.

See ``docs/resilience.md`` for the operations guide.
"""

from repro.resilience.checkpoint import (
    CheckpointError,
    load_checkpoint,
    read_checkpoint,
    resume_simulation,
    run_simulation_checkpointed,
    save_checkpoint,
)
from repro.resilience.journal import (
    JOURNAL_SCHEMA,
    JournalReplay,
    SweepJournal,
    replay_journal,
)
from repro.resilience.supervisor import (
    ExecutorStats,
    SupervisorConfig,
    backoff_delay_s,
)

__all__ = [
    "CheckpointError",
    "ExecutorStats",
    "JOURNAL_SCHEMA",
    "JournalReplay",
    "SupervisorConfig",
    "SweepJournal",
    "backoff_delay_s",
    "load_checkpoint",
    "read_checkpoint",
    "replay_journal",
    "resume_simulation",
    "run_simulation_checkpointed",
    "save_checkpoint",
]
