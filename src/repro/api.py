"""High-level experiment API.

    from repro import MachineSpec, SystemConfig, mixed_table2_workload, run_simulation

    config = SystemConfig(machine=MachineSpec.ibm_x445(smt=False),
                          max_power_per_cpu_w=60.0)
    result = run_simulation(config, mixed_table2_workload(3),
                            policy="energy", duration_s=300)
    print(result.throughput_jobs_per_min(), result.migrations())

Every run is deterministic in (config, workload, policy, duration).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.config import SystemConfig
from repro.core.policy import EnergyAwareConfig, Policy, PolicySpec
from repro.sim.clock import Clock
from repro.sim.engine import Engine
from repro.sim.events import EventKind, EventRecord
from repro.sim.trace import TimeSeries, Tracer
from repro.system import System
from repro.workloads.generator import WorkloadSpec


@dataclass
class SimulationResult:
    """Everything measurable about one completed run."""

    system: System
    duration_s: float

    # -- throughput (the paper's headline metric) ------------------------------
    @property
    def jobs_completed(self) -> int:
        return self.system.tracer.counters.get("jobs_total")

    def fractional_jobs(self) -> float:
        return self.system.fractional_jobs()

    def throughput_jobs_per_min(self) -> float:
        """Tasks finished per minute, including fractional progress."""
        return self.fractional_jobs() / self.duration_s * 60.0

    # -- migrations -------------------------------------------------------------
    def migrations(self, reason: str | None = None) -> int:
        counters = self.system.tracer.counters
        if reason is None:
            return counters.get("migrations")
        return counters.get(f"migrations:{reason}")

    def migration_events(self) -> list[EventRecord]:
        return self.system.tracer.events_of(EventKind.MIGRATION)

    # -- throttling ---------------------------------------------------------------
    def throttle_fraction(self, cpu: int) -> float:
        return self.system.throttle.throttled_fraction(cpu)

    def average_throttle_fraction(self) -> float:
        return self.system.throttle.average_fraction()

    def dvfs_scaled_fraction(self, cpu: int) -> float:
        """Fraction of time a CPU ran below full frequency (DVFS mode)."""
        return self.system.dvfs.scaled_fraction(cpu)

    def average_dvfs_scaled_fraction(self) -> float:
        """Machine-wide fraction of governed time below full frequency."""
        system = self.system
        return sum(
            system.dvfs.scaled_fraction(c) for c in range(system.n_cpus)
        ) / system.n_cpus

    def average_frequency_scale(self) -> float:
        """Mean relative clock over CPUs (1.0 when DVFS never engaged)."""
        system = self.system
        return sum(
            system.dvfs.mean_scale(c) for c in range(system.n_cpus)
        ) / system.n_cpus

    # -- energy (frequency-aware Eq. 1 accounting) -----------------------------
    def package_energy_j(self, package: int) -> float:
        """Estimated energy one package consumed over the run (J)."""
        return self.system._pkg_energy_j[package]

    def total_energy_j(self) -> float:
        """Estimated machine energy over the run (J), summed package-
        ascending so the value is deterministic."""
        return sum(self.system._pkg_energy_j)

    def cpu_utilization(self, cpu: int) -> float:
        """Fraction of the run this CPU executed a task (not idle, not
        halted)."""
        return self.system.cpu_utilization(cpu)

    def average_utilization(self) -> float:
        return sum(
            self.system.cpu_utilization(c) for c in range(self.system.n_cpus)
        ) / self.system.n_cpus

    # -- responsiveness ------------------------------------------------------
    def mean_wake_latency_ms(self) -> float:
        """Average ready-to-running latency over all tasks (§1's
        responsiveness criterion)."""
        tasks = self.system.live_tasks() + self.system.exited_tasks
        total = sum(t.wake_latency_sum_ms for t in tasks)
        count = sum(t.wake_latency_n for t in tasks)
        return total / count if count else 0.0

    def max_wake_latency_ms(self) -> float:
        """Worst-case ready-to-running latency observed."""
        tasks = self.system.live_tasks() + self.system.exited_tasks
        return max((t.wake_latency_max_ms for t in tasks), default=0.0)

    # -- power / thermal ------------------------------------------------------------
    def thermal_power_series(self, cpu: int) -> TimeSeries:
        return self.system.tracer.get_series(f"thermal_power.cpu{cpu:02d}")

    def all_thermal_power_series(self) -> list[TimeSeries]:
        return self.system.tracer.series_matching("thermal_power.")

    def temperature_series(self, package: int) -> TimeSeries:
        return self.system.tracer.get_series(f"temperature.pkg{package}")

    def estimation_error(self) -> float:
        return self.system.estimation_error()

    @property
    def max_temperature_error_k(self) -> float:
        return self.system.max_temp_err_k

    @property
    def max_temperature_c(self) -> float:
        return self.system.max_temp_seen_c

    @property
    def tracer(self) -> Tracer:
        return self.system.tracer

    # -- observability ---------------------------------------------------------
    @property
    def observer(self):
        """The run's :class:`repro.obs.observer.Observer`, or None.

        Present only when the run was built with ``obs=``; carries the
        decision audit log, the metrics registry, and (when enabled)
        the tick-phase profile.
        """
        return self.system.observer

    @property
    def audit(self):
        """The decision audit log, or None when observability is off."""
        observer = self.system.observer
        return observer.audit if observer is not None else None

    def explain(self, pid: int) -> list:
        """Audit records concerning one task (placements, decisions
        that selected it, committed migrations).

        Raises if the run was not built with ``obs=`` — an empty answer
        would be indistinguishable from "the task never moved".
        """
        audit = self.audit
        if audit is None:
            raise ValueError(
                "no audit log: run with obs=True (or an ObservabilityConfig "
                "with audit enabled) to record decisions"
            )
        return audit.explain(pid)

    def metrics_snapshot(self) -> dict:
        """JSON metrics snapshot (requires ``obs=`` with metrics on)."""
        observer = self.system.observer
        if observer is None:
            raise ValueError("no metrics: run with obs=True to record them")
        return observer.metrics_snapshot()

    def chrome_trace(self, scenario: str = "") -> dict:
        """Chrome trace-event payload of this run's event log.

        Works on any result — the event stream is always collected.
        """
        from repro.obs.chrome_trace import export_chrome_trace

        return export_chrome_trace(self, scenario=scenario)

    # -- runtime validation ---------------------------------------------------
    @property
    def violations(self) -> list:
        """Invariant violations recorded during the run.

        Empty unless the run was built with ``validate=`` (see
        :mod:`repro.validate.invariants`).
        """
        if self.system.validator is None:
            return []
        return list(self.system.validator.violations)

    # -- structured summary ---------------------------------------------------
    def scalar_summary(self) -> dict[str, float]:
        """The headline metrics as one flat float-valued dict.

        This is the shape the parallel runner caches and the sweep
        aggregator folds across seeds (``repro.analysis.stats
        .summarize_scalars``); richer nested detail lives in
        :func:`repro.analysis.export.run_summary`.
        """
        return {
            "fractional_jobs": self.fractional_jobs(),
            "jobs_per_min": self.throughput_jobs_per_min(),
            "migrations": float(self.migrations()),
            "average_throttle_fraction": self.average_throttle_fraction(),
            "average_utilization": self.average_utilization(),
            "mean_wake_latency_ms": self.mean_wake_latency_ms(),
            "max_temperature_c": self.max_temperature_c,
            "total_energy_j": self.total_energy_j(),
            "average_frequency_scale": self.average_frequency_scale(),
            "average_dvfs_scaled_fraction": self.average_dvfs_scaled_fraction(),
        }


@dataclass(frozen=True, slots=True)
class RunOptions:
    """Bundled run parameters for :func:`run_simulation` and friends.

    Replaces the keyword sprawl (``policy=``, ``obs=``, ``validate=``,
    the checkpoint knobs) with one value that travels through
    :func:`run_simulation`, :meth:`repro.scenario.Scenario.run`, and
    runner job specs (the ``"options"`` scenario key).  Every field
    defaults to ``None``, meaning "use the call's default" — so partial
    options compose with scenario- or call-level settings instead of
    overriding them with their own defaults.

    ``checkpoint_path`` switches the run to the crash-safe executor
    (:func:`repro.resilience.checkpoint.run_simulation_checkpointed`),
    writing a checkpoint every ``checkpoint_every_s`` simulated seconds.
    """

    policy: PolicySpec | Policy | str | None = None
    policy_config: EnergyAwareConfig | None = None
    duration_s: float | None = None
    fast_path: bool | None = None
    validate: object = None
    obs: object = None
    checkpoint_path: str | None = None
    checkpoint_every_s: float | None = None

    def __post_init__(self) -> None:
        if self.policy is not None:
            # Reject unknown names at construction, not at run time.
            PolicySpec.coerce(self.policy)
        if self.checkpoint_every_s is not None and self.checkpoint_path is None:
            raise ValueError(
                "checkpoint_every_s only makes sense with checkpoint_path"
            )


def run_simulation(
    config: SystemConfig,
    workload: WorkloadSpec,
    policy: PolicySpec | Policy | str | None = None,
    policy_config: EnergyAwareConfig | None = None,
    duration_s: float | None = None,
    fast_path: bool | None = None,
    validate=None,
    obs=None,
    options: RunOptions | None = None,
) -> SimulationResult:
    """Build a system, run it for ``duration_s``, return the result.

    Parameters may be given as the traditional keywords or bundled in
    ``options=`` (a :class:`RunOptions`); mixing both in one call is an
    error.  Defaults: ``policy="energy"``, ``duration_s=300``,
    ``fast_path=True``, ``validate=False``, ``obs=False``.

    ``policy`` accepts a :class:`~repro.core.policy.PolicySpec`, a
    :class:`~repro.core.policy.Policy` member, a name string, or a
    ``{"name": ..., "params": {...}}`` mapping; unknown names raise
    ``ValueError`` up front.
    ``fast_path`` selects the batched tick loop (the default) or the
    scalar reference implementation — results are bit-identical either
    way (the perf harness asserts this), so the flag exists for
    benchmarking and verification, not for correctness trade-offs.
    ``validate`` (False, True, or a
    :class:`repro.validate.invariants.ValidationConfig`) installs the
    runtime invariant checker; recorded violations are available as
    :attr:`SimulationResult.violations`.
    ``obs`` (False, True, or a
    :class:`repro.obs.observer.ObservabilityConfig`) installs the
    observer: decision audit log, metrics registry, and optional
    tick-phase profiling, reachable as :attr:`SimulationResult.observer`.
    Observation never changes results — runs with and without it are
    bit-identical (the obs tests assert this).
    """
    if options is not None:
        explicit = [
            name
            for name, value in (
                ("policy", policy),
                ("policy_config", policy_config),
                ("duration_s", duration_s),
                ("fast_path", fast_path),
                ("validate", validate),
                ("obs", obs),
            )
            if value is not None
        ]
        if explicit:
            raise ValueError(
                "pass run parameters either as keywords or bundled in "
                f"options=, not both (got keyword(s): {', '.join(explicit)})"
            )
    else:
        options = RunOptions(
            policy=policy,
            policy_config=policy_config,
            duration_s=duration_s,
            fast_path=fast_path,
            validate=validate,
            obs=obs,
        )
    policy = options.policy if options.policy is not None else Policy.ENERGY
    duration_s = options.duration_s if options.duration_s is not None else 300.0
    fast_path = options.fast_path if options.fast_path is not None else True
    validate = options.validate if options.validate is not None else False
    obs = options.obs if options.obs is not None else False
    if options.checkpoint_path is not None:
        from repro.resilience.checkpoint import run_simulation_checkpointed

        return run_simulation_checkpointed(
            config,
            workload,
            checkpoint_path=options.checkpoint_path,
            policy=policy,
            policy_config=options.policy_config,
            duration_s=duration_s,
            checkpoint_every_s=(
                options.checkpoint_every_s
                if options.checkpoint_every_s is not None
                else 60.0
            ),
            fast_path=fast_path,
            validate=validate,
            obs=obs,
        )
    clock = Clock(config.tick_ms)
    system = System(
        config,
        workload,
        policy=PolicySpec.coerce(policy),
        policy_config=options.policy_config,
        fast_path=fast_path,
        validate=validate,
        obs=obs,
    )
    engine = Engine(clock, system.tracer)
    engine.register(system)
    engine.run_for(duration_s)
    return SimulationResult(system=system, duration_s=duration_s)


@dataclass(frozen=True, slots=True)
class PolicyComparison:
    """A/B comparison of the same scenario under two policies."""

    baseline: SimulationResult
    energy_aware: SimulationResult

    @property
    def throughput_gain(self) -> float:
        """Relative throughput increase of energy-aware over baseline."""
        base = self.baseline.fractional_jobs()
        if base <= 0:
            raise ValueError("baseline made no progress; gain undefined")
        return self.energy_aware.fractional_jobs() / base - 1.0

    @property
    def migration_increase(self) -> tuple[int, int]:
        return self.baseline.migrations(), self.energy_aware.migrations()

    def scalar_summary(self) -> dict[str, float]:
        """Both runs' headline metrics plus the gain, as one flat dict.

        Baseline metrics are prefixed ``baseline_``, energy-aware ones
        ``energy_`` — the A/B analogue of
        :meth:`SimulationResult.scalar_summary`.
        """
        out = {"throughput_gain": self.throughput_gain}
        for prefix, result in (("baseline", self.baseline),
                               ("energy", self.energy_aware)):
            for key, value in result.scalar_summary().items():
                out[f"{prefix}_{key}"] = value
        return out


def compare_policies(
    config: SystemConfig,
    workload: WorkloadSpec,
    duration_s: float = 300.0,
    policy_config: EnergyAwareConfig | None = None,
    fast_path: bool = True,
) -> PolicyComparison:
    """Run the scenario under the baseline and the energy-aware policy.

    Both runs share the configuration (and hence the seed), mirroring the
    paper's enabled/disabled measurements.
    """
    baseline = run_simulation(
        config,
        workload,
        policy=Policy.BASELINE,
        duration_s=duration_s,
        fast_path=fast_path,
    )
    energy = run_simulation(
        config,
        workload,
        policy=Policy.ENERGY,
        policy_config=policy_config,
        duration_s=duration_s,
        fast_path=fast_path,
    )
    return PolicyComparison(baseline=baseline, energy_aware=energy)


@dataclass(frozen=True, slots=True)
class ReplicatedComparison:
    """A policy comparison repeated over several seeds.

    The paper reports multi-run averages ("we ran the experiments
    several times ... on average, there were 3.3 migrations"); this
    aggregates the same way.
    """

    runs: tuple[PolicyComparison, ...]

    def __post_init__(self) -> None:
        if not self.runs:
            raise ValueError("need at least one run")

    @property
    def n_runs(self) -> int:
        return len(self.runs)

    def mean_throughput_gain(self) -> float:
        return sum(r.throughput_gain for r in self.runs) / self.n_runs

    def gain_std(self) -> float:
        mean = self.mean_throughput_gain()
        var = sum((r.throughput_gain - mean) ** 2 for r in self.runs) / self.n_runs
        return var ** 0.5

    def mean_migrations(self) -> tuple[float, float]:
        """(baseline, energy-aware) migration counts averaged over runs."""
        base = sum(r.baseline.migrations() for r in self.runs) / self.n_runs
        energy = sum(r.energy_aware.migrations() for r in self.runs) / self.n_runs
        return base, energy

    def mean_throttle_fractions(self) -> tuple[float, float]:
        base = sum(
            r.baseline.average_throttle_fraction() for r in self.runs
        ) / self.n_runs
        energy = sum(
            r.energy_aware.average_throttle_fraction() for r in self.runs
        ) / self.n_runs
        return base, energy


def run_replicated(
    config: SystemConfig,
    workload: WorkloadSpec,
    duration_s: float = 300.0,
    n_runs: int = 3,
    policy_config: EnergyAwareConfig | None = None,
    fast_path: bool = True,
) -> ReplicatedComparison:
    """Repeat :func:`compare_policies` with derived seeds and aggregate.

    Seeds are ``config.seed, config.seed + 1, ...`` so the replication
    set is itself deterministic.
    """
    if n_runs < 1:
        raise ValueError("need at least one run")
    runs = []
    for i in range(n_runs):
        seeded = replace(config, seed=config.seed + i)
        runs.append(
            compare_policies(
                seeded, workload, duration_s=duration_s,
                policy_config=policy_config, fast_path=fast_path,
            )
        )
    return ReplicatedComparison(runs=tuple(runs))
