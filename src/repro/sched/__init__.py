"""Linux-2.6-style multiprocessor scheduler substrate.

Per-CPU runqueues with round-robin timeslices, a scheduler-domain
hierarchy mirroring the machine topology (§4.1), and the vanilla
pull-based load balancer the paper's policy is merged into.  The
energy-aware pieces live in :mod:`repro.core`; this package is policy
infrastructure shared by the baseline and the energy-aware scheduler.
"""

from repro.sched.domains import CpuGroup, DomainHierarchy, SchedDomain, build_domains
from repro.sched.load_balance import LoadBalanceConfig, find_busiest_group, load_balance_pass
from repro.sched.runqueue import RunQueue
from repro.sched.task import Task, TaskState

__all__ = [
    "CpuGroup",
    "DomainHierarchy",
    "LoadBalanceConfig",
    "RunQueue",
    "SchedDomain",
    "Task",
    "TaskState",
    "build_domains",
    "find_busiest_group",
    "load_balance_pass",
]
