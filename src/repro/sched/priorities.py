"""Nice levels and priority-scaled timeslices (Linux 2.6 O(1) rules).

§3.3's motivation for the variable-period exponential average is exactly
this machinery: "some operating systems, like Linux, give longer
timeslices to tasks with higher priorities", so energy-profile samples
span different durations even before blocking is considered.

We reproduce the 2.6.10 `task_timeslice()` formula: the static priority
is ``120 + nice``; the timeslice scales linearly from the default 100 ms
at nice 0 up to 200 ms at nice -20 and down to the 5 ms minimum at
nice 19:

    timeslice(p) = max(DEF_TIMESLICE * (MAX_PRIO - p) / (MAX_USER_PRIO/2),
                       MIN_TIMESLICE)
"""

from __future__ import annotations

MIN_NICE = -20
MAX_NICE = 19
DEFAULT_PRIO = 120
MAX_PRIO = 140
MAX_USER_PRIO = 40
DEF_TIMESLICE_MS = 100
MIN_TIMESLICE_MS = 5


def static_prio(nice: int) -> int:
    """Linux static priority for a nice level (100..139 for user tasks)."""
    validate_nice(nice)
    return DEFAULT_PRIO + nice


def timeslice_ms(nice: int, base_timeslice_ms: int = DEF_TIMESLICE_MS) -> int:
    """Timeslice in milliseconds for a nice level.

    ``base_timeslice_ms`` rescales the whole curve (the simulator's
    configured timeslice stands in for DEF_TIMESLICE).
    """
    if base_timeslice_ms <= 0:
        raise ValueError("base timeslice must be positive")
    prio = static_prio(nice)
    scaled = base_timeslice_ms * (MAX_PRIO - prio) // (MAX_USER_PRIO // 2)
    minimum = max(1, MIN_TIMESLICE_MS * base_timeslice_ms // DEF_TIMESLICE_MS)
    return max(scaled, minimum)


def validate_nice(nice: int) -> None:
    if not MIN_NICE <= nice <= MAX_NICE:
        raise ValueError(f"nice must be in [{MIN_NICE}, {MAX_NICE}], got {nice}")
