"""Scheduler domains (§4.1, Figure 1).

A :class:`SchedDomain` consists of CPU groups; domains stack into a
hierarchy mirroring the topology.  For the paper's testbed the levels
are: *physical* (SMT siblings of one package), *node* (packages of one
NUMA node), and *top* (the two nodes).  The §7 CMP extension adds a
*core* level between SMT and node.

As in Linux, each CPU owns a bottom-up chain of the domains containing
it; balancing at a level moves tasks between that domain's groups, and
the cheapest (lowest) level that can resolve an imbalance is preferred.
SMT-level domains carry ``smt_level=True`` — the flag the paper adds to
tell the scheduler to skip energy balancing between siblings (§4.7).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.topology import Topology


@dataclass(frozen=True, slots=True)
class CpuGroup:
    """A set of CPUs treated as one balancing unit within a domain."""

    cpus: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.cpus:
            raise ValueError("CPU group cannot be empty")

    def __contains__(self, cpu_id: int) -> bool:
        return cpu_id in self.cpus

    def __len__(self) -> int:
        return len(self.cpus)


@dataclass(frozen=True, slots=True)
class SchedDomain:
    """One level of the hierarchy as seen from any CPU inside it."""

    level: int
    name: str
    span: tuple[int, ...]
    groups: tuple[CpuGroup, ...]
    smt_level: bool = False
    #: cpu -> group lookup; balancing passes resolve the local group on
    #: every invocation, so this must not be a linear scan
    _group_of: dict = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(self.groups) < 2:
            raise ValueError(f"domain {self.name!r} needs >= 2 groups")
        covered = sorted(c for g in self.groups for c in g.cpus)
        if covered != sorted(self.span):
            raise ValueError(f"domain {self.name!r}: groups do not partition span")
        object.__setattr__(
            self, "_group_of", {c: g for g in self.groups for c in g.cpus}
        )

    def local_group(self, cpu_id: int) -> CpuGroup:
        """The group containing ``cpu_id``."""
        group = self._group_of.get(cpu_id)
        if group is None:
            raise ValueError(f"CPU {cpu_id} not in domain {self.name!r}")
        return group


class DomainHierarchy:
    """Per-CPU bottom-up domain chains for one machine."""

    def __init__(self, chains: dict[int, tuple[SchedDomain, ...]]) -> None:
        self._chains = chains

    def chain(self, cpu_id: int) -> tuple[SchedDomain, ...]:
        """Domains containing ``cpu_id``, lowest level first."""
        return self._chains[cpu_id]

    @property
    def n_levels(self) -> int:
        return max((len(c) for c in self._chains.values()), default=0)

    def top_domain(self, cpu_id: int) -> SchedDomain | None:
        chain = self._chains[cpu_id]
        return chain[-1] if chain else None

    def __repr__(self) -> str:
        any_chain = next(iter(self._chains.values()), ())
        return f"DomainHierarchy(levels={[d.name for d in any_chain]})"


def build_domains(topology: Topology) -> DomainHierarchy:
    """Construct the hierarchy for a topology.

    Levels are emitted bottom-up and only when they have >= 2 groups:

    * ``smt``  — groups are single logical CPUs of one core;
    * ``core`` — groups are the cores of one package (CMP extension);
    * ``node`` — groups are the packages of one node;
    * ``top``  — groups are the NUMA nodes.
    """
    spec = topology.spec
    chains: dict[int, list[SchedDomain]] = {c.cpu_id: [] for c in topology.cpus}
    level = 0

    if spec.threads_per_core > 1:
        for core in range(spec.n_cores):
            cpus = tuple(sorted(topology.cpus_of_core(core)))
            domain = SchedDomain(
                level=level,
                name="smt",
                span=cpus,
                groups=tuple(CpuGroup((c,)) for c in cpus),
                smt_level=True,
            )
            for c in cpus:
                chains[c].append(domain)
        level += 1

    if spec.cores_per_package > 1:
        for pkg in range(spec.n_packages):
            cpus = tuple(sorted(topology.cpus_of_package(pkg)))
            cores = sorted({topology.cpu(c).core for c in cpus})
            groups = tuple(
                CpuGroup(tuple(sorted(topology.cpus_of_core(core)))) for core in cores
            )
            domain = SchedDomain(
                level=level, name="core", span=cpus, groups=groups
            )
            for c in cpus:
                chains[c].append(domain)
        level += 1

    if spec.packages_per_node > 1:
        for node in range(spec.nodes):
            cpus = tuple(sorted(topology.cpus_of_node(node)))
            packages = sorted({topology.cpu(c).package for c in cpus})
            groups = tuple(
                CpuGroup(tuple(sorted(topology.cpus_of_package(p)))) for p in packages
            )
            domain = SchedDomain(
                level=level, name="node", span=cpus, groups=groups
            )
            for c in cpus:
                chains[c].append(domain)
        level += 1

    if spec.nodes > 1:
        cpus = tuple(c.cpu_id for c in topology.cpus)
        groups = tuple(
            CpuGroup(tuple(sorted(topology.cpus_of_node(n))))
            for n in range(spec.nodes)
        )
        domain = SchedDomain(level=level, name="top", span=cpus, groups=groups)
        for c in cpus:
            chains[c].append(domain)

    return DomainHierarchy({cpu: tuple(chain) for cpu, chain in chains.items()})
