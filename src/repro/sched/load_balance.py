"""Vanilla pull-based load balancing.

This is our rebuild of the Linux 2.6 balancer the paper starts from:
each CPU periodically walks its domain chain bottom-up, finds the group
with the highest average runqueue length, and *pulls* tasks from the
longest queue of that group into its own queue ("balancing needs only be
done in one direction", §4.4).  Only queued (non-running) tasks are
pulled — migrating the executing task requires the active-migration
machinery used by hot-task migration.

Task selection is pluggable: the baseline takes tasks from the tail,
while the merged energy-load algorithm (§4.4) selects hot or cool tasks
depending on the thermal relation of the two queues.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.sched.domains import CpuGroup, DomainHierarchy, SchedDomain
from repro.sched.runqueue import RunQueue
from repro.sched.task import Task

#: Selects up to ``n`` tasks to pull from ``src`` into ``dst``.
TaskSelector = Callable[[RunQueue, RunQueue, int], Sequence[Task]]

#: Performs one migration; signature (task, src_cpu, dst_cpu).
MigrateFn = Callable[[Task, int, int], None]


@dataclass(frozen=True, slots=True)
class LoadBalanceConfig:
    """Tunables of the vanilla balancer.

    Attributes
    ----------
    min_imbalance:
        Minimum difference in queue length (busiest - local) before a
        pull happens; 2 means a pull strictly reduces the imbalance.
    max_moves_per_pass:
        Cap on tasks moved per domain level per invocation.
    """

    min_imbalance: int = 2
    max_moves_per_pass: int = 2

    def __post_init__(self) -> None:
        if self.min_imbalance < 1:
            raise ValueError("min_imbalance must be >= 1")
        if self.max_moves_per_pass < 1:
            raise ValueError("max_moves_per_pass must be >= 1")


def group_load(group: CpuGroup, runqueues: Mapping[int, RunQueue]) -> float:
    """Average runqueue length per CPU of the group."""
    total = 0
    for c in group.cpus:
        total += runqueues[c].nr
    return total / len(group.cpus)


def find_busiest_group(
    domain: SchedDomain,
    cpu_id: int,
    runqueues: Mapping[int, RunQueue],
) -> CpuGroup | None:
    """Group with the highest average load, if it beats the local group."""
    local = domain.local_group(cpu_id)
    local_load = group_load(local, runqueues)
    busiest: CpuGroup | None = None
    busiest_load = local_load
    for group in domain.groups:
        if group is local:
            continue
        load = group_load(group, runqueues)
        if load > busiest_load:
            busiest, busiest_load = group, load
    return busiest


def find_busiest_queue(
    group: CpuGroup, runqueues: Mapping[int, RunQueue]
) -> RunQueue:
    """Longest runqueue within a group (ties to the lowest CPU id).

    Group CPU tuples are sorted ascending, so keeping the first strictly
    longest queue resolves ties exactly like ``max`` keyed on
    ``(nr, -cpu_id)`` did.
    """
    busiest: RunQueue | None = None
    busiest_nr = -1
    for c in group.cpus:
        rq = runqueues[c]
        if rq.nr > busiest_nr:
            busiest, busiest_nr = rq, rq.nr
    return busiest


def default_selector(src: RunQueue, dst: RunQueue, n: int) -> Sequence[Task]:
    """Baseline selection: pull from the tail of the queued tasks,
    skipping tasks whose affinity mask forbids the destination."""
    movable = [t for t in src.queued_tasks() if t.allowed_on(dst.cpu_id)]
    return movable[len(movable) - n :] if n < len(movable) else movable


def load_balance_pass(
    cpu_id: int,
    hierarchy: DomainHierarchy,
    runqueues: Mapping[int, RunQueue],
    migrate: MigrateFn,
    config: LoadBalanceConfig | None = None,
    selector: TaskSelector | None = None,
) -> int:
    """One full bottom-up balancing pass for ``cpu_id``; returns moves.

    At each level: find the busiest group; if it is not the local group
    and its longest queue exceeds the local queue by at least
    ``min_imbalance``, pull enough queued tasks to halve the difference.
    """
    config = config if config is not None else LoadBalanceConfig()
    selector = selector if selector is not None else default_selector
    local_rq = runqueues[cpu_id]
    moved = 0
    for domain in hierarchy.chain(cpu_id):
        busiest_group = find_busiest_group(domain, cpu_id, runqueues)
        if busiest_group is None:
            continue
        busiest_rq = find_busiest_queue(busiest_group, runqueues)
        diff = busiest_rq.nr - local_rq.nr
        if diff < config.min_imbalance:
            continue
        n_to_move = min(diff // 2, config.max_moves_per_pass)
        for task in list(selector(busiest_rq, local_rq, n_to_move)):
            migrate(task, busiest_rq.cpu_id, cpu_id)
            moved += 1
    return moved
