"""The task: our ``task_struct`` analogue.

Carries scheduling state (runqueue membership, timeslice budget), the
behaviour phase machine driving its instruction mix, job-progress
accounting for throughput measurement, and — as the paper extends
``task_struct`` (§5) — its energy profile.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional

from repro.sched.priorities import validate_nice

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.profile import EnergyProfile
    from repro.workloads.behavior import Behavior
    from repro.workloads.generator import TaskSpec


class TaskState(enum.Enum):
    READY = "ready"        #: on a runqueue, not executing
    RUNNING = "running"    #: currently on a CPU
    BLOCKED = "blocked"    #: waiting (interactive I/O)
    EXITED = "exited"


class Task:
    """One schedulable task.

    Parameters
    ----------
    pid:
        Unique task id.
    name / inode:
        Identity of the backing binary; ``inode`` keys the §4.6
        initial-placement hash table.
    behavior:
        Phase machine producing the instruction mix.
    job_instructions:
        Instructions per job for throughput accounting.
    spec:
        The workload slot this task belongs to (drives respawn).
    """

    __slots__ = (
        "pid",
        "name",
        "inode",
        "behavior",
        "spec",
        "state",
        "nice",
        "cpus_allowed",
        "cpu",
        "timeslice_remaining_ms",
        "job_instructions",
        "instructions_remaining",
        "jobs_completed",
        "total_busy_s",
        "total_energy_j",
        "migrations",
        "profile",
        "first_timeslice_done",
        "run_remaining_s",
        "wake_at_ms",
        "started_at_ms",
        "ready_since_ms",
        "wake_latency_sum_ms",
        "wake_latency_max_ms",
        "wake_latency_n",
        "cold_instructions_remaining",
        "warmup_instructions_lost",
    )

    def __init__(
        self,
        pid: int,
        name: str,
        inode: int,
        behavior: "Behavior",
        job_instructions: float,
        spec: "Optional[TaskSpec]" = None,
        nice: int = 0,
        cpus_allowed: frozenset[int] | None = None,
    ) -> None:
        if job_instructions <= 0:
            raise ValueError("job_instructions must be positive")
        validate_nice(nice)
        if cpus_allowed is not None and not cpus_allowed:
            raise ValueError("cpus_allowed must not be empty")
        self.pid = pid
        self.name = name
        self.inode = inode
        self.behavior = behavior
        self.spec = spec
        self.state = TaskState.READY
        self.nice = nice
        self.cpus_allowed = cpus_allowed
        self.cpu = -1
        self.timeslice_remaining_ms = 0.0
        self.job_instructions = job_instructions
        self.instructions_remaining = job_instructions
        self.jobs_completed = 0
        self.total_busy_s = 0.0
        self.total_energy_j = 0.0
        self.migrations = 0
        self.profile: "EnergyProfile | None" = None
        self.first_timeslice_done = False
        self.run_remaining_s: float | None = None  #: interactive run budget
        self.wake_at_ms: int | None = None
        self.started_at_ms = 0
        #: responsiveness accounting: set when the task becomes ready
        #: (fork or wakeup), cleared when it first executes again.
        self.ready_since_ms: int | None = None
        self.wake_latency_sum_ms = 0.0
        self.wake_latency_max_ms = 0.0
        self.wake_latency_n = 0
        #: cache-affinity state (§4.1/§6.5): instructions still to
        #: execute at reduced speed after the last migration, and the
        #: lifetime total of instructions lost to cold caches.
        self.cold_instructions_remaining = 0.0
        self.warmup_instructions_lost = 0.0

    # -- convenience --------------------------------------------------------
    @property
    def profile_power_w(self) -> float:
        """The task's current energy-profile power (0 if no profile yet)."""
        return self.profile.power_w if self.profile is not None else 0.0

    @property
    def is_runnable(self) -> bool:
        return self.state in (TaskState.READY, TaskState.RUNNING)

    def allowed_on(self, cpu_id: int) -> bool:
        """Whether the task's affinity mask permits this CPU."""
        return self.cpus_allowed is None or cpu_id in self.cpus_allowed

    def note_ready(self, now_ms: int) -> None:
        """Mark the instant the task became runnable (fork or wake)."""
        self.ready_since_ms = now_ms

    def note_dispatched(self, now_ms: int) -> None:
        """Record the ready-to-running latency, if a wake was pending."""
        if self.ready_since_ms is None:
            return
        latency = float(now_ms - self.ready_since_ms)
        self.wake_latency_sum_ms += latency
        self.wake_latency_n += 1
        if latency > self.wake_latency_max_ms:
            self.wake_latency_max_ms = latency
        self.ready_since_ms = None

    @property
    def mean_wake_latency_ms(self) -> float:
        """Average ready-to-running latency (responsiveness, §1)."""
        if self.wake_latency_n == 0:
            return 0.0
        return self.wake_latency_sum_ms / self.wake_latency_n

    def start_job(self) -> None:
        """Reset per-job progress (closed-loop respawn)."""
        self.instructions_remaining = self.job_instructions

    def retire(self, instructions: float) -> bool:
        """Account executed instructions; return True if the job finished."""
        if instructions < 0:
            raise ValueError("instructions must be non-negative")
        self.instructions_remaining -= instructions
        if self.instructions_remaining <= 0:
            self.jobs_completed += 1
            return True
        return False

    def __repr__(self) -> str:
        return (
            f"Task(pid={self.pid}, name={self.name!r}, state={self.state.value}, "
            f"cpu={self.cpu}, profile={self.profile_power_w:.1f}W)"
        )
