"""Per-CPU runqueues.

Each logical CPU executes tasks from its local queue only (§4.1); tasks
move between queues solely through explicit migration.  Scheduling
within a queue is round-robin with fixed timeslices — the paper's
machinery is orthogonal to intra-queue priorities, so we keep the
single-priority case of the 2.6 O(1) scheduler.

Like the paper's extended ``runqueue`` struct (§5), the queue carries
the CPU-local power metrics (runqueue power, thermal power, maximum
power); those fields are maintained by :mod:`repro.core.metrics`.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from repro.sched.task import Task, TaskState


class RunQueue:
    """Runqueue of one logical CPU."""

    __slots__ = ("cpu_id", "current", "_queue", "max_power_w", "version", "nr")

    def __init__(self, cpu_id: int, max_power_w: float = float("inf")) -> None:
        self.cpu_id = cpu_id
        self.current: Task | None = None
        self._queue: deque[Task] = deque()
        #: maximum sustainable power of this CPU (§4.3); set per experiment
        self.max_power_w = max_power_w
        #: bumped whenever queue membership or a member's profile changes;
        #: cache key for the board's memoised runqueue-power sums
        self.version = 0
        #: runnable-task count (current + queued), maintained on every
        #: mutation so hot paths read an attribute instead of recounting
        self.nr = 0

    # -- state --------------------------------------------------------------
    @property
    def nr_running(self) -> int:
        """Number of runnable tasks owned by this queue (incl. current)."""
        return self.nr

    @property
    def is_idle(self) -> bool:
        return self.nr_running == 0

    def tasks(self) -> Iterator[Task]:
        """All runnable tasks (current first, then queued order)."""
        if self.current is not None:
            yield self.current
        yield from self._queue

    def queued_tasks(self) -> tuple[Task, ...]:
        """Tasks that are ready but not executing (migratable cheaply)."""
        return tuple(self._queue)

    # -- scheduling operations -----------------------------------------------
    def enqueue(self, task: Task) -> None:
        """Add a ready task at the tail."""
        if task.cpu not in (-1, self.cpu_id):
            raise ValueError(
                f"task pid={task.pid} belongs to CPU {task.cpu}, "
                f"cannot enqueue on CPU {self.cpu_id}"
            )
        task.cpu = self.cpu_id
        task.state = TaskState.READY
        self._queue.append(task)
        self.version += 1
        self.nr += 1

    def pick_next(self, eligible=None) -> Task | None:
        """Dispatch: rotate the current task to the tail, run the head.

        With an ``eligible`` predicate (e.g. energy containers denying
        exhausted tasks), ineligible tasks are rotated past; if no task
        qualifies the CPU stays without a current task — the ineligible
        tasks remain queued and still count toward ``nr_running``.
        """
        # Rotation changes tasks() iteration order, which changes the
        # floating-point summation order of the runqueue power sum, so
        # it must invalidate cached sums even though membership is the
        # same.  (An idle CPU calls this every tick; skip the bump when
        # there is nothing to rotate.)
        if self.current is not None or self._queue:
            self.version += 1
        if self.current is not None:
            self.current.state = TaskState.READY
            self._queue.append(self.current)
            self.current = None
        if eligible is None:
            if self._queue:
                task = self._queue.popleft()
                task.state = TaskState.RUNNING
                self.current = task
            return self.current
        for _ in range(len(self._queue)):
            task = self._queue.popleft()
            if eligible(task):
                task.state = TaskState.RUNNING
                self.current = task
                break
            self._queue.append(task)
        return self.current

    def deschedule_current(self) -> Task | None:
        """Take the running task off the CPU without re-queueing it."""
        task = self.current
        if task is not None:
            task.state = TaskState.READY
            self.current = None
            self.version += 1
            self.nr -= 1
        return task

    def remove(self, task: Task) -> None:
        """Remove a task from this queue (for migration or blocking)."""
        if task is self.current:
            self.current = None
        else:
            try:
                self._queue.remove(task)
            except ValueError:
                raise ValueError(
                    f"task pid={task.pid} not on runqueue of CPU {self.cpu_id}"
                ) from None
        task.cpu = -1
        self.version += 1
        self.nr -= 1

    def __contains__(self, task: Task) -> bool:
        return task is self.current or task in self._queue

    def __repr__(self) -> str:
        pids = [t.pid for t in self.tasks()]
        return f"RunQueue(cpu={self.cpu_id}, nr_running={self.nr_running}, pids={pids})"
