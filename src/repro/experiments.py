"""Named, runnable versions of the paper's experiments.

Each experiment returns a plain-text report; the CLI (``python -m
repro``) dispatches here.  Durations default to quick-look values —
pass ``duration_s`` (and ``seed``) for full-length runs; the committed
full-length results live in ``benchmarks/results/``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


from repro.analysis.report import format_table
from repro.analysis.stats import curve_band, throttle_table, throughput_gain
from repro.api import compare_policies, run_simulation
from repro.config import SystemConfig
from repro.cpu.thermal import ThermalParams
from repro.cpu.throttle import ThrottleConfig
from repro.cpu.topology import MachineSpec
from repro.workloads.generator import (
    homogeneity_sweep,
    mixed_table2_workload,
    short_task_storm,
    single_program_workload,
)

# The heterogeneous-cooling machines used by the throttling experiments.
T3_PACKAGE_R = (0.36, 0.17, 0.16, 0.33, 0.31, 0.15, 0.14, 0.13)
F8_PACKAGE_R = (0.32, 0.21, 0.20, 0.30, 0.28, 0.19, 0.25, 0.18)


def _heterogeneous_thermal(resistances) -> tuple[ThermalParams, ...]:
    return tuple(ThermalParams(r_k_per_w=r, c_j_per_k=20.0 / r) for r in resistances)


def experiment_fig6_fig7(duration_s: float = 300.0, seed: int = 7) -> str:
    """Energy balancing on/off: band width and migrations (§6.1)."""
    config = SystemConfig(
        machine=MachineSpec.ibm_x445(smt=False),
        max_power_per_cpu_w=60.0,
        seed=seed,
    )
    cmp = compare_policies(config, mixed_table2_workload(3), duration_s=duration_s)
    rows = []
    for label, result in (("disabled", cmp.baseline), ("enabled", cmp.energy_aware)):
        band = curve_band(result, skip_s=min(60.0, duration_s / 4))
        rows.append(
            [label, result.migrations(), f"{band['mean_width_w']:.1f}",
             f"{band['peak_thermal_power_w']:.1f}"]
        )
    return format_table(
        ["energy balancing", "migrations", "band width [W]", "peak [W]"],
        rows,
        title=f"Figures 6/7 ({duration_s:.0f}s, 18 tasks, 8 CPUs)",
    )


def experiment_table3(duration_s: float = 300.0, seed: int = 11) -> str:
    """Throttling percentages and throughput under a 38 degC limit."""
    config = SystemConfig(
        machine=MachineSpec.ibm_x445(smt=True),
        thermal=_heterogeneous_thermal(T3_PACKAGE_R),
        temp_limit_c=38.0,
        throttle=ThrottleConfig(enabled=True),
        seed=seed,
    )
    cmp = compare_policies(config, mixed_table2_workload(6), duration_s=duration_s)
    rows = [
        [row.cpu, f"{row.disabled_pct:.1f}%", f"{row.enabled_pct:.1f}%"]
        for row in throttle_table(cmp.baseline, cmp.energy_aware)
    ]
    rows.append(
        ["average",
         f"{cmp.baseline.average_throttle_fraction() * 100:.1f}%",
         f"{cmp.energy_aware.average_throttle_fraction() * 100:.1f}%"]
    )
    table = format_table(
        ["logical CPU", "balancing off", "balancing on"], rows,
        title=f"Table 3 ({duration_s:.0f}s, 38 degC limit)",
    )
    return table + f"\nthroughput increase: {cmp.throughput_gain:+.1%}"


def experiment_short_tasks(duration_s: float = 200.0, seed: int = 12) -> str:
    """§6.2's short-task workload: placement-driven gain."""
    config = SystemConfig(
        machine=MachineSpec.ibm_x445(smt=True),
        thermal=_heterogeneous_thermal(T3_PACKAGE_R),
        temp_limit_c=38.0,
        throttle=ThrottleConfig(enabled=True),
        seed=seed,
    )
    cmp = compare_policies(
        config, short_task_storm(total_slots=32, job_s=0.7), duration_s=duration_s
    )
    return (
        f"short tasks ({duration_s:.0f}s): baseline "
        f"{cmp.baseline.fractional_jobs():.0f} jobs, energy-aware "
        f"{cmp.energy_aware.fractional_jobs():.0f} jobs "
        f"({cmp.throughput_gain:+.1%})"
    )


def experiment_fig8(duration_s: float = 180.0, seed: int = 13) -> str:
    """Throughput gain vs workload homogeneity."""
    config = SystemConfig(
        machine=MachineSpec.ibm_x445(smt=False),
        thermal=_heterogeneous_thermal(F8_PACKAGE_R),
        temp_limit_c=38.0,
        throttle=ThrottleConfig(enabled=True),
        seed=seed,
    )
    rows = []
    for workload in homogeneity_sweep(18):
        cmp = compare_policies(config, workload, duration_s=duration_s)
        rows.append([workload.name, f"{cmp.throughput_gain * 100:+.1f}%"])
    return format_table(
        ["#memrw/#pushpop/#bitcnts", "throughput increase"], rows,
        title=f"Figure 8 ({duration_s:.0f}s per scenario)",
    )


def experiment_fig9(duration_s: float = 200.0, seed: int = 3) -> str:
    """The single hot task's tour."""
    config = SystemConfig(
        machine=MachineSpec.ibm_x445(smt=True),
        max_power_per_cpu_w=20.0,
        thermal=ThermalParams(r_k_per_w=0.30, c_j_per_k=50.0),
        seed=seed,
    )
    result = run_simulation(
        config, single_program_workload("bitcnts", 1),
        policy="energy", duration_s=duration_s,
    )
    rows = [
        [f"{e.time_ms / 1000:.1f}s", e.detail["src"], e.detail["dst"]]
        for e in result.migration_events()
    ]
    return format_table(
        ["time", "from CPU", "to CPU"], rows,
        title=f"Figure 9 ({duration_s:.0f}s, one bitcnts, 40 W/package)",
    )


def experiment_fig10(duration_s: float = 200.0, seed: int = 5) -> str:
    """Hot-task-migration gain vs number of tasks."""
    rows = []
    for n in (1, 2, 4, 8):
        config = SystemConfig(
            machine=MachineSpec.ibm_x445(smt=True),
            max_power_per_cpu_w=20.0,
            thermal=ThermalParams(r_k_per_w=0.30, c_j_per_k=50.0),
            throttle=ThrottleConfig(enabled=True, scope="package"),
            seed=seed,
        )
        cmp = compare_policies(
            config, single_program_workload("bitcnts", n), duration_s=duration_s
        )
        rows.append([n, f"{cmp.throughput_gain * 100:+.1f}%"])
    return format_table(
        ["bitcnts tasks", "throughput increase"], rows,
        title=f"Figure 10 ({duration_s:.0f}s per point, 40 W packages)",
    )


def experiment_hotspot(duration_s: float = 180.0, seed: int = 0) -> str:
    """The §7 functional-unit extension."""
    from repro.hotspot.experiment import (
        HotspotExperimentConfig,
        run_hotspot_experiment,
    )

    config = HotspotExperimentConfig(duration_s=duration_s)
    rows = []
    results = {}
    for policy in ("none", "total", "unit"):
        results[policy] = run_hotspot_experiment(config, policy)
    for policy, result in results.items():
        rows.append(
            [policy, result.swaps, f"{result.throttle_fraction:.1%}",
             f"{result.max_unit_temp_c:.1f}",
             f"{result.throughput_vs(results['none']):+.1%}"]
        )
    return format_table(
        ["policy", "swaps", "unit throttling", "max unit temp [C]",
         "throughput vs none"],
        rows,
        title="Extension (§7): same-power integer/FP tasks",
    )


@dataclass(frozen=True, slots=True)
class ExperimentInfo:
    """Registry entry: human description plus the runner."""

    name: str
    description: str
    run: Callable[..., str]


REGISTRY: dict[str, ExperimentInfo] = {
    info.name: info
    for info in (
        ExperimentInfo("fig6-7", "energy balancing band + migrations (§6.1)",
                       experiment_fig6_fig7),
        ExperimentInfo("table3", "throttling percentages + throughput (§6.2)",
                       experiment_table3),
        ExperimentInfo("short-tasks", "placement-driven short-task gain (§6.2)",
                       experiment_short_tasks),
        ExperimentInfo("fig8", "gain vs workload homogeneity (§6.3)",
                       experiment_fig8),
        ExperimentInfo("fig9", "single hot task tour (§6.4)", experiment_fig9),
        ExperimentInfo("fig10", "hot-task gain vs task count (§6.4)",
                       experiment_fig10),
        ExperimentInfo("hotspot", "functional-unit extension (§7)",
                       experiment_hotspot),
    )
}


def run_all(duration_s: float | None = None) -> str:
    """Run every registered experiment; returns one combined report.

    Durations default to each experiment's quick-look value; pass
    ``duration_s`` to override uniformly (the full-length record lives
    in ``benchmarks/results/`` and EXPERIMENTS.md).
    """
    sections = []
    for name in sorted(REGISTRY):
        report = run_experiment(name, duration_s=duration_s)
        sections.append(f"===== {name} =====\n{report}")
    return "\n\n".join(sections)


def run_experiment(name: str, duration_s: float | None = None,
                   seed: int | None = None) -> str:
    """Run a registered experiment by name; returns the report text."""
    try:
        info = REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: {sorted(REGISTRY)}"
        ) from None
    kwargs = {}
    if duration_s is not None:
        kwargs["duration_s"] = duration_s
    if seed is not None:
        kwargs["seed"] = seed
    return info.run(**kwargs)
