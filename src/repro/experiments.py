"""Named, runnable versions of the paper's experiments.

Every experiment is split into two halves:

* a **metrics** function (``metrics_fig9`` etc.) that runs the
  simulation and returns a *structured result*: a JSON-serialisable
  dict with a flat ``"scalars"`` mapping (what the parallel runner
  caches and the sweep aggregator folds across seeds) plus the detail
  rows the text report needs;
* a **render** function that turns that dict into the plain-text report
  the CLI prints.

``run_experiment`` composes the two, so ``python -m repro run`` output
is unchanged, while ``repro.runner`` can call ``experiment_metrics`` in
a worker process and get data instead of text.  Durations default to
quick-look values — pass ``duration_s`` (and ``seed``) for full-length
runs; the committed full-length results live in ``benchmarks/results/``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


from repro.analysis.report import format_table
from repro.analysis.stats import curve_band, throttle_table
from repro.api import compare_policies, run_simulation
from repro.config import SystemConfig
from repro.cpu.thermal import ThermalParams
from repro.cpu.throttle import ThrottleConfig
from repro.cpu.topology import MachineSpec
from repro.workloads.generator import (
    homogeneity_sweep,
    mixed_table2_workload,
    short_task_storm,
    single_program_workload,
)

# The heterogeneous-cooling machines used by the throttling experiments.
T3_PACKAGE_R = (0.36, 0.17, 0.16, 0.33, 0.31, 0.15, 0.14, 0.13)
F8_PACKAGE_R = (0.32, 0.21, 0.20, 0.30, 0.28, 0.19, 0.25, 0.18)


def _heterogeneous_thermal(resistances) -> tuple[ThermalParams, ...]:
    return tuple(ThermalParams(r_k_per_w=r, c_j_per_k=20.0 / r) for r in resistances)


def _base(name: str, duration_s: float, seed: int) -> dict:
    return {"experiment": name, "duration_s": duration_s, "seed": seed}


# -- Figures 6/7 --------------------------------------------------------------

def metrics_fig6_fig7(duration_s: float = 300.0, seed: int = 7) -> dict:
    """Energy balancing on/off: band width and migrations (§6.1)."""
    config = SystemConfig(
        machine=MachineSpec.ibm_x445(smt=False),
        max_power_per_cpu_w=60.0,
        seed=seed,
    )
    cmp = compare_policies(config, mixed_table2_workload(3), duration_s=duration_s)
    rows = []
    for label, result in (("disabled", cmp.baseline), ("enabled", cmp.energy_aware)):
        band = curve_band(result, skip_s=min(60.0, duration_s / 4))
        rows.append(
            {
                "energy_balancing": label,
                "migrations": result.migrations(),
                "mean_width_w": band["mean_width_w"],
                "peak_thermal_power_w": band["peak_thermal_power_w"],
            }
        )
    out = _base("fig6-7", duration_s, seed)
    out["rows"] = rows
    out["scalars"] = {
        "migrations_disabled": float(rows[0]["migrations"]),
        "migrations_enabled": float(rows[1]["migrations"]),
        "band_width_disabled_w": rows[0]["mean_width_w"],
        "band_width_enabled_w": rows[1]["mean_width_w"],
        "peak_power_disabled_w": rows[0]["peak_thermal_power_w"],
        "peak_power_enabled_w": rows[1]["peak_thermal_power_w"],
    }
    return out


def render_fig6_fig7(metrics: dict) -> str:
    rows = [
        [r["energy_balancing"], r["migrations"], f"{r['mean_width_w']:.1f}",
         f"{r['peak_thermal_power_w']:.1f}"]
        for r in metrics["rows"]
    ]
    return format_table(
        ["energy balancing", "migrations", "band width [W]", "peak [W]"],
        rows,
        title=f"Figures 6/7 ({metrics['duration_s']:.0f}s, 18 tasks, 8 CPUs)",
    )


# -- Table 3 ------------------------------------------------------------------

def metrics_table3(duration_s: float = 300.0, seed: int = 11) -> dict:
    """Throttling percentages and throughput under a 38 degC limit."""
    config = SystemConfig(
        machine=MachineSpec.ibm_x445(smt=True),
        thermal=_heterogeneous_thermal(T3_PACKAGE_R),
        temp_limit_c=38.0,
        throttle=ThrottleConfig(enabled=True),
        seed=seed,
    )
    cmp = compare_policies(config, mixed_table2_workload(6), duration_s=duration_s)
    rows = [
        {"cpu": row.cpu, "disabled_pct": row.disabled_pct,
         "enabled_pct": row.enabled_pct}
        for row in throttle_table(cmp.baseline, cmp.energy_aware)
    ]
    avg_off = cmp.baseline.average_throttle_fraction() * 100
    avg_on = cmp.energy_aware.average_throttle_fraction() * 100
    out = _base("table3", duration_s, seed)
    out["rows"] = rows
    out["scalars"] = {
        "avg_throttle_disabled_pct": avg_off,
        "avg_throttle_enabled_pct": avg_on,
        "throughput_gain": cmp.throughput_gain,
    }
    return out


def render_table3(metrics: dict) -> str:
    rows = [
        [r["cpu"], f"{r['disabled_pct']:.1f}%", f"{r['enabled_pct']:.1f}%"]
        for r in metrics["rows"]
    ]
    scalars = metrics["scalars"]
    rows.append(
        ["average",
         f"{scalars['avg_throttle_disabled_pct']:.1f}%",
         f"{scalars['avg_throttle_enabled_pct']:.1f}%"]
    )
    table = format_table(
        ["logical CPU", "balancing off", "balancing on"], rows,
        title=f"Table 3 ({metrics['duration_s']:.0f}s, 38 degC limit)",
    )
    return table + f"\nthroughput increase: {scalars['throughput_gain']:+.1%}"


# -- short tasks --------------------------------------------------------------

def metrics_short_tasks(duration_s: float = 200.0, seed: int = 12) -> dict:
    """§6.2's short-task workload: placement-driven gain."""
    config = SystemConfig(
        machine=MachineSpec.ibm_x445(smt=True),
        thermal=_heterogeneous_thermal(T3_PACKAGE_R),
        temp_limit_c=38.0,
        throttle=ThrottleConfig(enabled=True),
        seed=seed,
    )
    cmp = compare_policies(
        config, short_task_storm(total_slots=32, job_s=0.7), duration_s=duration_s
    )
    out = _base("short-tasks", duration_s, seed)
    out["scalars"] = {
        "baseline_jobs": cmp.baseline.fractional_jobs(),
        "energy_aware_jobs": cmp.energy_aware.fractional_jobs(),
        "throughput_gain": cmp.throughput_gain,
    }
    return out


def render_short_tasks(metrics: dict) -> str:
    scalars = metrics["scalars"]
    return (
        f"short tasks ({metrics['duration_s']:.0f}s): baseline "
        f"{scalars['baseline_jobs']:.0f} jobs, energy-aware "
        f"{scalars['energy_aware_jobs']:.0f} jobs "
        f"({scalars['throughput_gain']:+.1%})"
    )


# -- Figure 8 -----------------------------------------------------------------

def metrics_fig8(duration_s: float = 180.0, seed: int = 13) -> dict:
    """Throughput gain vs workload homogeneity."""
    config = SystemConfig(
        machine=MachineSpec.ibm_x445(smt=False),
        thermal=_heterogeneous_thermal(F8_PACKAGE_R),
        temp_limit_c=38.0,
        throttle=ThrottleConfig(enabled=True),
        seed=seed,
    )
    rows = []
    scalars = {}
    for workload in homogeneity_sweep(18):
        cmp = compare_policies(config, workload, duration_s=duration_s)
        rows.append({"mix": workload.name, "throughput_gain": cmp.throughput_gain})
        scalars[f"gain[{workload.name}]"] = cmp.throughput_gain
    out = _base("fig8", duration_s, seed)
    out["rows"] = rows
    out["scalars"] = scalars
    return out


def render_fig8(metrics: dict) -> str:
    rows = [
        [r["mix"], f"{r['throughput_gain'] * 100:+.1f}%"] for r in metrics["rows"]
    ]
    return format_table(
        ["#memrw/#pushpop/#bitcnts", "throughput increase"], rows,
        title=f"Figure 8 ({metrics['duration_s']:.0f}s per scenario)",
    )


# -- Figure 9 -----------------------------------------------------------------

def metrics_fig9(duration_s: float = 200.0, seed: int = 3) -> dict:
    """The single hot task's tour."""
    config = SystemConfig(
        machine=MachineSpec.ibm_x445(smt=True),
        max_power_per_cpu_w=20.0,
        thermal=ThermalParams(r_k_per_w=0.30, c_j_per_k=50.0),
        seed=seed,
    )
    result = run_simulation(
        config, single_program_workload("bitcnts", 1),
        policy="energy", duration_s=duration_s,
    )
    rows = [
        {"time_s": e.time_ms / 1000, "src": e.detail["src"], "dst": e.detail["dst"]}
        for e in result.migration_events()
    ]
    out = _base("fig9", duration_s, seed)
    out["rows"] = rows
    out["scalars"] = {
        "migrations": float(len(rows)),
        "fractional_jobs": result.fractional_jobs(),
        "average_throttle_fraction": result.average_throttle_fraction(),
    }
    return out


def render_fig9(metrics: dict) -> str:
    rows = [
        [f"{r['time_s']:.1f}s", r["src"], r["dst"]] for r in metrics["rows"]
    ]
    return format_table(
        ["time", "from CPU", "to CPU"], rows,
        title=f"Figure 9 ({metrics['duration_s']:.0f}s, one bitcnts, 40 W/package)",
    )


# -- Figure 10 ----------------------------------------------------------------

def metrics_fig10(duration_s: float = 200.0, seed: int = 5) -> dict:
    """Hot-task-migration gain vs number of tasks."""
    rows = []
    scalars = {}
    for n in (1, 2, 4, 8):
        config = SystemConfig(
            machine=MachineSpec.ibm_x445(smt=True),
            max_power_per_cpu_w=20.0,
            thermal=ThermalParams(r_k_per_w=0.30, c_j_per_k=50.0),
            throttle=ThrottleConfig(enabled=True, scope="package"),
            seed=seed,
        )
        cmp = compare_policies(
            config, single_program_workload("bitcnts", n), duration_s=duration_s
        )
        rows.append({"tasks": n, "throughput_gain": cmp.throughput_gain})
        scalars[f"gain[{n} tasks]"] = cmp.throughput_gain
    out = _base("fig10", duration_s, seed)
    out["rows"] = rows
    out["scalars"] = scalars
    return out


def render_fig10(metrics: dict) -> str:
    rows = [
        [r["tasks"], f"{r['throughput_gain'] * 100:+.1f}%"]
        for r in metrics["rows"]
    ]
    return format_table(
        ["bitcnts tasks", "throughput increase"], rows,
        title=f"Figure 10 ({metrics['duration_s']:.0f}s per point, 40 W packages)",
    )


# -- hotspot extension --------------------------------------------------------

def metrics_hotspot(duration_s: float = 180.0, seed: int = 0) -> dict:
    """The §7 functional-unit extension."""
    from repro.hotspot.experiment import (
        HotspotExperimentConfig,
        run_hotspot_experiment,
    )

    config = HotspotExperimentConfig(duration_s=duration_s)
    results = {}
    for policy in ("none", "total", "unit"):
        results[policy] = run_hotspot_experiment(config, policy)
    rows = []
    scalars = {}
    for policy, result in results.items():
        gain = result.throughput_vs(results["none"])
        rows.append(
            {
                "policy": policy,
                "swaps": result.swaps,
                "throttle_fraction": result.throttle_fraction,
                "max_unit_temp_c": result.max_unit_temp_c,
                "throughput_vs_none": gain,
            }
        )
        scalars[f"throttle_fraction[{policy}]"] = result.throttle_fraction
        scalars[f"throughput_vs_none[{policy}]"] = gain
    out = _base("hotspot", duration_s, seed)
    out["rows"] = rows
    out["scalars"] = scalars
    return out


def render_hotspot(metrics: dict) -> str:
    rows = [
        [r["policy"], r["swaps"], f"{r['throttle_fraction']:.1%}",
         f"{r['max_unit_temp_c']:.1f}", f"{r['throughput_vs_none']:+.1%}"]
        for r in metrics["rows"]
    ]
    return format_table(
        ["policy", "swaps", "unit throttling", "max unit temp [C]",
         "throughput vs none"],
        rows,
        title="Extension (§7): same-power integer/FP tasks",
    )


# -- registry -----------------------------------------------------------------

def _compose(metrics_fn: Callable[..., dict],
             render_fn: Callable[[dict], str]) -> Callable[..., str]:
    def run(**kwargs) -> str:
        return render_fn(metrics_fn(**kwargs))

    return run


@dataclass(frozen=True, slots=True)
class ExperimentInfo:
    """Registry entry: description, text runner, structured entrypoints.

    ``metrics`` takes ``(duration_s=..., seed=...)`` and returns the
    structured result dict; ``render`` turns that dict back into the
    report text; ``run`` composes the two.  ``metrics`` is what the
    parallel runner invokes in worker processes — it must stay a
    module-level (picklable-by-name) function.
    """

    name: str
    description: str
    run: Callable[..., str]
    metrics: Callable[..., dict]
    render: Callable[[dict], str]


def _info(name: str, description: str, metrics_fn: Callable[..., dict],
          render_fn: Callable[[dict], str]) -> ExperimentInfo:
    return ExperimentInfo(name, description, _compose(metrics_fn, render_fn),
                          metrics_fn, render_fn)


REGISTRY: dict[str, ExperimentInfo] = {
    info.name: info
    for info in (
        _info("fig6-7", "energy balancing band + migrations (§6.1)",
              metrics_fig6_fig7, render_fig6_fig7),
        _info("table3", "throttling percentages + throughput (§6.2)",
              metrics_table3, render_table3),
        _info("short-tasks", "placement-driven short-task gain (§6.2)",
              metrics_short_tasks, render_short_tasks),
        _info("fig8", "gain vs workload homogeneity (§6.3)",
              metrics_fig8, render_fig8),
        _info("fig9", "single hot task tour (§6.4)",
              metrics_fig9, render_fig9),
        _info("fig10", "hot-task gain vs task count (§6.4)",
              metrics_fig10, render_fig10),
        _info("hotspot", "functional-unit extension (§7)",
              metrics_hotspot, render_hotspot),
    )
}


def _lookup(name: str) -> ExperimentInfo:
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: {sorted(REGISTRY)}"
        ) from None


def _kwargs(duration_s: float | None, seed: int | None) -> dict:
    kwargs = {}
    if duration_s is not None:
        kwargs["duration_s"] = duration_s
    if seed is not None:
        kwargs["seed"] = seed
    return kwargs


def run_all(duration_s: float | None = None) -> str:
    """Run every registered experiment; returns one combined report.

    Durations default to each experiment's quick-look value; pass
    ``duration_s`` to override uniformly (the full-length record lives
    in ``benchmarks/results/`` and EXPERIMENTS.md).
    """
    sections = []
    for name in sorted(REGISTRY):
        report = run_experiment(name, duration_s=duration_s)
        sections.append(f"===== {name} =====\n{report}")
    return "\n\n".join(sections)


def run_experiment(name: str, duration_s: float | None = None,
                   seed: int | None = None) -> str:
    """Run a registered experiment by name; returns the report text."""
    return _lookup(name).run(**_kwargs(duration_s, seed))


def experiment_metrics(name: str, duration_s: float | None = None,
                       seed: int | None = None) -> dict:
    """Run a registered experiment by name; returns the structured result.

    The dict always carries ``experiment``, ``duration_s``, ``seed``,
    and a flat float-valued ``scalars`` mapping; table-like experiments
    add ``rows``.  ``REGISTRY[name].render`` reproduces the text report
    from it.
    """
    return _lookup(name).metrics(**_kwargs(duration_s, seed))
