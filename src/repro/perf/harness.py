"""Timing harness: batched fast path versus scalar reference.

For every scenario the harness runs the simulation twice — fast path
and scalar path — from identical initial conditions, measures wall
clock and ticks/sec for both, and compares the two runs'
``scalar_summary()`` dicts *byte for byte* (via their JSON encoding, so
two floats only compare equal when their bit patterns do).  A summary
mismatch is a correctness failure, not a performance number.

The resulting payload separates deterministic fields (tick counts,
summaries, identity verdicts) from timing fields, so tests can assert
that everything except the timings is reproducible run-to-run.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.api import run_simulation
from repro.perf.scenarios import (
    FLEET_SCENARIO,
    HEADLINE_SCENARIO,
    REFERENCE_SCENARIOS,
    FleetPerfScenario,
    PerfScenario,
)

#: Schema tag for ``BENCH_perf.json``; bump on layout changes.
#: v2 added the ``self_profile`` tick-phase breakdown; v3 added the
#: ``fleet`` section (vectorized N-machines-per-tick benchmark).
SCHEMA = "repro-perf/3"

#: Simulated duration of the self-profile runs.  Kept short: the
#: profile is a *breakdown* (phase fractions), not a benchmark, and the
#: fractions stabilise within seconds of simulated time.
PROFILE_DURATION_S = 60.0


@dataclass(frozen=True, slots=True)
class BenchScenarioResult:
    """One scenario's measurements."""

    name: str
    description: str
    policy: str
    duration_s: float
    ticks: int
    fast_wall_s: float
    scalar_wall_s: float
    fast_summary: dict[str, float]
    scalar_summary: dict[str, float]

    @property
    def fast_ticks_per_s(self) -> float:
        return self.ticks / self.fast_wall_s

    @property
    def scalar_ticks_per_s(self) -> float:
        return self.ticks / self.scalar_wall_s

    @property
    def speedup(self) -> float:
        """Fast-path throughput relative to the scalar path."""
        return self.scalar_wall_s / self.fast_wall_s

    @property
    def summary_identical(self) -> bool:
        """Byte-level equality of the two paths' scalar summaries."""
        return _encode(self.fast_summary) == _encode(self.scalar_summary)


def _encode(summary: dict[str, float]) -> str:
    """Canonical JSON encoding used for the byte-identity comparison."""
    return json.dumps(summary, sort_keys=True)


def _timed_run(
    scenario: PerfScenario, duration_s: float, fast_path: bool
) -> tuple[float, dict[str, float], int]:
    config, workload = scenario.build()
    start = time.perf_counter()
    result = run_simulation(
        config,
        workload,
        policy=scenario.policy,
        duration_s=duration_s,
        fast_path=fast_path,
    )
    wall_s = time.perf_counter() - start
    ticks = int(round(duration_s * 1000.0)) // config.tick_ms
    return wall_s, result.scalar_summary(), ticks


def run_scenario(
    scenario: PerfScenario,
    duration_s: float | None = None,
    repeats: int = 2,
) -> BenchScenarioResult:
    """Benchmark one scenario on both paths.

    Each path runs ``repeats`` times and the best (minimum) wall clock
    counts — repetition filters scheduler noise, and every repetition
    of a pinned scenario produces the same summary, which is asserted.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    duration = duration_s if duration_s is not None else scenario.duration_s
    fast_wall, fast_summary, ticks = _timed_run(scenario, duration, True)
    scalar_wall, scalar_summary, _ = _timed_run(scenario, duration, False)
    for _ in range(repeats - 1):
        wall, summary, _ = _timed_run(scenario, duration, True)
        if _encode(summary) != _encode(fast_summary):
            raise AssertionError(
                f"scenario {scenario.name!r}: fast path is not "
                "deterministic across repetitions"
            )
        fast_wall = min(fast_wall, wall)
        wall, summary, _ = _timed_run(scenario, duration, False)
        if _encode(summary) != _encode(scalar_summary):
            raise AssertionError(
                f"scenario {scenario.name!r}: scalar path is not "
                "deterministic across repetitions"
            )
        scalar_wall = min(scalar_wall, wall)
    return BenchScenarioResult(
        name=scenario.name,
        description=scenario.description,
        policy=scenario.policy.value,
        duration_s=duration,
        ticks=ticks,
        fast_wall_s=fast_wall,
        scalar_wall_s=scalar_wall,
        fast_summary=fast_summary,
        scalar_summary=scalar_summary,
    )


def _profiled_phase_report(
    scenario: PerfScenario, duration_s: float, fast_path: bool
) -> dict:
    from repro.obs import ObservabilityConfig

    config, workload = scenario.build()
    result = run_simulation(
        config,
        workload,
        policy=scenario.policy,
        duration_s=duration_s,
        fast_path=fast_path,
        obs=ObservabilityConfig(audit=False, metrics=False, profiling=True),
    )
    return result.observer.phase_report()


def profile_scenario(
    scenario: PerfScenario, duration_s: float | None = None
) -> dict:
    """Tick-phase wall-time breakdown for both execution paths.

    This is the ``self_profile`` section of the benchmark payload: it
    shows *where* wall time goes (execute, thermal, housekeeping, ...)
    so a perf regression can be localised without re-instrumenting.
    """
    duration = min(
        duration_s if duration_s is not None else scenario.duration_s,
        PROFILE_DURATION_S,
    )
    return {
        "name": scenario.name,
        "duration_s": duration,
        "fast": _profiled_phase_report(scenario, duration, True),
        "scalar": _profiled_phase_report(scenario, duration, False),
    }


def run_fleet_benchmark(
    scenario: FleetPerfScenario | None = None,
    duration_s: float | None = None,
    repeats: int = 2,
) -> dict:
    """Benchmark the fleet engine against the per-job fast path.

    Both sides run the *same* pinned member configuration: the fleet
    advances all ``n_machines`` systems on one :class:`FleetEngine`;
    the per-job reference runs one member at a time through the scalar
    fast path exactly as a ``run_grid`` pool worker would.  The figure
    of merit is aggregate machine-ticks per wall-clock second — the
    rate at which a sweep burns down simulated work per process.

    Correctness is asserted, not assumed: the first, middle, and last
    fleet members' ``scalar_summary()`` dicts must be byte-identical to
    fresh scalar runs of the same seeds.
    """
    from repro.core.policy import Policy as _Policy
    from repro.fleet import FleetEngine
    from repro.system import System

    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    scenario = scenario if scenario is not None else FLEET_SCENARIO
    duration = duration_s if duration_s is not None else scenario.duration_s
    seeds = list(scenario.seeds())
    policy = _Policy.coerce(scenario.policy)

    def _build(seed: int) -> System:
        config, workload = scenario.build_member(seed)
        return System(config, workload, policy=policy)

    # -- fleet side: all machines on one engine -----------------------------
    fleet_wall = None
    results = None
    for _ in range(repeats):
        engine = FleetEngine([_build(seed) for seed in seeds])
        start = time.perf_counter()
        engine.run_for(duration)
        wall = time.perf_counter() - start
        fleet_wall = wall if fleet_wall is None else min(fleet_wall, wall)
        results = engine.results(duration)
    tick_ms = scenario.build_member(seeds[0])[0].tick_ms
    ticks = int(round(duration * 1000.0)) // tick_ms
    machine_ticks = ticks * len(seeds)

    # -- per-job reference: one member per run, scalar fast path ------------
    check_idx = sorted({0, len(seeds) // 2, len(seeds) - 1})
    per_job_wall = None
    reference: dict[int, dict[str, float]] = {}
    for rep in range(repeats):
        for idx in check_idx:
            config, workload = scenario.build_member(seeds[idx])
            start = time.perf_counter()
            result = run_simulation(
                config, workload, policy=policy,
                duration_s=duration, fast_path=True,
            )
            wall = time.perf_counter() - start
            if per_job_wall is None or wall < per_job_wall:
                per_job_wall = wall
            summary = result.scalar_summary()
            if rep == 0:
                reference[idx] = summary
            elif _encode(summary) != _encode(reference[idx]):
                raise AssertionError(
                    f"fleet scenario {scenario.name!r}: per-job reference "
                    f"seed {seeds[idx]} is not deterministic"
                )

    members_identical = all(
        _encode(results[idx].scalar_summary()) == _encode(reference[idx])
        for idx in check_idx
    )
    fleet_rate = machine_ticks / fleet_wall
    per_job_rate = ticks / per_job_wall
    return {
        "name": scenario.name,
        "description": scenario.description,
        "policy": policy.value,
        "duration_s": duration,
        "n_machines": len(seeds),
        "seeds": [seeds[0], seeds[-1]],
        "ticks_per_machine": ticks,
        "machine_ticks": machine_ticks,
        "checked_members": check_idx,
        "members_identical": members_identical,
        "checked_summaries": {
            str(seeds[idx]): reference[idx] for idx in check_idx
        },
        "timing": {
            "fleet_wall_s": fleet_wall,
            "fleet_machine_ticks_per_s": fleet_rate,
            "per_job_best_wall_s": per_job_wall,
            "per_job_ticks_per_s": per_job_rate,
            "speedup_vs_per_job": fleet_rate / per_job_rate,
        },
    }


def run_benchmarks(
    scenarios: Iterable[PerfScenario] | None = None,
    duration_s: float | None = None,
    repeats: int = 2,
) -> dict:
    """Run the benchmark set; return the ``BENCH_perf.json`` payload.

    ``duration_s`` overrides every scenario's pinned duration (useful
    for quick local runs; the pinned values are what CI publishes).
    """
    chosen: Sequence[PerfScenario] = (
        tuple(scenarios) if scenarios is not None else REFERENCE_SCENARIOS
    )
    if not chosen:
        raise ValueError("no scenarios to benchmark")
    results = [run_scenario(s, duration_s, repeats=repeats) for s in chosen]
    headline = next(
        (r for r in results if r.name == HEADLINE_SCENARIO), results[0]
    )
    headline_scenario = next(
        (s for s in chosen if s.name == headline.name), chosen[0]
    )
    return {
        "schema": SCHEMA,
        "all_summaries_identical": all(r.summary_identical for r in results),
        "self_profile": profile_scenario(headline_scenario, duration_s),
        "fleet": run_fleet_benchmark(duration_s=duration_s, repeats=repeats),
        "headline": {
            "name": headline.name,
            "timing": {
                "fast_ticks_per_s": headline.fast_ticks_per_s,
                "scalar_ticks_per_s": headline.scalar_ticks_per_s,
                "speedup_vs_scalar": headline.speedup,
            },
        },
        "scenarios": [
            {
                "name": r.name,
                "description": r.description,
                "policy": r.policy,
                "duration_s": r.duration_s,
                "ticks": r.ticks,
                "summary_identical": r.summary_identical,
                "scalar_summary": r.scalar_summary,
                "timing": {
                    "fast_wall_s": r.fast_wall_s,
                    "scalar_wall_s": r.scalar_wall_s,
                    "fast_ticks_per_s": r.fast_ticks_per_s,
                    "scalar_ticks_per_s": r.scalar_ticks_per_s,
                    "speedup_vs_scalar": r.speedup,
                },
            }
            for r in results
        ],
    }


def strip_timings(payload: dict) -> dict:
    """The deterministic subset of a benchmark payload.

    Everything except the ``timing`` sub-objects must be identical
    between two runs of the same scenario set on any machine.
    """
    out = {
        "schema": payload["schema"],
        "all_summaries_identical": payload["all_summaries_identical"],
        "headline": {"name": payload["headline"]["name"]},
        "scenarios": [
            {k: v for k, v in scenario.items() if k != "timing"}
            for scenario in payload["scenarios"]
        ],
    }
    if "fleet" in payload:
        out["fleet"] = {
            k: v for k, v in payload["fleet"].items() if k != "timing"
        }
    return out


def write_bench_json(payload: dict, path: str = "BENCH_perf.json") -> str:
    """Write the payload; returns the path written."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def format_bench_report(payload: dict) -> str:
    """Human-readable table of one benchmark payload."""
    lines = [
        f"{'scenario':<22} {'ticks':>7} {'fast t/s':>10} {'scalar t/s':>11} "
        f"{'speedup':>8}  identical",
    ]
    for s in payload["scenarios"]:
        t = s["timing"]
        lines.append(
            f"{s['name']:<22} {s['ticks']:>7} {t['fast_ticks_per_s']:>10.0f} "
            f"{t['scalar_ticks_per_s']:>11.0f} "
            f"{t['speedup_vs_scalar']:>7.2f}x  "
            f"{'yes' if s['summary_identical'] else 'NO — MISMATCH'}"
        )
    h = payload["headline"]
    lines.append(
        f"headline ({h['name']}): "
        f"{h['timing']['fast_ticks_per_s']:.0f} ticks/s, "
        f"{h['timing']['speedup_vs_scalar']:.2f}x vs scalar"
    )
    fleet = payload.get("fleet")
    if fleet:
        t = fleet["timing"]
        lines.append(
            f"fleet ({fleet['name']}): {fleet['n_machines']} machines, "
            f"{t['fleet_machine_ticks_per_s']:.0f} machine-ticks/s "
            f"({t['speedup_vs_per_job']:.2f}x vs per-job fast path), "
            f"members identical: "
            f"{'yes' if fleet['members_identical'] else 'NO — MISMATCH'}"
        )
    profile = payload.get("self_profile")
    if profile:
        lines.append(
            f"self-profile ({profile['name']}, "
            f"{profile['duration_s']:g}s simulated):"
        )
        for path in ("fast", "scalar"):
            phases = profile[path]["phases"]
            ranked = sorted(
                phases.items(), key=lambda kv: kv[1]["total_s"], reverse=True
            )
            parts = ", ".join(
                f"{name} {entry['fraction']:.0%}" for name, entry in ranked[:4]
            )
            lines.append(f"  {path:<6} {parts}")
    return "\n".join(lines)
