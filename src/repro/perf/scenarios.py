"""Pinned reference scenarios for the perf harness.

Each scenario fixes machine, workload, policy, seed, and simulated
duration, so successive benchmark runs measure the same work and their
non-timing outputs are bitwise reproducible.  The set deliberately
covers the distinct tick-loop regimes: SMT and non-SMT topologies, both
policies, ``hlt`` and DVFS throttling, and per-logical-CPU versus
per-package power budgets — a fast-path regression in any regime fails
the harness's identity assertion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig
from repro.core.policy import Policy
from repro.cpu.throttle import ThrottleConfig
from repro.cpu.topology import MachineSpec
from repro.workloads.generator import WorkloadSpec, mixed_table2_workload


@dataclass(frozen=True, slots=True)
class PerfScenario:
    """One pinned benchmark configuration."""

    name: str
    description: str
    policy: Policy
    duration_s: float

    def build(self) -> tuple[SystemConfig, WorkloadSpec]:
        """Fresh (config, workload) for one run."""
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class _Mixed16(PerfScenario):
    smt: bool = True
    seed: int = 42
    slots_per_class: int = 6
    max_power_per_cpu_w: float | None = None
    throttle_scope: str | None = None
    throttle_mode: str | None = None

    def build(self) -> tuple[SystemConfig, WorkloadSpec]:
        throttle = None
        if self.throttle_scope is not None or self.throttle_mode is not None:
            throttle = ThrottleConfig(
                enabled=True,
                scope=self.throttle_scope or "logical",
                mode=self.throttle_mode or "hlt",
            )
        kwargs = {
            "machine": MachineSpec.ibm_x445(smt=self.smt),
            "seed": self.seed,
        }
        if self.max_power_per_cpu_w is not None:
            kwargs["max_power_per_cpu_w"] = self.max_power_per_cpu_w
        if throttle is not None:
            kwargs["throttle"] = throttle
        return SystemConfig(**kwargs), mixed_table2_workload(self.slots_per_class)


#: The scenario the speedup target is defined on: 16 logical CPUs, the
#: Table 2 mixed workload, energy-aware balancing.
HEADLINE_SCENARIO = "mixed-16cpu"

REFERENCE_SCENARIOS: tuple[PerfScenario, ...] = (
    _Mixed16(
        name=HEADLINE_SCENARIO,
        description="16-CPU SMT, mixed Table-2 workload, energy policy",
        policy=Policy.ENERGY,
        duration_s=300.0,
    ),
    _Mixed16(
        name="mixed-16cpu-baseline",
        description="16-CPU SMT, mixed Table-2 workload, baseline policy",
        policy=Policy.BASELINE,
        duration_s=100.0,
    ),
    _Mixed16(
        name="mixed-8cpu-nosmt",
        description="8-CPU non-SMT, mixed Table-2 workload, energy policy",
        policy=Policy.ENERGY,
        duration_s=100.0,
        smt=False,
        seed=7,
        slots_per_class=4,
    ),
    _Mixed16(
        name="throttle-hlt",
        description="16-CPU SMT with 20 W/CPU budget, hlt throttling",
        policy=Policy.ENERGY,
        duration_s=100.0,
        seed=11,
        max_power_per_cpu_w=20.0,
        throttle_scope="logical",
    ),
    _Mixed16(
        name="throttle-package",
        description="16-CPU SMT with 40 W/package budget, hlt throttling",
        policy=Policy.ENERGY,
        duration_s=100.0,
        seed=11,
        max_power_per_cpu_w=20.0,
        throttle_scope="package",
    ),
    _Mixed16(
        name="throttle-dvfs",
        description="16-CPU SMT with 20 W/CPU budget, DVFS throttling",
        policy=Policy.ENERGY,
        duration_s=100.0,
        seed=13,
        max_power_per_cpu_w=20.0,
        throttle_mode="dvfs",
    ),
)


def scenario_by_name(name: str) -> PerfScenario:
    """Look up a reference scenario; raises ``ValueError`` with the
    valid names otherwise."""
    for scenario in REFERENCE_SCENARIOS:
        if scenario.name == name:
            return scenario
    valid = ", ".join(s.name for s in REFERENCE_SCENARIOS)
    raise ValueError(f"unknown perf scenario {name!r}; expected one of {valid}")
