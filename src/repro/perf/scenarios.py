"""Pinned reference scenarios for the perf harness.

Each scenario fixes machine, workload, policy, seed, and simulated
duration, so successive benchmark runs measure the same work and their
non-timing outputs are bitwise reproducible.  The set deliberately
covers the distinct tick-loop regimes: SMT and non-SMT topologies, both
policies, ``hlt`` and DVFS throttling, and per-logical-CPU versus
per-package power budgets — a fast-path regression in any regime fails
the harness's identity assertion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig
from repro.core.policy import Policy
from repro.cpu.power import PowerModelParams
from repro.cpu.throttle import ThrottleConfig
from repro.cpu.topology import MachineSpec
from repro.workloads.generator import (
    WorkloadSpec,
    mixed_table2_workload,
    steady_mix_workload,
)


@dataclass(frozen=True, slots=True)
class PerfScenario:
    """One pinned benchmark configuration."""

    name: str
    description: str
    policy: Policy
    duration_s: float

    def build(self) -> tuple[SystemConfig, WorkloadSpec]:
        """Fresh (config, workload) for one run."""
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class _Mixed16(PerfScenario):
    smt: bool = True
    seed: int = 42
    slots_per_class: int = 6
    max_power_per_cpu_w: float | None = None
    throttle_scope: str | None = None
    throttle_mode: str | None = None

    def build(self) -> tuple[SystemConfig, WorkloadSpec]:
        throttle = None
        if self.throttle_scope is not None or self.throttle_mode is not None:
            throttle = ThrottleConfig(
                enabled=True,
                scope=self.throttle_scope or "logical",
                mode=self.throttle_mode or "hlt",
            )
        kwargs = {
            "machine": MachineSpec.ibm_x445(smt=self.smt),
            "seed": self.seed,
        }
        if self.max_power_per_cpu_w is not None:
            kwargs["max_power_per_cpu_w"] = self.max_power_per_cpu_w
        if throttle is not None:
            kwargs["throttle"] = throttle
        return SystemConfig(**kwargs), mixed_table2_workload(self.slots_per_class)


@dataclass(frozen=True, slots=True)
class GeneratedScenario(PerfScenario):
    """A pinned instance of a :mod:`repro.scenarios` generator family.

    The (family, params, seed) triple fully determines the workload —
    generation is seed-deterministic and JSON-canonical — so these
    entries are as byte-stable as the hand-written ones.  ``params``
    is a tuple of pairs to keep the dataclass hashable.
    """

    family: str = "thermal-adversarial"
    params: tuple[tuple[str, object], ...] = ()
    generator_seed: int = 1

    def build(self) -> tuple[SystemConfig, WorkloadSpec]:
        from repro.scenarios import GeneratorSpec

        spec = GeneratorSpec(
            self.family, dict(self.params), seed=self.generator_seed
        )
        scenario = spec.build()
        return scenario.config, scenario.workload


#: The two worst offenders found by ``tools/find_adversarial.py``
#: (seeded search over the thermal-adversarial family, ranked by
#: migrations/s x throttle fraction).  Both exceed every static
#: Table-2 mix above on migrations/s AND throttle fraction at 60 s —
#: asserted by ``tests/test_scenarios_adversarial.py``.
_ADV_PINGPONG_PARAMS = (
    ("budget_w", 18.0),
    ("phase_scale", 0.1),
    ("duty", 0.9),
    ("hot_jobs", 10),
    ("cool_fill", 20),
    ("rotate_groups", 4),
    ("jitter", 0.0),
    ("horizon_s", 60.0),
)
_ADV_STORM_PARAMS = (
    ("budget_w", 15.0),
    ("phase_scale", 0.12),
    ("duty", 0.9),
    ("hot_jobs", 10),
    ("cool_fill", 20),
    ("rotate_groups", 4),
    ("jitter", 0.0),
    ("horizon_s", 60.0),
)


#: The scenario the speedup target is defined on: 16 logical CPUs, the
#: Table 2 mixed workload, energy-aware balancing.
HEADLINE_SCENARIO = "mixed-16cpu"

REFERENCE_SCENARIOS: tuple[PerfScenario, ...] = (
    _Mixed16(
        name=HEADLINE_SCENARIO,
        description="16-CPU SMT, mixed Table-2 workload, energy policy",
        policy=Policy.ENERGY,
        duration_s=300.0,
    ),
    _Mixed16(
        name="mixed-16cpu-baseline",
        description="16-CPU SMT, mixed Table-2 workload, baseline policy",
        policy=Policy.BASELINE,
        duration_s=100.0,
    ),
    _Mixed16(
        name="mixed-8cpu-nosmt",
        description="8-CPU non-SMT, mixed Table-2 workload, energy policy",
        policy=Policy.ENERGY,
        duration_s=100.0,
        smt=False,
        seed=7,
        slots_per_class=4,
    ),
    _Mixed16(
        name="throttle-hlt",
        description="16-CPU SMT with 20 W/CPU budget, hlt throttling",
        policy=Policy.ENERGY,
        duration_s=100.0,
        seed=11,
        max_power_per_cpu_w=20.0,
        throttle_scope="logical",
    ),
    _Mixed16(
        name="throttle-package",
        description="16-CPU SMT with 40 W/package budget, hlt throttling",
        policy=Policy.ENERGY,
        duration_s=100.0,
        seed=11,
        max_power_per_cpu_w=20.0,
        throttle_scope="package",
    ),
    _Mixed16(
        name="throttle-dvfs",
        description="16-CPU SMT with 20 W/CPU budget, DVFS throttling",
        policy=Policy.ENERGY,
        duration_s=100.0,
        seed=13,
        max_power_per_cpu_w=20.0,
        throttle_mode="dvfs",
    ),
    GeneratedScenario(
        name="adv-pingpong",
        description=(
            "Adversarial hot/cool rotation (18 W budget, 2 s dwell, "
            "4 CPU blocks) maximizing migration ping-pong"
        ),
        policy=Policy.ENERGY,
        duration_s=60.0,
        params=_ADV_PINGPONG_PARAMS,
    ),
    GeneratedScenario(
        name="adv-throttle-storm",
        description=(
            "Adversarial hot/cool rotation (15 W budget, 2.4 s dwell, "
            "4 CPU blocks) maximizing hlt throttle storms"
        ),
        policy=Policy.ENERGY,
        duration_s=60.0,
        params=_ADV_STORM_PARAMS,
    ),
)


@dataclass(frozen=True, slots=True)
class FleetPerfScenario:
    """A pinned fleet benchmark: N identical machines differing by seed.

    The member configuration is fleet-eligible by construction — noise
    sigmas pinned to zero, no throttling or power caps — and uses slow
    housekeeping cadences (long timeslices and balance intervals) so
    the per-tick work is dominated by execute/thermal, the phases the
    fleet engine vectorizes across the machine axis.
    """

    name: str
    description: str
    policy: Policy
    duration_s: float
    n_machines: int = 64
    first_seed: int = 1

    def seeds(self) -> range:
        return range(self.first_seed, self.first_seed + self.n_machines)

    def build_member(self, seed: int) -> tuple[SystemConfig, WorkloadSpec]:
        """Fresh (config, workload) for the member with this seed."""
        config = SystemConfig(
            power=PowerModelParams(noise_sigma=0.0),
            counter_jitter_sigma=0.0,
            max_power_per_cpu_w=60.0,
            timeslice_ms=2000,
            balance_interval_ms=4800,
            idle_balance_interval_ms=50,
            hot_check_interval_ms=2000,
            sample_interval_s=5.0,
            seed=seed,
        )
        return config, steady_mix_workload(4)


#: The pinned fleet benchmark: the ``fleet`` section of
#: ``BENCH_perf.json`` and the target of the ≥10x aggregate-throughput
#: goal versus the per-job fast path.
FLEET_SCENARIO = FleetPerfScenario(
    name="fleet-steady-64",
    description=(
        "64 x 16-CPU SMT machines, steady 16-task mix, energy policy, "
        "seeds 1..64, one vectorized FleetEngine"
    ),
    policy=Policy.ENERGY,
    duration_s=60.0,
)


def scenario_by_name(name: str) -> PerfScenario:
    """Look up a reference scenario; raises ``ValueError`` with the
    valid names otherwise."""
    for scenario in REFERENCE_SCENARIOS:
        if scenario.name == name:
            return scenario
    valid = ", ".join(s.name for s in REFERENCE_SCENARIOS)
    raise ValueError(f"unknown perf scenario {name!r}; expected one of {valid}")
