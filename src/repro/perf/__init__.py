"""Performance benchmarking of the tick loop.

The harness runs pinned reference scenarios twice — once through the
batched fast path, once through the scalar reference path — reports
ticks/sec and wall-clock for each, asserts that the two paths produce
byte-identical ``scalar_summary()`` dicts, and writes the results to
``BENCH_perf.json`` so successive PRs accumulate a performance
trajectory.

    from repro.perf import run_benchmarks, write_bench_json

    payload = run_benchmarks()
    write_bench_json(payload)

or, from the command line::

    python -m repro perf
    python -m repro perf --scenario mixed-16cpu --duration 60
"""

from repro.perf.harness import (
    BenchScenarioResult,
    format_bench_report,
    profile_scenario,
    run_benchmarks,
    run_fleet_benchmark,
    run_scenario,
    strip_timings,
    write_bench_json,
)
from repro.perf.history import (
    DEFAULT_THRESHOLD,
    HISTORY_PATH,
    HISTORY_SCHEMA,
    append_history,
    compare_entries,
    format_compare,
    history_entry,
    load_history,
    payload_digest,
    profile_diff,
    resolve_reference,
)
from repro.perf.scenarios import (
    FLEET_SCENARIO,
    HEADLINE_SCENARIO,
    REFERENCE_SCENARIOS,
    FleetPerfScenario,
    PerfScenario,
    scenario_by_name,
)

__all__ = [
    "BenchScenarioResult",
    "DEFAULT_THRESHOLD",
    "FLEET_SCENARIO",
    "FleetPerfScenario",
    "HEADLINE_SCENARIO",
    "HISTORY_PATH",
    "HISTORY_SCHEMA",
    "PerfScenario",
    "REFERENCE_SCENARIOS",
    "append_history",
    "compare_entries",
    "format_bench_report",
    "format_compare",
    "history_entry",
    "load_history",
    "payload_digest",
    "profile_diff",
    "profile_scenario",
    "run_benchmarks",
    "run_fleet_benchmark",
    "run_scenario",
    "scenario_by_name",
    "strip_timings",
    "write_bench_json",
]
