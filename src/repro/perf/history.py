"""Perf-regression ledger: an append-only history of harness runs.

``BENCH_perf.json`` is a single snapshot — useful for the docs, useless
for answering "when did the fast path get slower?".  This module keeps
the history: every harness run appends one JSON line to
``BENCH_history.jsonl`` carrying the payload's deterministic digest,
the headline and per-scenario throughput numbers, the fleet aggregate
rate, and the self-profile phase breakdown.  ``repro perf --compare``
then diffs the newest entry against any reference entry with a
noise-aware threshold, and the profile diff attributes a regression to
the tick phases that actually slowed down.

Two entries are comparable only when their payload digests match — the
digest hashes :func:`repro.perf.strip_timings`, so it pins the scenario
set, durations, and summaries.  Same digest + slower ticks/s = a true
performance change (or machine noise, which the threshold absorbs);
different digests mean the workload changed and a delta would be
meaningless.

The ledger reuses the sweep journal's durability discipline: one
``json.dumps`` line per entry, flushed and fsynced, torn final lines
skipped on read.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import time

#: Ledger entry identity; bump on incompatible layout changes.
HISTORY_SCHEMA = "repro-history/1"

#: Default ledger path (repo root, next to BENCH_perf.json).
HISTORY_PATH = "BENCH_history.jsonl"

#: Default regression threshold: relative throughput drop beyond which
#: a scenario is flagged.  Wall-clock wobbles ±10-20 % run to run even
#: on one box (docs/performance.md), so the default stays above that.
DEFAULT_THRESHOLD = 0.25


def payload_digest(payload: dict) -> str:
    """SHA-256 over the canonical deterministic subset of a payload."""
    from repro.perf.harness import strip_timings

    canonical = json.dumps(
        strip_timings(payload), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def history_entry(payload: dict, note: str = "") -> dict:
    """One ledger line for a ``run_benchmarks`` payload."""
    scenarios = {
        s["name"]: {
            "fast_ticks_per_s": s["timing"]["fast_ticks_per_s"],
            "scalar_ticks_per_s": s["timing"]["scalar_ticks_per_s"],
            "speedup_vs_scalar": s["timing"]["speedup_vs_scalar"],
        }
        for s in payload.get("scenarios", [])
    }
    entry = {
        "schema": HISTORY_SCHEMA,
        "t": time.time(),
        "digest": payload_digest(payload),
        "headline": {
            "name": payload["headline"]["name"],
            **payload["headline"]["timing"],
        },
        "scenarios": scenarios,
    }
    fleet = payload.get("fleet")
    if fleet:
        entry["fleet"] = {
            "name": fleet["name"],
            "n_machines": fleet["n_machines"],
            "fleet_machine_ticks_per_s":
                fleet["timing"]["fleet_machine_ticks_per_s"],
            "speedup_vs_per_job": fleet["timing"]["speedup_vs_per_job"],
        }
    profile = payload.get("self_profile")
    if profile:
        entry["self_profile"] = {
            "name": profile["name"],
            "duration_s": profile["duration_s"],
            "fast_phases": {
                name: {"total_s": p["total_s"], "fraction": p["fraction"],
                       "mean_us": p["mean_us"]}
                for name, p in profile["fast"]["phases"].items()
            },
        }
    if note:
        entry["note"] = note
    return entry


def append_history(
    payload: dict, path: str | os.PathLike = HISTORY_PATH, note: str = ""
) -> dict:
    """Append one entry for ``payload``; returns the entry written.

    Same durability rules as the sweep journal: single-write line,
    flush + fsync before returning.
    """
    entry = history_entry(payload, note=note)
    file_path = pathlib.Path(path)
    if file_path.parent != pathlib.Path("."):
        file_path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(entry, sort_keys=True, separators=(",", ":")) + "\n"
    with open(file_path, "ab") as fh:
        fh.write(line.encode())
        fh.flush()
        os.fsync(fh.fileno())
    return entry


def load_history(path: str | os.PathLike = HISTORY_PATH) -> list[dict]:
    """All readable ledger entries, oldest first; torn lines skipped."""
    entries: list[dict] = []
    try:
        raw = pathlib.Path(path).read_bytes()
    except OSError:
        return entries
    for line in raw.split(b"\n"):
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except ValueError:
            continue  # torn tail
        if isinstance(entry, dict) and entry.get("schema") == HISTORY_SCHEMA:
            entries.append(entry)
    return entries


def resolve_reference(
    entries: list[dict], ref: str | None = None
) -> tuple[dict, dict]:
    """Pick (current, reference) entries from a ledger.

    ``current`` is always the newest entry.  ``ref`` selects the
    reference: ``None`` → the previous entry; a small integer string
    (``"2"``) → that many entries back from the newest; anything else →
    the newest earlier entry whose digest starts with ``ref``.
    """
    if len(entries) < 2:
        raise ValueError(
            "need at least two history entries to compare "
            f"(found {len(entries)}); run 'repro perf' again first"
        )
    current = entries[-1]
    if ref is None:
        return current, entries[-2]
    if ref.isdigit():
        back = int(ref)
        if not 1 <= back <= len(entries) - 1:
            raise ValueError(
                f"reference offset {back} out of range; the ledger holds "
                f"{len(entries)} entries"
            )
        return current, entries[-1 - back]
    for entry in reversed(entries[:-1]):
        if entry.get("digest", "").startswith(ref):
            return current, entry
    raise ValueError(
        f"no earlier history entry with digest prefix {ref!r}"
    )


def _relative_delta(current: float, reference: float) -> float:
    """Relative throughput change (< 0 = slower than the reference)."""
    if reference <= 0:
        return 0.0
    return (current - reference) / reference


def compare_entries(
    current: dict,
    reference: dict,
    threshold: float = DEFAULT_THRESHOLD,
) -> dict:
    """Per-scenario throughput deltas between two ledger entries.

    A scenario regresses when its fast-path throughput drops by more
    than ``threshold`` relative to the reference.  Entries with
    different digests are compared anyway but flagged ``comparable:
    false`` — their workloads differ, so treat deltas as informational.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    rows = []
    cur_scen = current.get("scenarios", {})
    ref_scen = reference.get("scenarios", {})
    for name in sorted(set(cur_scen) & set(ref_scen)):
        cur_rate = float(cur_scen[name]["fast_ticks_per_s"])
        ref_rate = float(ref_scen[name]["fast_ticks_per_s"])
        delta = _relative_delta(cur_rate, ref_rate)
        rows.append({
            "scenario": name,
            "current_ticks_per_s": cur_rate,
            "reference_ticks_per_s": ref_rate,
            "delta": delta,
            "regressed": delta < -threshold,
        })
    fleet_row = None
    if "fleet" in current and "fleet" in reference:
        cur_rate = float(current["fleet"]["fleet_machine_ticks_per_s"])
        ref_rate = float(reference["fleet"]["fleet_machine_ticks_per_s"])
        delta = _relative_delta(cur_rate, ref_rate)
        fleet_row = {
            "scenario": current["fleet"]["name"],
            "current_ticks_per_s": cur_rate,
            "reference_ticks_per_s": ref_rate,
            "delta": delta,
            "regressed": delta < -threshold,
        }
    return {
        "schema": "repro-perf-compare/1",
        "comparable": current.get("digest") == reference.get("digest"),
        "threshold": threshold,
        "current_digest": current.get("digest", ""),
        "reference_digest": reference.get("digest", ""),
        "scenarios": rows,
        "fleet": fleet_row,
        "profile_diff": profile_diff(current, reference),
        "regressions": [r["scenario"] for r in rows if r["regressed"]]
        + ([fleet_row["scenario"]] if fleet_row and fleet_row["regressed"]
           else []),
    }


def profile_diff(current: dict, reference: dict) -> list[dict]:
    """Attribute a headline delta to tick phases.

    Diffs the fast-path self-profile phase breakdowns of two entries:
    per phase, the absolute wall-time change and each phase's share of
    the total change — "the regression is 80 % housekeeping" — sorted
    by largest slowdown first.  Empty when either entry lacks a
    profile or they profiled different scenarios.
    """
    cur_prof = current.get("self_profile")
    ref_prof = reference.get("self_profile")
    if not cur_prof or not ref_prof:
        return []
    if cur_prof.get("name") != ref_prof.get("name"):
        return []
    cur_phases = cur_prof.get("fast_phases", {})
    ref_phases = ref_prof.get("fast_phases", {})
    names = sorted(set(cur_phases) | set(ref_phases))
    deltas = {
        name: (cur_phases.get(name, {}).get("total_s", 0.0)
               - ref_phases.get(name, {}).get("total_s", 0.0))
        for name in names
    }
    total_delta = sum(deltas.values())
    rows = [
        {
            "phase": name,
            "current_s": cur_phases.get(name, {}).get("total_s", 0.0),
            "reference_s": ref_phases.get(name, {}).get("total_s", 0.0),
            "delta_s": deltas[name],
            "share_of_change": (
                deltas[name] / total_delta if total_delta != 0 else 0.0
            ),
        }
        for name in names
    ]
    rows.sort(key=lambda r: r["delta_s"], reverse=True)
    return rows


def format_compare(report: dict) -> str:
    """Human-readable rendering of a :func:`compare_entries` report."""
    lines = []
    if not report["comparable"]:
        lines.append(
            "note: payload digests differ "
            f"({report['reference_digest'][:12]} -> "
            f"{report['current_digest'][:12]}); the deterministic workload "
            "changed, deltas are informational only"
        )
    lines.append(
        f"{'scenario':<24} {'reference t/s':>14} {'current t/s':>12} "
        f"{'delta':>8}  verdict"
    )
    rows = list(report["scenarios"])
    if report.get("fleet"):
        rows.append(report["fleet"])
    for row in rows:
        verdict = "REGRESSED" if row["regressed"] else "ok"
        lines.append(
            f"{row['scenario']:<24} {row['reference_ticks_per_s']:>14,.0f} "
            f"{row['current_ticks_per_s']:>12,.0f} "
            f"{row['delta']:>+7.1%}  {verdict}"
        )
    diff = report.get("profile_diff") or []
    slower = [r for r in diff if r["delta_s"] > 0]
    if slower:
        lines.append("phase attribution (headline fast path, slower first):")
        for row in slower[:5]:
            lines.append(
                f"  {row['phase']:<14} {row['reference_s']:.3f}s -> "
                f"{row['current_s']:.3f}s  ({row['delta_s']:+.3f}s, "
                f"{row['share_of_change']:.0%} of the change)"
            )
    if report["regressions"]:
        lines.append(
            f"{len(report['regressions'])} regression(s) beyond "
            f"{report['threshold']:.0%}: {', '.join(report['regressions'])}"
        )
    else:
        lines.append(
            f"no regressions beyond {report['threshold']:.0%}"
        )
    return "\n".join(lines)
