"""The simulated machine: hardware + kernel + workload, advanced per tick.

:class:`System` wires every substrate together the way §5 describes the
kernel integration:

* an execution step runs each logical CPU's current task for one tick,
  crediting event counters and retiring instructions;
* the energy estimator turns counter deltas into energy, charged to the
  running task's profile at interval boundaries (task switch, timeslice
  end, blocking — the variable-period EWMA) and into the CPU's thermal
  power every tick;
* a thermal step integrates each package's true RC temperature from
  ground-truth power (and a parallel RC from *estimated* power, so the
  §4.2 "< 1 K estimation error" claim is checkable);
* the throttle controller halts CPUs whose thermal power exceeds the
  limit (when temperature control is enabled);
* scheduler housekeeping expires timeslices, runs the policy's periodic
  balancer (staggered per CPU), and checks hot-task migration;
* the workload driver forks task slots and respawns finished jobs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dataclasses_replace
from math import cos as _cos, log as _log, sin as _sin, sqrt as _sqrt
from random import TWOPI as _TWOPI
from time import perf_counter

import numpy as np

from repro.config import SystemConfig
from repro.core.containers import ContainerConfig, ContainerManager
from repro.core.metrics import CpuStateBlock, MetricsBoard
from repro.core.policy import (
    BaselinePolicy,
    EnergyAwareConfig,
    EnergyAwarePolicy,
    Policy,
    PolicySpec,
    SchedulingPolicy,
)
from repro.core.profile import EnergyProfile
from repro.core.estimator import build_calibrated_estimator
from repro.cpu.dvfs import (
    DvfsController,
    TemperatureDvfsController,
    dynamic_power_scale,
)
from repro.cpu.frequency import ExecutionModel
from repro.cpu.events import N_EVENTS
from repro.cpu.pmc import CounterBank
from repro.cpu.power import GroundTruthPower, TickEnergyCache
from repro.cpu.thermal import ThermalDiode, ThermalRC, rc_decay
from repro.cpu.throttle import ThrottleController
from repro.cpu.topology import Topology
from repro.sched.domains import build_domains
from repro.sched.priorities import timeslice_ms
from repro.sched.runqueue import RunQueue
from repro.sched.task import Task, TaskState
from repro.sim.clock import Clock
from repro.sim.events import EventKind, EventRecord
from repro.sim.rng import RngFactory
from repro.sim.trace import Tracer
from repro.workloads.generator import TaskSpec, WorkloadSpec
from repro.workloads.programs import PROGRAMS


#: Checkpoint format identity.  The schema string names the container
#: layout (header fields + pickled machine payload); the version bumps
#: whenever either changes incompatibly.  Loaders reject anything else.
CHECKPOINT_SCHEMA = "repro-checkpoint"
CHECKPOINT_VERSION = 1

#: Attributes excluded from pickling: every one is *derived* — either a
#: pure memo (cleared and recomputed on demand, values bit-identical by
#: construction) or an alias into state that pickle cannot preserve
#: (numpy views lose their base; bound-method shadows rebind to the old
#: object).  ``__setstate__`` re-derives them all.
_DERIVED_ATTRS = (
    "tick",            # profiled-tick method shadow (bound to the old self)
    "_bank_rows",      # views into _counts_mx (numpy pickles views as copies)
    "_pmc_gauss",      # bound methods of the per-CPU jitter streams
    "_pmc_rngs",       # the jitter stream objects themselves
    "_meter_gauss",    # bound methods of the per-package meter streams
    "_mix_cache",      # id()-keyed memo of dynamic power per mix
    "_tick_cache",     # id()-keyed memo of per-(mix, cycles) tick energy
    "_cycles_for_dt",  # per-tick-length memo
    "_rc_decay_dt",    # per-tick-length memo
    "_rc_decays",      # per-tick-length memo
    "_sib1",           # single-SMT-sibling index table (from _siblings)
    "_hk_tables",      # housekeeping fire tables (from the tick periods)
    "_all_forked",     # true once every workload slot has forked
    "_exec_memo",      # per-CPU (mix, cycles, entry) memo over _tick_cache
    "_jit_scratch",    # per-tick counter-credit scratch row
    "_pkg_pairs",      # two-CPU package index pairs (from _pkg_cpus)
    "_obs_audit",      # alias of observer.audit (None when obs is off)
    "_obs_balance_hist",  # alias of observer.balance_hist (ditto)
)

#: Housekeeping fire tables repeat with period lcm(balance, idle, hot)
#: ticks; beyond this many entries the table is not worth the memory and
#: :meth:`System._housekeeping` falls back to the plain modulo loop.
_HK_TABLE_MAX = 16384


def _sib1_table(siblings: list[tuple[int, ...]]) -> list[int]:
    """Per-CPU single-sibling index for the fast execution path.

    ``sib1[c]`` is the lone SMT sibling of ``c`` when the core runs two
    threads, ``-1`` when ``c`` has no sibling, and ``-2`` when a core
    runs more than two threads (the general loop handles that case).
    """
    return [
        s[0] if len(s) == 1 else (-1 if not s else -2) for s in siblings
    ]


@dataclass
class SlotState:
    """Runtime state of one workload slot."""

    index: int
    spec: TaskSpec
    task: Task | None = None
    forked: bool = False
    finished_jobs: int = 0


class System:
    """One complete simulated machine plus its workload."""

    def __init__(
        self,
        config: SystemConfig,
        workload: WorkloadSpec,
        policy: PolicySpec | Policy | str = Policy.ENERGY,
        policy_config: EnergyAwareConfig | None = None,
        tracer: Tracer | None = None,
        fast_path: bool = True,
        validate=False,
        obs=False,
    ) -> None:
        policy = PolicySpec.coerce(policy)
        if policy.scheduling == "baseline" and policy_config is not None:
            raise ValueError(
                "policy_config configures the energy-aware scheduler and is "
                "meaningless with policy='baseline'; pass policy='energy' or "
                "drop policy_config"
            )
        # A policy that implies a temperature-control mode (hlt-throttle,
        # the DVFS family) forces it into the run's config up front, so
        # everything downstream — the throttle step, fleet eligibility,
        # checkpoint headers, the validator — sees one effective config.
        forced_throttle = policy.throttle_override(config.throttle)
        if forced_throttle is not None:
            config = dataclasses_replace(config, throttle=forced_throttle)
        self.config = config
        self.workload = workload
        self.policy_spec = policy
        self.policy_name = policy.name
        self.fast_path = bool(fast_path)
        self.tracer = tracer if tracer is not None else Tracer(config.sample_interval_s)
        self.rng = RngFactory(config.seed)
        spec = config.machine

        # -- hardware ---------------------------------------------------------
        self.topology = Topology(spec)
        self.n_cpus = len(self.topology)
        self.exec_model = ExecutionModel(
            freq_hz=spec.freq_hz, smt_thread_factor=config.smt_thread_factor
        )
        self.power = GroundTruthPower(config.power)
        self.banks = [
            CounterBank(c, self.rng.stream(f"pmc:{c}"), config.counter_jitter_sigma)
            for c in range(self.n_cpus)
        ]
        self._threads_per_pkg = spec.threads_per_core * spec.cores_per_package
        self._halted_share_w = config.power.halted_package_w / self._threads_per_pkg
        idle_temps = []
        self.true_rc: list[ThermalRC] = []
        self.est_rc: list[ThermalRC] = []
        for pkg in range(spec.n_packages):
            params = config.thermal_for_package(pkg)
            idle_temp = params.steady_state_c(config.power.halted_package_w)
            idle_temps.append(idle_temp)
            self.true_rc.append(ThermalRC(params, initial_c=idle_temp))
            self.est_rc.append(ThermalRC(params, initial_c=idle_temp))
        self.throttle = ThrottleController(self.n_cpus, config.throttle)
        self._dvfs_kind = policy.dvfs_kind or "reactive"
        if self._dvfs_kind == "proactive":
            self.dvfs: DvfsController | TemperatureDvfsController = (
                TemperatureDvfsController(self.n_cpus, policy.dvfs_config())
            )
            # Per-package temperature targets: the thermal limit (or the
            # steady-state temperature of the package power budget when
            # no explicit limit is set) minus the safety margin.  An
            # unconstrained package gets an unreachable target and the
            # governor never scales.
            margin = self.dvfs.config.target_margin_c
            self._dvfs_target_c = []
            for pkg in range(spec.n_packages):
                limit_c = (
                    config.temp_limit_c
                    if config.temp_limit_c is not None
                    else config.thermal_for_package(pkg).steady_state_c(
                        config.package_max_power_w(pkg)
                    )
                )
                self._dvfs_target_c.append(limit_c - margin)
        else:
            self.dvfs = DvfsController(self.n_cpus, policy.dvfs_config())
            self._dvfs_target_c = []
        self._dvfs_mode = config.throttle.enabled and config.throttle.mode == "dvfs"
        self._freq_scale = [1.0] * self.n_cpus

        # -- estimator (calibrated as in §3.2) ---------------------------------
        self.estimator = build_calibrated_estimator(
            self.power,
            self.exec_model,
            PROGRAMS.values(),
            self.rng.stream("calibration"),
            smt=spec.smt_enabled,
        )

        # -- scheduler --------------------------------------------------------
        self.runqueues = {c: RunQueue(c) for c in range(self.n_cpus)}
        self.hierarchy = build_domains(self.topology)
        max_power = {
            c: config.cpu_max_power_w(self.topology.package_of(c))
            for c in range(self.n_cpus)
        }
        # Per-logical thermal power uses the package's RC time constant.
        tau_by_cpu = {
            c: config.thermal_for_package(self.topology.package_of(c)).tau_s
            for c in range(self.n_cpus)
        }
        self.metrics = MetricsBoard(
            self.topology,
            self.runqueues,
            tau_s=tau_by_cpu,
            max_power_w=max_power,
            initial_thermal_w=self._halted_share_w,
            fast=self.fast_path,
        )

        self.policy: SchedulingPolicy
        if policy.scheduling == "energy":
            effective_config = policy_config
            if not policy.hot_migration:
                # The pure DVFS variants strip hot-CPU migration from the
                # lever set so the governor is the only thermal response.
                effective_config = dataclasses_replace(
                    effective_config
                    if effective_config is not None
                    else EnergyAwareConfig(),
                    enable_hot_migration=False,
                )
            self.policy = EnergyAwarePolicy(
                self.metrics,
                self.hierarchy,
                self.runqueues,
                self._migrate,
                effective_config,
            )
            self._profile_config = self.policy.config.profile
        else:
            base = BaselinePolicy(
                self.hierarchy, self.runqueues, self._migrate
            )
            self.policy = base
            self._profile_config = base.profile_config

        # -- workload ----------------------------------------------------------
        self.slots = [SlotState(i, s) for i, s in enumerate(workload.tasks)]
        self.containers = ContainerManager()
        self.exited_tasks: list[Task] = []
        self._next_pid = 1
        self._blocked: list[tuple[int, Task, int]] = []  # (wake_ms, task, cpu)

        # -- per-tick bookkeeping ----------------------------------------------
        self._interval_energy = [0.0] * self.n_cpus
        self._interval_busy = [0.0] * self.n_cpus
        self._running = [False] * self.n_cpus
        self._est_power = [0.0] * self.n_cpus
        self._dyn_power = [0.0] * self.n_cpus
        self._mix_cache: dict[int, tuple[object, float]] = {}
        self.instructions_retired: dict[str, float] = {}
        self._est_err_sum = 0.0
        self._est_err_n = 0
        self._busy_ticks = [0] * self.n_cpus
        self._total_ticks = 0
        self._est_pkg_power = [0.0] * spec.n_packages
        # Frequency-aware Eq. 1 energy ledger: per-package estimated
        # energy, integrated as est-power x tick every thermal step.
        # Real run state (not derived), so it pickles with checkpoints.
        self._pkg_energy_j = [0.0] * spec.n_packages
        self._pkg_temp_c = list(idle_temps)
        self._pkg_est_temp_c = list(idle_temps)
        self.diode = ThermalDiode()
        self._now_ms = 0
        self.max_temp_err_k = 0.0
        self.max_temp_seen_c = max(idle_temps)

        # -- struct-of-arrays state block ---------------------------------------
        # All columns are shared by reference with the board, the throttle
        # controller, and the per-tick lists above; the block is a live
        # window onto the machine state, advanced wholesale by the batched
        # tick path.
        self.state = CpuStateBlock(
            thermal_w=self.metrics.thermal_w,
            max_power_w=self.metrics.max_power,
            est_power_w=self._est_power,
            dyn_power_w=self._dyn_power,
            running=self._running,
            freq_scale=self._freq_scale,
            throttled=self.throttle.throttled,
            pkg_temp_c=self._pkg_temp_c,
            pkg_est_temp_c=self._pkg_est_temp_c,
            pkg_est_power_w=self._est_pkg_power,
        )

        # -- fast-path scratch ---------------------------------------------------
        # Hoisted topology tables (pure lookups, identical values to the
        # Topology methods the scalar path calls) and memoisation keyed on
        # the tick length, which is constant within a run.
        self._pkg_cpus = [
            tuple(self.topology.cpus_of_package(p)) for p in range(spec.n_packages)
        ]
        self._pkg_of = [self.topology.package_of(c) for c in range(self.n_cpus)]
        self._siblings = [tuple(self.topology.siblings_of(c)) for c in range(self.n_cpus)]
        self._meter_rngs = [
            self.rng.stream(f"meter:{pkg}") for pkg in range(spec.n_packages)
        ]
        self._meter_gauss = [r.gauss for r in self._meter_rngs]
        self._rq_list = [self.runqueues[c] for c in range(self.n_cpus)]
        self._tick_cache = TickEnergyCache(
            self.estimator, self.power, self.exec_model.freq_hz
        )
        # Bound gauss methods of the per-CPU PMC jitter streams — the
        # factory caches streams, so these are the very same RNG objects
        # the counter banks draw from.
        self._pmc_rngs = [self.rng.stream(f"pmc:{c}") for c in range(self.n_cpus)]
        self._pmc_gauss = [r.gauss for r in self._pmc_rngs]
        self._sib1 = _sib1_table(self._siblings)
        self._exec_memo: list[tuple | None] = [None] * self.n_cpus
        self._jit_scratch = np.zeros(N_EVENTS)
        self._pkg_pairs = [
            cpus if len(cpus) == 2 else None for cpus in self._pkg_cpus
        ]
        # The container manager only ever holds tasks whose slot carries a
        # power cap, and respawns reuse the same slot specs, so a capless
        # workload keeps it empty for the whole run.
        self._has_power_caps = any(
            s.power_cap_w is not None for s in workload.tasks
        )
        # All counter banks share one counts matrix so the batched path
        # can apply the wraparound modulus once per tick; the per-bank
        # credit path mutates its row in place and stays equivalent.
        self._counts_mx = np.zeros((self.n_cpus, N_EVENTS))
        for c, bank in enumerate(self.banks):
            bank.bind_row(self._counts_mx[c])
        self._bank_rows = [self._counts_mx[c] for c in range(self.n_cpus)]
        self._counter_modulus = self.banks[0].modulus
        self._thermal_in_w = [0.0] * self.n_cpus
        self._cycles_for_dt: tuple[float, float, float] | None = None
        self._rc_decay_dt: float | None = None
        self._rc_decays: list[float] = []

        # -- optional runtime validation -----------------------------------------
        # Off by default: the disabled cost is one attribute test per
        # hook site.  ``validate`` accepts True or a ValidationConfig;
        # the import is lazy to keep the validate package optional on
        # the hot import path (and to avoid a cycle through repro.api).
        self.validator = None
        self.fault_injector = None  # installed by repro.validate.faults
        if validate:
            from repro.validate.invariants import InvariantChecker, ValidationConfig

            vconfig = validate if isinstance(validate, ValidationConfig) else None
            self.validator = InvariantChecker(self, vconfig)

        # -- optional observability ----------------------------------------------
        # Same opt-in pattern as the validator: ``None`` unless the run
        # asked for it, one attribute test per hook site when disabled,
        # lazy import to keep repro.obs off the hot import path.
        self.observer = None
        # Pre-bound hook-site aliases: the tick-rate paths read one
        # attribute (almost always None) instead of chasing
        # observer -> audit / balance_hist and branching every tick.
        self._obs_audit = None
        self._obs_balance_hist = None
        if obs:
            from repro.obs.observer import ObservabilityConfig, Observer

            oconfig = ObservabilityConfig.coerce(obs)
            if oconfig is not None:
                self.observer = Observer(self, oconfig)
                self._obs_audit = self.observer.audit
                self._obs_balance_hist = self.observer.balance_hist
                if self.observer.profile is not None:
                    # Shadow the bound method with the timed variant so
                    # the normal tick loop carries no profiling branch.
                    self.tick = self._tick_profiled

        # Tick periods.
        tick = config.tick_ms
        self._timeslice_ticks = max(1, config.timeslice_ms // tick)
        self._balance_ticks = max(1, config.balance_interval_ms // tick)
        self._idle_balance_ticks = max(1, config.idle_balance_interval_ms // tick)
        self._hot_check_ticks = max(1, config.hot_check_interval_ms // tick)
        self._sample_every = max(1, int(config.sample_interval_s * 1000) // tick)
        self._hk_tables: list[tuple[tuple[int, int], ...]] | None = None
        self._all_forked = False

    # ------------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------------
    # Pickle captures the whole machine: tasks, runqueues, EWMA profiles,
    # thermal RC state, the RNG factory with the exact Mersenne state of
    # every stream, tracer series/events/counters, and (when enabled)
    # the validator and observer.  Shared references — streams handed to
    # behaviors and banks, list columns shared between the metrics board
    # and the state block, tasks on runqueues and in slots — survive via
    # the pickle memo.  Only the derived attributes in _DERIVED_ATTRS
    # are dropped and rebuilt, so a restored system continues the run
    # bit-identically (asserted per pinned perf scenario in
    # tests/test_resilience_checkpoint.py).

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        for name in _DERIVED_ATTRS:
            state.pop(name, None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # Re-alias each counter bank onto its matrix row: the values are
        # already equal (the row and the bank's standalone copy pickled
        # from the same memory), so rebinding only restores the aliasing
        # the batched path needs.
        for c, bank in enumerate(self.banks):
            bank.bind_row(self._counts_mx[c])
        self._bank_rows = [self._counts_mx[c] for c in range(self.n_cpus)]
        self._pmc_rngs = [self.rng.stream(f"pmc:{c}") for c in range(self.n_cpus)]
        self._pmc_gauss = [r.gauss for r in self._pmc_rngs]
        self._meter_gauss = [r.gauss for r in self._meter_rngs]
        self._sib1 = _sib1_table(self._siblings)
        self._hk_tables = None
        self._all_forked = all(slot.forked for slot in self.slots)
        self._exec_memo = [None] * self.n_cpus
        self._jit_scratch = np.zeros(N_EVENTS)
        self._pkg_pairs = [
            cpus if len(cpus) == 2 else None for cpus in self._pkg_cpus
        ]
        self._mix_cache = {}
        self._tick_cache = TickEnergyCache(
            self.estimator, self.power, self.exec_model.freq_hz
        )
        self._cycles_for_dt = None
        self._rc_decay_dt = None
        self._rc_decays = []
        observer = self.observer
        self._obs_audit = observer.audit if observer is not None else None
        self._obs_balance_hist = (
            observer.balance_hist if observer is not None else None
        )
        if observer is not None:
            if observer.audit is not None:
                observer.audit.rearm(lambda: self._now_ms)
            if observer.profile is not None:
                self.tick = self._tick_profiled

    def snapshot(self) -> dict:
        """A versioned, self-contained checkpoint of the machine.

        The returned dict is the in-memory checkpoint format:
        identifying header fields plus the pickled machine as the
        ``payload``.  :func:`repro.resilience.checkpoint.save_checkpoint`
        writes it to disk atomically; :meth:`restore` rebuilds the
        system.  Snapshotting reads state only — taking one mid-run does
        not perturb the run.
        """
        import pickle

        return {
            "schema": f"{CHECKPOINT_SCHEMA}/{CHECKPOINT_VERSION}",
            "version": CHECKPOINT_VERSION,
            "tick_ms": self.config.tick_ms,
            "now_ms": self._now_ms,
            "ticks": self._now_ms // self.config.tick_ms,
            "policy": self.policy_name,
            "fast_path": self.fast_path,
            "payload": pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL),
        }

    @classmethod
    def restore(cls, snapshot: dict) -> "System":
        """Rebuild a machine from a :meth:`snapshot` dict.

        Validates the schema/version header before unpickling and
        raises ``ValueError`` on anything this code cannot load.
        """
        schema = snapshot.get("schema")
        expected = f"{CHECKPOINT_SCHEMA}/{CHECKPOINT_VERSION}"
        if schema != expected:
            raise ValueError(
                f"unsupported checkpoint schema {schema!r}; this build "
                f"reads {expected!r}"
            )
        import pickle

        system = pickle.loads(snapshot["payload"])
        if not isinstance(system, cls):
            raise ValueError(
                f"checkpoint payload is {type(system).__name__}, not a System"
            )
        return system

    # ------------------------------------------------------------------------
    # Tick phases
    # ------------------------------------------------------------------------
    def tick(self, clock: Clock) -> None:
        now_ms = clock.now_ms
        self._now_ms = now_ms
        if self._has_power_caps and len(self.containers):
            self.containers.refill_all(clock.tick_s)
        self._wake_due(now_ms)
        self._fork_due(now_ms)
        self._dispatch()
        if self.fast_path:
            self._execute_fast(clock)
            self._thermal_step_fast(clock)
        else:
            self._execute(clock)
            self._thermal_step(clock)
        self._throttle_step(clock)
        self._housekeeping(clock)
        # The first tick samples too, so every series starts near t=0
        # instead of one interval in.
        if clock.ticks == 1 or clock.ticks % self._sample_every == 0:
            self._sample_traces(clock)
        if self.validator is not None:
            self.validator.after_tick(clock)

    def _tick_profiled(self, clock: Clock) -> None:
        """The tick loop with per-phase wall timers.

        Installed over :meth:`tick` when the run's
        :class:`~repro.obs.observer.ObservabilityConfig` enables
        profiling.  Calls the same phase methods in the same order —
        both the fast and the scalar execution path go through here —
        so results are unchanged; only wall time is observed.
        """
        prof = self.observer.profile
        now = perf_counter
        now_ms = clock.now_ms
        self._now_ms = now_ms
        t0 = now()
        if self._has_power_caps and len(self.containers):
            self.containers.refill_all(clock.tick_s)
        self._wake_due(now_ms)
        self._fork_due(now_ms)
        t1 = now()
        prof.add("wake_fork", t1 - t0)
        self._dispatch()
        t2 = now()
        prof.add("dispatch", t2 - t1)
        if self.fast_path:
            self._execute_fast(clock)
            t3 = now()
            prof.add("execute", t3 - t2)
            self._thermal_step_fast(clock)
        else:
            self._execute(clock)
            t3 = now()
            prof.add("execute", t3 - t2)
            self._thermal_step(clock)
        t4 = now()
        prof.add("thermal", t4 - t3)
        self._throttle_step(clock)
        t5 = now()
        prof.add("throttle", t5 - t4)
        self._housekeeping(clock)
        t6 = now()
        prof.add("housekeeping", t6 - t5)
        if clock.ticks == 1 or clock.ticks % self._sample_every == 0:
            self._sample_traces(clock)
            t7 = now()
            prof.add("sample", t7 - t6)
        else:
            t7 = t6
        if self.validator is not None:
            self.validator.after_tick(clock)
            prof.add("validate", now() - t7)
        prof.tick_done()

    # -- wakeups and forks ------------------------------------------------------
    def _wake_due(self, now_ms: int) -> None:
        if not self._blocked:
            return
        still: list[tuple[int, Task, int]] = []
        for wake_ms, task, cpu in self._blocked:
            if wake_ms <= now_ms:
                self._resample_run_budget(task)
                task.note_ready(now_ms)
                self.runqueues[cpu].enqueue(task)
                self.tracer.event(
                    EventRecord(now_ms, EventKind.TASK_WAKE, cpu=cpu, pid=task.pid)
                )
            else:
                still.append((wake_ms, task, cpu))
        self._blocked = still

    def _fork_due(self, now_ms: int) -> None:
        # Slots fork exactly once; after the last arrival this is a pure
        # flag test on every subsequent tick.
        if self._all_forked:
            return
        pending = False
        for slot in self.slots:
            if not slot.forked:
                if slot.spec.arrival_s * 1000 <= now_ms:
                    self._fork(slot, now_ms)
                else:
                    pending = True
        self._all_forked = not pending

    def _fork(self, slot: SlotState, now_ms: int) -> Task:
        """Create a new task for a slot and place it via the policy (§4.6)."""
        spec = slot.spec
        program = spec.program
        behavior = program.build_behavior(
            self.power,
            self.exec_model.freq_hz,
            self.rng.stream(f"behavior:slot{slot.index}"),
        )
        task = Task(
            pid=self._next_pid,
            name=program.name,
            inode=program.inode,
            behavior=behavior,
            job_instructions=spec.job_instructions(self.exec_model.freq_hz),
            spec=spec,
            nice=spec.nice,
            cpus_allowed=(
                frozenset(spec.cpus_allowed) if spec.cpus_allowed is not None else None
            ),
        )
        self._next_pid += 1
        task.started_at_ms = now_ms
        task.profile = EnergyProfile(
            self._profile_config,
            initial_power_w=self.policy.initial_profile_power(task),
        )
        self._resample_run_budget(task)
        if spec.power_cap_w is not None:
            self.containers.assign(task, ContainerConfig(refill_w=spec.power_cap_w))
        cpu = self.policy.place_new_task(task)
        if self.validator is not None:
            self.validator.on_placement(task, cpu)
        task.note_ready(now_ms)
        self.runqueues[cpu].enqueue(task)
        slot.task = task
        slot.forked = True
        self.tracer.event(
            EventRecord(now_ms, EventKind.TASK_START, cpu=cpu, pid=task.pid,
                        detail={"name": program.name, "slot": slot.index})
        )
        return task

    def _resample_run_budget(self, task: Task) -> None:
        interactive = task.spec.program.interactive if task.spec else None
        if interactive is None:
            task.run_remaining_s = None
            return
        mean_run_s, _ = interactive
        rng = self.rng.stream(f"interactive:{task.name}")
        task.run_remaining_s = rng.expovariate(1.0 / mean_run_s)

    # -- dispatch and execution ---------------------------------------------------
    def _timeslice_for(self, task: Task) -> float:
        """Timeslice length for a task (priority-scaled, §3.3's premise)."""
        return timeslice_ms(task.nice, self.config.timeslice_ms)

    def _dispatch(self) -> None:
        eligible = (
            self.containers.eligible
            if self._has_power_caps and len(self.containers)
            else None
        )
        for rq in self._rq_list:
            if rq.current is None and rq.nr:
                task = rq.pick_next(eligible)
                if task is not None and task.timeslice_remaining_ms <= 0:
                    task.timeslice_remaining_ms = self._timeslice_for(task)

    def _execute(self, clock: Clock) -> None:
        tick_s = clock.tick_s
        topology = self.topology
        running = self._running
        for c in range(self.n_cpus):
            rq = self.runqueues[c]
            running[c] = rq.current is not None and not self.throttle.is_throttled(c)
            self._est_power[c] = 0.0
            self._dyn_power[c] = 0.0
        self._total_ticks += 1
        for c in range(self.n_cpus):
            if not running[c]:
                continue
            self._busy_ticks[c] += 1
            rq = self.runqueues[c]
            task = rq.current
            assert task is not None
            if task.ready_since_ms is not None:
                task.note_dispatched(self._now_ms)
            siblings = topology.siblings_of(c)
            n_busy_threads = 1 + sum(1 for s in siblings if running[s])
            sibling_busy = n_busy_threads > 1
            mix = task.behavior.step(tick_s)
            dyn_w = self._dynamic_power(mix)
            cycles = self.exec_model.effective_cycles(tick_s, sibling_busy)
            if sibling_busy:
                dyn_w *= self.exec_model.smt_thread_factor
            scale = self._freq_scale[c]
            if scale < 1.0:
                # DVFS: work slows linearly, dynamic power cubically.
                cycles *= scale
                dyn_w *= dynamic_power_scale(scale)
            bank = self.banks[c]
            jitter = bank.draw_jitter(cycles)
            base_increments = mix.rates_per_cycle * cycles
            unit_nj = self.estimator.unit_energy_nj(base_increments)
            bank.credit(
                base_increments if jitter == 1.0 else base_increments * jitter
            )
            # The kernel set the frequency, so it corrects the per-event
            # energy for the lower voltage (counts already carry one
            # factor of the frequency).  Jitter and the voltage correction
            # are multiplicative on the whole event term (Eq. 1 factored
            # form) — the batched path computes the identical expression.
            scale_factor = jitter if scale == 1.0 else jitter * (scale * scale)
            est_e = self.estimator.tick_energy_j(
                unit_nj, scale_factor, tick_s, 1.0 / n_busy_threads
            )
            if len(self.containers):
                self.containers.charge(task, est_e)
            self._interval_energy[c] += est_e
            self._interval_busy[c] += tick_s
            self._est_power[c] = est_e / tick_s
            self._dyn_power[c] = dyn_w
            task.total_busy_s += tick_s
            task.total_energy_j += est_e
            name = task.name
            instructions = cycles * mix.ipc
            if task.cold_instructions_remaining > 0.0:
                instructions = self._apply_cache_warmup(task, instructions)
            self.instructions_retired[name] = (
                self.instructions_retired.get(name, 0.0) + instructions
            )
            job_done = task.retire(instructions)
            task.timeslice_remaining_ms -= clock.tick_ms
            if task.run_remaining_s is not None:
                task.run_remaining_s -= tick_s
            if job_done:
                self._complete_job(task, clock)
                if rq.current is not task:
                    continue  # task exited (fork_new/none respawn)
            if task.run_remaining_s is not None and task.run_remaining_s <= 0:
                self._block(task, clock)
                continue
            container_exhausted = (
                len(self.containers) > 0 and not self.containers.eligible(task)
            )
            if task.timeslice_remaining_ms <= 0 or container_exhausted:
                self._end_interval(c, task)
                eligible = (
                    self.containers.eligible if len(self.containers) else None
                )
                nxt = rq.pick_next(eligible)
                if nxt is not None and nxt.timeslice_remaining_ms <= 0:
                    nxt.timeslice_remaining_ms = self._timeslice_for(nxt)

    def _execute_fast(self, clock: Clock) -> None:
        """The batched execution step.

        Performs exactly the arithmetic of :meth:`_execute` — the Eq. 1
        factored energy, the same RNG draws in the same order — over the
        struct-of-arrays columns, with the per-tick invariants hoisted:
        effective cycle counts are memoised per tick length, per-(mix,
        cycles) counter increments and unit energies come from the
        :class:`~repro.cpu.power.TickEnergyCache`, and attribute lookups
        are bound once per tick instead of once per CPU.
        """
        tick_s = clock.tick_s
        tick_ms = clock.tick_ms
        now_ms = self._now_ms
        n_cpus = self.n_cpus
        rq_list = self._rq_list
        running = self._running
        throttled = self.throttle.throttled
        est_power = self._est_power
        dyn_power = self._dyn_power
        # CPUs only ever throttle when hlt-throttling is active (DVFS
        # rescales instead of halting), so the flag test can be hoisted.
        use_throttled = self.config.throttle.enabled and not self._dvfs_mode
        if use_throttled:
            for c in range(n_cpus):
                running[c] = rq_list[c].current is not None and not throttled[c]
                est_power[c] = 0.0
                dyn_power[c] = 0.0
        else:
            for c in range(n_cpus):
                running[c] = rq_list[c].current is not None
                est_power[c] = 0.0
                dyn_power[c] = 0.0
        self._total_ticks += 1
        cached = self._cycles_for_dt
        if cached is None or cached[0] != tick_s:
            cached = (
                tick_s,
                self.exec_model.effective_cycles(tick_s, False),
                self.exec_model.effective_cycles(tick_s, True),
            )
            self._cycles_for_dt = cached
        cycles_solo, cycles_smt = cached[1], cached[2]
        smt_factor = self.exec_model.smt_thread_factor
        siblings = self._siblings
        bank_rows = self._bank_rows
        freq_scale = self._freq_scale
        busy_ticks = self._busy_ticks
        interval_energy = self._interval_energy
        interval_busy = self._interval_busy
        containers = self.containers
        # When no workload slot carries a power cap the container manager
        # stays empty for the whole run; skip its per-CPU checks outright.
        use_containers = self._has_power_caps
        cache_get = self._tick_cache.cache.get
        cache_miss = self._tick_cache.miss
        pmc_rngs = self._pmc_rngs
        pmc_gauss = self._pmc_gauss
        # The fault injector perturbs counters by shadowing the jitter
        # streams' gauss; with one installed, draws must go through the
        # (possibly wrapped) bound methods instead of the inline copy.
        inline_gauss = self.fault_injector is None
        sib1 = self._sib1
        exec_memo = self._exec_memo
        jit_scratch = self._jit_scratch
        jitter_sigma = self.config.counter_jitter_sigma
        dvfs_on = self._dvfs_mode
        base_w = self.estimator.base_w
        bwts = base_w * tick_s
        retired = self.instructions_retired
        retired_get = retired.get
        for c in range(n_cpus):
            if not running[c]:
                continue
            busy_ticks[c] += 1
            rq = rq_list[c]
            task = rq.current
            if task.ready_since_ms is not None:
                task.note_dispatched(now_ms)
            # Two-thread cores (the common topology) read their lone
            # sibling directly; -1 means no SMT, -2 falls back to the
            # general scan.
            s = sib1[c]
            if s >= 0:
                sibling_busy = running[s]
                n_busy_threads = 2 if sibling_busy else 1
            elif s == -1:
                sibling_busy = False
                n_busy_threads = 1
            else:
                n_busy_threads = 1
                for s in siblings[c]:
                    if running[s]:
                        n_busy_threads += 1
                sibling_busy = n_busy_threads > 1
            # Inlined Behavior.step common case (no wobble resample, no
            # phase expiry): take the cached mix and advance the two
            # timers, exactly as step() would.  Everything else falls
            # through to the full method.
            beh = task.behavior
            if (
                beh._wobble_remaining_s > 0.0
                and beh._phase_remaining_s > tick_s
                and beh._cached_mix is not None
            ):
                mix = beh._cached_mix
                beh._phase_remaining_s -= tick_s
                beh._wobble_remaining_s -= tick_s
            else:
                mix = beh.step(tick_s)
            cycles = cycles_smt if sibling_busy else cycles_solo
            # freq_scale stays pinned at 1.0 unless the DVFS controller
            # is driving it, so the read can be skipped outright.
            scale = freq_scale[c] if dvfs_on else 1.0
            if scale < 1.0:
                # DVFS: work slows linearly (power is rescaled below).
                cycles *= scale
            # One-entry memo per CPU in front of the shared tick cache:
            # mixes are stable across many ticks, so the identity check
            # usually short-circuits the tuple build + dict probe.
            memo = exec_memo[c]
            if memo is not None and memo[0] is mix and memo[1] == cycles:
                entry = memo[2]
            else:
                entry = cache_get((id(mix), cycles))
                if entry is None or entry[0] is not mix:
                    entry = cache_miss(mix, cycles)
                exec_memo[c] = (mix, cycles, entry)
            dyn_w = entry[3]
            if sibling_busy:
                dyn_w *= smt_factor
            if scale < 1.0:
                # DVFS: dynamic power falls cubically.
                dyn_w *= dynamic_power_scale(scale)
            # Inlined CounterBank.draw_jitter — same condition, same
            # values (the branch is max(0.0, x) spelled out), same RNG
            # stream, with random.gauss itself inlined: the identical
            # Box-Muller expressions on the same Random state, and
            # ``0.0 + z*sigma == z*sigma`` bit for bit (the +0.0 of the
            # library's mu-add only normalises -0.0, which the outer
            # 1.0+ add does anyway).
            if jitter_sigma and cycles > 0:
                if inline_gauss:
                    rng = pmc_rngs[c]
                    z = rng.gauss_next
                    rng.gauss_next = None
                    if z is None:
                        u = rng.random
                        x2pi = u() * _TWOPI
                        g2rad = _sqrt(-2.0 * _log(1.0 - u()))
                        z = _cos(x2pi) * g2rad
                        rng.gauss_next = _sin(x2pi) * g2rad
                    jitter = 1.0 + z * jitter_sigma
                else:
                    jitter = 1.0 + pmc_gauss[c](0.0, jitter_sigma)
                if jitter < 0.0:
                    jitter = 0.0
            else:
                jitter = 1.0
            # Credit the counter bank through its shared matrix row; the
            # wraparound modulus is applied once per tick below, which is
            # exact (x % m == x while the counters stay below m, so the
            # deferred reduction matches per-credit reduction bit for
            # bit).
            base_increments = entry[1]
            row = bank_rows[c]
            if jitter == 1.0:
                row += base_increments
            else:
                # Same product values through a preallocated scratch
                # row instead of a fresh temporary per credit.
                np.multiply(base_increments, jitter, out=jit_scratch)
                row += jit_scratch
            scale_factor = jitter if scale == 1.0 else jitter * (scale * scale)
            # Inlined LinearEnergyEstimator.tick_energy_j — same
            # expression, same evaluation order, so the two paths agree
            # bit for bit.
            est_e = bwts * (1.0 / n_busy_threads) + entry[2] * scale_factor * 1e-9
            if use_containers and len(containers):
                containers.charge(task, est_e)
            interval_energy[c] += est_e
            interval_busy[c] += tick_s
            est_power[c] = est_e / tick_s
            dyn_power[c] = dyn_w
            task.total_busy_s += tick_s
            task.total_energy_j += est_e
            name = task.name
            instructions = cycles * mix.ipc
            if task.cold_instructions_remaining > 0.0:
                instructions = self._apply_cache_warmup(task, instructions)
            retired[name] = retired_get(name, 0.0) + instructions
            # Inlined Task.retire; its non-negativity guard is
            # unreachable here (instructions = cycles * ipc >= 0).
            rem = task.instructions_remaining - instructions
            task.instructions_remaining = rem
            if rem <= 0:
                task.jobs_completed += 1
                job_done = True
            else:
                job_done = False
            task.timeslice_remaining_ms -= tick_ms
            if task.run_remaining_s is not None:
                task.run_remaining_s -= tick_s
            if job_done:
                self._complete_job(task, clock)
                if rq.current is not task:
                    continue  # task exited (fork_new/none respawn)
            if task.run_remaining_s is not None and task.run_remaining_s <= 0:
                self._block(task, clock)
                continue
            container_exhausted = (
                use_containers
                and len(containers) > 0
                and not containers.eligible(task)
            )
            if task.timeslice_remaining_ms <= 0 or container_exhausted:
                self._end_interval(c, task)
                eligible = (
                    containers.eligible
                    if use_containers and len(containers)
                    else None
                )
                nxt = rq.pick_next(eligible)
                if nxt is not None and nxt.timeslice_remaining_ms <= 0:
                    nxt.timeslice_remaining_ms = self._timeslice_for(nxt)
        # One wraparound reduction for all banks.  Each bank is credited
        # at most once per tick, so reducing here instead of per credit
        # yields the exact same counter values as CounterBank.credit.
        self._counts_mx %= self._counter_modulus

    def _apply_cache_warmup(self, task: Task, instructions: float) -> float:
        """Retire fewer instructions while the task re-warms caches.

        §6.5: a migrated task runs slower until it has executed "some
        millions of instructions"; the lost work is what the paper
        weighs against the gain of not throttling.
        """
        factor = self.config.cold_cache_ipc_factor
        cold_capacity = instructions * factor
        if task.cold_instructions_remaining >= cold_capacity:
            executed = cold_capacity
            task.cold_instructions_remaining -= cold_capacity
        else:
            cold_part = task.cold_instructions_remaining
            warm_time_fraction = 1.0 - cold_part / cold_capacity
            executed = cold_part + instructions * warm_time_fraction
            task.cold_instructions_remaining = 0.0
        task.warmup_instructions_lost += instructions - executed
        return executed

    def _dynamic_power(self, mix) -> float:
        key = id(mix)
        cached = self._mix_cache.get(key)
        if cached is not None and cached[0] is mix:
            return cached[1]
        dyn = self.power.dynamic_power_w(mix.rates_per_cycle, self.exec_model.freq_hz)
        self._mix_cache[key] = (mix, dyn)
        if len(self._mix_cache) > 4096:
            self._mix_cache.clear()
        return dyn

    # -- interval accounting (profile updates, §3.3) --------------------------------
    def _end_interval(self, cpu: int, task: Task) -> None:
        busy = self._interval_busy[cpu]
        if busy <= 0:
            return
        energy = self._interval_energy[cpu]
        assert task.profile is not None
        task.profile.record(energy, busy)
        # The task's profile power changed, so any memoised runqueue
        # power sum that includes it is stale.
        self.runqueues[cpu].version += 1
        if not task.first_timeslice_done:
            task.first_timeslice_done = True
            self.policy.on_first_timeslice(task, energy / busy)
        self._interval_energy[cpu] = 0.0
        self._interval_busy[cpu] = 0.0

    # -- job lifecycle -----------------------------------------------------------
    def _complete_job(self, task: Task, clock: Clock) -> None:
        self.tracer.counters.add("jobs_total")
        self.tracer.counters.add(f"jobs:{task.name}")
        slot = self._slot_of(task)
        if slot is not None:
            slot.finished_jobs += 1
        respawn = task.spec.respawn if task.spec else "restart_same"
        if respawn == "restart_same":
            task.start_job()
            return
        # fork_new / none: the task exits.
        cpu = task.cpu
        self._end_interval(cpu, task)
        self.runqueues[cpu].remove(task)
        task.state = TaskState.EXITED
        self.containers.release(task)
        self.exited_tasks.append(task)
        self.tracer.event(
            EventRecord(clock.now_ms, EventKind.TASK_EXIT, cpu=cpu, pid=task.pid)
        )
        if slot is not None:
            slot.task = None
            if respawn == "fork_new":
                self._fork(slot, clock.now_ms)

    def _slot_of(self, task: Task) -> SlotState | None:
        for slot in self.slots:
            if slot.task is task:
                return slot
        return None

    def _block(self, task: Task, clock: Clock) -> None:
        cpu = task.cpu
        self._end_interval(cpu, task)
        self.runqueues[cpu].remove(task)
        task.state = TaskState.BLOCKED
        interactive = task.spec.program.interactive if task.spec else None
        mean_block_s = interactive[1] if interactive else 0.1
        rng = self.rng.stream(f"interactive:{task.name}")
        wake_ms = clock.now_ms + max(
            clock.tick_ms, int(rng.expovariate(1.0 / mean_block_s) * 1000)
        )
        self._blocked.append((wake_ms, task, cpu))
        self.tracer.event(
            EventRecord(clock.now_ms, EventKind.TASK_BLOCK, cpu=cpu, pid=task.pid)
        )

    # -- thermal and throttling -----------------------------------------------------
    def _thermal_step(self, clock: Clock) -> None:
        tick_s = clock.tick_s
        topology = self.topology
        spec = self.config.machine
        pkg_all_halted = [False] * spec.n_packages
        for pkg in range(spec.n_packages):
            cpus = topology.cpus_of_package(pkg)
            dyns = [self._dyn_power[c] for c in cpus if self._running[c]]
            all_halted = not dyns
            pkg_all_halted[pkg] = all_halted
            true_w = self.power.sample_package_power_w(
                dyns, all_halted, self.rng.stream(f"meter:{pkg}")
            )
            true_temp = self.true_rc[pkg].step(true_w, tick_s)
            self._pkg_temp_c[pkg] = true_temp
            if all_halted:
                est_w = self.config.power.halted_package_w
            else:
                est_w = sum(self._est_power[c] for c in cpus if self._running[c])
            self._est_pkg_power[pkg] = est_w
            self._pkg_energy_j[pkg] += est_w * tick_s
            est_temp = self.est_rc[pkg].step(est_w, tick_s)
            self._pkg_est_temp_c[pkg] = est_temp
            err = abs(est_temp - true_temp)
            if err > self.max_temp_err_k:
                self.max_temp_err_k = err
            if true_temp > self.max_temp_seen_c:
                self.max_temp_seen_c = true_temp
            if not all_halted and clock.ticks % self._sample_every == 0:
                self._est_err_sum += abs(est_w - true_w) / true_w
                self._est_err_n += 1
        for c in range(self.n_cpus):
            if self._running[c]:
                power = self._est_power[c]
            elif pkg_all_halted[self.topology.package_of(c)]:
                # Fully halted package: each thread carries its share of
                # the residual hlt draw, so idle packages settle at 13.6 W.
                power = self._halted_share_w
            else:
                # Idle/halted thread beside a busy sibling: the active
                # thread's estimate already covers the package's static
                # power, so this thread contributes nothing extra.
                power = 0.0
            self.metrics.update_thermal(c, power, tick_s)

    def _thermal_step_fast(self, clock: Clock) -> None:
        """The batched thermal step.

        Same per-package integration and error tracking as
        :meth:`_thermal_step` with the ``exp`` factors memoised (the
        tick length is constant within a run), followed by one
        :meth:`~repro.core.metrics.MetricsBoard.update_thermal_batch`
        advancing the whole thermal-power column.
        """
        tick_s = clock.tick_s
        if self._rc_decay_dt != tick_s:
            self._rc_decays = [
                rc_decay(rc.params.tau_s, tick_s) for rc in self.true_rc
            ]
            self._rc_decay_dt = tick_s
        decays = self._rc_decays
        sample_tick = clock.ticks % self._sample_every == 0
        halted_pkg_w = self.config.power.halted_package_w
        halted_share_w = self._halted_share_w
        running = self._running
        est_power = self._est_power
        dyn_power = self._dyn_power
        thermal_in = self._thermal_in_w
        pkg_temp = self._pkg_temp_c
        pkg_est_temp = self._pkg_est_temp_c
        est_pkg_power = self._est_pkg_power
        pkg_energy = self._pkg_energy_j
        true_rc = self.true_rc
        est_rc = self.est_rc
        meter_rngs = self._meter_rngs
        power_params = self.power.params
        base_active_w = power_params.base_active_w
        noise_sigma = power_params.noise_sigma
        pkg_pairs = self._pkg_pairs
        for pkg, cpus in enumerate(self._pkg_cpus):
            # Single pass accumulating what sample_package_power_w and
            # the estimate sum would compute; starting from 0.0 matches
            # sum()'s int-0 start exactly (the first add is exact either
            # way) and the left-to-right order is identical.  Two-CPU
            # packages (the common topology) unroll the scans.
            dyn_sum = 0.0
            est_sum = 0.0
            pair = pkg_pairs[pkg]
            if pair is not None:
                c0, c1 = pair
                r0 = running[c0]
                r1 = running[c1]
                all_halted = not (r0 or r1)
                if r0:
                    dyn_sum += dyn_power[c0]
                    est_sum += est_power[c0]
                if r1:
                    dyn_sum += dyn_power[c1]
                    est_sum += est_power[c1]
            else:
                all_halted = True
                for c in cpus:
                    if running[c]:
                        all_halted = False
                        dyn_sum += dyn_power[c]
                        est_sum += est_power[c]
            # Inlined PowerModel.sample_package_power_w — same
            # expression, same RNG stream, with random.gauss inlined the
            # same way as the jitter draw in _execute_fast.
            clean = halted_pkg_w if all_halted else base_active_w + dyn_sum
            rng = meter_rngs[pkg]
            z = rng.gauss_next
            rng.gauss_next = None
            if z is None:
                u = rng.random
                x2pi = u() * _TWOPI
                g2rad = _sqrt(-2.0 * _log(1.0 - u()))
                z = _cos(x2pi) * g2rad
                rng.gauss_next = _sin(x2pi) * g2rad
            true_w = clean * (1.0 + z * noise_sigma)
            decay = decays[pkg]
            # Inlined ThermalRC.step_with_decay (both RCs) — same
            # expression on the same cached operands.
            rc = true_rc[pkg]
            target = rc._ambient_c + true_w * rc._r_k_per_w
            true_temp = target + (rc._temp_c - target) * decay
            rc._temp_c = true_temp
            pkg_temp[pkg] = true_temp
            if all_halted:
                est_w = halted_pkg_w
                # Fully halted package: each thread carries its share
                # of the residual hlt draw (13.6 W at idle).
                if pair is not None:
                    thermal_in[c0] = halted_share_w
                    thermal_in[c1] = halted_share_w
                else:
                    for c in cpus:
                        thermal_in[c] = halted_share_w
            else:
                est_w = est_sum
                # Idle thread beside a busy sibling contributes
                # nothing extra: the active thread's estimate already
                # covers the package's static power.
                if pair is not None:
                    thermal_in[c0] = est_power[c0] if r0 else 0.0
                    thermal_in[c1] = est_power[c1] if r1 else 0.0
                else:
                    for c in cpus:
                        thermal_in[c] = est_power[c] if running[c] else 0.0
            est_pkg_power[pkg] = est_w
            pkg_energy[pkg] += est_w * tick_s
            rc = est_rc[pkg]
            target = rc._ambient_c + est_w * rc._r_k_per_w
            est_temp = target + (rc._temp_c - target) * decay
            rc._temp_c = est_temp
            pkg_est_temp[pkg] = est_temp
            err = abs(est_temp - true_temp)
            if err > self.max_temp_err_k:
                self.max_temp_err_k = err
            if true_temp > self.max_temp_seen_c:
                self.max_temp_seen_c = true_temp
            if not all_halted and sample_tick:
                self._est_err_sum += abs(est_w - true_w) / true_w
                self._est_err_n += 1
        self.metrics.update_thermal_batch(thermal_in, tick_s)

    def _throttle_step(self, clock: Clock) -> None:
        if not self.config.throttle.enabled:
            return
        audit = self._obs_audit
        if self._dvfs_mode and self._dvfs_kind == "proactive":
            # Temperature-tracking DVFS: steer each package's *estimated*
            # die temperature (§4.2) toward its target instead of
            # reacting to the thermal-power limit.
            targets = self._dvfs_target_c
            pkg_est_temp = self._pkg_est_temp_c
            pkg_of = self._pkg_of
            for c in range(self.n_cpus):
                pkg = pkg_of[c]
                was = self._freq_scale[c]
                now = self.dvfs.update(c, pkg_est_temp[pkg], targets[pkg])
                self._freq_scale[c] = now
                if audit is not None and now != was:
                    audit.record(
                        site="dvfs",
                        cpu=c,
                        accepted=True,
                        detail={
                            "scale": now,
                            "est_temp_c": pkg_est_temp[pkg],
                            "target_c": targets[pkg],
                        },
                    )
            return
        package_scope = self.config.throttle.scope == "package"
        for c in range(self.n_cpus):
            if package_scope:
                thermal = self.metrics.package_thermal_sum_w(c)
                limit = self.metrics.package_max_power_w(c)
            else:
                thermal = self.metrics.thermal_power_w(c)
                limit = self.metrics.max_power_w(c)
            if self._dvfs_mode:
                was = self._freq_scale[c]
                now = self.dvfs.update(c, thermal, limit)
                self._freq_scale[c] = now
                if audit is not None and now != was:
                    audit.record(
                        site="dvfs",
                        cpu=c,
                        accepted=True,
                        detail={
                            "scale": now,
                            "thermal_w": thermal,
                            "limit_w": limit,
                        },
                    )
                continue
            was = self.throttle.is_throttled(c)
            now = self.throttle.update(c, thermal, limit)
            if now != was:
                kind = EventKind.THROTTLE_ON if now else EventKind.THROTTLE_OFF
                self.tracer.event(EventRecord(clock.now_ms, kind, cpu=c))

    # -- periodic policy work -----------------------------------------------------
    def _build_hk_tables(self) -> tuple[tuple[tuple[int, int], ...], ...]:
        """Memoise which CPUs' periodic work fires on which tick.

        The stagger pattern repeats with period lcm(balance, idle, hot)
        ticks, so each residue maps to a fixed candidate list of
        ``(cpu, mask)`` pairs (mask bits: 1 = balance fires, 2 = idle
        balance candidate, 4 = hot check fires).  CPUs with no work that
        tick never enter the loop.  An empty tuple marks a period too
        long to table; :meth:`_housekeeping` then keeps the plain
        modulo loop.
        """
        from math import lcm

        b = self._balance_ticks
        i = self._idle_balance_ticks
        h = self._hot_check_ticks
        period = lcm(b, i, h)
        if period > _HK_TABLE_MAX:
            self._hk_tables = ()
            return ()
        tables = []
        for r in range(period):
            entries = []
            for c in range(self.n_cpus):
                mask = 0
                if (r + c * 3) % b == 0:
                    mask |= 1
                if (r + c) % i == 0:
                    mask |= 2
                if (r + c) % h == 0:
                    mask |= 4
                if mask:
                    entries.append((c, mask))
            tables.append(tuple(entries))
        self._hk_tables = tuple(tables)
        return self._hk_tables

    def _housekeeping(self, clock: Clock) -> None:
        ticks = clock.ticks
        tables = self._hk_tables
        if tables is None:
            tables = self._build_hk_tables()
        if tables:
            # Same calls in the same ascending-CPU order as the modulo
            # loop below; the idle-balance runqueue test still happens
            # lazily at this CPU's position in the sequence.
            fires = tables[ticks % len(tables)]
            if not fires:
                return
            hist = self._obs_balance_hist
            runqueues = self.runqueues
            policy = self.policy
            for c, mask in fires:
                if (mask & 1) or (mask & 2 and not runqueues[c].nr):
                    if hist is None:
                        policy.periodic_balance(c)
                    else:
                        t0 = perf_counter()
                        policy.periodic_balance(c)
                        hist.observe(perf_counter() - t0)
                if mask & 4:
                    policy.check_active_migration(c)
            return
        hist = self._obs_balance_hist
        for c in range(self.n_cpus):
            rq = self.runqueues[c]
            phase = ticks + c * 3
            if phase % self._balance_ticks == 0 or (
                not rq.nr and (ticks + c) % self._idle_balance_ticks == 0
            ):
                if hist is None:
                    self.policy.periodic_balance(c)
                else:
                    t0 = perf_counter()
                    self.policy.periodic_balance(c)
                    hist.observe(perf_counter() - t0)
            if (ticks + c) % self._hot_check_ticks == 0:
                self.policy.check_active_migration(c)

    # -- migration callback ---------------------------------------------------------
    def _migrate(self, task: Task, src: int, dst: int, reason: str) -> None:
        if src == dst:
            raise ValueError("migration source and destination are identical")
        if not task.allowed_on(dst):
            raise ValueError(
                f"task pid={task.pid} affinity {sorted(task.cpus_allowed or ())} "
                f"forbids CPU {dst}"
            )
        if self.validator is not None:
            # Validate against the pre-migration state, before any
            # runqueue mutation.
            self.validator.before_migration(task, src, dst, reason)
        if self.fault_injector is not None and self.fault_injector.intercept_migration(
            task, src, dst, reason
        ):
            return  # fault plan dropped the request; no state changed
        src_rq = self.runqueues[src]
        if task is src_rq.current:
            self._end_interval(src, task)
        src_rq.remove(task)
        self.runqueues[dst].enqueue(task)
        task.migrations += 1
        warmup = self.config.cache_warmup_instructions
        if warmup > 0:
            if self.topology.node_of(src) != self.topology.node_of(dst):
                warmup *= self.config.numa_warmup_factor
            task.cold_instructions_remaining = warmup
        self.tracer.counters.add("migrations")
        self.tracer.counters.add(f"migrations:{reason}")
        self.tracer.event(
            EventRecord(
                self._now_ms,
                EventKind.MIGRATION,
                cpu=dst,
                pid=task.pid,
                detail={"src": src, "dst": dst, "reason": reason},
            )
        )
        audit = self._obs_audit
        if audit is not None:
            # Exactly one outcome record per committed migration; the
            # decision sites record the comparisons that led here.
            audit.record(
                site="migration",
                cpu=src,
                pid=task.pid,
                chosen=dst,
                accepted=True,
                detail={"dst": dst, "reason": reason, "src": src},
            )

    # -- tracing -----------------------------------------------------------------
    def _sample_traces(self, clock: Clock) -> None:
        t = clock.now_s
        tracer = self.tracer
        for c in range(self.n_cpus):
            tracer.sample(f"thermal_power.cpu{c:02d}", t, self.metrics.thermal_power_w(c))
        for pkg in range(self.config.machine.n_packages):
            true_temp = self.true_rc[pkg].temperature_c
            tracer.sample(f"temperature.pkg{pkg}", t, true_temp)
            # What an online calibrator (§4.2) would observe: the coarse
            # diode reading and the counter-estimated package power.
            tracer.sample(f"diode.pkg{pkg}", t, self.diode.read(true_temp))
            tracer.sample(f"est_power.pkg{pkg}", t, self._est_pkg_power[pkg])

    # -- results helpers ------------------------------------------------------------
    def fractional_jobs(self) -> float:
        """Completed jobs plus fractional progress of in-flight jobs."""
        total = 0.0
        for slot in self.slots:
            total += slot.finished_jobs
            task = slot.task
            if task is not None and task.state is not TaskState.EXITED:
                done = 1.0 - task.instructions_remaining / task.job_instructions
                total += max(0.0, min(1.0, done))
        return total

    def estimation_error(self) -> float:
        """Mean relative error of package power estimates vs ground truth."""
        if self._est_err_n == 0:
            return 0.0
        return self._est_err_sum / self._est_err_n

    def cpu_utilization(self, cpu_id: int) -> float:
        """Fraction of elapsed time this CPU executed a task."""
        if self._total_ticks == 0:
            return 0.0
        return self._busy_ticks[cpu_id] / self._total_ticks

    def live_tasks(self) -> list[Task]:
        return [slot.task for slot in self.slots if slot.task is not None]
