"""The simulated machine: hardware + kernel + workload, advanced per tick.

:class:`System` wires every substrate together the way §5 describes the
kernel integration:

* an execution step runs each logical CPU's current task for one tick,
  crediting event counters and retiring instructions;
* the energy estimator turns counter deltas into energy, charged to the
  running task's profile at interval boundaries (task switch, timeslice
  end, blocking — the variable-period EWMA) and into the CPU's thermal
  power every tick;
* a thermal step integrates each package's true RC temperature from
  ground-truth power (and a parallel RC from *estimated* power, so the
  §4.2 "< 1 K estimation error" claim is checkable);
* the throttle controller halts CPUs whose thermal power exceeds the
  limit (when temperature control is enabled);
* scheduler housekeeping expires timeslices, runs the policy's periodic
  balancer (staggered per CPU), and checks hot-task migration;
* the workload driver forks task slots and respawns finished jobs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig
from repro.core.containers import ContainerConfig, ContainerManager
from repro.core.metrics import MetricsBoard
from repro.core.policy import (
    BaselinePolicy,
    EnergyAwareConfig,
    EnergyAwarePolicy,
    SchedulingPolicy,
)
from repro.core.profile import EnergyProfile
from repro.core.estimator import build_calibrated_estimator
from repro.cpu.dvfs import DvfsController, dynamic_power_scale
from repro.cpu.frequency import ExecutionModel
from repro.cpu.pmc import CounterBank
from repro.cpu.power import GroundTruthPower
from repro.cpu.thermal import ThermalDiode, ThermalRC
from repro.cpu.throttle import ThrottleController
from repro.cpu.topology import Topology
from repro.sched.domains import build_domains
from repro.sched.priorities import timeslice_ms
from repro.sched.runqueue import RunQueue
from repro.sched.task import Task, TaskState
from repro.sim.clock import Clock
from repro.sim.events import EventKind, EventRecord
from repro.sim.rng import RngFactory
from repro.sim.trace import Tracer
from repro.workloads.generator import TaskSpec, WorkloadSpec
from repro.workloads.programs import PROGRAMS


@dataclass
class SlotState:
    """Runtime state of one workload slot."""

    index: int
    spec: TaskSpec
    task: Task | None = None
    forked: bool = False
    finished_jobs: int = 0


class System:
    """One complete simulated machine plus its workload."""

    def __init__(
        self,
        config: SystemConfig,
        workload: WorkloadSpec,
        policy: str = "energy",
        policy_config: EnergyAwareConfig | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if policy not in ("energy", "baseline"):
            raise ValueError(f"unknown policy {policy!r}")
        self.config = config
        self.workload = workload
        self.policy_name = policy
        self.tracer = tracer if tracer is not None else Tracer(config.sample_interval_s)
        self.rng = RngFactory(config.seed)
        spec = config.machine

        # -- hardware ---------------------------------------------------------
        self.topology = Topology(spec)
        self.n_cpus = len(self.topology)
        self.exec_model = ExecutionModel(
            freq_hz=spec.freq_hz, smt_thread_factor=config.smt_thread_factor
        )
        self.power = GroundTruthPower(config.power)
        self.banks = [
            CounterBank(c, self.rng.stream(f"pmc:{c}"), config.counter_jitter_sigma)
            for c in range(self.n_cpus)
        ]
        self._threads_per_pkg = spec.threads_per_core * spec.cores_per_package
        self._halted_share_w = config.power.halted_package_w / self._threads_per_pkg
        idle_temps = []
        self.true_rc: list[ThermalRC] = []
        self.est_rc: list[ThermalRC] = []
        for pkg in range(spec.n_packages):
            params = config.thermal_for_package(pkg)
            idle_temp = params.steady_state_c(config.power.halted_package_w)
            idle_temps.append(idle_temp)
            self.true_rc.append(ThermalRC(params, initial_c=idle_temp))
            self.est_rc.append(ThermalRC(params, initial_c=idle_temp))
        self.throttle = ThrottleController(self.n_cpus, config.throttle)
        self.dvfs = DvfsController(self.n_cpus)
        self._dvfs_mode = config.throttle.enabled and config.throttle.mode == "dvfs"
        self._freq_scale = [1.0] * self.n_cpus

        # -- estimator (calibrated as in §3.2) ---------------------------------
        self.estimator = build_calibrated_estimator(
            self.power,
            self.exec_model,
            PROGRAMS.values(),
            self.rng.stream("calibration"),
            smt=spec.smt_enabled,
        )

        # -- scheduler --------------------------------------------------------
        self.runqueues = {c: RunQueue(c) for c in range(self.n_cpus)}
        self.hierarchy = build_domains(self.topology)
        max_power = {
            c: config.cpu_max_power_w(self.topology.package_of(c))
            for c in range(self.n_cpus)
        }
        # Per-logical thermal power uses the package's RC time constant.
        tau_by_cpu = {
            c: config.thermal_for_package(self.topology.package_of(c)).tau_s
            for c in range(self.n_cpus)
        }
        # MetricsBoard takes a single tau; allow heterogeneity by building
        # with the first and fixing up each CPU's EWMA afterwards.
        self.metrics = MetricsBoard(
            self.topology,
            self.runqueues,
            tau_s=tau_by_cpu[0],
            max_power_w=max_power,
            initial_thermal_w=self._halted_share_w,
        )
        for c, tau in tau_by_cpu.items():
            self.metrics.cpu(c).thermal.tau_s = tau

        self.policy: SchedulingPolicy
        if policy == "energy":
            self.policy = EnergyAwarePolicy(
                self.metrics,
                self.hierarchy,
                self.runqueues,
                self._migrate,
                policy_config,
            )
            self._profile_config = self.policy.config.profile
        else:
            base = BaselinePolicy(
                self.hierarchy, self.runqueues, self._migrate
            )
            self.policy = base
            self._profile_config = base.profile_config

        # -- workload ----------------------------------------------------------
        self.slots = [SlotState(i, s) for i, s in enumerate(workload.tasks)]
        self.containers = ContainerManager()
        self.exited_tasks: list[Task] = []
        self._next_pid = 1
        self._blocked: list[tuple[int, Task, int]] = []  # (wake_ms, task, cpu)

        # -- per-tick bookkeeping ----------------------------------------------
        self._interval_energy = [0.0] * self.n_cpus
        self._interval_busy = [0.0] * self.n_cpus
        self._running = [False] * self.n_cpus
        self._est_power = [0.0] * self.n_cpus
        self._dyn_power = [0.0] * self.n_cpus
        self._mix_cache: dict[int, tuple[object, float]] = {}
        self.instructions_retired: dict[str, float] = {}
        self._est_err_sum = 0.0
        self._est_err_n = 0
        self._busy_ticks = [0] * self.n_cpus
        self._total_ticks = 0
        self._est_pkg_power = [0.0] * spec.n_packages
        self.diode = ThermalDiode()
        self._now_ms = 0
        self.max_temp_err_k = 0.0
        self.max_temp_seen_c = max(idle_temps)

        # Tick periods.
        tick = config.tick_ms
        self._timeslice_ticks = max(1, config.timeslice_ms // tick)
        self._balance_ticks = max(1, config.balance_interval_ms // tick)
        self._idle_balance_ticks = max(1, config.idle_balance_interval_ms // tick)
        self._hot_check_ticks = max(1, config.hot_check_interval_ms // tick)
        self._sample_every = max(1, int(config.sample_interval_s * 1000) // tick)

    # ------------------------------------------------------------------------
    # Tick phases
    # ------------------------------------------------------------------------
    def tick(self, clock: Clock) -> None:
        now_ms = clock.now_ms
        self._now_ms = now_ms
        if len(self.containers):
            self.containers.refill_all(clock.tick_s)
        self._wake_due(now_ms)
        self._fork_due(now_ms)
        self._dispatch()
        self._execute(clock)
        self._thermal_step(clock)
        self._throttle_step(clock)
        self._housekeeping(clock)
        if clock.ticks % self._sample_every == 0:
            self._sample_traces(clock)

    # -- wakeups and forks ------------------------------------------------------
    def _wake_due(self, now_ms: int) -> None:
        if not self._blocked:
            return
        still: list[tuple[int, Task, int]] = []
        for wake_ms, task, cpu in self._blocked:
            if wake_ms <= now_ms:
                self._resample_run_budget(task)
                task.note_ready(now_ms)
                self.runqueues[cpu].enqueue(task)
                self.tracer.event(
                    EventRecord(now_ms, EventKind.TASK_WAKE, cpu=cpu, pid=task.pid)
                )
            else:
                still.append((wake_ms, task, cpu))
        self._blocked = still

    def _fork_due(self, now_ms: int) -> None:
        for slot in self.slots:
            if not slot.forked and slot.spec.arrival_s * 1000 <= now_ms:
                self._fork(slot, now_ms)

    def _fork(self, slot: SlotState, now_ms: int) -> Task:
        """Create a new task for a slot and place it via the policy (§4.6)."""
        spec = slot.spec
        program = spec.program
        behavior = program.build_behavior(
            self.power,
            self.exec_model.freq_hz,
            self.rng.stream(f"behavior:slot{slot.index}"),
        )
        task = Task(
            pid=self._next_pid,
            name=program.name,
            inode=program.inode,
            behavior=behavior,
            job_instructions=spec.job_instructions(self.exec_model.freq_hz),
            spec=spec,
            nice=spec.nice,
            cpus_allowed=(
                frozenset(spec.cpus_allowed) if spec.cpus_allowed is not None else None
            ),
        )
        self._next_pid += 1
        task.started_at_ms = now_ms
        task.profile = EnergyProfile(
            self._profile_config,
            initial_power_w=self.policy.initial_profile_power(task),
        )
        self._resample_run_budget(task)
        if spec.power_cap_w is not None:
            self.containers.assign(task, ContainerConfig(refill_w=spec.power_cap_w))
        cpu = self.policy.place_new_task(task)
        task.note_ready(now_ms)
        self.runqueues[cpu].enqueue(task)
        slot.task = task
        slot.forked = True
        self.tracer.event(
            EventRecord(now_ms, EventKind.TASK_START, cpu=cpu, pid=task.pid,
                        detail={"name": program.name, "slot": slot.index})
        )
        return task

    def _resample_run_budget(self, task: Task) -> None:
        interactive = task.spec.program.interactive if task.spec else None
        if interactive is None:
            task.run_remaining_s = None
            return
        mean_run_s, _ = interactive
        rng = self.rng.stream(f"interactive:{task.name}")
        task.run_remaining_s = rng.expovariate(1.0 / mean_run_s)

    # -- dispatch and execution ---------------------------------------------------
    def _timeslice_for(self, task: Task) -> float:
        """Timeslice length for a task (priority-scaled, §3.3's premise)."""
        return timeslice_ms(task.nice, self.config.timeslice_ms)

    def _dispatch(self) -> None:
        eligible = self.containers.eligible if len(self.containers) else None
        for rq in self.runqueues.values():
            if rq.current is None:
                task = rq.pick_next(eligible)
                if task is not None and task.timeslice_remaining_ms <= 0:
                    task.timeslice_remaining_ms = self._timeslice_for(task)

    def _execute(self, clock: Clock) -> None:
        tick_s = clock.tick_s
        topology = self.topology
        running = self._running
        for c in range(self.n_cpus):
            rq = self.runqueues[c]
            running[c] = rq.current is not None and not self.throttle.is_throttled(c)
            self._est_power[c] = 0.0
            self._dyn_power[c] = 0.0
        self._total_ticks += 1
        for c in range(self.n_cpus):
            if not running[c]:
                continue
            self._busy_ticks[c] += 1
            rq = self.runqueues[c]
            task = rq.current
            assert task is not None
            if task.ready_since_ms is not None:
                task.note_dispatched(self._now_ms)
            siblings = topology.siblings_of(c)
            n_busy_threads = 1 + sum(1 for s in siblings if running[s])
            sibling_busy = n_busy_threads > 1
            mix = task.behavior.step(tick_s)
            dyn_w = self._dynamic_power(mix)
            cycles = self.exec_model.effective_cycles(tick_s, sibling_busy)
            if sibling_busy:
                dyn_w *= self.exec_model.smt_thread_factor
            scale = self._freq_scale[c]
            if scale < 1.0:
                # DVFS: work slows linearly, dynamic power cubically.
                cycles *= scale
                dyn_w *= dynamic_power_scale(scale)
            increments = self.banks[c].account(mix.rates_per_cycle, cycles)
            # The kernel set the frequency, so it corrects the per-event
            # energy for the lower voltage (counts already carry one
            # factor of the frequency).
            est_counts = increments if scale == 1.0 else increments * scale * scale
            est_e = self.estimator.energy_j(
                est_counts, tick_s, base_share=1.0 / n_busy_threads
            )
            if len(self.containers):
                self.containers.charge(task, est_e)
            self._interval_energy[c] += est_e
            self._interval_busy[c] += tick_s
            self._est_power[c] = est_e / tick_s
            self._dyn_power[c] = dyn_w
            task.total_busy_s += tick_s
            task.total_energy_j += est_e
            name = task.name
            instructions = cycles * mix.ipc
            if task.cold_instructions_remaining > 0.0:
                instructions = self._apply_cache_warmup(task, instructions)
            self.instructions_retired[name] = (
                self.instructions_retired.get(name, 0.0) + instructions
            )
            job_done = task.retire(instructions)
            task.timeslice_remaining_ms -= clock.tick_ms
            if task.run_remaining_s is not None:
                task.run_remaining_s -= tick_s
            if job_done:
                self._complete_job(task, clock)
                if rq.current is not task:
                    continue  # task exited (fork_new/none respawn)
            if task.run_remaining_s is not None and task.run_remaining_s <= 0:
                self._block(task, clock)
                continue
            container_exhausted = (
                len(self.containers) > 0 and not self.containers.eligible(task)
            )
            if task.timeslice_remaining_ms <= 0 or container_exhausted:
                self._end_interval(c, task)
                eligible = (
                    self.containers.eligible if len(self.containers) else None
                )
                nxt = rq.pick_next(eligible)
                if nxt is not None and nxt.timeslice_remaining_ms <= 0:
                    nxt.timeslice_remaining_ms = self._timeslice_for(nxt)

    def _apply_cache_warmup(self, task: Task, instructions: float) -> float:
        """Retire fewer instructions while the task re-warms caches.

        §6.5: a migrated task runs slower until it has executed "some
        millions of instructions"; the lost work is what the paper
        weighs against the gain of not throttling.
        """
        factor = self.config.cold_cache_ipc_factor
        cold_capacity = instructions * factor
        if task.cold_instructions_remaining >= cold_capacity:
            executed = cold_capacity
            task.cold_instructions_remaining -= cold_capacity
        else:
            cold_part = task.cold_instructions_remaining
            warm_time_fraction = 1.0 - cold_part / cold_capacity
            executed = cold_part + instructions * warm_time_fraction
            task.cold_instructions_remaining = 0.0
        task.warmup_instructions_lost += instructions - executed
        return executed

    def _dynamic_power(self, mix) -> float:
        key = id(mix)
        cached = self._mix_cache.get(key)
        if cached is not None and cached[0] is mix:
            return cached[1]
        dyn = self.power.dynamic_power_w(mix.rates_per_cycle, self.exec_model.freq_hz)
        self._mix_cache[key] = (mix, dyn)
        if len(self._mix_cache) > 4096:
            self._mix_cache.clear()
        return dyn

    # -- interval accounting (profile updates, §3.3) --------------------------------
    def _end_interval(self, cpu: int, task: Task) -> None:
        busy = self._interval_busy[cpu]
        if busy <= 0:
            return
        energy = self._interval_energy[cpu]
        assert task.profile is not None
        task.profile.record(energy, busy)
        if not task.first_timeslice_done:
            task.first_timeslice_done = True
            self.policy.on_first_timeslice(task, energy / busy)
        self._interval_energy[cpu] = 0.0
        self._interval_busy[cpu] = 0.0

    # -- job lifecycle -----------------------------------------------------------
    def _complete_job(self, task: Task, clock: Clock) -> None:
        self.tracer.counters.add("jobs_total")
        self.tracer.counters.add(f"jobs:{task.name}")
        slot = self._slot_of(task)
        if slot is not None:
            slot.finished_jobs += 1
        respawn = task.spec.respawn if task.spec else "restart_same"
        if respawn == "restart_same":
            task.start_job()
            return
        # fork_new / none: the task exits.
        cpu = task.cpu
        self._end_interval(cpu, task)
        self.runqueues[cpu].remove(task)
        task.state = TaskState.EXITED
        self.containers.release(task)
        self.exited_tasks.append(task)
        self.tracer.event(
            EventRecord(clock.now_ms, EventKind.TASK_EXIT, cpu=cpu, pid=task.pid)
        )
        if slot is not None:
            slot.task = None
            if respawn == "fork_new":
                self._fork(slot, clock.now_ms)

    def _slot_of(self, task: Task) -> SlotState | None:
        for slot in self.slots:
            if slot.task is task:
                return slot
        return None

    def _block(self, task: Task, clock: Clock) -> None:
        cpu = task.cpu
        self._end_interval(cpu, task)
        self.runqueues[cpu].remove(task)
        task.state = TaskState.BLOCKED
        interactive = task.spec.program.interactive if task.spec else None
        mean_block_s = interactive[1] if interactive else 0.1
        rng = self.rng.stream(f"interactive:{task.name}")
        wake_ms = clock.now_ms + max(
            clock.tick_ms, int(rng.expovariate(1.0 / mean_block_s) * 1000)
        )
        self._blocked.append((wake_ms, task, cpu))
        self.tracer.event(
            EventRecord(clock.now_ms, EventKind.TASK_BLOCK, cpu=cpu, pid=task.pid)
        )

    # -- thermal and throttling -----------------------------------------------------
    def _thermal_step(self, clock: Clock) -> None:
        tick_s = clock.tick_s
        topology = self.topology
        spec = self.config.machine
        pkg_all_halted = [False] * spec.n_packages
        for pkg in range(spec.n_packages):
            cpus = topology.cpus_of_package(pkg)
            dyns = [self._dyn_power[c] for c in cpus if self._running[c]]
            all_halted = not dyns
            pkg_all_halted[pkg] = all_halted
            true_w = self.power.sample_package_power_w(
                dyns, all_halted, self.rng.stream(f"meter:{pkg}")
            )
            true_temp = self.true_rc[pkg].step(true_w, tick_s)
            if all_halted:
                est_w = self.config.power.halted_package_w
            else:
                est_w = sum(self._est_power[c] for c in cpus if self._running[c])
            self._est_pkg_power[pkg] = est_w
            est_temp = self.est_rc[pkg].step(est_w, tick_s)
            err = abs(est_temp - true_temp)
            if err > self.max_temp_err_k:
                self.max_temp_err_k = err
            if true_temp > self.max_temp_seen_c:
                self.max_temp_seen_c = true_temp
            if not all_halted and clock.ticks % self._sample_every == 0:
                self._est_err_sum += abs(est_w - true_w) / true_w
                self._est_err_n += 1
        for c in range(self.n_cpus):
            if self._running[c]:
                power = self._est_power[c]
            elif pkg_all_halted[self.topology.package_of(c)]:
                # Fully halted package: each thread carries its share of
                # the residual hlt draw, so idle packages settle at 13.6 W.
                power = self._halted_share_w
            else:
                # Idle/halted thread beside a busy sibling: the active
                # thread's estimate already covers the package's static
                # power, so this thread contributes nothing extra.
                power = 0.0
            self.metrics.update_thermal(c, power, tick_s)

    def _throttle_step(self, clock: Clock) -> None:
        if not self.config.throttle.enabled:
            return
        package_scope = self.config.throttle.scope == "package"
        for c in range(self.n_cpus):
            if package_scope:
                thermal = self.metrics.package_thermal_sum_w(c)
                limit = self.metrics.package_max_power_w(c)
            else:
                thermal = self.metrics.thermal_power_w(c)
                limit = self.metrics.max_power_w(c)
            if self._dvfs_mode:
                self._freq_scale[c] = self.dvfs.update(c, thermal, limit)
                continue
            was = self.throttle.is_throttled(c)
            now = self.throttle.update(c, thermal, limit)
            if now != was:
                kind = EventKind.THROTTLE_ON if now else EventKind.THROTTLE_OFF
                self.tracer.event(EventRecord(clock.now_ms, kind, cpu=c))

    # -- periodic policy work -----------------------------------------------------
    def _housekeeping(self, clock: Clock) -> None:
        ticks = clock.ticks
        for c in range(self.n_cpus):
            rq = self.runqueues[c]
            phase = ticks + c * 3
            if phase % self._balance_ticks == 0:
                self.policy.periodic_balance(c)
            elif rq.is_idle and (ticks + c) % self._idle_balance_ticks == 0:
                self.policy.periodic_balance(c)
            if (ticks + c) % self._hot_check_ticks == 0:
                self.policy.check_active_migration(c)

    # -- migration callback ---------------------------------------------------------
    def _migrate(self, task: Task, src: int, dst: int, reason: str) -> None:
        if src == dst:
            raise ValueError("migration source and destination are identical")
        if not task.allowed_on(dst):
            raise ValueError(
                f"task pid={task.pid} affinity {sorted(task.cpus_allowed or ())} "
                f"forbids CPU {dst}"
            )
        src_rq = self.runqueues[src]
        if task is src_rq.current:
            self._end_interval(src, task)
        src_rq.remove(task)
        self.runqueues[dst].enqueue(task)
        task.migrations += 1
        warmup = self.config.cache_warmup_instructions
        if warmup > 0:
            if self.topology.node_of(src) != self.topology.node_of(dst):
                warmup *= self.config.numa_warmup_factor
            task.cold_instructions_remaining = warmup
        self.tracer.counters.add("migrations")
        self.tracer.counters.add(f"migrations:{reason}")
        self.tracer.event(
            EventRecord(
                self._now_ms,
                EventKind.MIGRATION,
                cpu=dst,
                pid=task.pid,
                detail={"src": src, "dst": dst, "reason": reason},
            )
        )

    # -- tracing -----------------------------------------------------------------
    def _sample_traces(self, clock: Clock) -> None:
        t = clock.now_s
        tracer = self.tracer
        for c in range(self.n_cpus):
            tracer.sample(f"thermal_power.cpu{c:02d}", t, self.metrics.thermal_power_w(c))
        for pkg in range(self.config.machine.n_packages):
            true_temp = self.true_rc[pkg].temperature_c
            tracer.sample(f"temperature.pkg{pkg}", t, true_temp)
            # What an online calibrator (§4.2) would observe: the coarse
            # diode reading and the counter-estimated package power.
            tracer.sample(f"diode.pkg{pkg}", t, self.diode.read(true_temp))
            tracer.sample(f"est_power.pkg{pkg}", t, self._est_pkg_power[pkg])

    # -- results helpers ------------------------------------------------------------
    def fractional_jobs(self) -> float:
        """Completed jobs plus fractional progress of in-flight jobs."""
        total = 0.0
        for slot in self.slots:
            total += slot.finished_jobs
            task = slot.task
            if task is not None and task.state is not TaskState.EXITED:
                done = 1.0 - task.instructions_remaining / task.job_instructions
                total += max(0.0, min(1.0, done))
        return total

    def estimation_error(self) -> float:
        """Mean relative error of package power estimates vs ground truth."""
        if self._est_err_n == 0:
            return 0.0
        return self._est_err_sum / self._est_err_n

    def cpu_utilization(self, cpu_id: int) -> float:
        """Fraction of elapsed time this CPU executed a task."""
        if self._total_ticks == 0:
            return 0.0
        return self._busy_ticks[cpu_id] / self._total_ticks

    def live_tasks(self) -> list[Task]:
        return [slot.task for slot in self.slots if slot.task is not None]
