"""Task energy profiles (paper §3.3).

A task's energy profile predicts the energy it will consume during its
next timeslice, expressed here as an average *power* (energy per unit
time — dividing by the period makes samples of different lengths
commensurable, which is what the variable-period average needs).

The profile is updated whenever the task stops executing (timeslice
expiry, blocking, preemption, migration of the running task) with the
energy the counter-based estimator attributed to it over that interval.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ewma import VariablePeriodEwma


@dataclass(frozen=True, slots=True)
class ProfileConfig:
    """Energy-profile tunables.

    Attributes
    ----------
    timeslice_s:
        The standard sampling period (one full timeslice).
    weight_p:
        Eq. 2 weight of a full-timeslice sample.  0.25 makes a permanent
        phase change dominate the profile after ~5 timeslices while a
        single-timeslice spike moves it by only a quarter of the jump —
        the spike/phase-change discrimination §3.3 argues for.
    default_power_w:
        Profile assigned to binaries never seen before (§4.6).
    """

    timeslice_s: float = 0.1
    weight_p: float = 0.25
    default_power_w: float = 45.0

    def __post_init__(self) -> None:
        if self.timeslice_s <= 0:
            raise ValueError("timeslice must be positive")
        if not 0 < self.weight_p < 1:
            raise ValueError("weight must be in (0, 1)")
        if self.default_power_w < 0:
            raise ValueError("default power must be non-negative")


class EnergyProfile:
    """Per-task exponential average of execution power."""

    __slots__ = ("_ewma", "samples")

    def __init__(self, config: ProfileConfig, initial_power_w: float | None = None) -> None:
        self._ewma = VariablePeriodEwma(
            standard_period_s=config.timeslice_s,
            weight_p=config.weight_p,
        )
        if initial_power_w is not None:
            self._ewma.prime(initial_power_w)
        self.samples = 0

    @property
    def power_w(self) -> float:
        """Predicted power for the task's next timeslice."""
        return self._ewma.value

    def record(self, energy_j: float, period_s: float) -> float:
        """Fold in one execution interval; returns the new profile power."""
        if energy_j < 0:
            raise ValueError("energy must be non-negative")
        self.samples += 1
        return self._ewma.update(energy_j / period_s, period_s)

    def __repr__(self) -> str:
        return f"EnergyProfile({self.power_w:.1f}W, samples={self.samples})"
