"""Initial task placement (paper §4.6).

A task's energy characteristics cannot be known before it runs — but
most binaries do input-independent initialisation first, so the energy
of a binary's *first timeslice* is a usable prediction for the first
timeslice of the next task started from the same binary.  The paper
stores it in a hash table indexed by the binary's inode number.

Placement: only CPUs with the minimum runqueue length are eligible (no
load imbalance).  Among those, the new task goes to the CPU whose
would-be runqueue power ratio — including the new task — comes closest
to the current system-average ratio: hot tasks land on cool CPUs and
vice versa.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.metrics import MetricsBoard
from repro.sched.runqueue import RunQueue
from repro.sched.task import Task


@dataclass(frozen=True, slots=True)
class PlacementConfig:
    """Initial-placement tunables.

    Attributes
    ----------
    default_power_w:
        Profile for binaries started for the very first time.
    """

    default_power_w: float = 45.0

    def __post_init__(self) -> None:
        if self.default_power_w < 0:
            raise ValueError("default power must be non-negative")


class InitialPlacement:
    """First-timeslice energy table + the placement decision."""

    def __init__(
        self,
        metrics: MetricsBoard,
        runqueues: Mapping[int, RunQueue],
        config: PlacementConfig | None = None,
    ) -> None:
        self.metrics = metrics
        self.runqueues = runqueues
        self.config = config if config is not None else PlacementConfig()
        self._first_slice_power: dict[int, float] = {}
        #: decision audit hook (an AuditLog), installed by repro.obs.
        self.audit = None

    # -- the inode hash table ----------------------------------------------------
    def initial_power_for(self, inode: int) -> float:
        """Predicted first-timeslice power for a binary."""
        return self._first_slice_power.get(inode, self.config.default_power_w)

    def record_first_timeslice(self, task: Task, power_w: float) -> None:
        """Store the power of a task's completed first timeslice."""
        if power_w < 0:
            raise ValueError("power must be non-negative")
        self._first_slice_power[task.inode] = power_w

    @property
    def known_binaries(self) -> int:
        return len(self._first_slice_power)

    # -- the decision -----------------------------------------------------------
    def place(self, task: Task) -> int:
        """Choose the CPU for a newly forked task; returns the CPU id."""
        new_power = (
            task.profile_power_w
            if task.profile is not None and task.profile.samples > 0
            else self.initial_power_for(task.inode)
        )
        allowed = [
            cpu for cpu in self.runqueues if task.allowed_on(cpu)
        ]
        min_len = min(self.runqueues[cpu].nr_running for cpu in allowed)
        eligible = [
            cpu for cpu in allowed if self.runqueues[cpu].nr_running == min_len
        ]
        target_ratio = self.metrics.system_avg_runqueue_ratio()
        chosen = min(
            eligible,
            key=lambda cpu: (
                abs(self.metrics.would_be_ratio(cpu, new_power) - target_ratio),
                cpu,
            ),
        )
        if self.audit is not None:
            self.audit.record(
                site="placement",
                cpu=chosen,
                pid=task.pid,
                chosen=chosen,
                accepted=True,
                detail={
                    "predicted_power_w": new_power,
                    "known_binary": task.inode in self._first_slice_power,
                    "target_ratio": target_ratio,
                    "min_runqueue_len": min_len,
                    "candidates": [
                        {
                            "cpu": cpu,
                            "would_be_ratio": self.metrics.would_be_ratio(
                                cpu, new_power
                            ),
                        }
                        for cpu in eligible
                    ],
                },
            )
        return chosen
