"""Estimator calibration glue (paper §3.2).

The authors calibrate Eq. 1's weights by running test applications,
counting events, and measuring true energy with a multimeter.  We do the
same against the ground-truth power model: synthesise timeslices of the
calibration programs (single-threaded, plus SMT pairs when the machine
has siblings), record noisy counter deltas and noisy "measured" energy,
and solve the resulting system by least squares.
"""

from __future__ import annotations

import random
from typing import Iterable

import numpy as np

from repro.cpu.frequency import ExecutionModel
from repro.cpu.power import (
    CalibrationSample,
    GroundTruthPower,
    LinearEnergyEstimator,
    calibrate_estimator,
)
from repro.workloads.programs import ProgramSpec


def build_calibrated_estimator(
    power: GroundTruthPower,
    exec_model: ExecutionModel,
    programs: Iterable[ProgramSpec],
    rng: random.Random,
    smt: bool = False,
    slices_per_program: int = 40,
    slice_s: float = 0.1,
    counter_jitter_sigma: float = 0.01,
) -> LinearEnergyEstimator:
    """Run the calibration procedure and return the fitted estimator.

    For each program, ``slices_per_program`` timeslices are synthesised:
    event counts from the program's behaviour (with counter jitter) and
    a noisy multimeter energy reading for the same interval.  With
    ``smt`` enabled, half the slices execute with a busy sibling running
    the same program, so the fit sees both single- and dual-thread
    operating points.
    """
    programs = list(programs)
    if not programs:
        raise ValueError("need at least one calibration program")
    samples: list[CalibrationSample] = []
    freq = exec_model.freq_hz
    for index, spec in enumerate(programs):
        behavior = spec.build_behavior(power, freq, rng)
        for s in range(slices_per_program):
            sibling_busy = smt and (s % 2 == 1)
            mix = behavior.step(slice_s)
            cycles = exec_model.effective_cycles(slice_s, sibling_busy)
            deltas = mix.rates_per_cycle * cycles
            if counter_jitter_sigma:
                deltas = deltas * max(0.0, 1.0 + rng.gauss(0.0, counter_jitter_sigma))
            dyn = power.dynamic_power_w(mix.rates_per_cycle, freq)
            if sibling_busy:
                # The sibling runs the same mix; the multimeter sees the
                # whole package, and the paper attributes half to each
                # logical CPU (the counters distinguish them, §4.7).
                dyn_threads = [dyn * exec_model.smt_thread_factor] * 2
                package_w = power.sample_package_power_w(dyn_threads, False, rng)
                energy = package_w * slice_s / 2.0
                base_share = 0.5
            else:
                package_w = power.sample_package_power_w([dyn], False, rng)
                energy = package_w * slice_s
                base_share = 1.0
            samples.append(
                CalibrationSample(
                    busy_s=slice_s,
                    counter_deltas=np.asarray(deltas, dtype=float),
                    measured_energy_j=energy,
                    base_share=base_share,
                )
            )
    return calibrate_estimator(samples)
