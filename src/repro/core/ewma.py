"""Exponential averaging (paper §3.3, Eq. 2).

Two variants:

* :class:`VariablePeriodEwma` — the paper's extension of the standard
  exponential average to samples covering *variable* periods (a task may
  block mid-timeslice or run an extended slice).  A sample spanning
  ``period`` gets the weight a chain of standard-period samples would
  have accumulated: the retained weight of the past is
  ``(1 - p) ** (period / standard_period)`` — shorter periods weight the
  past more, longer periods less, exactly the compensation §3.3 asks for.
* :class:`ThermalEwma` — a fixed-rate average whose weight is derived
  from a *time constant*, used for thermal power (§4.3): choosing
  ``tau`` equal to the RC model's ``R*C`` makes the average's step
  response track the processor temperature's exponential.

The module also provides the batched kernel the tick-loop fast path
uses: :func:`thermal_alpha` memoises the per-``(tau, dt)`` weight (the
tick length is constant within a run, so the ``exp`` is computed once
per distinct time constant instead of once per CPU per tick) and
:func:`ewma_update_batch` advances a whole struct-of-arrays column of
averages in one pass.  Both perform *exactly* the arithmetic of
:meth:`ThermalEwma.update`, so the batched and scalar paths produce
bit-identical values.
"""

from __future__ import annotations

import math

from typing import Sequence

#: Memoised ``1 - exp(-dt/tau)`` weights.  A run touches only a handful
#: of (tau, dt) pairs (one per distinct heat-sink parameterisation), so
#: the cache stays tiny.
_ALPHA_CACHE: dict[tuple[float, float], float] = {}


def thermal_alpha(tau_s: float, dt_s: float) -> float:
    """The :class:`ThermalEwma` blend weight for one ``(tau, dt)`` pair.

    Identical to the expression inside :meth:`ThermalEwma.update`;
    memoised because ``exp`` dominates the scalar update's cost.
    """
    if tau_s <= 0:
        raise ValueError("time constant must be positive")
    if dt_s < 0:
        raise ValueError("dt must be non-negative")
    key = (tau_s, dt_s)
    alpha = _ALPHA_CACHE.get(key)
    if alpha is None:
        alpha = 1.0 - math.exp(-dt_s / tau_s)
        _ALPHA_CACHE[key] = alpha
    return alpha


def ewma_update_batch(
    values: list[float], powers: Sequence[float], alphas: Sequence[float]
) -> None:
    """Advance a column of thermal averages in place (one per CPU).

    ``values[i] += alphas[i] * (powers[i] - values[i])`` for every
    element — the same statement :meth:`ThermalEwma.update` executes,
    applied across the struct-of-arrays block without per-object
    dispatch or per-call ``exp``.
    """
    for i, (power, alpha) in enumerate(zip(powers, alphas)):
        values[i] += alpha * (power - values[i])


class VariablePeriodEwma:
    """Exponential average over samples of varying duration.

    Parameters
    ----------
    standard_period_s:
        The reference sampling period (one full timeslice).
    weight_p:
        Weight of the newest sample when it spans exactly one standard
        period (Eq. 2's ``p``).
    initial:
        Starting average; the first update blends against this value.
    """

    __slots__ = ("standard_period_s", "weight_p", "_value", "_initialized")

    def __init__(
        self,
        standard_period_s: float,
        weight_p: float,
        initial: float = 0.0,
    ) -> None:
        if standard_period_s <= 0:
            raise ValueError("standard period must be positive")
        if not 0.0 < weight_p < 1.0:
            raise ValueError("weight p must be in (0, 1)")
        self.standard_period_s = standard_period_s
        self.weight_p = weight_p
        self._value = float(initial)
        self._initialized = initial != 0.0

    @property
    def value(self) -> float:
        return self._value

    def prime(self, value: float) -> None:
        """Seed the average (initial profile from the §4.6 hash table)."""
        self._value = float(value)
        self._initialized = True

    def update(self, sample: float, period_s: float) -> float:
        """Fold in a sample spanning ``period_s`` seconds; return average."""
        if period_s <= 0:
            raise ValueError("period must be positive")
        if not self._initialized:
            # First observation: adopt it outright rather than blending
            # against an arbitrary zero.
            self._value = float(sample)
            self._initialized = True
            return self._value
        retain = (1.0 - self.weight_p) ** (period_s / self.standard_period_s)
        self._value = retain * self._value + (1.0 - retain) * sample
        return self._value

    def __repr__(self) -> str:
        return (
            f"VariablePeriodEwma(value={self._value:.3f}, "
            f"p={self.weight_p}, T={self.standard_period_s})"
        )


class ThermalEwma:
    """Time-constant-calibrated exponential average (thermal power).

    Updated once per tick with the CPU's estimated power; with
    ``tau_s = R * C`` of the thermal model the trajectory of this metric
    follows the processor temperature while keeping the dimension of a
    power — the property §4.3 requires so it can be compared against
    runqueue power and maximum power.
    """

    __slots__ = ("tau_s", "_value")

    def __init__(self, tau_s: float, initial_w: float = 0.0) -> None:
        if tau_s <= 0:
            raise ValueError("time constant must be positive")
        self.tau_s = tau_s
        self._value = float(initial_w)

    @property
    def value_w(self) -> float:
        return self._value

    def prime(self, value_w: float) -> None:
        self._value = float(value_w)

    def update(self, power_w: float, dt_s: float) -> float:
        """Advance ``dt_s`` with the CPU drawing ``power_w``."""
        if dt_s < 0:
            raise ValueError("dt must be non-negative")
        alpha = 1.0 - math.exp(-dt_s / self.tau_s)
        self._value += alpha * (power_w - self._value)
        return self._value

    def __repr__(self) -> str:
        return f"ThermalEwma(value={self._value:.2f}W, tau={self.tau_s}s)"
