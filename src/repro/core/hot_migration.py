"""Hot task migration (paper §4.5, Figure 5; SMT rules §4.7).

Energy balancing cannot help a CPU whose runqueue holds a single hot
task — there is nothing to combine it with.  Instead, when such a CPU's
thermal power approaches its maximum power (it is about to hit the
temperature limit and be throttled), the task is actively migrated to a
considerably cooler CPU: an idle one, or one running a single cool task
which is migrated back in exchange (no load imbalance).

The search walks the domain hierarchy bottom-up, skipping SMT-level
domains — a sibling shares the physical chip, so moving there "does not
improve the situation".  Heat comparisons therefore use the *package*
thermal sum (the per-logical thermal powers of all threads on the chip):
only physical processors overheat, and an idle sibling of a hot thread
never looks like a cool destination.  If the top level yields no
destination, all processors are hot and the task stays (throttling is
the last resort).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.core.metrics import MetricsBoard
from repro.sched.domains import DomainHierarchy
from repro.sched.runqueue import RunQueue
from repro.sched.task import Task

MigrateFn = Callable[[Task, int, int, str], None]


@dataclass(frozen=True, slots=True)
class HotMigrationConfig:
    """Tunables of hot task migration.

    Attributes
    ----------
    trigger_margin_w:
        Fire when the package thermal sum comes within this margin of
        the package's maximum power (§4.5's "predefined threshold").
    min_delta_w:
        The destination package must be at least this much cooler than
        the source package ("considerably cooler" — limits migration
        frequency).
    cool_task_margin_w:
        A destination running one task qualifies only if that task's
        profile is this much below the hot task's profile.
    """

    trigger_margin_w: float = 1.0
    min_delta_w: float = 10.0
    cool_task_margin_w: float = 10.0

    def __post_init__(self) -> None:
        if self.trigger_margin_w < 0:
            raise ValueError("trigger margin must be non-negative")
        if self.min_delta_w <= 0:
            raise ValueError("min delta must be positive")
        if self.cool_task_margin_w < 0:
            raise ValueError("cool task margin must be non-negative")


class HotTaskMigrator:
    """Implements the Figure 5 decision procedure."""

    def __init__(
        self,
        metrics: MetricsBoard,
        hierarchy: DomainHierarchy,
        runqueues: Mapping[int, RunQueue],
        migrate: MigrateFn,
        config: HotMigrationConfig | None = None,
    ) -> None:
        self.metrics = metrics
        self.hierarchy = hierarchy
        self.runqueues = runqueues
        self.migrate = migrate
        self.config = config if config is not None else HotMigrationConfig()
        #: hot-task migrations per domain level: the hierarchy is walked
        #: bottom-up, so node-level moves dominating top-level moves is
        #: Figure 9's "never across the node boundary" in aggregate.
        self.moves_by_level: dict[str, int] = {}
        #: decision audit hook (an AuditLog), installed by repro.obs.
        self.audit = None

    # -- trigger ---------------------------------------------------------------
    def _single_task(self, cpu_id: int) -> Task | None:
        """The queue's only task — current or momentarily descheduled
        (e.g. denied by an energy container between dispatches)."""
        rq = self.runqueues[cpu_id]
        if rq.nr_running != 1:
            return None
        return next(rq.tasks())

    def should_trigger(self, cpu_id: int) -> bool:
        """Single-task queue about to hit its (package) power limit?"""
        if self._single_task(cpu_id) is None:
            return False
        m = self.metrics
        return (
            m.package_thermal_sum_w(cpu_id)
            > m.package_max_power_w(cpu_id) - self.config.trigger_margin_w
        )

    # -- Figure 5 ---------------------------------------------------------------
    def check(self, cpu_id: int) -> bool:
        """Run the full decision procedure; returns True if migrated."""
        if not self.should_trigger(cpu_id):
            return False
        hot_task = self._single_task(cpu_id)
        assert hot_task is not None
        m = self.metrics
        source_heat = m.package_thermal_sum_w(cpu_id)
        # When auditing, accumulate the walk: one entry per level with
        # the coolest candidate and why it was rejected (or taken).
        walk = [] if self.audit is not None else None
        for domain in self.hierarchy.chain(cpu_id):
            if domain.smt_level:
                continue  # a sibling shares the chip (§4.7)
            candidates = [c for c in domain.span if c != cpu_id]
            if not candidates:
                continue
            dest = min(
                candidates, key=lambda c: (m.package_thermal_sum_w(c), c)
            )
            dest_heat = m.package_thermal_sum_w(dest)
            if source_heat - dest_heat < self.config.min_delta_w:
                if walk is not None:
                    walk.append(self._step(domain, dest, dest_heat,
                                           "not_cool_enough"))
                continue  # coolest CPU at this level not cool enough: ascend
            if not hot_task.allowed_on(dest):
                if walk is not None:
                    walk.append(self._step(domain, dest, dest_heat, "affinity"))
                continue  # affinity mask pins the task away: ascend
            dest_rq = self.runqueues[dest]
            if dest_rq.is_idle:
                self.migrate(hot_task, cpu_id, dest, "hot_task")
                self._note_level(domain)
                if walk is not None:
                    walk.append(self._step(domain, dest, dest_heat, "taken"))
                    self._audit_walk(cpu_id, hot_task, source_heat, walk,
                                     dest=dest, mode="idle")
                return True
            if self._runs_single_cool_task(dest_rq, hot_task) and (
                dest_rq.current is not None and dest_rq.current.allowed_on(cpu_id)
            ):
                cool_task = dest_rq.current
                self.migrate(hot_task, cpu_id, dest, "hot_task")
                self.migrate(cool_task, dest, cpu_id, "exchange")
                self._note_level(domain)
                if walk is not None:
                    walk.append(self._step(domain, dest, dest_heat, "taken"))
                    self._audit_walk(cpu_id, hot_task, source_heat, walk,
                                     dest=dest, mode="exchange",
                                     exchange_pid=cool_task.pid)
                return True
            # Destination busy with unsuitable work: ascend.
            if walk is not None:
                walk.append(self._step(domain, dest, dest_heat, "busy"))
        if walk is not None:
            self._audit_walk(cpu_id, hot_task, source_heat, walk)
        return False

    @staticmethod
    def _step(domain, dest: int, dest_heat_w: float, outcome: str) -> dict:
        return {
            "level": domain.name,
            "coolest_cpu": dest,
            "dest_heat_w": dest_heat_w,
            "outcome": outcome,
        }

    def _audit_walk(
        self,
        cpu_id: int,
        hot_task: Task,
        source_heat_w: float,
        walk: list[dict],
        dest: int = -1,
        mode: str = "none",
        exchange_pid: int = -1,
    ) -> None:
        """Record one triggered Figure-5 walk (taken or exhausted)."""
        detail = {
            "source_heat_w": source_heat_w,
            "min_delta_w": self.config.min_delta_w,
            "mode": mode,
            "walk": walk,
        }
        if exchange_pid != -1:
            detail["exchange_pid"] = exchange_pid
        self.audit.record(
            site="hot_migration",
            cpu=cpu_id,
            pid=hot_task.pid,
            chosen=dest,
            accepted=dest != -1,
            detail=detail,
        )

    def _note_level(self, domain) -> None:
        self.moves_by_level[domain.name] = (
            self.moves_by_level.get(domain.name, 0) + 1
        )

    def _runs_single_cool_task(self, rq: RunQueue, hot_task: Task) -> bool:
        if rq.nr_running != 1 or rq.current is None:
            return False
        return (
            rq.current.profile_power_w
            < hot_task.profile_power_w - self.config.cool_task_margin_w
        )
