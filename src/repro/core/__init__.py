"""The paper's primary contribution: task energy profiles and
energy-aware scheduling.

Builds on the :mod:`repro.cpu` hardware substrate and :mod:`repro.sched`
scheduler infrastructure:

* :mod:`repro.core.ewma` / :mod:`repro.core.profile` — §3.3's
  variable-period exponential average and task energy profiles.
* :mod:`repro.core.metrics` — §4.3's calculation parameters
  (runqueue power, thermal power, maximum power, and their ratios).
* :mod:`repro.core.energy_balance` — §4.4's merged energy+load
  balancing (Figure 4).
* :mod:`repro.core.hot_migration` — §4.5's hot-task migration
  (Figure 5), with the §4.7 SMT adaptations.
* :mod:`repro.core.placement` — §4.6's initial task placement.
* :mod:`repro.core.policy` — the scheduling-policy facades wiring the
  pieces into the scheduler (plus the non-energy-aware baseline).
"""

from repro.core.energy_balance import EnergyBalanceConfig, EnergyBalancer
from repro.core.ewma import ThermalEwma, VariablePeriodEwma
from repro.core.hot_migration import HotMigrationConfig, HotTaskMigrator
from repro.core.metrics import CpuPowerMetrics, MetricsBoard
from repro.core.placement import InitialPlacement, PlacementConfig
from repro.core.policy import (
    BaselinePolicy,
    EnergyAwareConfig,
    EnergyAwarePolicy,
    SchedulingPolicy,
)
from repro.core.profile import EnergyProfile, ProfileConfig

__all__ = [
    "BaselinePolicy",
    "CpuPowerMetrics",
    "EnergyAwareConfig",
    "EnergyAwarePolicy",
    "EnergyBalanceConfig",
    "EnergyBalancer",
    "EnergyProfile",
    "HotMigrationConfig",
    "HotTaskMigrator",
    "InitialPlacement",
    "MetricsBoard",
    "PlacementConfig",
    "ProfileConfig",
    "SchedulingPolicy",
    "ThermalEwma",
    "VariablePeriodEwma",
]
