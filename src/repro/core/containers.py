"""Energy containers: budget-limiting as an orthogonal policy (§2.3).

The paper positions itself against resource-container work (Banga et
al.; Waitz/Weissel's energy containers; Ecosystem): those *limit* power
consumption, while energy-aware scheduling *distributes* it — "different
and, to a large degree, orthogonal aspects of power management, so that
our proposed policy ... could be combined with any policy limiting
overall power consumption."

This module provides that combinable limiter: each capped task owns a
container that refills at its power cap and is charged the estimated
energy the task consumes; a task whose container is empty is skipped by
the dispatcher until the refill catches up.  The long-run effect is an
average-power cap enforced per task, independently of — and provably
composable with — energy balancing and hot-task migration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sched.task import Task


@dataclass(frozen=True, slots=True)
class ContainerConfig:
    """Budget of one energy container.

    Attributes
    ----------
    refill_w:
        Refill rate — the task's long-run average power cap.
    capacity_s:
        Burst window: the container holds at most
        ``refill_w * capacity_s`` joules, so a task can burst at full
        speed for roughly this long before the cap bites.
    """

    refill_w: float
    capacity_s: float = 1.0

    def __post_init__(self) -> None:
        if self.refill_w <= 0:
            raise ValueError("refill rate must be positive")
        if self.capacity_s <= 0:
            raise ValueError("capacity window must be positive")

    @property
    def capacity_j(self) -> float:
        return self.refill_w * self.capacity_s


class EnergyContainer:
    """One task's energy budget."""

    __slots__ = ("config", "_balance_j", "charged_j")

    def __init__(self, config: ContainerConfig) -> None:
        self.config = config
        self._balance_j = config.capacity_j
        self.charged_j = 0.0

    @property
    def balance_j(self) -> float:
        return self._balance_j

    @property
    def is_empty(self) -> bool:
        return self._balance_j <= 0.0

    def refill(self, dt_s: float) -> None:
        """Accrue budget; the balance saturates at the burst capacity."""
        if dt_s < 0:
            raise ValueError("dt must be non-negative")
        self._balance_j = min(
            self.config.capacity_j, self._balance_j + self.config.refill_w * dt_s
        )

    def charge(self, energy_j: float) -> None:
        """Deduct consumed energy; the balance may go briefly negative
        (a tick's worth of overdraft), which extends the skip period."""
        if energy_j < 0:
            raise ValueError("energy must be non-negative")
        self._balance_j -= energy_j
        self.charged_j += energy_j


class ContainerManager:
    """Containers for all capped tasks of one system."""

    def __init__(self) -> None:
        self._by_pid: dict[int, EnergyContainer] = {}

    def assign(self, task: Task, config: ContainerConfig) -> EnergyContainer:
        container = EnergyContainer(config)
        self._by_pid[task.pid] = container
        return container

    def container_of(self, task: Task) -> EnergyContainer | None:
        return self._by_pid.get(task.pid)

    def release(self, task: Task) -> None:
        self._by_pid.pop(task.pid, None)

    def refill_all(self, dt_s: float) -> None:
        for container in self._by_pid.values():
            container.refill(dt_s)

    def charge(self, task: Task, energy_j: float) -> None:
        container = self._by_pid.get(task.pid)
        if container is not None:
            container.charge(energy_j)

    def eligible(self, task: Task) -> bool:
        """May the dispatcher run this task right now?"""
        container = self._by_pid.get(task.pid)
        return container is None or not container.is_empty

    def __len__(self) -> int:
        return len(self._by_pid)
