"""Energy balancing merged with load balancing (paper §4.4, Figure 4).

The algorithm runs on every CPU and only *pulls*: an imbalance that
would require pushing is resolved when the remote CPU runs its own pass.
For every domain level, bottom-up:

**Energy step** (skipped on SMT-level domains, §4.7):

1. find the CPU group with the highest average runqueue power ratio;
2. if that group is not the local one, find the queue with the highest
   runqueue power ratio within it;
3. pull a hot task — but only if the remote queue is *hotter* under the
   dual condition: higher thermal power ratio (slow metric — hysteresis
   against ping-pong) **and** higher runqueue power ratio (fast metric —
   forbids pulling an undue number of tasks);
4. if the pull created a load imbalance, migrate the coolest local task
   back in exchange.

**Load step** (always): vanilla pull from the most loaded group, except
task selection respects energy: pull *hot* tasks when the remote group
is hotter than the local one, *cool* tasks when it is cooler — so load
balancing does not create energy imbalances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.core.metrics import MetricsBoard
from repro.sched.domains import DomainHierarchy
from repro.sched.load_balance import (
    LoadBalanceConfig,
    find_busiest_group,
    find_busiest_queue,
)
from repro.sched.runqueue import RunQueue
from repro.sched.task import Task

#: Migration callback: (task, src_cpu, dst_cpu, reason).
MigrateFn = Callable[[Task, int, int, str], None]


@dataclass(frozen=True, slots=True)
class EnergyBalanceConfig:
    """Tunables of the merged balancer.

    Attributes
    ----------
    thermal_margin_ratio:
        The remote thermal power ratio must exceed the local one by this
        margin before the remote queue counts as hotter.
    rq_margin_ratio:
        Same margin for the (fast) runqueue power ratio.
    min_gain_ratio:
        A pull must shrink the ratio difference by at least this much,
        otherwise it is skipped (prevents oscillating micro-moves).
    max_energy_moves:
        Hot tasks pulled per domain level per pass.
    load:
        Settings of the embedded load-balancing step.
    use_thermal_condition / use_rq_condition:
        Ablation switches for the dual hotter-than condition.  §4.3
        motivates requiring *both* metrics: dropping the (slow) thermal
        condition yields a power-only balancer that ping-pongs; dropping
        the (fast) runqueue condition yields a temperature-only balancer
        that over-balances.
    """

    thermal_margin_ratio: float = 0.07
    rq_margin_ratio: float = 0.07
    min_gain_ratio: float = 0.05
    max_energy_moves: int = 1
    load: LoadBalanceConfig = LoadBalanceConfig()
    use_thermal_condition: bool = True
    use_rq_condition: bool = True

    def __post_init__(self) -> None:
        for name in ("thermal_margin_ratio", "rq_margin_ratio", "min_gain_ratio"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.max_energy_moves < 1:
            raise ValueError("max_energy_moves must be >= 1")
        if not (self.use_thermal_condition or self.use_rq_condition):
            raise ValueError("at least one hotter-than condition must be enabled")


class EnergyBalancer:
    """Per-CPU merged energy + load balancing passes."""

    def __init__(
        self,
        metrics: MetricsBoard,
        hierarchy: DomainHierarchy,
        runqueues: Mapping[int, RunQueue],
        migrate: MigrateFn,
        config: EnergyBalanceConfig | None = None,
    ) -> None:
        self.metrics = metrics
        self.hierarchy = hierarchy
        self.runqueues = runqueues
        self.migrate = migrate
        self.config = config if config is not None else EnergyBalanceConfig()
        #: tasks moved per domain level — the paper's claim that
        #: imbalances are resolved "within the lowest domain possible"
        #: becomes measurable here.
        self.moves_by_level: dict[str, int] = {}
        #: decision audit hook (an AuditLog), installed by repro.obs.
        self.audit = None

    def _count_level(self, domain, n: int) -> None:
        if n:
            self.moves_by_level[domain.name] = (
                self.moves_by_level.get(domain.name, 0) + n
            )

    # -- entry point ----------------------------------------------------------
    def balance(self, cpu_id: int) -> int:
        """One full pass for ``cpu_id`` (Figure 4); returns tasks moved."""
        moved = 0
        for domain in self.hierarchy.chain(cpu_id):
            if not domain.smt_level:
                n = self._energy_step(cpu_id, domain)
                self._count_level(domain, n)
                moved += n
            n = self._load_step(cpu_id, domain)
            self._count_level(domain, n)
            moved += n
        return moved

    # -- energy step ------------------------------------------------------------
    def _energy_step(self, cpu_id: int, domain) -> int:
        metrics = self.metrics
        local_group = domain.local_group(cpu_id)
        if self.config.use_rq_condition:
            group_key = metrics.group_avg_runqueue_ratio
            queue_key = metrics.runqueue_power_ratio
        else:
            # Temperature-only ablation: the search itself is driven by
            # the slow metric too.
            group_key = metrics.group_avg_thermal_ratio
            queue_key = metrics.thermal_power_ratio
        # max() spelled out (first maximal element wins, as max does) —
        # this search runs for every CPU on every balance pass.
        hottest = None
        hottest_ratio = 0.0
        for group in domain.groups:
            ratio = group_key(group.cpus)
            if hottest is None or ratio > hottest_ratio:
                hottest, hottest_ratio = group, ratio
        if hottest is local_group:
            return 0
        remote_rq = None
        remote_ratio = 0.0
        for c in hottest.cpus:
            ratio = queue_key(c)
            if remote_rq is None or ratio > remote_ratio:
                remote_rq, remote_ratio = self.runqueues[c], ratio
        local_rq = self.runqueues[cpu_id]
        moved = 0
        for _ in range(self.config.max_energy_moves):
            # Hoisted form of "break unless hotter, break unless a task
            # qualifies" so the audit hook can observe both outcomes;
            # control flow (and RNG/state, both calls are pure reads) is
            # unchanged.
            hotter = self._remote_is_hotter(remote_rq.cpu_id, cpu_id)
            task = self._pick_hot_task(remote_rq, local_rq) if hotter else None
            if self.audit is not None:
                self._audit_pull(cpu_id, remote_rq.cpu_id, domain, hotter, task)
            if task is None:
                break
            self.migrate(task, remote_rq.cpu_id, cpu_id, "energy_balance")
            moved += 1
            moved += self._exchange_if_imbalanced(local_rq, remote_rq, avoid=task)
        return moved

    def _audit_pull(self, cpu_id, remote_cpu, domain, hotter, task) -> None:
        """Record one §4.4 pull evaluation: the dual-hysteresis ratios
        compared, their margins, and whether a task qualified."""
        m = self.metrics
        self.audit.record(
            site="energy_balance",
            cpu=cpu_id,
            pid=task.pid if task is not None else -1,
            chosen=cpu_id if task is not None else -1,
            accepted=task is not None,
            detail={
                "domain": domain.name,
                "remote_cpu": remote_cpu,
                "remote_is_hotter": hotter,
                "local_thermal_ratio": m.thermal_power_ratio(cpu_id),
                "remote_thermal_ratio": m.thermal_power_ratio(remote_cpu),
                "local_rq_ratio": m.runqueue_power_ratio(cpu_id),
                "remote_rq_ratio": m.runqueue_power_ratio(remote_cpu),
                "thermal_margin_ratio": self.config.thermal_margin_ratio,
                "rq_margin_ratio": self.config.rq_margin_ratio,
            },
        )

    def _remote_is_hotter(self, remote_cpu: int, local_cpu: int) -> bool:
        """The §4.4 dual condition with margins (ablatable)."""
        m = self.metrics
        thermal_ok = (
            m.thermal_power_ratio(remote_cpu)
            > m.thermal_power_ratio(local_cpu) + self.config.thermal_margin_ratio
        ) or not self.config.use_thermal_condition
        rq_ok = (
            m.runqueue_power_ratio(remote_cpu)
            > m.runqueue_power_ratio(local_cpu) + self.config.rq_margin_ratio
        ) or not self.config.use_rq_condition
        return thermal_ok and rq_ok

    def _pick_hot_task(self, remote_rq: RunQueue, local_rq: RunQueue) -> Task | None:
        """Queued remote task whose move best equalises the two ratios."""
        m = self.metrics
        remote_cpu, local_cpu = remote_rq.cpu_id, local_rq.cpu_id
        remote_max = m.max_power_w(remote_cpu)
        local_max = m.max_power_w(local_cpu)
        remote_sum = m.runqueue_power_sum_w(remote_cpu)
        local_sum = m.runqueue_power_sum_w(local_cpu)
        n_remote, n_local = remote_rq.nr_running, local_rq.nr_running
        if n_remote < 2:
            return None  # never empty a queue via energy balancing
        if not self.config.use_rq_condition:
            # Temperature-only ablation: grab the hottest queued task,
            # with no equalisation objective — the over-balancing
            # behaviour §4.3 warns about.
            queued = [t for t in remote_rq.queued_tasks() if t.allowed_on(local_cpu)]
            return max(queued, key=lambda t: t.profile_power_w) if queued else None
        before = abs(remote_sum / n_remote / remote_max - local_sum / max(1, n_local) / local_max)
        best_task: Task | None = None
        best_after = before - self.config.min_gain_ratio
        for task in remote_rq.queued_tasks():
            if not task.allowed_on(local_cpu):
                continue
            p = task.profile_power_w
            new_remote = (remote_sum - p) / (n_remote - 1) / remote_max
            new_local = (local_sum + p) / (n_local + 1) / local_max
            after = abs(new_remote - new_local)
            if after < best_after:
                best_after = after
                best_task = task
        return best_task

    def _exchange_if_imbalanced(
        self, local_rq: RunQueue, remote_rq: RunQueue, avoid: Task
    ) -> int:
        """Migrate the coolest local task back if the pull unbalanced load."""
        if local_rq.nr_running - remote_rq.nr_running < 2:
            return 0
        candidates = [
            t for t in local_rq.queued_tasks()
            if t is not avoid and t.allowed_on(remote_rq.cpu_id)
        ]
        if not candidates:
            return 0
        coolest = min(candidates, key=lambda t: t.profile_power_w)
        self.migrate(coolest, local_rq.cpu_id, remote_rq.cpu_id, "exchange")
        return 1

    # -- load step ----------------------------------------------------------------
    def _load_step(self, cpu_id: int, domain) -> int:
        config = self.config.load
        local_rq = self.runqueues[cpu_id]
        busiest_group = find_busiest_group(domain, cpu_id, self.runqueues)
        if busiest_group is None:
            return 0
        busiest_rq = find_busiest_queue(busiest_group, self.runqueues)
        diff = busiest_rq.nr_running - local_rq.nr_running
        if diff < config.min_imbalance:
            return 0
        n_to_move = min(diff // 2, config.max_moves_per_pass)
        tasks = self._select_for_load(busiest_rq, cpu_id, n_to_move, domain)
        for task in tasks:
            self.migrate(task, busiest_rq.cpu_id, cpu_id, "load_balance")
        return len(tasks)

    def _select_for_load(
        self, src_rq: RunQueue, dst_cpu: int, n: int, domain
    ) -> list[Task]:
        """Hot tasks if the remote CPU is hotter, cool tasks if cooler.

        Between SMT siblings the energy restrictions do not apply (§4.7):
        siblings share one package, so any task will do.
        """
        queued = [t for t in src_rq.queued_tasks() if t.allowed_on(dst_cpu)]
        if not queued or n <= 0:
            return []
        if domain.smt_level:
            return queued[-n:]
        m = self.metrics
        remote_hotter = m.thermal_power_ratio(src_rq.cpu_id) > m.thermal_power_ratio(dst_cpu)
        ordered = sorted(
            queued, key=lambda t: t.profile_power_w, reverse=remote_hotter
        )
        return ordered[:n]
