"""Scheduling-policy facades.

The simulator kernel is policy-agnostic; it calls the hooks below at the
three places the paper modifies Linux (§5):

1. the periodic balancer (``periodic_balance``),
2. active hot-task migration checks (``check_active_migration``),
3. fork/exec placement of new tasks (``place_new_task``).

:class:`BaselinePolicy` is the unmodified scheduler — vanilla load
balancing, least-loaded placement, no active migration.
:class:`EnergyAwarePolicy` is the paper's scheduler; each of its three
components can be switched off individually for ablation studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Mapping, Protocol

from repro.core.energy_balance import EnergyBalanceConfig, EnergyBalancer
from repro.core.hot_migration import HotMigrationConfig, HotTaskMigrator
from repro.core.metrics import MetricsBoard
from repro.core.placement import InitialPlacement, PlacementConfig
from repro.core.policyspec import (  # noqa: F401  (re-exported API surface)
    POLICY_REGISTRY,
    PolicyDefinition,
    PolicySpec,
    canonical_policy_value,
    definition_by_name,
    policy_names,
)
from repro.core.profile import ProfileConfig
from repro.sched.domains import DomainHierarchy
from repro.sched.load_balance import LoadBalanceConfig, load_balance_pass
from repro.sched.runqueue import RunQueue
from repro.sched.task import Task

MigrateFn = Callable[[Task, int, int, str], None]


class Policy(str, Enum):
    """The two scheduler configurations the paper compares (§6).

    A ``str`` subclass so existing call sites, scenario files, and
    exported results that use the plain strings ``"energy"`` and
    ``"baseline"`` keep working unchanged.  This enum predates the
    parameterized :class:`repro.core.policyspec.PolicySpec` registry and
    survives as a compatibility shim: members coerce transparently via
    :meth:`PolicySpec.coerce`, which is now where the public API turns
    user input into a policy.
    """

    #: the paper's energy-aware scheduler (balancing + hot migration +
    #: energy-aware placement)
    ENERGY = "energy"
    #: unmodified Linux behaviour: vanilla load balancing, least-loaded
    #: placement, no active migration
    BASELINE = "baseline"

    @classmethod
    def coerce(cls, value: "Policy | str") -> "Policy":
        """Normalise a policy argument, rejecting unknown names.

        Accepts a member or its string value (case-insensitive for
        strings, since scenario files are hand-written).
        """
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            try:
                return cls(value.lower())
            except ValueError:
                pass
        valid = ", ".join(repr(m.value) for m in cls)
        raise ValueError(f"unknown policy {value!r}; expected one of {valid}")


class SchedulingPolicy(Protocol):
    """The hook surface the kernel exposes to a policy."""

    def place_new_task(self, task: Task) -> int:
        """CPU for a task entering the system via fork/exec."""
        ...

    def periodic_balance(self, cpu_id: int) -> int:
        """Periodic balancing pass for a CPU; returns tasks moved."""
        ...

    def check_active_migration(self, cpu_id: int) -> bool:
        """Active (hot-task) migration opportunity check."""
        ...

    def initial_profile_power(self, task: Task) -> float:
        """Power to prime a new task's energy profile with."""
        ...

    def on_first_timeslice(self, task: Task, power_w: float) -> None:
        """A task completed its first timeslice at ``power_w``."""
        ...


@dataclass(frozen=True, slots=True)
class EnergyAwareConfig:
    """Complete configuration of the paper's scheduler."""

    profile: ProfileConfig = ProfileConfig()
    balance: EnergyBalanceConfig = EnergyBalanceConfig()
    hot: HotMigrationConfig = HotMigrationConfig()
    placement: PlacementConfig = PlacementConfig()
    enable_energy_balance: bool = True
    enable_hot_migration: bool = True
    enable_placement: bool = True


class BaselinePolicy:
    """Vanilla Linux behaviour: load balancing and least-loaded placement."""

    def __init__(
        self,
        hierarchy: DomainHierarchy,
        runqueues: Mapping[int, RunQueue],
        migrate: MigrateFn,
        load_config: LoadBalanceConfig | None = None,
        profile_config: ProfileConfig | None = None,
    ) -> None:
        self.hierarchy = hierarchy
        self.runqueues = runqueues
        self._migrate = migrate
        self.load_config = load_config if load_config is not None else LoadBalanceConfig()
        self.profile_config = (
            profile_config if profile_config is not None else ProfileConfig()
        )

    def place_new_task(self, task: Task) -> int:
        return min(
            (rq for rq in self.runqueues.values() if task.allowed_on(rq.cpu_id)),
            key=lambda rq: (rq.nr_running, rq.cpu_id),
        ).cpu_id

    def periodic_balance(self, cpu_id: int) -> int:
        return load_balance_pass(
            cpu_id,
            self.hierarchy,
            self.runqueues,
            migrate=lambda task, src, dst: self._migrate(task, src, dst, "load_balance"),
            config=self.load_config,
        )

    def check_active_migration(self, cpu_id: int) -> bool:
        return False

    def initial_profile_power(self, task: Task) -> float:
        # The baseline keeps profiles too (they cost nothing and feed the
        # evaluation's instrumentation) but never uses them for decisions.
        return self.profile_config.default_power_w

    def on_first_timeslice(self, task: Task, power_w: float) -> None:
        pass


class EnergyAwarePolicy:
    """The paper's scheduler: merged balancing + hot migration + placement."""

    def __init__(
        self,
        metrics: MetricsBoard,
        hierarchy: DomainHierarchy,
        runqueues: Mapping[int, RunQueue],
        migrate: MigrateFn,
        config: EnergyAwareConfig | None = None,
    ) -> None:
        self.config = config if config is not None else EnergyAwareConfig()
        self.metrics = metrics
        self.hierarchy = hierarchy
        self.runqueues = runqueues
        self._migrate = migrate
        self.balancer = EnergyBalancer(
            metrics, hierarchy, runqueues, migrate, self.config.balance
        )
        self.hot_migrator = HotTaskMigrator(
            metrics, hierarchy, runqueues, migrate, self.config.hot
        )
        self.placement = InitialPlacement(metrics, runqueues, self.config.placement)
        self._fallback = BaselinePolicy(
            hierarchy,
            runqueues,
            migrate,
            load_config=self.config.balance.load,
            profile_config=self.config.profile,
        )

    def place_new_task(self, task: Task) -> int:
        if not self.config.enable_placement:
            return self._fallback.place_new_task(task)
        return self.placement.place(task)

    def periodic_balance(self, cpu_id: int) -> int:
        if not self.config.enable_energy_balance:
            return self._fallback.periodic_balance(cpu_id)
        return self.balancer.balance(cpu_id)

    def check_active_migration(self, cpu_id: int) -> bool:
        if not self.config.enable_hot_migration:
            return False
        return self.hot_migrator.check(cpu_id)

    def initial_profile_power(self, task: Task) -> float:
        return self.placement.initial_power_for(task.inode)

    def on_first_timeslice(self, task: Task, power_w: float) -> None:
        self.placement.record_first_timeslice(task, power_w)
