"""Calculation parameters for energy-aware scheduling (paper §4.3).

Per logical CPU:

* **runqueue power** — the average of the energy profiles of all tasks
  in the CPU's runqueue.  Reacts *immediately* to migrations, which is
  what prevents pulling an undue number of tasks.
* **thermal power** — an exponential average of the CPU's estimated
  power whose weight is calibrated to the thermal model's time constant,
  so it tracks temperature while retaining the dimension of a power.
  Reacts *slowly*, providing the hysteresis against ping-pong effects.
* **maximum power** — the highest sustainable power without overheating
  (for a temperature limit ``T``: ``(T - T_ambient) / R``).  Under SMT
  the package's maximum power is divided among its logical CPUs (§4.7).
* the two **ratios** — each power divided by maximum power, so CPUs
  with different cooling are compared on equal footing.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.ewma import ThermalEwma
from repro.cpu.topology import Topology
from repro.sched.runqueue import RunQueue


class CpuPowerMetrics:
    """Power state of one logical CPU."""

    __slots__ = ("cpu_id", "thermal", "max_power_w")

    def __init__(self, cpu_id: int, tau_s: float, max_power_w: float, initial_w: float) -> None:
        if max_power_w <= 0:
            raise ValueError("maximum power must be positive")
        self.cpu_id = cpu_id
        self.thermal = ThermalEwma(tau_s=tau_s, initial_w=initial_w)
        self.max_power_w = max_power_w

    @property
    def thermal_power_w(self) -> float:
        return self.thermal.value_w

    @property
    def thermal_power_ratio(self) -> float:
        return self.thermal.value_w / self.max_power_w


class MetricsBoard:
    """All per-CPU metrics plus the group aggregates the balancers use."""

    def __init__(
        self,
        topology: Topology,
        runqueues: Mapping[int, RunQueue],
        tau_s: float,
        max_power_w: float | Mapping[int, float],
        initial_thermal_w: float = 0.0,
    ) -> None:
        self.topology = topology
        self.runqueues = runqueues
        self._package_cpus: dict[int, tuple[int, ...]] = {
            pkg: tuple(topology.cpus_of_package(pkg))
            for pkg in range(topology.n_packages)
        }
        self._cpus: dict[int, CpuPowerMetrics] = {}
        for info in topology.cpus:
            limit = (
                max_power_w[info.cpu_id]
                if isinstance(max_power_w, Mapping)
                else max_power_w
            )
            self._cpus[info.cpu_id] = CpuPowerMetrics(
                info.cpu_id, tau_s=tau_s, max_power_w=limit, initial_w=initial_thermal_w
            )
            # Mirror the limit onto the runqueue, as the paper stores it
            # in the extended runqueue struct (§5).
            runqueues[info.cpu_id].max_power_w = limit

    # -- per-CPU ------------------------------------------------------------
    def cpu(self, cpu_id: int) -> CpuPowerMetrics:
        return self._cpus[cpu_id]

    def update_thermal(self, cpu_id: int, power_w: float, dt_s: float) -> None:
        """Fold one tick of estimated CPU power into thermal power."""
        self._cpus[cpu_id].thermal.update(power_w, dt_s)

    def thermal_power_w(self, cpu_id: int) -> float:
        return self._cpus[cpu_id].thermal_power_w

    def thermal_power_ratio(self, cpu_id: int) -> float:
        return self._cpus[cpu_id].thermal_power_ratio

    def max_power_w(self, cpu_id: int) -> float:
        return self._cpus[cpu_id].max_power_w

    def runqueue_power_w(self, cpu_id: int) -> float:
        """Average energy-profile power over the runqueue (0 if idle)."""
        rq = self.runqueues[cpu_id]
        n = rq.nr_running
        if n == 0:
            return 0.0
        return sum(t.profile_power_w for t in rq.tasks()) / n

    def runqueue_power_ratio(self, cpu_id: int) -> float:
        return self.runqueue_power_w(cpu_id) / self._cpus[cpu_id].max_power_w

    def would_be_ratio(self, cpu_id: int, extra_task_power_w: float) -> float:
        """Runqueue power ratio if a task with the given profile joined."""
        rq = self.runqueues[cpu_id]
        total = sum(t.profile_power_w for t in rq.tasks()) + extra_task_power_w
        return total / (rq.nr_running + 1) / self._cpus[cpu_id].max_power_w

    # -- SMT / CMP (§4.7, §7) ---------------------------------------------------
    def package_thermal_sum_w(self, cpu_id: int) -> float:
        """Sum of thermal powers of all logical CPUs on the same package.

        Only physical processors can overheat; hot-task migration
        triggers on this sum against the package's full budget.  On the
        paper's machine a package is one SMT core; on the §7 CMP
        extension it covers every thread of every core on the chip.
        """
        package = self.topology.package_of(cpu_id)
        return sum(
            self._cpus[c].thermal_power_w for c in self._package_cpus[package]
        )

    def package_max_power_w(self, cpu_id: int) -> float:
        """Full package budget: sum of the per-logical-CPU shares."""
        package = self.topology.package_of(cpu_id)
        return sum(
            self._cpus[c].max_power_w for c in self._package_cpus[package]
        )

    # -- group aggregates -----------------------------------------------------
    def group_avg_runqueue_ratio(self, cpus: Iterable[int]) -> float:
        cpus = list(cpus)
        return sum(self.runqueue_power_ratio(c) for c in cpus) / len(cpus)

    def group_avg_thermal_ratio(self, cpus: Iterable[int]) -> float:
        cpus = list(cpus)
        return sum(self.thermal_power_ratio(c) for c in cpus) / len(cpus)

    def system_avg_runqueue_ratio(self) -> float:
        return self.group_avg_runqueue_ratio(self._cpus.keys())
