"""Calculation parameters for energy-aware scheduling (paper §4.3).

Per logical CPU:

* **runqueue power** — the average of the energy profiles of all tasks
  in the CPU's runqueue.  Reacts *immediately* to migrations, which is
  what prevents pulling an undue number of tasks.
* **thermal power** — an exponential average of the CPU's estimated
  power whose weight is calibrated to the thermal model's time constant,
  so it tracks temperature while retaining the dimension of a power.
  Reacts *slowly*, providing the hysteresis against ping-pong effects.
* **maximum power** — the highest sustainable power without overheating
  (for a temperature limit ``T``: ``(T - T_ambient) / R``).  Under SMT
  the package's maximum power is divided among its logical CPUs (§4.7).
* the two **ratios** — each power divided by maximum power, so CPUs
  with different cooling are compared on equal footing.

Layout
------
:class:`MetricsBoard` stores all per-CPU state as parallel
struct-of-arrays columns (``thermal_w``, ``tau_s``, ``max_power_w``) —
the in-memory analogue of the paper's extended ``runqueue`` struct
fields laid side by side.  The batched tick path advances the whole
thermal column with one :func:`repro.core.ewma.ewma_update_batch` call
and serves runqueue-power and package-sum queries from epoch-validated
caches; the scalar reference path performs the pre-batching per-CPU
updates and recomputations.  Both produce bit-identical values — the
fast accessors only memoise, never approximate.
"""

from __future__ import annotations

import math

from typing import Callable, Iterable, Mapping

from repro.core.ewma import ewma_update_batch, thermal_alpha
from repro.cpu.topology import Topology
from repro.sched.runqueue import RunQueue


class ThermalColumnView:
    """Scalar view of one CPU's slot in the thermal EWMA column.

    Presents the :class:`repro.core.ewma.ThermalEwma` interface
    (``value_w``/``prime``/``update``/``tau_s``) over the board's
    struct-of-arrays storage, so per-CPU call sites and tests read
    naturally while the data stays columnar.
    """

    __slots__ = ("_values", "_taus", "_index", "_on_mutate")

    def __init__(
        self,
        values: list[float],
        taus: list[float],
        index: int,
        on_mutate: Callable[[bool], None] | None = None,
    ) -> None:
        self._values = values
        self._taus = taus
        self._index = index
        self._on_mutate = on_mutate

    @property
    def value_w(self) -> float:
        return self._values[self._index]

    @property
    def tau_s(self) -> float:
        return self._taus[self._index]

    @tau_s.setter
    def tau_s(self, tau_s: float) -> None:
        if tau_s <= 0:
            raise ValueError("time constant must be positive")
        self._taus[self._index] = float(tau_s)
        if self._on_mutate is not None:
            self._on_mutate(True)

    def prime(self, value_w: float) -> None:
        self._values[self._index] = float(value_w)
        if self._on_mutate is not None:
            self._on_mutate(False)

    def update(self, power_w: float, dt_s: float) -> float:
        """One scalar EWMA step (the pre-batching reference arithmetic)."""
        if dt_s < 0:
            raise ValueError("dt must be non-negative")
        alpha = 1.0 - math.exp(-dt_s / self._taus[self._index])
        self._values[self._index] += alpha * (power_w - self._values[self._index])
        if self._on_mutate is not None:
            self._on_mutate(False)
        return self._values[self._index]

    def __repr__(self) -> str:
        return (
            f"ThermalColumnView(value={self.value_w:.2f}W, tau={self.tau_s}s)"
        )


class CpuPowerMetrics:
    """Power state of one logical CPU (a view over the board's columns).

    Can also be constructed standalone (it then owns single-element
    columns), which unit tests and ad-hoc harnesses use.
    """

    __slots__ = ("cpu_id", "thermal", "_max_col", "_index", "_on_mutate")

    def __init__(
        self,
        cpu_id: int,
        tau_s: float,
        max_power_w: float,
        initial_w: float,
    ) -> None:
        if max_power_w <= 0:
            raise ValueError("maximum power must be positive")
        if tau_s <= 0:
            raise ValueError("time constant must be positive")
        self.cpu_id = cpu_id
        self.thermal = ThermalColumnView(
            [float(initial_w)], [float(tau_s)], 0, None
        )
        self._max_col = [float(max_power_w)]
        self._index = 0
        self._on_mutate = None

    @classmethod
    def _view(
        cls,
        cpu_id: int,
        thermal: ThermalColumnView,
        max_col: list[float],
        index: int,
        on_mutate: Callable[[bool], None],
    ) -> "CpuPowerMetrics":
        view = cls.__new__(cls)
        view.cpu_id = cpu_id
        view.thermal = thermal
        view._max_col = max_col
        view._index = index
        view._on_mutate = on_mutate
        return view

    @property
    def max_power_w(self) -> float:
        return self._max_col[self._index]

    @max_power_w.setter
    def max_power_w(self, value: float) -> None:
        if value <= 0:
            raise ValueError("maximum power must be positive")
        self._max_col[self._index] = float(value)
        if self._on_mutate is not None:
            self._on_mutate(True)

    @property
    def thermal_power_w(self) -> float:
        return self.thermal.value_w

    @property
    def thermal_power_ratio(self) -> float:
        return self.thermal.value_w / self._max_col[self._index]


class MetricsBoard:
    """All per-CPU metrics plus the group aggregates the balancers use.

    Parameters
    ----------
    tau_s:
        Thermal-EWMA time constant — one float for a homogeneous
        machine or a per-CPU mapping for heterogeneous cooling.
    fast:
        Enable the memoised accessors used by the batched tick path
        (version-validated runqueue-power sums, epoch-validated package
        thermal sums).  Values are bit-identical either way; the scalar
        reference path keeps ``fast=False`` so its per-query cost stays
        representative of the pre-batching implementation.
    """

    def __init__(
        self,
        topology: Topology,
        runqueues: Mapping[int, RunQueue],
        tau_s: float | Mapping[int, float],
        max_power_w: float | Mapping[int, float],
        initial_thermal_w: float = 0.0,
        fast: bool = False,
    ) -> None:
        self.topology = topology
        self.runqueues = runqueues
        self.fast = bool(fast)
        self._package_cpus: dict[int, tuple[int, ...]] = {
            pkg: tuple(topology.cpus_of_package(pkg))
            for pkg in range(topology.n_packages)
        }
        n = len(topology)
        # -- struct-of-arrays columns ---------------------------------------
        self.thermal_w: list[float] = [float(initial_thermal_w)] * n
        self.tau_s: list[float] = []
        self.max_power: list[float] = []
        for info in topology.cpus:
            tau = (
                tau_s[info.cpu_id] if isinstance(tau_s, Mapping) else tau_s
            )
            if tau <= 0:
                raise ValueError("time constant must be positive")
            limit = (
                max_power_w[info.cpu_id]
                if isinstance(max_power_w, Mapping)
                else max_power_w
            )
            if limit <= 0:
                raise ValueError("maximum power must be positive")
            self.tau_s.append(float(tau))
            self.max_power.append(float(limit))
            # Mirror the limit onto the runqueue, as the paper stores it
            # in the extended runqueue struct (§5).
            runqueues[info.cpu_id].max_power_w = float(limit)
        # -- memoisation state (fast mode) -----------------------------------
        #: bumped on every thermal-column mutation; package-sum cache key.
        self.thermal_epoch = 0
        self._alpha_dt: float | None = None
        self._alphas: list[float] = []
        self._rq_sum: list[float] = [0.0] * n
        self._rq_sum_version: list[int] = [-1] * n
        self._rq_ratio: list[float] = [0.0] * n
        self._rq_ratio_version: list[int] = [-1] * n
        self._pkg_sum: dict[int, tuple[int, float]] = {}
        self._pkg_max: dict[int, float] = {}
        self._views: list[CpuPowerMetrics] = [
            CpuPowerMetrics._view(
                info.cpu_id,
                ThermalColumnView(
                    self.thermal_w, self.tau_s, info.cpu_id, self._note_mutation
                ),
                self.max_power,
                info.cpu_id,
                self._note_mutation,
            )
            for info in topology.cpus
        ]

    def _note_mutation(self, structural: bool) -> None:
        """A thermal value (or, if ``structural``, a tau/limit) changed."""
        self.thermal_epoch += 1
        if structural:
            self._alpha_dt = None
            self._pkg_max.clear()
            for i in range(len(self._rq_ratio_version)):
                self._rq_ratio_version[i] = -1

    # -- per-CPU ------------------------------------------------------------
    def cpu(self, cpu_id: int) -> CpuPowerMetrics:
        return self._views[cpu_id]

    def update_thermal(self, cpu_id: int, power_w: float, dt_s: float) -> None:
        """Fold one tick of estimated CPU power into thermal power.

        Scalar reference form: per-CPU call, per-call ``exp``.
        """
        if dt_s < 0:
            raise ValueError("dt must be non-negative")
        alpha = 1.0 - math.exp(-dt_s / self.tau_s[cpu_id])
        self.thermal_w[cpu_id] += alpha * (power_w - self.thermal_w[cpu_id])
        self.thermal_epoch += 1

    def update_thermal_batch(self, powers_w: list[float], dt_s: float) -> None:
        """Advance every CPU's thermal power in one batched pass.

        Bit-identical to ``n`` :meth:`update_thermal` calls; the blend
        weights are memoised per (tau, dt) and the column is updated by
        the :mod:`repro.core.ewma` kernel.
        """
        if self._alpha_dt != dt_s:
            self._alphas = [thermal_alpha(tau, dt_s) for tau in self.tau_s]
            self._alpha_dt = dt_s
        ewma_update_batch(self.thermal_w, powers_w, self._alphas)
        self.thermal_epoch += 1

    def thermal_power_w(self, cpu_id: int) -> float:
        return self.thermal_w[cpu_id]

    def thermal_power_ratio(self, cpu_id: int) -> float:
        return self.thermal_w[cpu_id] / self.max_power[cpu_id]

    def max_power_w(self, cpu_id: int) -> float:
        return self.max_power[cpu_id]

    def runqueue_power_sum_w(self, cpu_id: int) -> float:
        """Sum of the energy-profile powers of a CPU's runnable tasks.

        In fast mode the sum is memoised against the runqueue's version
        counter (bumped on enqueue/remove/profile update), so balancer
        passes that query the same queue repeatedly pay for one
        traversal; recomputation performs the identical left-to-right
        summation, so cached and fresh values are bit-identical.
        """
        rq = self.runqueues[cpu_id]
        if self.fast:
            version = rq.version
            if self._rq_sum_version[cpu_id] == version:
                return self._rq_sum[cpu_id]
            total = sum(t.profile_power_w for t in rq.tasks())
            self._rq_sum[cpu_id] = total
            self._rq_sum_version[cpu_id] = version
            return total
        return sum(t.profile_power_w for t in rq.tasks())

    def runqueue_power_w(self, cpu_id: int) -> float:
        """Average energy-profile power over the runqueue (0 if idle)."""
        rq = self.runqueues[cpu_id]
        n = rq.nr
        if n == 0:
            return 0.0
        return self.runqueue_power_sum_w(cpu_id) / n

    def runqueue_power_ratio(self, cpu_id: int) -> float:
        if self.fast:
            # The balancers query the same ratios many times between
            # queue changes; memoise the finished ratio against the
            # queue version (a structural mutation of tau/limit resets
            # the versions).
            version = self.runqueues[cpu_id].version
            if self._rq_ratio_version[cpu_id] == version:
                return self._rq_ratio[cpu_id]
            ratio = self.runqueue_power_w(cpu_id) / self.max_power[cpu_id]
            self._rq_ratio[cpu_id] = ratio
            self._rq_ratio_version[cpu_id] = version
            return ratio
        return self.runqueue_power_w(cpu_id) / self.max_power[cpu_id]

    def would_be_ratio(self, cpu_id: int, extra_task_power_w: float) -> float:
        """Runqueue power ratio if a task with the given profile joined."""
        rq = self.runqueues[cpu_id]
        total = self.runqueue_power_sum_w(cpu_id) + extra_task_power_w
        return total / (rq.nr + 1) / self.max_power[cpu_id]

    # -- SMT / CMP (§4.7, §7) ---------------------------------------------------
    def package_thermal_sum_w(self, cpu_id: int) -> float:
        """Sum of thermal powers of all logical CPUs on the same package.

        Only physical processors can overheat; hot-task migration
        triggers on this sum against the package's full budget.  On the
        paper's machine a package is one SMT core; on the §7 CMP
        extension it covers every thread of every core on the chip.
        In fast mode the sum is memoised per package against the
        thermal column's epoch (it changes once per tick).
        """
        package = self.topology.package_of(cpu_id)
        if self.fast:
            cached = self._pkg_sum.get(package)
            if cached is not None and cached[0] == self.thermal_epoch:
                return cached[1]
            total = sum(self.thermal_w[c] for c in self._package_cpus[package])
            self._pkg_sum[package] = (self.thermal_epoch, total)
            return total
        return sum(self.thermal_w[c] for c in self._package_cpus[package])

    def package_max_power_w(self, cpu_id: int) -> float:
        """Full package budget: sum of the per-logical-CPU shares."""
        package = self.topology.package_of(cpu_id)
        if self.fast:
            cached = self._pkg_max.get(package)
            if cached is not None:
                return cached
            total = sum(self.max_power[c] for c in self._package_cpus[package])
            self._pkg_max[package] = total
            return total
        return sum(self.max_power[c] for c in self._package_cpus[package])

    # -- group aggregates -----------------------------------------------------
    def group_avg_runqueue_ratio(self, cpus: Iterable[int]) -> float:
        # The balancers pass CpuGroup.cpus tuples; only materialise
        # other iterables.
        if type(cpus) is not tuple and type(cpus) is not list:
            cpus = list(cpus)
        if self.fast:
            # Same left-to-right accumulation as the scalar branch,
            # reading the version-validated ratio cache directly.
            versions = self._rq_ratio_version
            ratios = self._rq_ratio
            runqueues = self.runqueues
            total = 0.0
            for c in cpus:
                if versions[c] == runqueues[c].version:
                    total += ratios[c]
                else:
                    total += self.runqueue_power_ratio(c)
            return total / len(cpus)
        return sum(self.runqueue_power_ratio(c) for c in cpus) / len(cpus)

    def group_avg_thermal_ratio(self, cpus: Iterable[int]) -> float:
        cpus = list(cpus)
        return sum(self.thermal_power_ratio(c) for c in cpus) / len(cpus)

    def system_avg_runqueue_ratio(self) -> float:
        return self.group_avg_runqueue_ratio(range(len(self.thermal_w)))


class CpuStateBlock:
    """The simulator's struct-of-arrays per-tick state (§5's runqueue
    fields, laid out as parallel columns).

    Groups every column the batched tick path touches: the board's
    scheduler-visible metrics (runqueue power, thermal power, maximum
    power), the execution step's per-CPU scratch (running flags,
    estimated and dynamic power, frequency scale), the throttle
    controller's state column, and the per-package temperatures.  The
    lists are *shared*, not copied — :class:`MetricsBoard`, the
    :class:`repro.cpu.throttle.ThrottleController`, and
    :class:`repro.system.System` all index into the same storage, so
    the block is a window onto live state, not a snapshot.
    """

    __slots__ = (
        "thermal_w",
        "max_power_w",
        "est_power_w",
        "dyn_power_w",
        "running",
        "freq_scale",
        "throttled",
        "pkg_temp_c",
        "pkg_est_temp_c",
        "pkg_est_power_w",
    )

    def __init__(
        self,
        thermal_w: list[float],
        max_power_w: list[float],
        est_power_w: list[float],
        dyn_power_w: list[float],
        running: list[bool],
        freq_scale: list[float],
        throttled: list[bool],
        pkg_temp_c: list[float],
        pkg_est_temp_c: list[float],
        pkg_est_power_w: list[float],
    ) -> None:
        self.thermal_w = thermal_w
        self.max_power_w = max_power_w
        self.est_power_w = est_power_w
        self.dyn_power_w = dyn_power_w
        self.running = running
        self.freq_scale = freq_scale
        self.throttled = throttled
        self.pkg_temp_c = pkg_temp_c
        self.pkg_est_temp_c = pkg_est_temp_c
        self.pkg_est_power_w = pkg_est_power_w

    @property
    def n_cpus(self) -> int:
        return len(self.thermal_w)

    @property
    def n_packages(self) -> int:
        return len(self.pkg_temp_c)

    def __repr__(self) -> str:
        return f"CpuStateBlock(cpus={self.n_cpus}, packages={self.n_packages})"
