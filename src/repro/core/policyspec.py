"""Parameterized policy specifications and the policy registry.

The original API exposed exactly two policies as a flat ``str`` enum:
``energy`` and ``baseline``.  The DVFS family (§2.3 — "the road not
taken") needs more than a name: a frequency ladder, hysteresis margins,
a temperature target.  :class:`PolicySpec` carries ``name + params``
while staying drop-in compatible with every call site that passed a
bare string or a :class:`repro.core.policy.Policy` member:

* ``PolicySpec.coerce("energy")``, ``coerce(Policy.ENERGY)``,
  ``coerce({"name": "dvfs-reactive", "params": {...}})`` and
  ``coerce(spec)`` all work;
* a param-less spec compares and hashes equal to its name string, so
  dict keys, cached sweep results, and ``scenario.policy == "energy"``
  checks are unchanged;
* :func:`canonical_policy_value` renders a spec back to the exact JSON
  value old job specs used (the plain name) whenever no parameters are
  set, keeping content hashes — and therefore the result cache — stable
  across the API change.

Each registered :class:`PolicyDefinition` also records the policy's
*semantics*: which scheduling brain drives migrations, whether hot-CPU
migration is part of the lever set, and which temperature-control mode
the policy forces into the run's :class:`~repro.cpu.throttle.ThrottleConfig`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from enum import Enum
from types import MappingProxyType
from typing import Any, Mapping

from repro.cpu.dvfs import (
    DvfsConfig,
    ProactiveDvfsConfig,
    _default_levels,
)
from repro.cpu.throttle import ThrottleConfig


@dataclass(frozen=True, slots=True)
class PolicyDefinition:
    """Registry entry: a policy's name, semantics, and tunable params.

    Attributes
    ----------
    name:
        Registry key, lowercase.
    description:
        One-line catalog entry (``docs/policies.md`` mirrors these).
    scheduling:
        ``energy`` (the paper's energy-aware scheduler) or ``baseline``
        (plain load balancing).
    defaults:
        Every accepted parameter with its default value; a spec may only
        set keys listed here, and values equal to the default are
        normalized away.
    dvfs:
        ``None`` (no DVFS governor), ``reactive`` (power-limit
        staircase) or ``proactive`` (temperature-tracking).
    force_throttle_mode:
        Temperature-control mode the policy forces on (``hlt`` or
        ``dvfs``); ``None`` leaves the run's throttle config alone.
    hot_migration:
        Whether hot-CPU migration stays in the policy's lever set.  The
        pure DVFS variants turn it off so the governor is the *only*
        thermal response; the hybrid keeps both.
    """

    name: str
    description: str
    scheduling: str = "energy"
    defaults: Mapping[str, Any] = field(default_factory=dict)
    dvfs: str | None = None
    force_throttle_mode: str | None = None
    hot_migration: bool = True


POLICY_REGISTRY: tuple[PolicyDefinition, ...] = (
    PolicyDefinition(
        "energy",
        "The paper's energy-aware scheduler: energy balancing, hot-CPU "
        "migration, and energy-aware placement (§5).",
    ),
    PolicyDefinition(
        "baseline",
        "Plain load balancing without energy awareness (§6 comparison "
        "baseline).",
        scheduling="baseline",
    ),
    PolicyDefinition(
        "hlt-throttle",
        "Energy-aware scheduling with hlt duty-cycling forced on — the "
        "paper's own temperature control (§6.2).",
        force_throttle_mode="hlt",
    ),
    PolicyDefinition(
        "dvfs-reactive",
        "Throttle replacement: the hlt staircase swapped for a reactive "
        "frequency governor holding thermal power at the limit; hot-CPU "
        "migration disabled so DVFS is the only thermal lever.",
        defaults={
            "levels": _default_levels(),
            "step_up_margin_w": 2.0,
        },
        dvfs="reactive",
        force_throttle_mode="dvfs",
        hot_migration=False,
    ),
    PolicyDefinition(
        "dvfs-proactive",
        "Temperature-tracking DVFS: steers the §4.2 estimated die "
        "temperature toward (limit - margin), dropping the clock before "
        "the chip reaches throttling territory; hot-CPU migration "
        "disabled.",
        defaults={
            "levels": _default_levels(),
            "target_margin_c": 2.0,
            "step_up_margin_c": 1.0,
        },
        dvfs="proactive",
        force_throttle_mode="dvfs",
        hot_migration=False,
    ),
    PolicyDefinition(
        "dvfs-hybrid",
        "Migration + DVFS: the full energy-aware lever set (including "
        "hot-CPU migration) with the reactive frequency governor as the "
        "backstop instead of hlt.",
        defaults={
            "levels": _default_levels(),
            "step_up_margin_w": 2.0,
        },
        dvfs="reactive",
        force_throttle_mode="dvfs",
    ),
)

_BY_NAME: dict[str, PolicyDefinition] = {d.name: d for d in POLICY_REGISTRY}


def policy_names() -> tuple[str, ...]:
    """Registered policy names, in registry order."""
    return tuple(d.name for d in POLICY_REGISTRY)


def definition_by_name(name: str) -> PolicyDefinition:
    """Look up a registry entry; raises ValueError on unknown names."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise ValueError(
            f"unknown policy {name!r} (known: {known})"
        ) from None


def _coerce_param(name: str, value: Any, default: Any) -> Any:
    """Normalize a parameter value to the type of its default."""
    if isinstance(default, tuple):
        if isinstance(value, (str, bytes)) or not hasattr(value, "__iter__"):
            raise ValueError(f"policy param {name!r} must be a sequence")
        return tuple(float(v) for v in value)
    if isinstance(default, float):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"policy param {name!r} must be a number")
        return float(value)
    return value


@dataclass(frozen=True, eq=False)
class PolicySpec:
    """A scheduling/DVFS policy: registry name plus typed parameters.

    Parameters equal to the registry defaults are dropped at
    construction, so ``PolicySpec("energy")`` and any spelling of a
    default-parameterized policy normalize to the same value.  A spec
    without parameters compares and hashes equal to its bare name
    string, which keeps pre-PolicySpec dict keys and cached results
    working unchanged.
    """

    name: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        definition = definition_by_name(self.name)
        normalized: dict[str, Any] = {}
        for key in sorted(dict(self.params)):
            if key not in definition.defaults:
                accepted = ", ".join(sorted(definition.defaults)) or "none"
                raise ValueError(
                    f"policy {self.name!r} accepts no param {key!r} "
                    f"(accepted: {accepted})"
                )
            value = _coerce_param(
                key, dict(self.params)[key], definition.defaults[key]
            )
            if value != definition.defaults[key]:
                normalized[key] = value
        object.__setattr__(self, "params", MappingProxyType(normalized))

    # -- identity ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PolicySpec):
            return self.name == other.name and dict(self.params) == dict(
                other.params
            )
        if isinstance(other, str):
            # Policy enum members are str subclasses; `==` compares the
            # value, so this also covers `spec == Policy.ENERGY`.
            return not self.params and self.name == other
        return NotImplemented

    def __hash__(self) -> int:
        if not self.params:
            return hash(self.name)
        return hash((self.name, tuple(sorted(self.params.items()))))

    def __repr__(self) -> str:
        if not self.params:
            return f"PolicySpec({self.name!r})"
        return f"PolicySpec({self.name!r}, params={dict(self.params)!r})"

    # MappingProxyType does not pickle; round-trip through a plain dict
    # (specs ride along in checkpointed System state).
    def __getstate__(self) -> dict[str, Any]:
        return {"name": self.name, "params": dict(self.params)}

    def __setstate__(self, state: dict[str, Any]) -> None:
        object.__setattr__(self, "name", state["name"])
        object.__setattr__(self, "params", MappingProxyType(dict(state["params"])))

    # -- registry accessors -----------------------------------------------

    @property
    def definition(self) -> PolicyDefinition:
        return definition_by_name(self.name)

    @property
    def scheduling(self) -> str:
        return self.definition.scheduling

    @property
    def dvfs_kind(self) -> str | None:
        return self.definition.dvfs

    @property
    def hot_migration(self) -> bool:
        return self.definition.hot_migration

    def param(self, key: str) -> Any:
        """A parameter's effective value (explicit or registry default)."""
        if key in self.params:
            return self.params[key]
        return self.definition.defaults[key]

    def effective_params(self) -> dict[str, Any]:
        """All parameters with explicit values merged over defaults."""
        merged = dict(self.definition.defaults)
        merged.update(self.params)
        return merged

    # -- run wiring -------------------------------------------------------

    def throttle_override(
        self, throttle: ThrottleConfig
    ) -> ThrottleConfig | None:
        """The throttle config this policy forces, or None to keep it.

        Scope and hysteresis of the run's existing config are preserved;
        only ``enabled`` and ``mode`` are forced.
        """
        mode = self.definition.force_throttle_mode
        if mode is None:
            return None
        if throttle.enabled and throttle.mode == mode:
            return None
        return dataclasses.replace(throttle, enabled=True, mode=mode)

    def dvfs_config(self) -> DvfsConfig | ProactiveDvfsConfig | None:
        """The governor config this policy requests (None = default)."""
        kind = self.definition.dvfs
        if kind is None:
            return None
        if kind == "proactive":
            return ProactiveDvfsConfig(
                levels=tuple(self.param("levels")),
                target_margin_c=self.param("target_margin_c"),
                step_up_margin_c=self.param("step_up_margin_c"),
            )
        return DvfsConfig(
            levels=tuple(self.param("levels")),
            step_up_margin_w=self.param("step_up_margin_w"),
        )

    # -- coercion ---------------------------------------------------------

    @classmethod
    def coerce(cls, value: "PolicySpec | str | Mapping[str, Any]") -> "PolicySpec":
        """Interpret any accepted policy spelling as a PolicySpec.

        Accepts a PolicySpec (returned as-is), a Policy enum member, a
        bare name string (case-insensitive), or a mapping of the shape
        ``{"name": ..., "params": {...}}``.
        """
        if isinstance(value, cls):
            return value
        if isinstance(value, Enum):
            value = value.value
        if isinstance(value, str):
            return cls(value.lower())
        if isinstance(value, Mapping):
            unknown = set(value) - {"name", "params"}
            if unknown:
                raise ValueError(
                    "policy mappings accept only 'name' and 'params' keys, "
                    f"got {sorted(unknown)}"
                )
            if "name" not in value:
                raise ValueError("policy mapping needs a 'name' key")
            return cls(str(value["name"]).lower(), value.get("params") or {})
        raise ValueError(f"cannot interpret {value!r} as a policy")


def canonical_policy_value(value: "PolicySpec | str | Mapping[str, Any]"):
    """Render a policy as the canonical JSON-safe scenario value.

    Param-less policies come back as the plain name string — byte-for-
    byte what pre-PolicySpec job specs stored, so existing content
    hashes (and cached sweep results) are unchanged.  Parameterized
    policies come back as ``{"name": ..., "params": {...}}`` with
    tuples rendered as lists and keys sorted.
    """
    spec = PolicySpec.coerce(value)
    if not spec.params:
        return spec.name
    params = {
        key: list(val) if isinstance(val, tuple) else val
        for key, val in sorted(spec.params.items())
    }
    return {"name": spec.name, "params": params}
