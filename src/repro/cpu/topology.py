"""CPU topology: logical CPUs, cores, packages, NUMA nodes.

The paper's testbed is an IBM xSeries 445: two NUMA nodes, four physical
Pentium 4 Xeon packages per node, two SMT threads per package.  Logical
CPU numbering follows the paper's observation that "the CPU IDs of two
sibling CPUs differ in the most significant bit" — CPU 0's sibling is
CPU 8, CPUs 0–3 (and siblings 8–11) are node 0, CPUs 4–7 (and 12–15)
node 1:

    cpu_id = thread * (nodes * packages_per_node * cores_per_package)
           + node * (packages_per_node * cores_per_package)
           + package * cores_per_package + core

An optional *core* level models the chip-multiprocessor extension the
paper sketches in §7 (one extra layer in the domain hierarchy).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class MachineSpec:
    """Shape of the simulated machine.

    Attributes
    ----------
    nodes:
        Number of NUMA nodes.
    packages_per_node:
        Physical processor packages per node.
    cores_per_package:
        Cores per package (1 for the paper's P4 Xeons; >1 models the
        §7 CMP extension).
    threads_per_core:
        SMT threads per core (2 when Hyper-Threading is enabled).
    freq_hz:
        Core clock frequency.
    """

    nodes: int = 2
    packages_per_node: int = 4
    cores_per_package: int = 1
    threads_per_core: int = 2
    freq_hz: float = 2.2e9

    def __post_init__(self) -> None:
        for name in ("nodes", "packages_per_node", "cores_per_package", "threads_per_core"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.freq_hz <= 0:
            raise ValueError("freq_hz must be positive")

    # -- presets ----------------------------------------------------------
    @staticmethod
    def ibm_x445(smt: bool = True) -> "MachineSpec":
        """The paper's testbed: 2 nodes x 4 P4 Xeon 2.2 GHz, SMT optional."""
        return MachineSpec(
            nodes=2,
            packages_per_node=4,
            cores_per_package=1,
            threads_per_core=2 if smt else 1,
            freq_hz=2.2e9,
        )

    @staticmethod
    def smp(n_cpus: int, freq_hz: float = 2.2e9) -> "MachineSpec":
        """A flat SMP: one node, ``n_cpus`` single-thread packages."""
        return MachineSpec(
            nodes=1,
            packages_per_node=n_cpus,
            cores_per_package=1,
            threads_per_core=1,
            freq_hz=freq_hz,
        )

    @staticmethod
    def cmp(packages: int = 2, cores: int = 2, smt: bool = False) -> "MachineSpec":
        """A chip multiprocessor per the paper's §7 extension."""
        return MachineSpec(
            nodes=1,
            packages_per_node=packages,
            cores_per_package=cores,
            threads_per_core=2 if smt else 1,
            freq_hz=2.2e9,
        )

    @property
    def n_packages(self) -> int:
        return self.nodes * self.packages_per_node

    @property
    def n_cores(self) -> int:
        return self.n_packages * self.cores_per_package

    @property
    def n_cpus(self) -> int:
        """Total logical CPUs."""
        return self.n_cores * self.threads_per_core

    @property
    def smt_enabled(self) -> bool:
        return self.threads_per_core > 1


@dataclass(frozen=True, slots=True)
class CpuInfo:
    """Static identity of one logical CPU."""

    cpu_id: int
    node: int
    package: int       #: global package index
    core: int          #: global core index
    thread: int        #: SMT thread index within the core
    siblings: tuple[int, ...] = field(default=())  #: other threads on same core

    @property
    def has_smt_sibling(self) -> bool:
        return bool(self.siblings)


class Topology:
    """Resolved machine topology with paper-style CPU numbering."""

    def __init__(self, spec: MachineSpec) -> None:
        self.spec = spec
        self.cpus: list[CpuInfo] = []
        self._build()

    def _build(self) -> None:
        spec = self.spec
        cores_total = spec.n_cores
        by_core: dict[int, list[int]] = {c: [] for c in range(cores_total)}
        records: list[tuple[int, int, int, int, int]] = []
        for thread in range(spec.threads_per_core):
            for node in range(spec.nodes):
                for pkg in range(spec.packages_per_node):
                    for core in range(spec.cores_per_package):
                        global_pkg = node * spec.packages_per_node + pkg
                        global_core = global_pkg * spec.cores_per_package + core
                        cpu_id = (
                            thread * cores_total
                            + node * spec.packages_per_node * spec.cores_per_package
                            + pkg * spec.cores_per_package
                            + core
                        )
                        records.append((cpu_id, node, global_pkg, global_core, thread))
                        by_core[global_core].append(cpu_id)
        records.sort()
        for cpu_id, node, global_pkg, global_core, thread in records:
            siblings = tuple(c for c in by_core[global_core] if c != cpu_id)
            self.cpus.append(
                CpuInfo(
                    cpu_id=cpu_id,
                    node=node,
                    package=global_pkg,
                    core=global_core,
                    thread=thread,
                    siblings=siblings,
                )
            )

    # -- lookups ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.cpus)

    def cpu(self, cpu_id: int) -> CpuInfo:
        return self.cpus[cpu_id]

    def cpus_of_node(self, node: int) -> list[int]:
        return [c.cpu_id for c in self.cpus if c.node == node]

    def cpus_of_package(self, package: int) -> list[int]:
        return [c.cpu_id for c in self.cpus if c.package == package]

    def cpus_of_core(self, core: int) -> list[int]:
        return [c.cpu_id for c in self.cpus if c.core == core]

    def siblings_of(self, cpu_id: int) -> tuple[int, ...]:
        return self.cpus[cpu_id].siblings

    def package_of(self, cpu_id: int) -> int:
        return self.cpus[cpu_id].package

    def node_of(self, cpu_id: int) -> int:
        return self.cpus[cpu_id].node

    @property
    def n_packages(self) -> int:
        return self.spec.n_packages

    @property
    def n_nodes(self) -> int:
        return self.spec.nodes

    def __repr__(self) -> str:
        s = self.spec
        return (
            f"Topology({s.nodes} node(s) x {s.packages_per_node} pkg "
            f"x {s.cores_per_package} core(s) x {s.threads_per_core} thread(s) "
            f"= {s.n_cpus} logical CPUs)"
        )
