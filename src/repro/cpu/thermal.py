"""Thermal model: one resistor, one capacitor (paper §4.2).

The heat sink is modelled as a thermal resistance R (K/W) to ambient and
a lumped thermal capacitance C (J/K) for chip plus sink.  Chip
temperature follows

    dT/dt = (P - (T - T_ambient) / R) / C

whose step response is the exponential the paper fits during
calibration; the time constant is tau = R * C and the steady state for
constant power P is T_ambient + P * R.

Temperature is tracked per *package* (physical chip) — only physical
processors overheat (§4.7).  Heterogeneous cooling (a package nearer a
fan or air inlet) is expressed by giving packages different R.

The :class:`ThermalDiode` models why the paper cannot attribute energy
per timeslice from temperature alone (§3.1): coarse quantisation and a
multi-millisecond read latency over the system management bus.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Sequence

#: Memoised ``exp(-dt/tau)`` decay factors, keyed by (tau, dt).  One
#: entry per distinct heat-sink parameterisation per tick length.
_DECAY_CACHE: dict[tuple[float, float], float] = {}


def rc_decay(tau_s: float, dt_s: float) -> float:
    """The per-interval decay factor of the RC step response.

    Exactly the ``exp`` evaluated inside :meth:`ThermalRC.step`,
    memoised for the batched tick path (the tick length is constant
    within a run, so each package's decay is computed once).
    """
    if tau_s <= 0:
        raise ValueError("time constant must be positive")
    if dt_s < 0:
        raise ValueError("dt must be non-negative")
    key = (tau_s, dt_s)
    decay = _DECAY_CACHE.get(key)
    if decay is None:
        decay = math.exp(-dt_s / tau_s)
        _DECAY_CACHE[key] = decay
    return decay


def rc_step_batch(
    rcs: Sequence["ThermalRC"],
    powers_w: Sequence[float],
    decays: Sequence[float],
    out: list[float],
) -> None:
    """Advance one RC network per package in a single pass.

    Performs :meth:`ThermalRC.step`'s arithmetic with the decay factor
    precomputed, writing the new temperatures into the ``out`` column
    (the struct-of-arrays temperature block) as well as the objects.
    """
    for i, (rc, power_w, decay) in enumerate(zip(rcs, powers_w, decays)):
        out[i] = rc.step_with_decay(power_w, decay)


@dataclass(frozen=True, slots=True)
class ThermalParams:
    """Per-package thermal characteristics.

    Attributes
    ----------
    r_k_per_w:
        Thermal resistance of the heat sink, Kelvin per Watt.
    c_j_per_k:
        Thermal capacitance of chip + sink, Joules per Kelvin.
    ambient_c:
        Ambient air temperature in degrees Celsius.
    """

    r_k_per_w: float = 0.30
    c_j_per_k: float = 66.7
    ambient_c: float = 25.0

    def __post_init__(self) -> None:
        if self.r_k_per_w <= 0:
            raise ValueError("thermal resistance must be positive")
        if self.c_j_per_k <= 0:
            raise ValueError("thermal capacitance must be positive")

    @property
    def tau_s(self) -> float:
        """Time constant of the RC network in seconds."""
        return self.r_k_per_w * self.c_j_per_k

    def steady_state_c(self, power_w: float) -> float:
        """Equilibrium temperature for a constant power draw."""
        return self.ambient_c + power_w * self.r_k_per_w

    def power_for_temperature(self, temp_c: float) -> float:
        """Constant power that settles at ``temp_c`` — i.e. the *maximum
        power* (§4.3) corresponding to a temperature limit."""
        return (temp_c - self.ambient_c) / self.r_k_per_w

    def with_tau(self, tau_s: float) -> "ThermalParams":
        """Same resistance/ambient, capacitance chosen to hit ``tau_s``."""
        if tau_s <= 0:
            raise ValueError("tau must be positive")
        return replace(self, c_j_per_k=tau_s / self.r_k_per_w)


class ThermalRC:
    """Integrates the RC network for one package."""

    __slots__ = ("params", "_temp_c", "_ambient_c", "_r_k_per_w")

    def __init__(self, params: ThermalParams, initial_c: float | None = None) -> None:
        self.params = params
        # Cached for the per-tick integration step (saves two attribute
        # hops per call on the hot path; same floats as the params).
        self._ambient_c = params.ambient_c
        self._r_k_per_w = params.r_k_per_w
        self._temp_c = params.ambient_c if initial_c is None else float(initial_c)

    @property
    def temperature_c(self) -> float:
        return self._temp_c

    def step(self, power_w: float, dt_s: float) -> float:
        """Advance ``dt_s`` seconds at constant ``power_w``; return T.

        Uses the exact exponential solution for the interval, so the
        integration is unconditionally stable for any tick length.
        """
        if dt_s < 0:
            raise ValueError("dt must be non-negative")
        p = self.params
        target = p.steady_state_c(power_w)
        decay = math.exp(-dt_s / p.tau_s)
        self._temp_c = target + (self._temp_c - target) * decay
        return self._temp_c

    def step_with_decay(self, power_w: float, decay: float) -> float:
        """:meth:`step` with the interval's decay factor precomputed.

        The batched tick path hoists ``exp(-dt/tau)`` out of the loop
        via :func:`rc_decay`; the remaining arithmetic is identical to
        :meth:`step` (the target expression is ``steady_state_c``
        spelled out on cached operands), so both paths integrate
        bit-identically.
        """
        target = self._ambient_c + power_w * self._r_k_per_w
        self._temp_c = target + (self._temp_c - target) * decay
        return self._temp_c

    def reset(self, temp_c: float | None = None) -> None:
        self._temp_c = self.params.ambient_c if temp_c is None else float(temp_c)


class ThermalDiode:
    """The on-chip thermal diode as seen through the SM bus.

    Reading is slow (several milliseconds, §3.1) and coarsely quantised,
    which is why per-timeslice energy attribution from temperature is
    impossible — this class exists so tests and examples can demonstrate
    that claim quantitatively.
    """

    def __init__(self, resolution_c: float = 1.0, read_latency_ms: float = 4.0) -> None:
        if resolution_c <= 0:
            raise ValueError("resolution must be positive")
        if read_latency_ms < 0:
            raise ValueError("read latency must be non-negative")
        self.resolution_c = resolution_c
        self.read_latency_ms = read_latency_ms

    def read(self, true_temp_c: float) -> float:
        """Quantised diode reading for the true chip temperature."""
        return math.floor(true_temp_c / self.resolution_c) * self.resolution_c
