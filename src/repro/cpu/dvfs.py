"""Dynamic frequency/voltage scaling — the road not taken.

The paper's hardware has no DVFS ("frequency and voltage scaling are
not available on most of todays high performance processors used in
multiprocessor server machines", §2.3), which is why its answer to an
overheating CPU is migration or ``hlt``.  To quantify that design
choice we model the classical alternative: drop the clock (and with it
the voltage) until the chip stays under its thermal limit.

Scaling laws (voltage tracked linearly with frequency):

* execution speed    ∝ f
* dynamic power      ∝ f · V² ∝ f³
* static power       unchanged (no body biasing on this era's parts)

So a CPU at relative frequency ``s`` retires ``s`` of its work but
burns only ``s^3`` of its dynamic power — strictly better than ``hlt``
duty-cycling (which is linear in both) yet still strictly worse than
migrating the task to a cool CPU, which costs nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def _default_levels() -> tuple[float, ...]:
    # Relative frequency steps, e.g. a 2.2 GHz part down to 1.1 GHz.
    return (1.0, 0.9, 0.8, 0.7, 0.6, 0.5)


def _validate_levels(levels: tuple[float, ...]) -> None:
    if not levels or levels[0] != 1.0:
        raise ValueError("levels must start at 1.0")
    if list(levels) != sorted(levels, reverse=True):
        raise ValueError("levels must be strictly descending")
    if any(not 0.0 < lv <= 1.0 for lv in levels):
        raise ValueError("levels must be in (0, 1]")
    if len(set(levels)) != len(levels):
        raise ValueError("levels must be strictly descending")


@dataclass(frozen=True, slots=True)
class DvfsConfig:
    """Frequency ladder and controller hysteresis.

    Attributes
    ----------
    levels:
        Available relative frequencies, descending, starting at 1.0.
    step_up_margin_w:
        Step back up once thermal power falls this far below the limit.
    """

    levels: tuple[float, ...] = field(default_factory=_default_levels)
    step_up_margin_w: float = 2.0

    def __post_init__(self) -> None:
        _validate_levels(self.levels)
        if self.step_up_margin_w <= 0:
            raise ValueError("step-up margin must be positive")


@dataclass(frozen=True, slots=True)
class ProactiveDvfsConfig:
    """Ladder and hysteresis of the temperature-tracking controller.

    Attributes
    ----------
    levels:
        Available relative frequencies, descending, starting at 1.0.
    target_margin_c:
        Safety margin below the thermal limit; the controller steers the
        estimated die temperature toward ``limit - margin``.
    step_up_margin_c:
        Step back up once the estimate falls this far below the target.
    """

    levels: tuple[float, ...] = field(default_factory=_default_levels)
    target_margin_c: float = 2.0
    step_up_margin_c: float = 1.0

    def __post_init__(self) -> None:
        _validate_levels(self.levels)
        if self.target_margin_c < 0:
            raise ValueError("target margin must be non-negative")
        if self.step_up_margin_c <= 0:
            raise ValueError("step-up margin must be positive")


def dynamic_power_scale(freq_scale: float) -> float:
    """Dynamic power multiplier at a relative frequency (∝ f^3)."""
    if not 0.0 < freq_scale <= 1.0:
        raise ValueError("frequency scale must be in (0, 1]")
    return freq_scale ** 3


class DvfsController:
    """Per-CPU frequency governor holding thermal power at the limit.

    One step per update, like the staircase governors of the era: step
    down whenever thermal power exceeds the limit, step up when there is
    comfortable headroom.
    """

    def __init__(self, n_cpus: int, config: DvfsConfig | None = None) -> None:
        if n_cpus < 1:
            raise ValueError("need at least one CPU")
        self.config = config if config is not None else DvfsConfig()
        self._level_index = [0] * n_cpus
        self._scaled_ticks = [0] * n_cpus
        self._total_ticks = [0] * n_cpus
        self._scale_sum = [0.0] * n_cpus

    def scale(self, cpu_id: int) -> float:
        """Current relative frequency of a CPU."""
        return self.config.levels[self._level_index[cpu_id]]

    def update(self, cpu_id: int, thermal_power_w: float, limit_w: float) -> float:
        """Advance one tick; returns the frequency scale to run at."""
        self._total_ticks[cpu_id] += 1
        index = self._level_index[cpu_id]
        if thermal_power_w > limit_w and index < len(self.config.levels) - 1:
            index += 1
        elif (
            thermal_power_w < limit_w - self.config.step_up_margin_w and index > 0
        ):
            index -= 1
        self._level_index[cpu_id] = index
        if index > 0:
            self._scaled_ticks[cpu_id] += 1
        scale = self.config.levels[index]
        self._scale_sum[cpu_id] += scale
        return scale

    def scaled_fraction(self, cpu_id: int) -> float:
        """Fraction of time the CPU ran below full frequency."""
        total = self._total_ticks[cpu_id]
        return self._scaled_ticks[cpu_id] / total if total else 0.0

    def mean_scale(self, cpu_id: int) -> float:
        """Mean relative frequency over the CPU's governed ticks.

        1.0 when the controller never ran (DVFS disabled or a zero-tick
        run): an ungoverned CPU is a full-speed CPU.
        """
        total = self._total_ticks[cpu_id]
        return self._scale_sum[cpu_id] / total if total else 1.0


class TemperatureDvfsController:
    """Proactive per-CPU governor steering the *estimated* temperature.

    Where :class:`DvfsController` reacts to the thermal-power estimate
    crossing the power limit, this one tracks the §4.2 temperature
    estimate directly: step down while the package's estimated die
    temperature sits above the target (limit minus a safety margin),
    step back up once it has cooled a hysteresis band below the target.
    Acting on the estimate rather than the limit means the clock drops
    *before* the chip reaches throttling territory.
    """

    def __init__(
        self, n_cpus: int, config: ProactiveDvfsConfig | None = None
    ) -> None:
        if n_cpus < 1:
            raise ValueError("need at least one CPU")
        self.config = config if config is not None else ProactiveDvfsConfig()
        self._level_index = [0] * n_cpus
        self._scaled_ticks = [0] * n_cpus
        self._total_ticks = [0] * n_cpus
        self._scale_sum = [0.0] * n_cpus

    def scale(self, cpu_id: int) -> float:
        """Current relative frequency of a CPU."""
        return self.config.levels[self._level_index[cpu_id]]

    def update(self, cpu_id: int, est_temp_c: float, target_c: float) -> float:
        """Advance one tick; returns the frequency scale to run at."""
        self._total_ticks[cpu_id] += 1
        index = self._level_index[cpu_id]
        if est_temp_c > target_c and index < len(self.config.levels) - 1:
            index += 1
        elif (
            est_temp_c < target_c - self.config.step_up_margin_c and index > 0
        ):
            index -= 1
        self._level_index[cpu_id] = index
        if index > 0:
            self._scaled_ticks[cpu_id] += 1
        scale = self.config.levels[index]
        self._scale_sum[cpu_id] += scale
        return scale

    def scaled_fraction(self, cpu_id: int) -> float:
        """Fraction of time the CPU ran below full frequency."""
        total = self._total_ticks[cpu_id]
        return self._scaled_ticks[cpu_id] / total if total else 0.0

    def mean_scale(self, cpu_id: int) -> float:
        """Mean relative frequency over the CPU's governed ticks."""
        total = self._total_ticks[cpu_id]
        return self._scale_sum[cpu_id] / total if total else 1.0
