"""Hardware event monitoring counter event kinds.

The Pentium 4 exposes 18 counters able to track dozens of event classes;
the paper's estimator (following Bellosa et al., COLP'03) picks a small
simultaneously-countable set whose weighted sum tracks processor energy.
We model six event classes that span the behaviours of the paper's test
programs: ALU-bound, memory-bound, stack-engine-bound, crypto/FP mixes,
and control-heavy interactive code.
"""

from __future__ import annotations

import enum


class HwEvent(enum.IntEnum):
    """Countable processor events (per logical CPU on SMT parts).

    Values are contiguous indices so counter banks can be plain arrays.
    """

    UOPS_RETIRED = 0        #: micro-operations completed
    ALU_OPS = 1             #: integer ALU operations
    FP_OPS = 2              #: floating point / SIMD operations
    MEM_ACCESSES = 3        #: L1-level loads + stores
    L2_MISSES = 4           #: L2 cache misses (bus/memory activity)
    BRANCHES = 5            #: branch instructions retired


#: All events in index order; the estimator uses this fixed ordering.
EVENT_LIST: tuple[HwEvent, ...] = tuple(HwEvent)

#: Number of modelled event classes.
N_EVENTS: int = len(EVENT_LIST)
