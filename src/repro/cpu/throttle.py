"""``hlt``-based throttling (paper §6.2).

Temperature control is an on/off controller per *logical* CPU, matching
the paper's experiment: "whenever a CPU's thermal power rose above the
value corresponding to 38 degC, we throttled the CPU by executing the
hlt instruction".  Thermal power is the control variable (not the diode
— reading it is too slow, §3.1); a small hysteresis below the limit
avoids chattering.

While throttled a logical CPU makes no progress and its package draws
halted power (13.6 W when all threads halt) — the paper notes this
residual draw is exactly why throttling is *worse* than migrating the
work away (§6.4).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class ThrottleConfig:
    """Controller settings.

    Attributes
    ----------
    enabled:
        Master switch; experiments without temperature control (Figs. 6/7)
        disable it.
    hysteresis_w:
        The CPU resumes once thermal power falls this far below its
        limit.
    scope:
        ``logical`` throttles each logical CPU on its own thermal power
        against its share of the package budget (the Table 3 setup,
        where siblings show different throttle percentages).
        ``package`` throttles a logical CPU when the *package* thermal
        sum exceeds the package budget (the §6.4 setup "we allowed each
        physical processor to consume 40 W at most").
    mode:
        ``hlt`` inserts halt cycles (the paper's hardware); ``dvfs``
        steps the clock down instead (:mod:`repro.cpu.dvfs`) — the
        comparator the paper's machines lacked.
    """

    enabled: bool = True
    hysteresis_w: float = 1.0
    scope: str = "logical"
    mode: str = "hlt"

    def __post_init__(self) -> None:
        if self.hysteresis_w < 0:
            raise ValueError("hysteresis must be non-negative")
        if self.scope not in ("logical", "package"):
            raise ValueError(f"unknown throttle scope {self.scope!r}")
        if self.mode not in ("hlt", "dvfs"):
            raise ValueError(f"unknown throttle mode {self.mode!r}")


class ThrottleController:
    """Per-logical-CPU on/off throttle state machine.

    The caller supplies each CPU's current thermal power and limit every
    tick; the controller answers whether the CPU may execute and keeps
    throttled-time statistics (Table 3 reports these percentages).
    """

    def __init__(self, n_cpus: int, config: ThrottleConfig | None = None) -> None:
        if n_cpus < 1:
            raise ValueError("need at least one CPU")
        self.config = config if config is not None else ThrottleConfig()
        self.n_cpus = n_cpus
        #: public struct-of-arrays column: throttle state per logical CPU
        self.throttled = [False] * n_cpus
        self._throttled_ticks = [0] * n_cpus
        self._total_ticks = [0] * n_cpus

    def update(self, cpu_id: int, thermal_power_w: float, limit_w: float) -> bool:
        """Advance one tick; return True if the CPU is throttled now."""
        self._total_ticks[cpu_id] += 1
        if not self.config.enabled:
            return False
        if self.throttled[cpu_id]:
            if thermal_power_w <= limit_w - self.config.hysteresis_w:
                self.throttled[cpu_id] = False
        else:
            if thermal_power_w > limit_w:
                self.throttled[cpu_id] = True
        if self.throttled[cpu_id]:
            self._throttled_ticks[cpu_id] += 1
        return self.throttled[cpu_id]

    def is_throttled(self, cpu_id: int) -> bool:
        return self.throttled[cpu_id]

    def throttled_fraction(self, cpu_id: int) -> float:
        """Fraction of elapsed time this CPU spent halted (Table 3)."""
        total = self._total_ticks[cpu_id]
        if total == 0:
            return 0.0
        return self._throttled_ticks[cpu_id] / total

    def average_fraction(self) -> float:
        """Throttling percentage averaged over all CPUs."""
        fractions = [self.throttled_fraction(c) for c in range(self.n_cpus)]
        return sum(fractions) / self.n_cpus

    def reset_stats(self) -> None:
        """Zero the time accounting (state machine positions persist)."""
        self._throttled_ticks = [0] * self.n_cpus
        self._total_ticks = [0] * self.n_cpus
