"""Simulated hardware substrate.

Models the parts of the IBM xSeries 445 testbed the paper's policies
observe and influence: logical-CPU topology (SMT siblings, packages,
NUMA nodes), event monitoring counters, the processor power draw, the
heat-sink thermal RC network, and ``hlt``-based throttling.
"""

from repro.cpu.events import EVENT_LIST, HwEvent
from repro.cpu.frequency import ExecutionModel
from repro.cpu.pmc import CounterBank, CounterSnapshot
from repro.cpu.power import (
    GroundTruthPower,
    LinearEnergyEstimator,
    PowerModelParams,
    calibrate_estimator,
)
from repro.cpu.thermal import ThermalDiode, ThermalParams, ThermalRC
from repro.cpu.throttle import ThrottleController
from repro.cpu.topology import CpuInfo, MachineSpec, Topology

__all__ = [
    "CounterBank",
    "CounterSnapshot",
    "CpuInfo",
    "EVENT_LIST",
    "ExecutionModel",
    "GroundTruthPower",
    "HwEvent",
    "LinearEnergyEstimator",
    "MachineSpec",
    "PowerModelParams",
    "ThermalDiode",
    "ThermalParams",
    "ThermalRC",
    "ThrottleController",
    "Topology",
    "calibrate_estimator",
]
