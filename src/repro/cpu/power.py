"""Processor power: ground truth and the counter-based linear estimator.

Two models deliberately differ (DESIGN.md §2):

* :class:`GroundTruthPower` plays the role of the authors' multimeter.
  It contains a mild nonlinear term and measurement noise, so it is *not*
  exactly representable by the estimator.
* :class:`LinearEnergyEstimator` is the paper's Eq. 1,

      E = sum_i a_i * c_i   (+ a base term proportional to busy time,
                             standing in for a clock-cycle counter),

  with weights obtained by least squares over calibration runs
  (:func:`calibrate_estimator`) exactly as the authors calibrate against
  multimeter readings.  Its error against ground truth is therefore a
  measured, nonzero quantity that the tests hold below the paper's 10 %.

Power accounting conventions (single-thread numbers match Table 2):

* A fully halted package draws ``halted_package_w`` (13.6 W, §6.4).
* An active package draws ``base_active_w`` plus each running thread's
  dynamic power; a halted sibling of a running thread adds nothing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from repro.cpu.events import N_EVENTS


def _default_weights() -> tuple[float, ...]:
    # nJ per event: UOPS, ALU, FP, MEM, L2_MISS, BRANCH
    return (2.0, 3.5, 7.0, 2.5, 60.0, 1.5)


@dataclass(frozen=True, slots=True)
class PowerModelParams:
    """Parameters of the ground-truth power model.

    Attributes
    ----------
    weights_nj:
        True energy per event occurrence, nanojoules, in
        :data:`repro.cpu.events.EVENT_LIST` order.
    base_active_w:
        Static power of an active (non-halted) package: clock tree,
        leakage, fetch machinery.
    halted_package_w:
        Power of a package with all threads executing ``hlt``
        (the paper measures 13.6 W on the P4 Xeon).
    nonlinear_coeff / nonlinear_scale_w:
        Ground truth adds ``coeff * dyn^2 / scale`` — a mild
        superlinearity the linear estimator cannot represent.
    noise_sigma:
        Multiplicative Gaussian noise on each multimeter sample.
    """

    weights_nj: tuple[float, ...] = field(default_factory=_default_weights)
    base_active_w: float = 20.0
    halted_package_w: float = 13.6
    nonlinear_coeff: float = 0.02
    nonlinear_scale_w: float = 50.0
    noise_sigma: float = 0.015

    def __post_init__(self) -> None:
        if len(self.weights_nj) != N_EVENTS:
            raise ValueError(
                f"need {N_EVENTS} event weights, got {len(self.weights_nj)}"
            )
        if any(w < 0 for w in self.weights_nj):
            raise ValueError("event weights must be non-negative")
        if self.base_active_w < self.halted_package_w:
            raise ValueError("active base power must be >= halted power")


class GroundTruthPower:
    """What the multimeter reads (up to noise)."""

    def __init__(self, params: PowerModelParams) -> None:
        self.params = params
        self._weights = np.asarray(params.weights_nj, dtype=float)

    def dynamic_power_w(self, rates_per_cycle: np.ndarray, freq_hz: float) -> float:
        """Noise-free dynamic power of one thread executing a mix.

        ``rates_per_cycle`` are events per core cycle; power is
        ``sum_i w_i[nJ] * rate_i * f[Hz] * 1e-9`` plus the nonlinearity.
        """
        linear = float(self._weights @ rates_per_cycle) * freq_hz * 1e-9
        p = self.params
        return linear + p.nonlinear_coeff * linear * linear / p.nonlinear_scale_w

    def sample_package_power_w(
        self,
        dynamic_w_per_thread: list[float],
        all_halted: bool,
        rng: random.Random,
    ) -> float:
        """One noisy multimeter sample of a package's power draw."""
        p = self.params
        if all_halted:
            clean = p.halted_package_w
        else:
            clean = p.base_active_w + sum(dynamic_w_per_thread)
        return clean * (1.0 + rng.gauss(0.0, p.noise_sigma))

    def rates_for_dynamic_power(
        self, flavor: np.ndarray, target_dynamic_w: float, freq_hz: float
    ) -> np.ndarray:
        """Scale a relative event-mix ``flavor`` to hit a dynamic power.

        Inverts the *linear* part of the model; the nonlinearity is
        compensated iteratively so the ground-truth dynamic power of the
        returned rates equals ``target_dynamic_w`` to within 1e-9 W.
        """
        flavor = np.asarray(flavor, dtype=float)
        if flavor.shape != (N_EVENTS,):
            raise ValueError(f"flavor must have shape ({N_EVENTS},)")
        if np.any(flavor < 0) or not np.any(flavor > 0):
            raise ValueError("flavor must be non-negative and non-zero")
        if target_dynamic_w < 0:
            raise ValueError("target dynamic power must be non-negative")
        unit_w = float(self._weights @ flavor) * freq_hz * 1e-9
        if unit_w <= 0:
            raise ValueError("flavor has zero weighted power; cannot scale")
        k = target_dynamic_w / unit_w
        for _ in range(60):
            achieved = self.dynamic_power_w(flavor * k, freq_hz)
            error = achieved - target_dynamic_w
            if abs(error) < 1e-9:
                break
            k -= error / unit_w
        return flavor * k


class LinearEnergyEstimator:
    """The paper's Eq. 1 estimator with calibrated weights.

    ``base_w`` multiplies busy time, standing in for counting clock
    cycles (a countable event on the P4); ``weights_nj`` multiply the
    per-event counter deltas.
    """

    def __init__(self, base_w: float, weights_nj: np.ndarray) -> None:
        weights_nj = np.asarray(weights_nj, dtype=float)
        if weights_nj.shape != (N_EVENTS,):
            raise ValueError(f"weights must have shape ({N_EVENTS},)")
        self.base_w = float(base_w)
        self.weights_nj = weights_nj

    def energy_j(
        self, counter_deltas: np.ndarray, busy_s: float, base_share: float = 1.0
    ) -> float:
        """Estimated energy for an execution interval.

        Parameters
        ----------
        counter_deltas:
            Per-event counter increments over the interval.
        busy_s:
            Time the thread actually executed (excludes halted time).
        base_share:
            Fraction of the package's static power attributed to this
            thread: 1 with an idle SMT sibling, 1/n with n busy threads
            sharing the chip.  The kernel knows sibling occupancy, so
            this is observable at estimation time (§4.7).
        """
        if busy_s < 0:
            raise ValueError("busy time must be non-negative")
        if not 0.0 <= base_share <= 1.0:
            raise ValueError("base share must be in [0, 1]")
        return (
            self.base_w * busy_s * base_share
            + float(self.weights_nj @ counter_deltas) * 1e-9
        )

    def power_w(
        self, counter_deltas: np.ndarray, busy_s: float, base_share: float = 1.0
    ) -> float:
        """Estimated average power over a non-empty interval."""
        if busy_s <= 0:
            raise ValueError("busy time must be positive for a power estimate")
        return self.energy_j(counter_deltas, busy_s, base_share) / busy_s

    # -- per-tick factored form (the simulator's hot path) ---------------------
    def unit_energy_nj(self, counter_deltas: np.ndarray) -> float:
        """Weighted event energy in nanojoules, before jitter/DVFS scaling.

        The tick loop factors Eq. 1 as ``base + unit * scale``: counter
        jitter and the DVFS voltage correction are multiplicative on the
        whole event term, so the dot product over the *unjittered*
        increments can be computed once per (mix, cycles) pair and
        rescaled each tick.  Both the scalar and the batched tick paths
        use this factored form, which keeps them bit-identical.
        """
        return float(self.weights_nj @ counter_deltas)

    def tick_energy_j(
        self, unit_nj: float, scale: float, busy_s: float, base_share: float
    ) -> float:
        """Eq. 1 energy for one tick from a precomputed unit energy.

        ``scale`` carries the tick's multiplicative factors (counter
        jitter, and ``freq_scale**2`` under DVFS).
        """
        return self.base_w * busy_s * base_share + unit_nj * scale * 1e-9


class TickEnergyCache:
    """Memoised per-(mix, cycles) tick quantities for the batched path.

    A task's instruction mix object is immutable and changes only on
    phase transitions or wobble resamples (every ~10 ticks), while the
    per-tick cycle count takes one of a handful of values (solo, SMT,
    DVFS-scaled).  Each entry carries everything the execution step
    derives purely from (mix, cycles): the unjittered counter increments
    ``rates * cycles``, their weighted unit energy, and the mix's
    ground-truth dynamic power — removing the per-tick numpy allocation
    and two dot products from the hot loop.

    Entries key on ``id(mix)`` and verify identity on lookup while
    holding a strong reference to the mix, so a recycled ``id`` can
    never alias a dead entry (same discipline as the dynamic-power
    cache in :class:`repro.system.System`).  ``cache`` is public so the
    tick loop can probe it without a method call; use :meth:`lookup`
    everywhere else.
    """

    #: entry layout: (mix, base_increments, unit_energy_nj, dynamic_power_w)
    Entry = tuple[object, np.ndarray, float, float]

    def __init__(
        self,
        estimator: LinearEnergyEstimator,
        power: GroundTruthPower,
        freq_hz: float,
    ) -> None:
        self._estimator = estimator
        self._power = power
        self._freq_hz = freq_hz
        self.cache: dict[tuple[int, float], TickEnergyCache.Entry] = {}

    def miss(self, mix, cycles: float) -> "TickEnergyCache.Entry":
        """Compute, store, and return the entry for a (mix, cycles) pair."""
        base_increments = mix.rates_per_cycle * cycles
        unit_nj = self._estimator.unit_energy_nj(base_increments)
        dyn_w = self._power.dynamic_power_w(mix.rates_per_cycle, self._freq_hz)
        if len(self.cache) > 8192:
            self.cache.clear()
        entry = (mix, base_increments, unit_nj, dyn_w)
        self.cache[(id(mix), cycles)] = entry
        return entry

    def lookup(self, mix, cycles: float) -> "TickEnergyCache.Entry":
        """The entry for a mix at a cycle count (cached or computed)."""
        entry = self.cache.get((id(mix), cycles))
        if entry is not None and entry[0] is mix:
            return entry
        return self.miss(mix, cycles)


@dataclass(frozen=True, slots=True)
class CalibrationSample:
    """One calibration observation: counters + multimeter energy.

    ``base_share`` records the sibling occupancy during the sample (1
    for a lone thread, 0.5 for an SMT pair), matching the attribution
    the estimator will use online.
    """

    busy_s: float
    counter_deltas: np.ndarray
    measured_energy_j: float
    base_share: float = 1.0


def calibrate_estimator(samples: list[CalibrationSample]) -> LinearEnergyEstimator:
    """Least-squares fit of Eq. 1 weights against measured energies.

    This mirrors the authors' procedure: run test applications, record
    event counts and multimeter energy, and solve the linear system
    (here in the least-squares sense as the system is overdetermined).
    """
    if len(samples) < N_EVENTS + 1:
        raise ValueError(
            f"need at least {N_EVENTS + 1} samples to fit "
            f"{N_EVENTS + 1} coefficients, got {len(samples)}"
        )
    a = np.empty((len(samples), N_EVENTS + 1), dtype=float)
    y = np.empty(len(samples), dtype=float)
    for row, s in enumerate(samples):
        a[row, 0] = s.busy_s * s.base_share
        a[row, 1:] = np.asarray(s.counter_deltas, dtype=float) * 1e-9
        y[row] = s.measured_energy_j
    coeffs, *_ = np.linalg.lstsq(a, y, rcond=None)
    weights = np.clip(coeffs[1:], 0.0, None)
    return LinearEnergyEstimator(base_w=float(coeffs[0]), weights_nj=weights)
