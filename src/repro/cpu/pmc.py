"""Event monitoring counter banks.

One :class:`CounterBank` per logical CPU — the Pentium 4's counters can
attribute most events to the logical CPU that caused them (§4.7), which
is what makes per-task energy estimation possible under SMT.

Counts accumulate monotonically but the hardware registers are finite
(40 bits on the Pentium 4), so they wrap; consumers take snapshots at
task-switch and timeslice boundaries and compute wrap-aware deltas,
exactly as the paper's in-kernel estimator must (§5).  A 40-bit counter
at a few events per 2.2 GHz cycle wraps every couple of minutes, so
wraparound is routine, not exceptional.
"""

from __future__ import annotations

import random

import numpy as np

from repro.cpu.events import N_EVENTS

#: Width of the Pentium 4's performance counters.
COUNTER_BITS = 40


class CounterSnapshot:
    """Immutable copy of a counter bank at one instant."""

    __slots__ = ("values", "modulus")

    def __init__(self, values: np.ndarray, modulus: float = float(2**COUNTER_BITS)):
        self.values = values
        self.modulus = modulus

    def delta_since(self, earlier: "CounterSnapshot") -> np.ndarray:
        """Per-event increments between ``earlier`` and this snapshot.

        Handles a single wraparound per counter, as the kernel does by
        reading at least once per wrap period.
        """
        if earlier.modulus != self.modulus:
            raise ValueError("snapshots from banks with different widths")
        return (self.values - earlier.values) % self.modulus


class CounterBank:
    """Monotonic per-logical-CPU event counters.

    The simulator credits counts from the running task's instruction mix
    via :meth:`account`; a small multiplicative jitter models sampling
    effects (counter rollover handling, interrupt skid) so counter-based
    estimates are not artificially exact.
    """

    __slots__ = ("cpu_id", "_counts", "_jitter_sigma", "_rng", "_modulus")

    def __init__(
        self,
        cpu_id: int,
        rng: random.Random,
        jitter_sigma: float = 0.01,
        counter_bits: int = COUNTER_BITS,
    ) -> None:
        if jitter_sigma < 0:
            raise ValueError("jitter sigma must be non-negative")
        if counter_bits < 8:
            raise ValueError("counters must be at least 8 bits wide")
        self.cpu_id = cpu_id
        self._counts = np.zeros(N_EVENTS, dtype=float)
        self._jitter_sigma = jitter_sigma
        self._rng = rng
        self._modulus = float(2**counter_bits)

    def account(self, rates_per_cycle: np.ndarray, cycles: float) -> np.ndarray:
        """Credit events for ``cycles`` executed at the given mix rates.

        Returns the (jittered) increments actually credited — the same
        values a consumer would obtain by snapshotting around the call.
        """
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        jitter = self.draw_jitter(cycles)
        increments = rates_per_cycle * cycles
        if jitter != 1.0:
            increments = increments * jitter
        self._counts = (self._counts + increments) % self._modulus
        return increments

    def draw_jitter(self, cycles: float) -> float:
        """The multiplicative jitter factor for one accounting interval.

        Split out of :meth:`account` so the batched tick path can reuse
        a cached unjittered increment vector: the tick loop draws the
        factor here (consuming the same RNG sequence as :meth:`account`)
        and credits ``base_increments * jitter`` via :meth:`credit`.
        """
        if self._jitter_sigma and cycles > 0:
            return max(0.0, 1.0 + self._rng.gauss(0.0, self._jitter_sigma))
        return 1.0

    def credit(self, increments: np.ndarray) -> None:
        """Fold precomputed per-event increments into the counters."""
        counts = self._counts
        counts += increments
        counts %= self._modulus

    def bind_row(self, row: np.ndarray) -> None:
        """Re-point counter storage at a shared matrix row.

        The batched tick path stacks all banks of a system into one
        matrix so the wraparound reduction runs once per tick instead of
        once per credit.  The current counts are copied into ``row``;
        afterwards all in-place mutation happens through the shared
        storage, so :meth:`credit` and matrix-level updates see the same
        numbers.
        """
        if row.shape != self._counts.shape:
            raise ValueError("row shape does not match the counter bank")
        row[:] = self._counts
        self._counts = row

    @property
    def modulus(self) -> float:
        """Wraparound modulus (``2**counter_bits``)."""
        return self._modulus

    def snapshot(self) -> CounterSnapshot:
        """Read all counters atomically (returns a copy)."""
        return CounterSnapshot(self._counts.copy(), self._modulus)

    @property
    def raw(self) -> np.ndarray:
        """Current counter values (read-only view for tests/analysis)."""
        view = self._counts.view()
        view.flags.writeable = False
        return view

    def __repr__(self) -> str:
        return f"CounterBank(cpu={self.cpu_id}, total={self._counts.sum():.3g})"
