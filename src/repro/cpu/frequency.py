"""Execution model: cycles, instruction progress, SMT contention.

The paper's P4 Xeons have no DVFS (§2.3), so the clock is fixed; the
only execution-rate levers are ``hlt`` throttling (duty cycle 0 while
halted) and SMT resource sharing.

SMT model: two threads on one core share execution resources.  With the
sibling busy, each thread retires ``smt_thread_factor`` of its solo
throughput (default 0.62, i.e. a combined speedup of ~1.24x — in the
range reported for the P4's Hyper-Threading).  Event counts, and hence
estimated energy, scale with *actually executed* cycles, so per-thread
power under SMT falls out of the counter model automatically.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class ExecutionModel:
    """Converts wall time into executed cycles and instructions.

    Attributes
    ----------
    freq_hz:
        Fixed core clock.
    smt_thread_factor:
        Per-thread throughput multiplier while the SMT sibling is
        simultaneously executing.
    """

    freq_hz: float = 2.2e9
    smt_thread_factor: float = 0.62

    def __post_init__(self) -> None:
        if self.freq_hz <= 0:
            raise ValueError("frequency must be positive")
        if not 0.0 < self.smt_thread_factor <= 1.0:
            raise ValueError("smt_thread_factor must be in (0, 1]")

    def effective_cycles(self, dt_s: float, sibling_busy: bool) -> float:
        """Core cycles a thread effectively uses during ``dt_s``.

        Halted time must be excluded by the caller (pass only busy time).
        """
        if dt_s < 0:
            raise ValueError("dt must be non-negative")
        cycles = self.freq_hz * dt_s
        if sibling_busy:
            cycles *= self.smt_thread_factor
        return cycles

    def instructions(self, cycles: float, ipc: float) -> float:
        """Instructions retired for ``cycles`` at a mix's IPC."""
        if ipc <= 0:
            raise ValueError("IPC must be positive")
        return cycles * ipc
