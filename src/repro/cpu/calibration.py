"""Thermal-model calibration (paper §4.2).

Two procedures:

* :func:`calibrate_from_step` — the paper's *offline* method: "starting
  a task producing a maximum of heat on a processor formerly idle,
  recording the temperature values over time and fitting an exponential
  function to the experimental data".
* :class:`OnlineThermalCalibrator` — the paper's sketched *online*
  alternative: "simultaneously observing temperature (read from the
  chip's thermal diode) and power consumption (derived from energy
  estimation) to account for changes in the cooling system, e.g. the
  activation or deactivation of additional fans, or changes in the
  ambient temperature."

The online fit uses the exact discrete-time solution of the RC network:
with ``a = exp(-dt / (R*C))``,

    T[k+1] = a * T[k] + (1 - a) * (T_ambient + R * P[k])

which is linear in ``(a, b, c) = (a, (1-a)*R, (1-a)*T_ambient)`` and is
solved by least squares over a window of (temperature, power) samples.
Identifiability requires thermal *movement* — a constant-power window
is rejected — and the coarse diode quantisation is tolerated by fitting
over many samples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cpu.thermal import ThermalParams


@dataclass(frozen=True, slots=True)
class CalibrationResult:
    """A fitted thermal model plus fit diagnostics."""

    params: ThermalParams
    residual_rms_k: float
    n_samples: int


def calibrate_from_step(
    times_s: np.ndarray,
    temps_c: np.ndarray,
    power_w: float,
    ambient_c: float | None = None,
) -> CalibrationResult:
    """Fit R and C from a heat-step response (the §4.2 offline method).

    Parameters
    ----------
    times_s / temps_c:
        Temperature trace recorded after a constant ``power_w`` load
        starts on a previously idle (ambient-temperature) processor.
    ambient_c:
        Known ambient temperature; defaults to the fitted initial value.
    """
    from repro.analysis.timeseries import fit_exponential_rise

    times_s = np.asarray(times_s, dtype=float)
    temps_c = np.asarray(temps_c, dtype=float)
    if power_w <= 0:
        raise ValueError("step power must be positive")
    initial, final, tau = fit_exponential_rise(times_s, temps_c)
    base = initial if ambient_c is None else ambient_c
    r = (final - base) / power_w
    if r <= 0:
        raise ValueError(
            f"fitted steady state {final:.2f} C not above ambient {base:.2f} C"
        )
    params = ThermalParams(r_k_per_w=r, c_j_per_k=tau / r, ambient_c=base)
    predicted = final + (initial - final) * np.exp(-(times_s - times_s[0]) / tau)
    rms = float(np.sqrt(np.mean((predicted - temps_c) ** 2)))
    return CalibrationResult(params=params, residual_rms_k=rms,
                             n_samples=len(times_s))


class OnlineThermalCalibrator:
    """Continuously re-fit R/C/ambient from diode + estimator samples."""

    def __init__(
        self,
        dt_s: float,
        window: int = 600,
        min_temp_span_k: float = 2.0,
    ) -> None:
        if dt_s <= 0:
            raise ValueError("sample period must be positive")
        if window < 10:
            raise ValueError("window must hold at least 10 samples")
        if min_temp_span_k <= 0:
            raise ValueError("minimum temperature span must be positive")
        self.dt_s = dt_s
        self.window = window
        self.min_temp_span_k = min_temp_span_k
        self._temps: list[float] = []
        self._powers: list[float] = []

    def observe(self, diode_temp_c: float, estimated_power_w: float) -> None:
        """Feed one simultaneous (temperature, power) observation."""
        self._temps.append(float(diode_temp_c))
        self._powers.append(float(estimated_power_w))
        if len(self._temps) > self.window:
            self._temps.pop(0)
            self._powers.pop(0)

    @property
    def n_samples(self) -> int:
        return len(self._temps)

    def ready(self) -> bool:
        """Enough samples and enough thermal movement to identify R/C?"""
        if len(self._temps) < max(10, self.window // 4):
            return False
        return (max(self._temps) - min(self._temps)) >= self.min_temp_span_k

    def fit(self) -> CalibrationResult:
        """Least-squares fit of the discrete RC update over the window."""
        if not self.ready():
            raise ValueError(
                "not enough thermal movement to calibrate "
                f"({self.n_samples} samples, "
                f"span {max(self._temps, default=0) - min(self._temps, default=0):.2f} K)"
            )
        temps = np.asarray(self._temps)
        powers = np.asarray(self._powers)
        design = np.column_stack(
            [temps[:-1], powers[:-1], np.ones(len(temps) - 1)]
        )
        target = temps[1:]
        (a, b, c), *_ = np.linalg.lstsq(design, target, rcond=None)
        if not 0.0 < a < 1.0:
            raise ValueError(f"fit produced non-physical decay factor a={a:.4f}")
        one_minus_a = 1.0 - a
        r = b / one_minus_a
        ambient = c / one_minus_a
        tau = -self.dt_s / math.log(a)
        if r <= 0 or tau <= 0:
            raise ValueError(
                f"fit produced non-physical parameters (R={r:.4f}, tau={tau:.2f})"
            )
        params = ThermalParams(r_k_per_w=r, c_j_per_k=tau / r, ambient_c=ambient)
        predicted = design @ np.array([a, b, c])
        rms = float(np.sqrt(np.mean((predicted - target) ** 2)))
        return CalibrationResult(params=params, residual_rms_k=rms,
                                 n_samples=self.n_samples)
