"""Simulated time.

Time is kept as an integer count of ticks to avoid floating-point drift
over long runs; one tick is a configurable number of milliseconds
(default 10 ms, i.e. the granularity of a HZ=100 kernel timer).
"""

from __future__ import annotations


class Clock:
    """Monotonic simulated clock advancing in fixed ticks.

    Parameters
    ----------
    tick_ms:
        Length of one tick in milliseconds.  Must be a positive integer.
    """

    __slots__ = ("tick_ms", "_ticks")

    def __init__(self, tick_ms: int = 10, ticks: int = 0) -> None:
        if tick_ms <= 0:
            raise ValueError(f"tick_ms must be positive, got {tick_ms}")
        if ticks < 0:
            raise ValueError(f"ticks must be non-negative, got {ticks}")
        self.tick_ms = int(tick_ms)
        self._ticks = int(ticks)

    @classmethod
    def at(cls, tick_ms: int, ticks: int) -> "Clock":
        """A clock restored to an arbitrary tick count.

        Used when resuming a checkpointed run: the clock continues from
        the tick the snapshot was taken at, so tick-phase arithmetic
        (balance staggering, sampling) lines up with the original run.
        """
        return cls(tick_ms, ticks=ticks)

    @property
    def ticks(self) -> int:
        """Number of whole ticks elapsed since the start of the run."""
        return self._ticks

    @property
    def now_ms(self) -> int:
        """Current simulated time in milliseconds."""
        return self._ticks * self.tick_ms

    @property
    def now_s(self) -> float:
        """Current simulated time in seconds."""
        return self._ticks * self.tick_ms / 1000.0

    @property
    def tick_s(self) -> float:
        """Length of one tick in seconds."""
        return self.tick_ms / 1000.0

    def advance(self) -> int:
        """Advance the clock by one tick and return the new tick count."""
        self._ticks += 1
        return self._ticks

    def ticks_for_ms(self, duration_ms: float) -> int:
        """Number of ticks covering ``duration_ms`` (rounded up, minimum 1)."""
        if duration_ms <= 0:
            raise ValueError(f"duration must be positive, got {duration_ms}")
        whole, rem = divmod(int(duration_ms), self.tick_ms)
        return max(1, whole + (1 if rem else 0))

    def __repr__(self) -> str:
        return f"Clock(tick_ms={self.tick_ms}, now_ms={self.now_ms})"
