"""Deterministic named random streams.

Every stochastic component of the simulator obtains its own
:class:`random.Random` instance from a :class:`RngFactory`, keyed by a
stable stream name.  Two runs with the same root seed therefore produce
identical traces regardless of component construction order, and adding a
new consumer of randomness does not perturb existing streams.
"""

from __future__ import annotations

import hashlib
import random


class RngFactory:
    """Factory deriving independent random streams from one root seed."""

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object so state advances continuously within a run.
        """
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(self._derive(name))
            self._streams[name] = rng
        return rng

    def fresh(self, name: str) -> random.Random:
        """Return a brand-new generator for ``name`` (not cached).

        Useful for components that are re-created between experiment
        repetitions but must not share state with the cached stream.
        """
        return random.Random(self._derive(name))

    def snapshot_state(self) -> dict[str, tuple]:
        """Exact generator state of every stream created so far.

        Keys are stream names; values are ``random.Random.getstate()``
        tuples.  Together with the root seed this captures the factory
        completely: restoring it replays the same draws in the same
        order from the capture point on.
        """
        return {name: rng.getstate() for name, rng in self._streams.items()}

    def restore_state(self, states: dict[str, tuple]) -> None:
        """Restore stream states captured by :meth:`snapshot_state`.

        Streams absent from ``states`` are left untouched; streams not
        yet created are instantiated first (so the restored factory does
        not depend on which streams happened to exist already).
        """
        for name, state in states.items():
            self.stream(name).setstate(state)

    def _derive(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def __repr__(self) -> str:
        return f"RngFactory(seed={self.seed}, streams={len(self._streams)})"
