"""Typed event records for tracing scheduler activity.

These are *simulation trace* events (migrations, throttling transitions,
task lifecycle), not to be confused with the hardware *event monitoring
counter* events in :mod:`repro.cpu.events`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

#: Version tag for serialised event records; bump on layout changes.
EVENT_SCHEMA = 1


class EventKind(enum.Enum):
    """Kinds of trace events emitted by the simulator."""

    TASK_START = "task_start"
    TASK_EXIT = "task_exit"
    TASK_BLOCK = "task_block"
    TASK_WAKE = "task_wake"
    MIGRATION = "migration"
    THROTTLE_ON = "throttle_on"
    THROTTLE_OFF = "throttle_off"
    BALANCE_PASS = "balance_pass"
    PHASE_CHANGE = "phase_change"


class MigrationReason(enum.Enum):
    """Why a task was moved between runqueues.

    The paper distinguishes migrations made by the (energy-extended) load
    balancer from active hot-task migrations; exchanges are the cool tasks
    moved back to preserve load balance (§4.4, §4.5).
    """

    LOAD_BALANCE = "load_balance"
    ENERGY_BALANCE = "energy_balance"
    HOT_TASK = "hot_task"
    EXCHANGE = "exchange"
    PLACEMENT = "placement"


@dataclass(frozen=True, slots=True)
class EventRecord:
    """One trace event.

    Attributes
    ----------
    time_ms:
        Simulated time the event occurred.
    kind:
        The event class.
    cpu:
        Logical CPU id the event pertains to (destination CPU for
        migrations), or ``-1`` when not CPU-specific.
    pid:
        Task id, or ``-1`` when not task-specific.
    detail:
        Free-form metadata (e.g. source CPU and reason for migrations).
    """

    time_ms: int
    kind: EventKind
    cpu: int = -1
    pid: int = -1
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-ready form.

        ``detail`` is key-sorted (the ``CounterSet.as_dict`` convention)
        so serialised traces are stable regardless of how the detail
        dict was built.
        """
        return {
            "schema": EVENT_SCHEMA,
            "time_ms": self.time_ms,
            "kind": self.kind.value,
            "cpu": self.cpu,
            "pid": self.pid,
            "detail": {k: self.detail[k] for k in sorted(self.detail)},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EventRecord":
        """Rebuild a record serialised by :meth:`to_dict`.

        Rejects unknown schema versions instead of guessing at field
        meanings; a record without a ``schema`` key is assumed current.
        """
        schema = data.get("schema", EVENT_SCHEMA)
        if schema != EVENT_SCHEMA:
            raise ValueError(
                f"unsupported event schema {schema!r}; "
                f"this build reads schema {EVENT_SCHEMA}"
            )
        return cls(
            time_ms=int(data["time_ms"]),
            kind=EventKind(data["kind"]),
            cpu=int(data.get("cpu", -1)),
            pid=int(data.get("pid", -1)),
            detail=dict(data.get("detail", {})),
        )
