"""Typed event records for tracing scheduler activity.

These are *simulation trace* events (migrations, throttling transitions,
task lifecycle), not to be confused with the hardware *event monitoring
counter* events in :mod:`repro.cpu.events`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class EventKind(enum.Enum):
    """Kinds of trace events emitted by the simulator."""

    TASK_START = "task_start"
    TASK_EXIT = "task_exit"
    TASK_BLOCK = "task_block"
    TASK_WAKE = "task_wake"
    MIGRATION = "migration"
    THROTTLE_ON = "throttle_on"
    THROTTLE_OFF = "throttle_off"
    BALANCE_PASS = "balance_pass"
    PHASE_CHANGE = "phase_change"


class MigrationReason(enum.Enum):
    """Why a task was moved between runqueues.

    The paper distinguishes migrations made by the (energy-extended) load
    balancer from active hot-task migrations; exchanges are the cool tasks
    moved back to preserve load balance (§4.4, §4.5).
    """

    LOAD_BALANCE = "load_balance"
    ENERGY_BALANCE = "energy_balance"
    HOT_TASK = "hot_task"
    EXCHANGE = "exchange"
    PLACEMENT = "placement"


@dataclass(frozen=True, slots=True)
class EventRecord:
    """One trace event.

    Attributes
    ----------
    time_ms:
        Simulated time the event occurred.
    kind:
        The event class.
    cpu:
        Logical CPU id the event pertains to (destination CPU for
        migrations), or ``-1`` when not CPU-specific.
    pid:
        Task id, or ``-1`` when not task-specific.
    detail:
        Free-form metadata (e.g. source CPU and reason for migrations).
    """

    time_ms: int
    kind: EventKind
    cpu: int = -1
    pid: int = -1
    detail: dict = field(default_factory=dict)
