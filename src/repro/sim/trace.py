"""Tracing: time series, event logs, and named counters.

A :class:`Tracer` is threaded through the simulator; components record
scalar series (thermal power per CPU, ...), discrete events (migrations,
throttle transitions), and monotonic counters (jobs completed, ...).
Sampling of series is decimated to a configurable interval so a 15-minute
run does not hold millions of points.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

import numpy as np

from repro.sim.events import EventKind, EventRecord


class TimeSeries:
    """Append-only (time, value) series with numpy export."""

    __slots__ = ("name", "_t", "_v")

    def __init__(self, name: str) -> None:
        self.name = name
        self._t: list[float] = []
        self._v: list[float] = []

    def append(self, t_s: float, value: float) -> None:
        self._t.append(t_s)
        self._v.append(value)

    def __len__(self) -> int:
        return len(self._t)

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._t, dtype=float)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._v, dtype=float)

    def last(self) -> float:
        if not self._v:
            raise ValueError(f"series {self.name!r} is empty")
        return self._v[-1]

    def mean(self) -> float:
        if not self._v:
            raise ValueError(f"series {self.name!r} is empty")
        return float(np.mean(self._v))

    def __repr__(self) -> str:
        return f"TimeSeries({self.name!r}, n={len(self)})"


class CounterSet:
    """Named monotonic counters."""

    def __init__(self) -> None:
        self._counts: dict[str, int] = defaultdict(int)

    def add(self, name: str, amount: int = 1) -> None:
        self._counts[name] += amount

    def get(self, name: str, default: int = 0) -> int:
        """Current count; ``default`` for a never-incremented counter.

        Counters only exist once :meth:`add` touches them, so consumers
        reading before the first event (zero-duration runs, idle
        workloads, reasons that never fired) must get 0 — never ``None``
        — or downstream arithmetic like ``scalar_summary`` breaks.
        """
        return self._counts.get(name, default)

    def as_dict(self) -> dict[str, int]:
        """Counters keyed by name, sorted so the mapping (and anything
        serialised from it — golden traces, invariant diffs) is stable
        regardless of the order events first fired."""
        return {name: self._counts[name] for name in sorted(self._counts)}

    def __repr__(self) -> str:
        return f"CounterSet({dict(self._counts)!r})"


class Tracer:
    """Collects series, events, and counters for one simulation run.

    Parameters
    ----------
    sample_interval_s:
        Decimation interval: at most one sample of a series is kept per
        ``[k*interval, (k+1)*interval)`` bucket, so a sample offered at
        any time — including just after ``t=0`` — is never dropped for
        being "too early".  ``0`` records every sample offered.
    """

    def __init__(self, sample_interval_s: float = 0.5) -> None:
        interval = float(sample_interval_s)
        if not interval >= 0.0:  # also rejects NaN
            raise ValueError(
                f"sample_interval_s must be >= 0, got {sample_interval_s!r}"
            )
        self.sample_interval_s = interval
        self.series: dict[str, TimeSeries] = {}
        self.events: list[EventRecord] = []
        self.counters = CounterSet()
        self._last_bucket: dict[str, int] = {}

    # -- series -----------------------------------------------------------
    def sample(self, name: str, t_s: float, value: float) -> None:
        """Record ``value`` for series ``name`` subject to decimation."""
        interval = self.sample_interval_s
        if interval > 0.0:
            bucket = int(t_s // interval)
            if self._last_bucket.get(name) == bucket:
                return
            self._last_bucket[name] = bucket
        series = self.series.get(name)
        if series is None:
            series = TimeSeries(name)
            self.series[name] = series
        series.append(t_s, value)

    def get_series(self, name: str) -> TimeSeries:
        try:
            return self.series[name]
        except KeyError:
            raise KeyError(
                f"no series {name!r}; recorded: {sorted(self.series)}"
            ) from None

    def series_matching(self, prefix: str) -> list[TimeSeries]:
        """All series whose name starts with ``prefix``, sorted by name."""
        return [self.series[k] for k in sorted(self.series) if k.startswith(prefix)]

    # -- events -----------------------------------------------------------
    def event(self, record: EventRecord) -> None:
        self.events.append(record)

    def events_of(self, kind: EventKind) -> list[EventRecord]:
        return [e for e in self.events if e.kind is kind]

    def count_events(self, kind: EventKind, predicate=None) -> int:
        events: Iterable[EventRecord] = self.events_of(kind)
        if predicate is not None:
            events = (e for e in events if predicate(e))
        return sum(1 for _ in events)

    def __repr__(self) -> str:
        return (
            f"Tracer(series={len(self.series)}, events={len(self.events)}, "
            f"counters={len(self.counters.as_dict())})"
        )
