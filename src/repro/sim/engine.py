"""The tick loop.

The :class:`Engine` owns the clock and a list of components implementing
:class:`TickComponent`.  Each simulated tick it calls every component's
``tick`` hook in registration order.  Registration order therefore defines
the intra-tick phase order; the simulator registers (1) the scheduler /
execution step, (2) the thermal step, (3) the throttle controller, and
(4) the workload driver.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.sim.clock import Clock
from repro.sim.trace import Tracer


@runtime_checkable
class TickComponent(Protocol):
    """Anything advanced once per simulated tick."""

    def tick(self, clock: Clock) -> None:
        """Advance the component across the tick that just elapsed."""
        ...


class Engine:
    """Fixed-step simulation driver.

    Parameters
    ----------
    clock:
        The shared simulated clock.
    tracer:
        Shared trace sink; exposed so callers can inspect results.
    """

    def __init__(self, clock: Clock, tracer: Tracer | None = None) -> None:
        self.clock = clock
        self.tracer = tracer if tracer is not None else Tracer()
        self._components: list[TickComponent] = []
        self._stop_requested = False

    def register(self, component: TickComponent) -> None:
        """Append ``component`` to the per-tick call order."""
        if not isinstance(component, TickComponent):
            raise TypeError(f"{component!r} does not implement tick(clock)")
        self._components.append(component)

    def request_stop(self) -> None:
        """Ask the engine to stop after the current tick completes."""
        self._stop_requested = True

    def run_for(self, seconds: float) -> None:
        """Run the simulation for ``seconds`` of simulated time."""
        if seconds <= 0:
            raise ValueError(f"duration must be positive, got {seconds}")
        self.run_ticks(self.clock.ticks_for_ms(seconds * 1000.0))

    def run_until_tick(self, total_ticks: int) -> None:
        """Run until the clock reaches ``total_ticks`` whole ticks.

        A no-op when the clock is already there — this is the resume
        primitive: an engine rebuilt from a checkpoint at tick T
        finishes a ``run_for(D)`` run with
        ``run_until_tick(clock.ticks_for_ms(D * 1000))``.
        """
        if total_ticks < 0:
            raise ValueError(f"total_ticks must be non-negative, got {total_ticks}")
        remaining = total_ticks - self.clock.ticks
        if remaining > 0:
            self.run_ticks(remaining)

    def run_ticks(self, n_ticks: int) -> None:
        """Run exactly ``n_ticks`` ticks (or fewer if a stop is requested)."""
        if n_ticks < 0:
            raise ValueError(f"n_ticks must be non-negative, got {n_ticks}")
        self._stop_requested = False
        clock = self.clock
        components = self._components
        for _ in range(n_ticks):
            clock.advance()
            for component in components:
                component.tick(clock)
            if self._stop_requested:
                break

    def __repr__(self) -> str:
        return f"Engine(t={self.clock.now_s:.2f}s, components={len(self._components)})"
