"""Discrete-time simulation substrate.

The engine advances the simulated world in fixed *ticks*, mirroring the
timer-tick-driven structure of the Linux 2.6 scheduler the paper modifies.
All stochastic behaviour draws from named, seed-derived random streams so
experiments are reproducible bit-for-bit.
"""

from repro.sim.clock import Clock
from repro.sim.engine import Engine, TickComponent
from repro.sim.events import EventKind, EventRecord
from repro.sim.rng import RngFactory
from repro.sim.trace import CounterSet, TimeSeries, Tracer

__all__ = [
    "Clock",
    "CounterSet",
    "Engine",
    "EventKind",
    "EventRecord",
    "RngFactory",
    "TickComponent",
    "TimeSeries",
    "Tracer",
]
