"""repro — reproduction of Merkel & Bellosa, *Balancing Power
Consumption in Multiprocessor Systems* (EuroSys 2006).

The package implements the paper's two contributions — per-task energy
profiles from event monitoring counters, and energy-aware multiprocessor
scheduling (energy balancing, hot task migration, initial placement) —
on top of a fully simulated SMP/SMT/NUMA substrate: synthetic PMCs, a
calibrated linear energy estimator, an RC thermal model, ``hlt``
throttling, and a Linux-2.6-style runqueue/domain scheduler.

Quickstart::

    from repro import (MachineSpec, SystemConfig, compare_policies,
                       mixed_table2_workload)

    config = SystemConfig(machine=MachineSpec.ibm_x445(smt=False),
                          max_power_per_cpu_w=60.0)
    cmp = compare_policies(config, mixed_table2_workload(3), duration_s=300)
    print(f"throughput gain: {cmp.throughput_gain:+.1%}")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.api import (
    PolicyComparison,
    ReplicatedComparison,
    RunOptions,
    SimulationResult,
    compare_policies,
    run_replicated,
    run_simulation,
)
from repro.config import SystemConfig
from repro.core.policy import (
    EnergyAwareConfig,
    Policy,
    PolicyDefinition,
    PolicySpec,
    policy_names,
)
from repro.obs import ObservabilityConfig
from repro.core.profile import ProfileConfig
from repro.cpu.power import PowerModelParams
from repro.cpu.thermal import ThermalParams
from repro.cpu.throttle import ThrottleConfig
from repro.cpu.topology import MachineSpec, Topology
from repro.system import System
from repro.workloads.generator import (
    WorkloadSpec,
    TaskSpec,
    homogeneity_scenario,
    homogeneity_sweep,
    mixed_table2_workload,
    short_task_storm,
    single_program_workload,
)
from repro.scenario import Scenario, load_scenario, parse_scenario
from repro.workloads.programs import PROGRAMS, ProgramSpec, program
from repro.workloads.traces import PowerTrace

__version__ = "1.0.0"

__all__ = [
    "EnergyAwareConfig",
    "MachineSpec",
    "ObservabilityConfig",
    "PROGRAMS",
    "Policy",
    "PolicyComparison",
    "PolicyDefinition",
    "PolicySpec",
    "PowerModelParams",
    "PowerTrace",
    "ReplicatedComparison",
    "RunOptions",
    "Scenario",
    "ProfileConfig",
    "ProgramSpec",
    "SimulationResult",
    "System",
    "SystemConfig",
    "TaskSpec",
    "ThermalParams",
    "ThrottleConfig",
    "Topology",
    "WorkloadSpec",
    "compare_policies",
    "homogeneity_scenario",
    "homogeneity_sweep",
    "load_scenario",
    "mixed_table2_workload",
    "parse_scenario",
    "policy_names",
    "program",
    "run_replicated",
    "run_simulation",
    "short_task_storm",
    "single_program_workload",
    "__version__",
]
