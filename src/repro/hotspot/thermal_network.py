"""Two-level compact thermal model: unit nodes over a shared spreader.

A minimal instance of the compact models the paper cites ([17] Huang et
al.; used by [21] Lee & Skadron for counter-driven multi-temperature
estimation): each functional unit is an RC node coupled to a common
spreader/heat-sink node, which is the single RC of §4.2:

    C_u dT_u/dt = P_u - (T_u - T_s) / R_u            (per unit u)
    C_s dT_s/dt = sum_u (T_u - T_s) / R_u - (T_s - T_amb) / R_s

Unit nodes are small and fast (tau ~ a second); the spreader is the
slow node (tau ~ tens of seconds).  Integration is explicit Euler with
sub-stepping bounded by the fastest time constant, which is ample for
10 ms simulator ticks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hotspot.units import N_UNITS


def _default_unit_r() -> tuple[float, ...]:
    # K/W from each unit to the spreader: FRONTEND, INT_ALU, FPU, LSU.
    return (0.45, 0.80, 0.90, 0.60)


def _default_unit_c() -> tuple[float, ...]:
    # J/K: small local capacitances -> unit taus of ~0.5-1.5 s.
    return (2.0, 1.2, 1.2, 1.5)


@dataclass(frozen=True, slots=True)
class UnitThermalParams:
    """Parameters of the two-level network.

    Attributes
    ----------
    unit_r_k_per_w / unit_c_j_per_k:
        Per-unit RC to the spreader node.
    spreader_r_k_per_w / spreader_c_j_per_k:
        The §4.2 package RC (spreader/heat sink to ambient).
    ambient_c:
        Ambient temperature.
    """

    unit_r_k_per_w: tuple[float, ...] = field(default_factory=_default_unit_r)
    unit_c_j_per_k: tuple[float, ...] = field(default_factory=_default_unit_c)
    spreader_r_k_per_w: float = 0.30
    spreader_c_j_per_k: float = 66.7
    ambient_c: float = 25.0

    def __post_init__(self) -> None:
        if len(self.unit_r_k_per_w) != N_UNITS or len(self.unit_c_j_per_k) != N_UNITS:
            raise ValueError(f"need {N_UNITS} per-unit R and C values")
        if any(r <= 0 for r in self.unit_r_k_per_w):
            raise ValueError("unit resistances must be positive")
        if any(c <= 0 for c in self.unit_c_j_per_k):
            raise ValueError("unit capacitances must be positive")
        if self.spreader_r_k_per_w <= 0 or self.spreader_c_j_per_k <= 0:
            raise ValueError("spreader RC must be positive")

    @property
    def min_tau_s(self) -> float:
        return min(
            r * c for r, c in zip(self.unit_r_k_per_w, self.unit_c_j_per_k)
        )

    def steady_state(self, unit_powers_w: np.ndarray) -> np.ndarray:
        """Equilibrium unit temperatures for constant unit powers."""
        unit_powers_w = np.asarray(unit_powers_w, dtype=float)
        total = float(unit_powers_w.sum())
        spreader = self.ambient_c + total * self.spreader_r_k_per_w
        return spreader + unit_powers_w * np.asarray(self.unit_r_k_per_w)


class MultiUnitThermalModel:
    """Integrates the two-level network for one package."""

    def __init__(self, params: UnitThermalParams, initial_c: float | None = None):
        self.params = params
        start = params.ambient_c if initial_c is None else float(initial_c)
        self._unit_t = np.full(N_UNITS, start, dtype=float)
        self._spreader_t = start
        self._unit_r = np.asarray(params.unit_r_k_per_w)
        self._unit_c = np.asarray(params.unit_c_j_per_k)
        # Euler sub-step bounded well below the fastest time constant.
        self._max_substep = params.min_tau_s / 5.0

    @property
    def unit_temps_c(self) -> np.ndarray:
        view = self._unit_t.view()
        view.flags.writeable = False
        return view

    @property
    def spreader_temp_c(self) -> float:
        return self._spreader_t

    @property
    def hottest_unit_temp_c(self) -> float:
        return float(self._unit_t.max())

    def hottest_unit(self) -> int:
        """Index of the hottest functional unit."""
        return int(self._unit_t.argmax())

    def step(self, unit_powers_w: np.ndarray, dt_s: float) -> np.ndarray:
        """Advance ``dt_s`` at the given per-unit powers; return temps."""
        if dt_s < 0:
            raise ValueError("dt must be non-negative")
        unit_powers_w = np.asarray(unit_powers_w, dtype=float)
        if unit_powers_w.shape != (N_UNITS,):
            raise ValueError(f"unit powers must have shape ({N_UNITS},)")
        params = self.params
        remaining = dt_s
        while remaining > 1e-12:
            h = min(remaining, self._max_substep)
            to_spreader = (self._unit_t - self._spreader_t) / self._unit_r
            d_units = (unit_powers_w - to_spreader) / self._unit_c
            d_spreader = (
                to_spreader.sum()
                - (self._spreader_t - params.ambient_c) / params.spreader_r_k_per_w
            ) / params.spreader_c_j_per_k
            self._unit_t += d_units * h
            self._spreader_t += d_spreader * h
            remaining -= h
        return self.unit_temps_c

    def reset(self, temp_c: float | None = None) -> None:
        start = self.params.ambient_c if temp_c is None else float(temp_c)
        self._unit_t[:] = start
        self._spreader_t = start
