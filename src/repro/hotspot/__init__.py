"""Functional-unit hotspot extension (paper §7).

The paper's future-work section: "a more elaborate thermal model
featuring multiple temperatures ... characterize tasks not only by
their power consumption, but also by the location at which energy is
dissipated.  This way, energy-aware scheduling would even be beneficial
for tasks having the same power consumption, if they dissipate energy
at different functional units, as is the case with floating point and
integer applications."

This subpackage builds that extension:

* :mod:`repro.hotspot.units` — functional units and the event-to-unit
  energy attribution matrix (counters already localise activity);
* :mod:`repro.hotspot.thermal_network` — a two-level compact thermal
  model (cf. [17] in the paper): per-unit RC nodes over a shared
  spreader/heat-sink node;
* :mod:`repro.hotspot.profiles` — per-task *unit power vectors*, the
  multi-dimensional generalisation of §3.3's energy profiles;
* :mod:`repro.hotspot.experiment` — a compact scheduler experiment
  showing that unit-aware balancing beats total-power balancing for
  workloads of equal-power integer and floating-point tasks (and ties
  when all tasks stress the same unit).
"""

from repro.hotspot.experiment import (
    HotspotExperimentConfig,
    HotspotResult,
    run_hotspot_experiment,
)
from repro.hotspot.profiles import UnitEnergyProfile
from repro.hotspot.thermal_network import MultiUnitThermalModel, UnitThermalParams
from repro.hotspot.units import (
    EVENT_UNIT_MATRIX,
    N_UNITS,
    FunctionalUnit,
    unit_power_vector,
)

__all__ = [
    "EVENT_UNIT_MATRIX",
    "FunctionalUnit",
    "HotspotExperimentConfig",
    "HotspotResult",
    "MultiUnitThermalModel",
    "N_UNITS",
    "UnitEnergyProfile",
    "UnitThermalParams",
    "run_hotspot_experiment",
    "unit_power_vector",
]
