"""Functional units and event-to-unit energy attribution.

Event monitoring counters already localise activity on the chip — an
ALU-op count is energy spent in the integer cluster, an FP-op count in
the floating point unit, a memory access in the load/store machinery.
The attribution matrix below routes each event class's (weighted)
energy to the unit where it is dissipated; the static (base) power is
split by rough area fractions.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.cpu.events import N_EVENTS, HwEvent


class FunctionalUnit(enum.IntEnum):
    """Coarse on-chip heat sources."""

    FRONTEND = 0   #: fetch/decode/retire, branch machinery
    INT_ALU = 1    #: integer execution cluster
    FPU = 2        #: floating point / SIMD unit
    LSU = 3        #: load/store unit, L1/L2 interface


N_UNITS: int = len(FunctionalUnit)

#: Row per event, column per unit; rows sum to 1.
EVENT_UNIT_MATRIX: np.ndarray = np.zeros((N_EVENTS, N_UNITS))
EVENT_UNIT_MATRIX[HwEvent.UOPS_RETIRED, FunctionalUnit.FRONTEND] = 1.0
EVENT_UNIT_MATRIX[HwEvent.ALU_OPS, FunctionalUnit.INT_ALU] = 1.0
EVENT_UNIT_MATRIX[HwEvent.FP_OPS, FunctionalUnit.FPU] = 1.0
EVENT_UNIT_MATRIX[HwEvent.MEM_ACCESSES, FunctionalUnit.LSU] = 1.0
EVENT_UNIT_MATRIX[HwEvent.L2_MISSES, FunctionalUnit.LSU] = 1.0
EVENT_UNIT_MATRIX[HwEvent.BRANCHES, FunctionalUnit.FRONTEND] = 1.0
EVENT_UNIT_MATRIX.flags.writeable = False

#: Share of the package's static power dissipated in each unit
#: (rough area fractions: the frontend/caches dominate).
STATIC_POWER_SHARES: np.ndarray = np.array([0.40, 0.20, 0.25, 0.15])
STATIC_POWER_SHARES.flags.writeable = False


def unit_power_vector(
    rates_per_cycle: np.ndarray,
    weights_nj: np.ndarray,
    freq_hz: float,
    base_w: float,
    base_share: float = 1.0,
) -> np.ndarray:
    """Per-unit power (W) for a thread executing a mix.

    Each event class's linear power contribution is routed to units by
    :data:`EVENT_UNIT_MATRIX`; the static power ``base_w * base_share``
    is spread by :data:`STATIC_POWER_SHARES`.
    """
    rates_per_cycle = np.asarray(rates_per_cycle, dtype=float)
    if rates_per_cycle.shape != (N_EVENTS,):
        raise ValueError(f"rates must have shape ({N_EVENTS},)")
    if not 0.0 <= base_share <= 1.0:
        raise ValueError("base share must be in [0, 1]")
    event_power = rates_per_cycle * np.asarray(weights_nj, dtype=float) * freq_hz * 1e-9
    dynamic = event_power @ EVENT_UNIT_MATRIX
    return dynamic + base_w * base_share * STATIC_POWER_SHARES
