"""Per-task unit power vectors: §3.3 profiles, one dimension per unit.

"Characterize tasks not only by their power consumption, but also by
the location at which energy is dissipated" (§7).  Each unit gets its
own variable-period exponential average; the scalar §3.3 profile is the
vector's sum.
"""

from __future__ import annotations

import numpy as np

from repro.core.ewma import VariablePeriodEwma
from repro.core.profile import ProfileConfig
from repro.hotspot.units import N_UNITS


class UnitEnergyProfile:
    """Exponentially averaged per-unit power vector of one task."""

    __slots__ = ("_ewmas", "samples")

    def __init__(
        self,
        config: ProfileConfig,
        initial_powers_w: np.ndarray | None = None,
    ) -> None:
        self._ewmas = [
            VariablePeriodEwma(config.timeslice_s, config.weight_p)
            for _ in range(N_UNITS)
        ]
        if initial_powers_w is not None:
            initial_powers_w = np.asarray(initial_powers_w, dtype=float)
            if initial_powers_w.shape != (N_UNITS,):
                raise ValueError(f"initial powers must have shape ({N_UNITS},)")
            for ewma, value in zip(self._ewmas, initial_powers_w):
                ewma.prime(float(value))
        self.samples = 0

    @property
    def power_vector_w(self) -> np.ndarray:
        """Predicted per-unit power for the task's next timeslice."""
        return np.array([e.value for e in self._ewmas])

    @property
    def total_power_w(self) -> float:
        """The scalar §3.3 profile: the vector's sum."""
        return float(sum(e.value for e in self._ewmas))

    def record(self, unit_energy_j: np.ndarray, period_s: float) -> np.ndarray:
        """Fold in one execution interval's per-unit energies."""
        unit_energy_j = np.asarray(unit_energy_j, dtype=float)
        if unit_energy_j.shape != (N_UNITS,):
            raise ValueError(f"unit energies must have shape ({N_UNITS},)")
        if np.any(unit_energy_j < 0):
            raise ValueError("unit energies must be non-negative")
        if period_s <= 0:
            raise ValueError("period must be positive")
        self.samples += 1
        for ewma, energy in zip(self._ewmas, unit_energy_j):
            ewma.update(float(energy) / period_s, period_s)
        return self.power_vector_w

    def __repr__(self) -> str:
        vec = ", ".join(f"{v:.1f}" for v in self.power_vector_w)
        return f"UnitEnergyProfile([{vec}] W, samples={self.samples})"
