"""The §7 experiment: unit-aware vs total-power-aware scheduling.

The scenario the paper predicts a benefit for: tasks with the *same
total power* but different heat locations — an integer burner and a
floating-point burner, both 50 W.  Total-power balancing (the paper's
published policy) sees every queue as identical and never moves a task;
if the integer tasks happen to share a CPU, its INT cluster overheats
and unit-level throttling kicks in.  Unit-aware balancing swaps tasks so
every CPU runs a complementary mix, keeping every unit below the limit.

The runner is a compact, self-contained scheduler (round-robin queues,
periodic pairwise swaps, unit-level on/off throttling) — the full
:mod:`repro.system` machinery is not needed to demonstrate the effect.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.profile import ProfileConfig
from repro.cpu.power import GroundTruthPower, PowerModelParams
from repro.hotspot.profiles import UnitEnergyProfile
from repro.hotspot.thermal_network import MultiUnitThermalModel, UnitThermalParams
from repro.hotspot.units import N_UNITS, STATIC_POWER_SHARES, unit_power_vector

# Same-total-power flavours: integer cluster vs floating point unit.
FLAVOR_INTFIRE = (1.6, 1.9, 0.0, 0.15, 0.001, 0.30)
FLAVOR_FPFIRE = (1.2, 0.15, 1.5, 0.25, 0.001, 0.12)


@dataclass(frozen=True, slots=True)
class HotspotExperimentConfig:
    """Configuration of the §7 demonstration.

    Attributes
    ----------
    n_cpus / tasks:
        Machine size and the task list: a string of ``i`` (integer
        burner) and ``f`` (floating point burner) characters, assigned
        to CPUs round-robin in order — so ``"ifif"`` on two CPUs stacks
        both integer tasks on CPU 0 and both FP tasks on CPU 1 (the
        adversarial start a total-power balancer can never fix, since
        every queue's total power is identical).
    total_power_w:
        Package power of every task (identical by design).
    unit_temp_limit_c:
        Per-unit throttling limit.
    duration_s / tick_s / timeslice_s / balance_interval_s:
        Timing.
    phase_period_s:
        If set, every task *alternates* between the integer and the FP
        mix with this dwell (offset per task) — its total power never
        changes, only the heat location.  The policies then rely on the
        learned unit profiles tracking the moving hotspot.
    """

    n_cpus: int = 2
    tasks: str = "ifif"
    total_power_w: float = 50.0
    unit_temp_limit_c: float = 56.0
    duration_s: float = 180.0
    tick_s: float = 0.05
    timeslice_s: float = 0.1
    balance_interval_s: float = 1.0
    thermal: UnitThermalParams = field(default_factory=UnitThermalParams)
    phase_period_s: float | None = None

    def __post_init__(self) -> None:
        if self.n_cpus < 1:
            raise ValueError("need at least one CPU")
        if not self.tasks or any(c not in "if" for c in self.tasks):
            raise ValueError("tasks must be a non-empty string of 'i'/'f'")
        if self.tick_s <= 0 or self.duration_s <= 0:
            raise ValueError("durations must be positive")
        if self.phase_period_s is not None and self.phase_period_s <= 0:
            raise ValueError("phase period must be positive")


class _HotTask:
    """A task with true unit power vectors plus a learned profile.

    The scheduler never reads ``current_powers`` directly — decisions go
    through ``profile`` (the §3.3 machinery generalised per unit), so
    the experiment exercises the full estimate-then-decide loop.
    """

    __slots__ = ("name", "_vectors", "_phase", "phase_offset_s", "profile",
                 "busy_s")

    def __init__(
        self,
        name: str,
        vectors: tuple[np.ndarray, ...],
        phase_offset_s: float = 0.0,
    ) -> None:
        self.name = name
        self._vectors = vectors
        self._phase = 0
        self.phase_offset_s = phase_offset_s
        self.profile = UnitEnergyProfile(
            ProfileConfig(), initial_powers_w=vectors[0]
        )
        self.busy_s = 0.0

    def current_powers(self, sim_time_s: float, period_s: float | None) -> np.ndarray:
        if period_s is None or len(self._vectors) == 1:
            return self._vectors[0]
        phase = int((sim_time_s + self.phase_offset_s) / period_s)
        return self._vectors[phase % len(self._vectors)]

    @property
    def total_power_w(self) -> float:
        """Scheduler-visible total power (from the learned profile)."""
        return self.profile.total_power_w

    @property
    def unit_powers(self) -> np.ndarray:
        """Scheduler-visible unit power vector (the learned profile)."""
        return self.profile.power_vector_w


@dataclass
class HotspotResult:
    """Outcome of one policy run."""

    policy: str
    total_busy_s: float
    throttle_fraction: float
    max_unit_temp_c: float
    swaps: int
    hottest_unit_by_cpu: list[int]

    def throughput_vs(self, other: "HotspotResult") -> float:
        if other.total_busy_s <= 0:
            raise ValueError("reference run made no progress")
        return self.total_busy_s / other.total_busy_s - 1.0


def build_tasks(config: HotspotExperimentConfig) -> list[_HotTask]:
    """Materialise the task list with calibrated unit power vectors."""
    power = GroundTruthPower(PowerModelParams())
    params = power.params
    freq = 2.2e9
    dyn_target = config.total_power_w - params.base_active_w
    vectors = {}
    for kind, flavor in (("i", FLAVOR_INTFIRE), ("f", FLAVOR_FPFIRE)):
        rates = power.rates_for_dynamic_power(np.asarray(flavor), dyn_target, freq)
        vectors[kind] = unit_power_vector(
            rates, params.weights_nj, freq, params.base_active_w
        )
    tasks = []
    for index, kind in enumerate(config.tasks):
        name = f"{'intfire' if kind == 'i' else 'fpfire'}-{index}"
        if config.phase_period_s is None:
            task_vectors = (vectors[kind],)
        else:
            # Alternating tasks start in their named mix, then flip.
            other = "f" if kind == "i" else "i"
            task_vectors = (vectors[kind], vectors[other])
        tasks.append(
            _HotTask(
                name,
                task_vectors,
                phase_offset_s=index * (config.phase_period_s or 0.0) / 2.0,
            )
        )
    return tasks


def run_hotspot_experiment(
    config: HotspotExperimentConfig, policy: str
) -> HotspotResult:
    """Run one policy: ``none`` | ``total`` | ``unit``.

    ``total`` balances queue-average *total* power (the paper's scalar
    profile); ``unit`` balances queue-average *per-unit* power vectors,
    swapping the pair of tasks that most reduces the highest unit power
    of any queue.  Both preserve queue lengths (pure swaps).
    """
    if policy not in ("none", "total", "unit"):
        raise ValueError(f"unknown policy {policy!r}")
    tasks = build_tasks(config)
    queues: list[list[_HotTask]] = [[] for _ in range(config.n_cpus)]
    for i, task in enumerate(tasks):
        queues[i % config.n_cpus].append(task)
    thermal = [MultiUnitThermalModel(config.thermal) for _ in range(config.n_cpus)]
    halted_vector = (
        PowerModelParams().halted_package_w * STATIC_POWER_SHARES
    )
    throttled = [False] * config.n_cpus
    slice_ticks = max(1, round(config.timeslice_s / config.tick_s))
    balance_ticks = max(1, round(config.balance_interval_s / config.tick_s))
    n_ticks = int(config.duration_s / config.tick_s)
    throttled_ticks = 0
    max_unit_temp = 0.0
    swaps = 0
    rr_index = [0] * config.n_cpus

    def queue_unit_avg(queue: list[_HotTask]) -> np.ndarray:
        if not queue:
            return np.zeros(N_UNITS)
        return np.mean([t.unit_powers for t in queue], axis=0)

    def try_swap() -> int:
        """One pairwise swap per pass, chosen by the active policy."""
        if policy == "total":
            avgs = [
                float(queue_unit_avg(q).sum()) for q in queues
            ]
            hot, cool = int(np.argmax(avgs)), int(np.argmin(avgs))
            if avgs[hot] - avgs[cool] < 1.0 or not queues[hot] or not queues[cool]:
                return 0
            before = avgs[hot] - avgs[cool]
            best = None
            for a in queues[hot]:
                for b in queues[cool]:
                    delta = (a.total_power_w - b.total_power_w) / max(
                        1, len(queues[hot])
                    )
                    after = abs(before - 2 * delta)
                    if after < before - 0.5 and (best is None or after < best[0]):
                        best = (after, a, b)
            if best is None:
                return 0
            _, a, b = best
            queues[hot][queues[hot].index(a)] = b
            queues[cool][queues[cool].index(b)] = a
            return 1
        # unit policy: minimise the worst per-unit queue average.
        def worst_unit_power() -> float:
            return max(float(queue_unit_avg(q).max()) for q in queues)

        current = worst_unit_power()
        best = None
        for qa in range(config.n_cpus):
            for qb in range(qa + 1, config.n_cpus):
                for ia, a in enumerate(queues[qa]):
                    for ib, b in enumerate(queues[qb]):
                        queues[qa][ia], queues[qb][ib] = b, a
                        candidate = worst_unit_power()
                        queues[qa][ia], queues[qb][ib] = a, b
                        if candidate < current - 0.25 and (
                            best is None or candidate < best[0]
                        ):
                            best = (candidate, qa, ia, qb, ib)
        if best is None:
            return 0
        _, qa, ia, qb, ib = best
        queues[qa][ia], queues[qb][ib] = queues[qb][ib], queues[qa][ia]
        return 1

    for tick in range(1, n_ticks + 1):
        sim_time_s = tick * config.tick_s
        for cpu in range(config.n_cpus):
            queue = queues[cpu]
            model = thermal[cpu]
            if not queue:
                model.step(halted_vector, config.tick_s)
                continue
            running = queue[(tick // slice_ticks + rr_index[cpu]) % len(queue)]
            if throttled[cpu]:
                throttled_ticks += 1
                model.step(halted_vector, config.tick_s)
            else:
                running.busy_s += config.tick_s
                true_powers = running.current_powers(
                    sim_time_s, config.phase_period_s
                )
                model.step(true_powers, config.tick_s)
                # The per-unit energy estimate feeds the learned profile
                # the balancing policies actually read.
                running.profile.record(
                    true_powers * config.tick_s, config.tick_s
                )
            hottest = model.hottest_unit_temp_c
            if hottest > max_unit_temp:
                max_unit_temp = hottest
            if throttled[cpu]:
                if hottest <= config.unit_temp_limit_c - 1.0:
                    throttled[cpu] = False
            elif hottest > config.unit_temp_limit_c:
                throttled[cpu] = True
        if policy != "none" and tick % balance_ticks == 0:
            swaps += try_swap()

    total_busy = sum(t.busy_s for t in tasks)
    return HotspotResult(
        policy=policy,
        total_busy_s=total_busy,
        throttle_fraction=throttled_ticks / (n_ticks * config.n_cpus),
        max_unit_temp_c=max_unit_temp,
        swaps=swaps,
        hottest_unit_by_cpu=[m.hottest_unit() for m in thermal],
    )
