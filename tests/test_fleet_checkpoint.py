"""Fleet checkpointing: snapshot/restore round-trips bit-exactly.

The property under test is the same one the scalar checkpoint tests
assert (tests/test_resilience_checkpoint.py): a run that is snapshotted
at tick T, restored in a fresh engine, and continued to tick N must be
byte-identical to the uninterrupted run to tick N — for every member.
"""

from __future__ import annotations

import json

import pytest

from repro.core.policy import Policy
from repro.fleet import FLEET_CHECKPOINT_SCHEMA, FleetEngine
from repro.perf.scenarios import FLEET_SCENARIO
from repro.system import System

SEEDS = (1, 2, 3)
MID_TICKS = 120
TOTAL_TICKS = 260


def _build(seed: int) -> System:
    config, workload = FLEET_SCENARIO.build_member(seed)
    return System(config, workload, policy=Policy.coerce(FLEET_SCENARIO.policy))


def _engine() -> FleetEngine:
    return FleetEngine([_build(seed) for seed in SEEDS])


def _encode(engine: FleetEngine) -> list[str]:
    duration_s = engine.clock.ticks * engine.tick_ms / 1000.0
    return [
        json.dumps(result.scalar_summary(), sort_keys=True)
        for result in engine.results(duration_s)
    ]


class TestSnapshotRestore:
    def test_restored_run_is_byte_identical(self):
        straight = _engine()
        straight.run_ticks(TOTAL_TICKS)

        interrupted = _engine()
        interrupted.run_ticks(MID_TICKS)
        snapshot = interrupted.snapshot()
        # the snapshot must survive serialization, like the scalar
        # checkpoints the resilience layer writes to disk
        import pickle

        snapshot = pickle.loads(pickle.dumps(snapshot))
        restored = FleetEngine.restore(snapshot)
        assert restored.clock.ticks == MID_TICKS
        restored.run_ticks(TOTAL_TICKS - MID_TICKS)

        assert _encode(restored) == _encode(straight)

    def test_snapshot_does_not_perturb_the_run(self):
        """Snapshotting mid-run must not change the continuation."""
        straight = _engine()
        straight.run_ticks(TOTAL_TICKS)

        observed = _engine()
        observed.run_ticks(MID_TICKS)
        observed.snapshot()
        observed.run_ticks(TOTAL_TICKS - MID_TICKS)

        assert _encode(observed) == _encode(straight)

    def test_snapshot_header(self):
        engine = _engine()
        engine.run_ticks(10)
        snapshot = engine.snapshot()
        assert snapshot["schema"] == f"{FLEET_CHECKPOINT_SCHEMA}/1"
        assert snapshot["n_machines"] == len(SEEDS)
        assert snapshot["ticks"] == 10
        assert len(snapshot["members"]) == len(SEEDS)

    def test_unknown_schema_rejected(self):
        engine = _engine()
        snapshot = engine.snapshot()
        snapshot["schema"] = "repro-fleet-checkpoint/999"
        with pytest.raises(ValueError, match="checkpoint schema"):
            FleetEngine.restore(snapshot)
