"""Golden-trace regression tests.

One short canonical trace per pinned perf scenario lives under
``tests/golden/``.  Replaying a scenario must reproduce its committed
payload *byte-identically* — summary scalars, sorted counters, event
count, and the SHA-256 of the full event log.  Any drift means the
simulation changed behaviour; if the change is intended, regenerate
the traces and commit them:

    PYTHONPATH=src python -m repro validate --write-golden tests/golden
"""

import json
import pathlib

import pytest

from repro.perf.scenarios import REFERENCE_SCENARIOS
from repro.validate.runner import GOLDEN_SCHEMA, golden_trace

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "golden"


def encode(payload: dict) -> str:
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


class TestGoldenTraces:
    def test_every_pinned_scenario_has_a_golden(self):
        committed = {p.stem for p in GOLDEN_DIR.glob("*.json")}
        assert committed == {s.name for s in REFERENCE_SCENARIOS}

    @pytest.mark.parametrize(
        "scenario", REFERENCE_SCENARIOS, ids=lambda s: s.name
    )
    def test_replay_is_byte_identical(self, scenario):
        committed = (GOLDEN_DIR / f"{scenario.name}.json").read_text()
        regenerated = encode(golden_trace(scenario))
        assert regenerated == committed, (
            f"{scenario.name}: replay drifted from tests/golden/"
            f"{scenario.name}.json; if intended, regenerate with "
            f"`PYTHONPATH=src python -m repro validate "
            f"--write-golden tests/golden`"
        )

    def test_goldens_declare_the_schema(self):
        for path in sorted(GOLDEN_DIR.glob("*.json")):
            payload = json.loads(path.read_text())
            assert payload["schema"] == GOLDEN_SCHEMA
            assert payload["scenario"] == path.stem
            assert payload["n_events"] >= 0
            assert len(payload["events_sha256"]) == 64

    def test_counters_are_key_sorted(self):
        """Golden stability depends on CounterSet.as_dict sorting."""
        for path in sorted(GOLDEN_DIR.glob("*.json")):
            counters = json.loads(path.read_text())["counters"]
            assert list(counters) == sorted(counters)
