"""Property tests (hypothesis) over the scenario generator families.

Three guarantees hold for *every* (family, params, seed) the strategies
can draw, not just the pinned instances:

* generation is schema-valid — ``parse_scenario`` accepts the output;
* generation is a pure function of the spec — same draw, byte-identical
  JSON and equal digests;
* the generated scenarios simulate cleanly — a short run with every
  registered invariant checked on every tick reports zero violations.

Machines are overridden to small SMPs and horizons kept short so each
example costs milliseconds, which is what lets the invariant runs check
every tick instead of sampling.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import run_simulation
from repro.scenario import parse_scenario
from repro.scenarios import GeneratorSpec
from repro.validate.invariants import ValidationConfig

SMALL_MACHINE = st.sampled_from(["smp2", "smp4", "cmp2x2"])
SEEDS = st.integers(0, 2**31 - 1)

poisson_params = st.fixed_dictionaries({
    "machine": SMALL_MACHINE,
    "rate_per_s": st.floats(0.2, 4.0),
    "mean_job_s": st.floats(0.6, 3.0),
    "horizon_s": st.floats(2.0, 6.0),
    # backlog >= 1 keeps even (low rate x short horizon) draws from
    # generating zero tasks, which the family rejects by design.
    "backlog": st.integers(1, 3),
})
bursty_params = st.fixed_dictionaries({
    "machine": SMALL_MACHINE,
    "base_rate_per_s": st.floats(0.5, 4.0),
    "depth": st.floats(0.0, 1.0),
    "period_s": st.floats(2.0, 10.0),
    "phase": st.floats(0.0, 1.0),
    "horizon_s": st.floats(2.0, 6.0),
})
sporadic_params = st.fixed_dictionaries({
    "machine": SMALL_MACHINE,
    "n_tasks": st.integers(1, 6),
    "utilization": st.floats(0.5, 2.0),
    "period_min_s": st.floats(1.0, 2.0),
    "period_max_s": st.floats(2.0, 6.0),
    "horizon_s": st.floats(2.0, 8.0),
})
adversarial_params = st.fixed_dictionaries({
    "machine": SMALL_MACHINE,
    "budget_w": st.floats(14.0, 25.0),
    "phase_scale": st.floats(0.05, 0.5),
    "duty": st.floats(0.3, 0.9),
    "hot_jobs": st.integers(1, 4),
    "cool_fill": st.integers(1, 4),
    "rotate_groups": st.sampled_from([1, 2]),
    "jitter": st.floats(0.0, 0.3),
    "horizon_s": st.floats(2.0, 6.0),
})

specs = st.one_of(
    st.builds(lambda p, s: GeneratorSpec("poisson", p, seed=s),
              poisson_params, SEEDS),
    st.builds(lambda p, s: GeneratorSpec("bursty", p, seed=s),
              bursty_params, SEEDS),
    st.builds(lambda p, s: GeneratorSpec("sporadic", p, seed=s),
              sporadic_params, SEEDS),
    st.builds(lambda p, s: GeneratorSpec("thermal-adversarial", p, seed=s),
              adversarial_params, SEEDS),
)


@settings(max_examples=12, deadline=None)
@given(spec=specs)
def test_generated_scenarios_are_schema_valid(spec):
    data = spec.instantiate()
    scenario = parse_scenario(data)
    assert len(scenario.workload) >= 1
    assert scenario.duration_s > 0
    # The JSON round-trip inside instantiate() really was a fixpoint.
    assert json.loads(json.dumps(data)) == data


@settings(max_examples=12, deadline=None)
@given(spec=specs)
def test_generation_is_seed_deterministic(spec):
    first = spec.instantiate()
    clone = GeneratorSpec.from_dict(spec.to_dict())
    assert clone.digest() == spec.digest()
    assert (json.dumps(clone.instantiate(), sort_keys=True)
            == json.dumps(first, sort_keys=True))


@settings(max_examples=8, deadline=None)
@given(spec=specs)
def test_generated_scenarios_run_clean_under_invariants(spec):
    scenario = spec.build()
    result = run_simulation(
        scenario.config,
        scenario.workload,
        policy=scenario.policy,
        duration_s=1.0,
        validate=ValidationConfig(sample_every=1),
    )
    assert result.system.validator.violations == []
