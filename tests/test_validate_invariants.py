"""Invariant checker: clean runs pass, seeded violations fire.

One positive and one negative test per registry entry: a short clean
simulation must record nothing, and a targeted corruption of the same
state must produce a violation naming exactly that invariant.
"""

import math

import pytest

from repro.config import SystemConfig
from repro.cpu.throttle import ThrottleConfig
from repro.cpu.topology import MachineSpec
from repro.sim.clock import Clock
from repro.sim.engine import Engine
from repro.system import System
from repro.validate import (
    REGISTRY,
    InvariantChecker,
    InvariantViolation,
    ValidationConfig,
    invariant_by_name,
)
from repro.workloads.generator import mixed_table2_workload
from tests.conftest import make_task


def smp_config(n=4, **kwargs):
    defaults = dict(
        machine=MachineSpec.smp(n), max_power_per_cpu_w=60.0, seed=42,
        sample_interval_s=0.5,
    )
    defaults.update(kwargs)
    return SystemConfig(**defaults)


def run_system(
    config=None, policy="energy", duration_s=2.0, validate=True,
    fast_path=True,
):
    config = config if config is not None else smp_config()
    clock = Clock(config.tick_ms)
    system = System(
        config, mixed_table2_workload(1), policy=policy,
        fast_path=fast_path, validate=validate,
    )
    engine = Engine(clock, system.tracer)
    engine.register(system)
    engine.run_for(duration_s)
    return system, clock


@pytest.fixture(scope="module")
def clean_run():
    """One shared clean run; negative tests re-run their own systems."""
    return run_system()


def recheck(system, clock):
    """Clear history and run the tick invariants once more, post-surgery."""
    checker = system.validator
    checker.violations.clear()
    checker.check_now(clock.ticks + 1, clock.tick_s)
    return checker


class TestRegistry:
    def test_registry_names_unique(self):
        names = [inv.name for inv in REGISTRY]
        assert len(names) == len(set(names))
        assert len(REGISTRY) == 14

    def test_lookup_and_unknown(self):
        assert invariant_by_name("counter-bounds").kind == "tick"
        with pytest.raises(ValueError, match="counter-bounds"):
            invariant_by_name("nope")

    def test_every_invariant_documents_a_paper_section(self):
        for inv in REGISTRY:
            assert inv.paper_ref.startswith("§")
            assert inv.description

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ValidationConfig(sample_every=0)
        with pytest.raises(ValueError):
            ValidationConfig(mode="explode")
        with pytest.raises(ValueError):
            ValidationConfig(only=frozenset({"not-an-invariant"}))


class TestCleanRuns:
    def test_clean_run_records_nothing(self, clean_run):
        system, _ = clean_run
        assert system.validator.violations == []

    def test_clean_scalar_path_records_nothing(self):
        system, _ = run_system(fast_path=False, duration_s=1.0)
        assert system.validator.violations == []

    def test_every_tick_invariant_actually_ran(self, clean_run):
        system, _ = clean_run
        ran = system.validator.checks_run
        for inv in REGISTRY:
            if inv.kind == "tick":
                assert ran.get(inv.name, 0) > 0, inv.name

    def test_clean_run_with_throttling(self):
        config = smp_config(
            max_power_per_cpu_w=20.0,
            throttle=ThrottleConfig(enabled=True, scope="logical", mode="hlt"),
        )
        system, _ = run_system(config, duration_s=2.0)
        assert system.validator.violations == []

    def test_validation_off_by_default(self):
        config = smp_config()
        system = System(config, mixed_table2_workload(1))
        assert system.validator is None

    def test_sample_every_skips_ticks(self):
        system, clock = run_system(
            validate=ValidationConfig(sample_every=10), duration_s=1.0
        )
        # Engine advances first, so the hook sees ticks 1..N.
        ran = system.validator.checks_run["energy-package-conservation"]
        assert ran == clock.ticks // 10

    def test_only_restricts_checking(self):
        system, _ = run_system(
            validate=ValidationConfig(only=frozenset({"counter-bounds"})),
            duration_s=1.0,
        )
        assert set(system.validator.checks_run) == {"counter-bounds"}


class TestSeededTickViolations:
    """Surgical state corruption must trip exactly the right invariant."""

    def test_package_conservation_fires(self):
        system, clock = run_system(duration_s=1.0)
        system._est_pkg_power[0] += 5.0
        checker = recheck(system, clock)
        assert checker.violations_for("energy-package-conservation")

    def test_task_accounting_fires(self):
        system, clock = run_system(duration_s=1.0)
        checker = system.validator
        checker.violations.clear()
        # History was snapshotted by the final after_tick; a corrupted
        # "next tick" grows task energy by far more than Eq. 1 charged.
        system.live_tasks()[0].total_energy_j += 1000.0
        checker.check_now(clock.ticks + 1, clock.tick_s)
        assert checker.violations_for("energy-task-accounting")

    def test_nonnegative_fires_on_negative_power(self):
        system, clock = run_system(duration_s=1.0)
        system._est_power[0] = -1.0
        checker = recheck(system, clock)
        assert checker.violations_for("energy-nonnegative")

    def test_nonnegative_fires_on_nan_task_energy(self):
        system, clock = run_system(duration_s=1.0)
        system.live_tasks()[0].total_energy_j = math.nan
        checker = recheck(system, clock)
        assert checker.violations_for("energy-nonnegative")

    def test_temperature_bounds_fire_high_and_low(self):
        system, clock = run_system(duration_s=1.0)
        system.true_rc[0]._temp_c = 1000.0
        checker = recheck(system, clock)
        assert checker.violations_for("temperature-rc-bounds")
        system.true_rc[0]._temp_c = -40.0
        checker = recheck(system, clock)
        assert checker.violations_for("temperature-rc-bounds")

    def test_ewma_decay_fires(self):
        system, clock = run_system(duration_s=1.0)
        checker = system.validator
        checker.violations.clear()
        system.metrics.thermal_w[0] = 1e6  # outside any contraction band
        checker.check_now(clock.ticks + 1, clock.tick_s)
        assert checker.violations_for("ewma-thermal-decay")

    def test_counter_bounds_fire_on_negative(self):
        system, clock = run_system(duration_s=1.0)
        system._counts_mx[0, 0] = -5.0
        checker = recheck(system, clock)
        assert checker.violations_for("counter-bounds")

    def test_counter_bounds_fire_on_nan(self):
        # NaN fails *both* range comparisons; the valid-mask form must
        # still catch it (regression for the complement-form blind spot).
        system, clock = run_system(duration_s=1.0)
        system._counts_mx[1, 2] = math.nan
        checker = recheck(system, clock)
        assert checker.violations_for("counter-bounds")

    def test_runqueue_bookkeeping_fires_on_nr_drift(self):
        system, clock = run_system(duration_s=1.0)
        system.runqueues[0].nr += 1
        checker = recheck(system, clock)
        assert checker.violations_for("runqueue-bookkeeping")

    def test_runqueue_bookkeeping_fires_on_stale_backref(self):
        system, clock = run_system(duration_s=1.0)
        for rq in system.runqueues.values():
            if rq.current is not None:
                rq.current.cpu = (rq.cpu_id + 1) % system.n_cpus
                break
        else:
            pytest.skip("no running task after 1 s")
        checker = recheck(system, clock)
        assert checker.violations_for("runqueue-bookkeeping")

    def test_task_residency_fires_on_duplicate(self):
        system, clock = run_system(duration_s=1.0)
        for rq in system.runqueues.values():
            if rq.current is not None:
                task, src = rq.current, rq.cpu_id
                break
        dup = system.runqueues[(src + 1) % system.n_cpus]
        dup._queue.append(task)  # now on two queues
        checker = recheck(system, clock)
        assert checker.violations_for("task-residency")

    def test_throttle_state_fires_on_bad_scale(self):
        system, clock = run_system(duration_s=1.0)
        system._freq_scale[0] = 1.5
        checker = recheck(system, clock)
        assert checker.violations_for("throttle-state")

    def test_throttle_state_fires_on_phantom_throttle(self):
        system, clock = run_system(duration_s=1.0)  # throttling disabled
        system.throttle.throttled[0] = True
        checker = recheck(system, clock)
        assert checker.violations_for("throttle-state")

    def test_placement_cache_fires(self):
        system, clock = run_system(duration_s=1.0)
        system.policy.placement._first_slice_power[999_999] = -3.0
        checker = recheck(system, clock)
        messages = checker.violations_for("placement-cache-consistency")
        assert len(messages) == 2  # negative power AND unknown inode


class TestSeededEventViolations:
    def test_balance_hysteresis_fires(self):
        system, clock = run_system(duration_s=1.0)
        checker = system.validator
        checker.violations.clear()
        task = system.live_tasks()[0]
        # src == dst: a ratio can never exceed itself plus a margin.
        checker.before_migration(task, 0, 0, "energy_balance")
        assert checker.violations_for("balance-hysteresis")

    def test_hot_migration_fires(self):
        system, clock = run_system(duration_s=1.0)
        checker = system.validator
        checker.violations.clear()
        task = system.live_tasks()[0]
        src = task.cpu if task.cpu is not None else 0
        system.runqueues[src].nr += 1  # fake a multi-task source queue
        checker.before_migration(task, src, (src + 1) % system.n_cpus,
                                 "hot_task")
        system.runqueues[src].nr -= 1
        assert checker.violations_for("hot-migration-preconditions")

    def test_placement_min_length_fires(self):
        system, clock = run_system(duration_s=1.0)
        checker = system.validator
        checker.violations.clear()
        # Make CPU 1 strictly longer than CPU 0, then "place" there.
        system.runqueues[1].enqueue(make_task(pid=90_001))
        system.runqueues[1].enqueue(make_task(pid=90_002))
        newcomer = make_task(pid=90_003)
        checker.on_placement(newcomer, 1)
        assert checker.violations_for("placement-min-length")

    def test_other_migration_reasons_unchecked(self):
        system, clock = run_system(duration_s=1.0)
        checker = system.validator
        checker.violations.clear()
        task = system.live_tasks()[0]
        checker.before_migration(task, 0, 0, "load_balance")
        assert not checker.violations


class TestRaiseMode:
    def test_raise_mode_raises(self):
        system, clock = run_system(
            validate=ValidationConfig(
                mode="raise", only=frozenset({"energy-nonnegative"})
            ),
            duration_s=1.0,
        )
        system._est_power[0] = -1.0
        with pytest.raises(InvariantViolation, match="energy-nonnegative"):
            system.validator.check_now(clock.ticks + 1, clock.tick_s)

    def test_record_mode_collects(self):
        system, clock = run_system(duration_s=1.0)
        system._est_power[0] = -1.0
        system.true_rc[0]._temp_c = 1000.0
        checker = recheck(system, clock)
        names = {v.invariant for v in checker.violations}
        assert {"energy-nonnegative", "temperature-rc-bounds"} <= names

    def test_violation_to_dict(self):
        system, clock = run_system(duration_s=1.0)
        system._est_power[0] = -1.0
        checker = recheck(system, clock)
        payload = checker.violations_for("energy-nonnegative")[0].to_dict()
        assert payload["invariant"] == "energy-nonnegative"
        assert isinstance(payload["tick"], int)


class TestApiSurface:
    def test_run_simulation_validate_exposes_violations(self):
        from repro.api import run_simulation

        result = run_simulation(
            smp_config(), mixed_table2_workload(1), duration_s=1.0,
            validate=True,
        )
        assert result.violations == []

    def test_result_without_validation_has_no_violations(self):
        from repro.api import run_simulation

        result = run_simulation(
            smp_config(), mixed_table2_workload(1), duration_s=1.0
        )
        assert result.violations == []
