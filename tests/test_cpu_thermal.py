"""Unit tests for the RC thermal model (paper §4.2)."""

import math

import pytest

from repro.cpu.thermal import ThermalDiode, ThermalParams, ThermalRC


class TestThermalParams:
    def test_tau_is_r_times_c(self):
        params = ThermalParams(r_k_per_w=0.3, c_j_per_k=100.0)
        assert params.tau_s == pytest.approx(30.0)

    def test_steady_state(self):
        params = ThermalParams(r_k_per_w=0.3, ambient_c=25.0)
        assert params.steady_state_c(50.0) == pytest.approx(40.0)

    def test_power_for_temperature_inverts_steady_state(self):
        params = ThermalParams(r_k_per_w=0.25, ambient_c=20.0)
        temp = params.steady_state_c(44.0)
        assert params.power_for_temperature(temp) == pytest.approx(44.0)

    def test_with_tau_preserves_resistance(self):
        params = ThermalParams(r_k_per_w=0.3).with_tau(15.0)
        assert params.tau_s == pytest.approx(15.0)
        assert params.r_k_per_w == 0.3

    @pytest.mark.parametrize("kwargs", [dict(r_k_per_w=0), dict(c_j_per_k=-1)])
    def test_rejects_non_positive(self, kwargs):
        with pytest.raises(ValueError):
            ThermalParams(**kwargs)

    def test_with_tau_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ThermalParams().with_tau(0)


class TestThermalRC:
    def test_starts_at_ambient_by_default(self):
        params = ThermalParams(ambient_c=22.0)
        assert ThermalRC(params).temperature_c == 22.0

    def test_converges_to_steady_state(self):
        params = ThermalParams(r_k_per_w=0.3, c_j_per_k=50.0, ambient_c=25.0)
        rc = ThermalRC(params)
        for _ in range(10_000):
            rc.step(50.0, 0.1)
        assert rc.temperature_c == pytest.approx(params.steady_state_c(50.0), abs=1e-6)

    def test_exponential_step_response(self):
        """After one time constant the gap closes by 1 - 1/e."""
        params = ThermalParams(r_k_per_w=0.3, c_j_per_k=100.0, ambient_c=25.0)
        rc = ThermalRC(params)
        target = params.steady_state_c(40.0)
        rc.step(40.0, params.tau_s)
        expected = target + (25.0 - target) * math.exp(-1.0)
        assert rc.temperature_c == pytest.approx(expected)

    def test_exact_integration_is_step_size_independent(self):
        params = ThermalParams(r_k_per_w=0.3, c_j_per_k=60.0)
        coarse = ThermalRC(params)
        fine = ThermalRC(params)
        coarse.step(55.0, 10.0)
        for _ in range(1000):
            fine.step(55.0, 0.01)
        assert coarse.temperature_c == pytest.approx(fine.temperature_c, abs=1e-9)

    def test_cooling_from_hot_start(self):
        params = ThermalParams(ambient_c=25.0)
        rc = ThermalRC(params, initial_c=60.0)
        rc.step(0.0, 1e6)
        assert rc.temperature_c == pytest.approx(25.0, abs=1e-6)

    def test_zero_dt_is_identity(self):
        rc = ThermalRC(ThermalParams(), initial_c=33.0)
        rc.step(100.0, 0.0)
        assert rc.temperature_c == 33.0

    def test_negative_dt_rejected(self):
        with pytest.raises(ValueError):
            ThermalRC(ThermalParams()).step(10.0, -0.1)

    def test_reset(self):
        rc = ThermalRC(ThermalParams(ambient_c=25.0), initial_c=50.0)
        rc.reset()
        assert rc.temperature_c == 25.0
        rc.reset(42.0)
        assert rc.temperature_c == 42.0

    def test_higher_resistance_runs_hotter(self):
        """Heterogeneous cooling: worse heat sink, higher steady temp."""
        good = ThermalRC(ThermalParams(r_k_per_w=0.2))
        poor = ThermalRC(ThermalParams(r_k_per_w=0.4))
        for _ in range(5000):
            good.step(50.0, 0.1)
            poor.step(50.0, 0.1)
        assert poor.temperature_c > good.temperature_c + 5.0


class TestThermalDiode:
    def test_quantisation_floors(self):
        diode = ThermalDiode(resolution_c=1.0)
        assert diode.read(38.9) == 38.0

    def test_finer_resolution(self):
        diode = ThermalDiode(resolution_c=0.5)
        assert diode.read(38.75) == 38.5

    def test_timeslice_energy_invisible_to_diode(self):
        """§3.1: energy of one timeslice is orders of magnitude below
        the diode's resolution, so temperature cannot attribute energy
        per timeslice."""
        params = ThermalParams(r_k_per_w=0.3, c_j_per_k=66.7)
        rc = ThermalRC(params, initial_c=40.0)
        diode = ThermalDiode(resolution_c=1.0)
        before = diode.read(rc.temperature_c)
        # One 100 ms timeslice of a hot (60 W) task.
        rc.step(60.0, 0.1)
        after = diode.read(rc.temperature_c)
        assert before == after

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ThermalDiode(resolution_c=0)
        with pytest.raises(ValueError):
            ThermalDiode(read_latency_ms=-1)
