"""Unit tests for behaviour phase machines."""

import random

import numpy as np
import pytest

from repro.cpu.events import N_EVENTS
from repro.workloads.behavior import (
    AlternatingBehavior,
    CyclicBehavior,
    InstructionMix,
    PhaseSpec,
    SpikyBehavior,
    StaticBehavior,
)


def mix(scale: float, label: str = "m") -> InstructionMix:
    return InstructionMix(np.full(N_EVENTS, scale), ipc=1.0, label=label)


def phase(scale: float, duration: float = 1.0, label: str = "p") -> PhaseSpec:
    return PhaseSpec(mix=mix(scale, label), mean_duration_s=duration,
                     duration_jitter=0.0)


class TestInstructionMix:
    def test_validation(self):
        with pytest.raises(ValueError):
            InstructionMix(np.ones(3), ipc=1.0)
        with pytest.raises(ValueError):
            InstructionMix(-np.ones(N_EVENTS), ipc=1.0)
        with pytest.raises(ValueError):
            InstructionMix(np.ones(N_EVENTS), ipc=0.0)


class TestPhaseSpec:
    def test_duration_sampling_with_jitter(self):
        spec = PhaseSpec(mix(1.0), mean_duration_s=10.0, duration_jitter=0.2)
        rng = random.Random(0)
        durations = [spec.sample_duration(rng) for _ in range(200)]
        assert np.mean(durations) == pytest.approx(10.0, rel=0.1)
        assert min(durations) >= 1.0  # floored at 10 % of the mean

    def test_zero_jitter_exact(self):
        spec = PhaseSpec(mix(1.0), mean_duration_s=5.0, duration_jitter=0.0)
        assert spec.sample_duration(random.Random(0)) == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PhaseSpec(mix(1.0), mean_duration_s=0.0)
        with pytest.raises(ValueError):
            PhaseSpec(mix(1.0), mean_duration_s=1.0, duration_jitter=1.0)


class TestStaticBehavior:
    def test_stays_in_phase_forever(self):
        behavior = StaticBehavior(phase(1.0), random.Random(0), wobble_sigma=0.0)
        for _ in range(100):
            out = behavior.step(0.5)
            np.testing.assert_allclose(out.rates_per_cycle, 1.0)
        assert behavior.phase_changes == 0

    def test_wobble_varies_rates(self):
        behavior = StaticBehavior(
            phase(1.0), random.Random(1), wobble_sigma=0.05, wobble_interval_s=0.1
        )
        seen = {behavior.step(0.1).rates_per_cycle[0] for _ in range(50)}
        assert len(seen) > 10

    def test_wobble_constant_within_interval(self):
        behavior = StaticBehavior(
            phase(1.0), random.Random(1), wobble_sigma=0.05, wobble_interval_s=1.0
        )
        first = behavior.step(0.1).rates_per_cycle[0]
        second = behavior.step(0.1).rates_per_cycle[0]
        assert first == second

    def test_rejects_negative_step(self):
        behavior = StaticBehavior(phase(1.0), random.Random(0))
        with pytest.raises(ValueError):
            behavior.step(-0.1)


class TestCyclicBehavior:
    def test_rotates_in_order(self):
        phases = [phase(1.0, 1.0, "a"), phase(2.0, 1.0, "b"), phase(3.0, 1.0, "c")]
        behavior = CyclicBehavior(phases, random.Random(0), wobble_sigma=0.0)
        labels = []
        for _ in range(60):
            labels.append(behavior.step(0.1).label)
        # 1 s phases, 0.1 s steps: blocks of ~10 then wrap-around.
        assert labels[0] == "a"
        assert "b" in labels and "c" in labels
        first_b = labels.index("b")
        first_c = labels.index("c")
        assert first_b < first_c
        assert labels[first_c + 12] == "a"  # wrapped

    def test_phase_change_counter(self):
        phases = [phase(1.0, 0.5, "a"), phase(2.0, 0.5, "b")]
        behavior = CyclicBehavior(phases, random.Random(0), wobble_sigma=0.0)
        for _ in range(40):
            behavior.step(0.1)
        assert behavior.phase_changes >= 6


class TestAlternatingBehavior:
    def test_requires_exactly_two(self):
        with pytest.raises(ValueError):
            AlternatingBehavior([phase(1.0)], random.Random(0))
        with pytest.raises(ValueError):
            AlternatingBehavior(
                [phase(1.0), phase(2.0), phase(3.0)], random.Random(0)
            )

    def test_alternates(self):
        behavior = AlternatingBehavior(
            [phase(1.0, 0.3, "x"), phase(2.0, 0.3, "y")],
            random.Random(0),
            wobble_sigma=0.0,
        )
        labels = [behavior.step(0.1).label for _ in range(30)]
        transitions = [
            (a, b) for a, b in zip(labels, labels[1:]) if a != b
        ]
        assert all({a, b} == {"x", "y"} for a, b in transitions)
        assert len(transitions) >= 4


class TestSpikyBehavior:
    def test_returns_to_base_after_spike(self):
        behavior = SpikyBehavior(
            [phase(1.0, 0.2, "base"), phase(5.0, 0.1, "spike")],
            random.Random(3),
            spike_probability=1.0,  # spike after every base dwell
            wobble_sigma=0.0,
        )
        labels = [behavior.step(0.1).label for _ in range(40)]
        assert "spike" in labels
        # Every spike is followed by base, never spike -> spike.
        for a, b in zip(labels, labels[1:]):
            if a == "spike" and b != "spike":
                assert b == "base"

    def test_zero_probability_never_spikes(self):
        behavior = SpikyBehavior(
            [phase(1.0, 0.2, "base"), phase(5.0, 0.1, "spike")],
            random.Random(3),
            spike_probability=0.0,
            wobble_sigma=0.0,
        )
        labels = {behavior.step(0.1).label for _ in range(100)}
        assert labels == {"base"}

    def test_validation(self):
        with pytest.raises(ValueError):
            SpikyBehavior([phase(1.0)], random.Random(0))
        with pytest.raises(ValueError):
            SpikyBehavior(
                [phase(1.0), phase(2.0)], random.Random(0), spike_probability=1.5
            )


class TestBehaviorValidation:
    def test_needs_phases(self):
        with pytest.raises(ValueError):
            CyclicBehavior([], random.Random(0))

    def test_rejects_bad_wobble(self):
        with pytest.raises(ValueError):
            StaticBehavior(phase(1.0), random.Random(0), wobble_sigma=-0.1)
        with pytest.raises(ValueError):
            StaticBehavior(phase(1.0), random.Random(0), wobble_interval_s=0.0)

    def test_determinism_per_seed(self):
        def run(seed):
            behavior = SpikyBehavior(
                [phase(1.0, 0.2), phase(5.0, 0.1)],
                random.Random(seed),
                spike_probability=0.3,
                wobble_sigma=0.02,
            )
            return [behavior.step(0.1).rates_per_cycle[0] for _ in range(50)]

        assert run(5) == run(5)
        assert run(5) != run(6)
