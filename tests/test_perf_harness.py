"""Tests for the perf benchmark harness and fast/scalar path parity.

The contract under test is the tentpole's correctness bar: the batched
fast path must produce a ``scalar_summary()`` byte-identical to the
scalar reference for every supported configuration, and everything in
``BENCH_perf.json`` except the timings must be deterministic.
"""

import json

import pytest

from repro import (
    MachineSpec,
    Policy,
    SystemConfig,
    ThrottleConfig,
    mixed_table2_workload,
    run_simulation,
    single_program_workload,
)
from repro.perf import (
    HEADLINE_SCENARIO,
    REFERENCE_SCENARIOS,
    run_benchmarks,
    run_scenario,
    scenario_by_name,
    strip_timings,
)
from repro.sim.trace import CounterSet

DURATION_S = 5.0


def _encode(summary):
    """Byte-level canonical form; floats equal only if bit-identical."""
    return json.dumps(summary, sort_keys=True)


def _run_both(config, workload, policy):
    fast = run_simulation(config, workload, policy=policy,
                          duration_s=DURATION_S, fast_path=True)
    scalar = run_simulation(config, workload, policy=policy,
                            duration_s=DURATION_S, fast_path=False)
    return fast, scalar


class TestFastScalarEquality:
    @pytest.mark.parametrize("policy", [Policy.ENERGY, Policy.BASELINE])
    @pytest.mark.parametrize("seed", [2, 7])
    @pytest.mark.parametrize("smt", [True, False])
    def test_summary_byte_identical(self, policy, seed, smt):
        config = SystemConfig(
            machine=MachineSpec.ibm_x445(smt=smt),
            max_power_per_cpu_w=60.0,
            seed=seed,
        )
        fast, scalar = _run_both(config, mixed_table2_workload(2), policy)
        assert _encode(fast.scalar_summary()) == _encode(
            scalar.scalar_summary()
        )

    @pytest.mark.parametrize("scope,mode", [
        ("logical", "hlt"),
        ("package", "hlt"),
        ("logical", "dvfs"),
    ])
    def test_summary_byte_identical_under_throttling(self, scope, mode):
        config = SystemConfig(
            machine=MachineSpec.ibm_x445(smt=True),
            max_power_per_cpu_w=20.0,
            seed=11,
            throttle=ThrottleConfig(enabled=True, scope=scope, mode=mode),
        )
        fast, scalar = _run_both(
            config, mixed_table2_workload(2), Policy.ENERGY
        )
        assert _encode(fast.scalar_summary()) == _encode(
            scalar.scalar_summary()
        )

    def test_full_counters_and_temps_match(self):
        """Deeper than the summary: counters and peak temps agree."""
        config = SystemConfig(
            machine=MachineSpec.smp(4), max_power_per_cpu_w=60.0, seed=3
        )
        fast, scalar = _run_both(
            config, mixed_table2_workload(1), Policy.ENERGY
        )
        assert (fast.system.tracer.counters.as_dict()
                == scalar.system.tracer.counters.as_dict())
        assert fast.max_temperature_c == scalar.max_temperature_c


class TestBenchPayloadDeterminism:
    @pytest.fixture(scope="class")
    def payloads(self):
        scenario = scenario_by_name(HEADLINE_SCENARIO)
        return [
            run_benchmarks([scenario], duration_s=2.0, repeats=1)
            for _ in range(2)
        ]

    def test_everything_but_timing_is_reproducible(self, payloads):
        first, second = (strip_timings(p) for p in payloads)
        assert first == second

    def test_summaries_identical_flag(self, payloads):
        assert payloads[0]["all_summaries_identical"] is True
        for scenario in payloads[0]["scenarios"]:
            assert scenario["summary_identical"] is True

    def test_payload_shape(self, payloads):
        payload = payloads[0]
        assert payload["schema"] == "repro-perf/3"
        assert payload["headline"]["name"] == HEADLINE_SCENARIO
        timing = payload["headline"]["timing"]
        assert set(timing) == {"fast_ticks_per_s", "scalar_ticks_per_s",
                               "speedup_vs_scalar"}
        (scenario,) = payload["scenarios"]
        assert scenario["ticks"] == 200  # 2 s at the 10 ms default tick
        assert set(scenario["scalar_summary"])  # non-empty summary

    def test_self_profile_shape(self, payloads):
        profile = payloads[0]["self_profile"]
        assert profile["name"] == HEADLINE_SCENARIO
        assert profile["duration_s"] == 2.0
        for path in ("fast", "scalar"):
            report = profile[path]
            assert report["ticks"] == 200
            assert report["timed_total_s"] > 0.0
            assert "execute" in report["phases"]
            for entry in report["phases"].values():
                assert set(entry) == {"total_s", "calls", "mean_us",
                                      "fraction"}

    def test_strip_timings_excludes_self_profile(self, payloads):
        # The phase breakdown is wall-clock data; it must never leak
        # into the deterministic subset.
        assert "self_profile" not in strip_timings(payloads[0])


class TestObsNeutrality:
    """Observability must never perturb the simulation (satellite d).

    A run with ``obs=False`` must be byte-identical in summary to a run
    that never mentions the kwarg, and enabling the full observer —
    audit, metrics, even profiling — must not change a single bit of
    the physics on either execution path.
    """

    NAMES = [s.name for s in REFERENCE_SCENARIOS]

    @staticmethod
    def _summary(name, **kwargs):
        scenario = scenario_by_name(name)
        config, workload = scenario.build()
        result = run_simulation(config, workload, policy=scenario.policy,
                                duration_s=2.0, **kwargs)
        return _encode(result.scalar_summary())

    @pytest.mark.parametrize("name", NAMES)
    def test_obs_disabled_matches_no_kwarg(self, name):
        assert self._summary(name) == self._summary(name, obs=False)

    @pytest.mark.parametrize("name", NAMES)
    def test_obs_enabled_matches_plain(self, name):
        assert self._summary(name) == self._summary(name, obs=True)

    def test_fast_scalar_identity_holds_with_obs_enabled(self):
        from repro import ObservabilityConfig

        obs = ObservabilityConfig(profiling=True)
        fast = self._summary(HEADLINE_SCENARIO, fast_path=True, obs=obs)
        scalar = self._summary(HEADLINE_SCENARIO, fast_path=False, obs=obs)
        assert fast == scalar


class TestScenarioRegistry:
    def test_headline_is_registered(self):
        names = [s.name for s in REFERENCE_SCENARIOS]
        assert HEADLINE_SCENARIO in names
        assert len(names) == len(set(names))

    def test_unknown_name_lists_valid_ones(self):
        with pytest.raises(ValueError, match=HEADLINE_SCENARIO):
            scenario_by_name("no-such-scenario")

    def test_run_scenario_rejects_bad_repeats(self):
        with pytest.raises(ValueError, match="repeats"):
            run_scenario(scenario_by_name(HEADLINE_SCENARIO), repeats=0)


class TestCounterDefaults:
    """Regression: never-incremented counters read as 0, never ``None``."""

    def test_counterset_get_defaults_to_zero(self):
        counters = CounterSet()
        assert counters.get("migrations") == 0
        assert counters.get("migrations", 5) == 5
        counters.add("migrations")
        assert counters.get("migrations") == 1

    def test_quiet_run_reports_zero_not_none(self):
        # One pinned task on one tick: nothing completes, nothing
        # migrates, so neither counter is ever incremented.
        config = SystemConfig(machine=MachineSpec.smp(2), seed=1)
        result = run_simulation(
            config, single_program_workload("aluadd", 1),
            policy=Policy.BASELINE, duration_s=0.01,
        )
        assert result.jobs_completed == 0
        assert result.migrations() == 0
        summary = result.scalar_summary()
        assert summary["migrations"] == 0.0
        assert summary["fractional_jobs"] is not None
