"""Regression tests for the runner cache's code-version salt.

The salt must change when *any* file that can affect results changes —
including committed data files like ``validate/fault_plans.json``, not
just ``*.py`` sources.  A salt blind to data files serves stale results
after a data-only edit.
"""

import pathlib

from repro.runner.cache import _SALT_PATTERNS, _tree_digest, code_salt


def make_tree(root: pathlib.Path) -> None:
    (root / "pkg").mkdir()
    (root / "pkg" / "mod.py").write_text("x = 1\n")
    (root / "pkg" / "data.json").write_text('{"k": 1}\n')
    (root / "pkg" / "notes.txt").write_text("ignored\n")


class TestTreeDigest:
    def test_stable_for_unchanged_tree(self, tmp_path):
        make_tree(tmp_path)
        assert _tree_digest(tmp_path) == _tree_digest(tmp_path)

    def test_python_edit_changes_digest(self, tmp_path):
        make_tree(tmp_path)
        before = _tree_digest(tmp_path)
        (tmp_path / "pkg" / "mod.py").write_text("x = 2\n")
        assert _tree_digest(tmp_path) != before

    def test_json_data_edit_changes_digest(self, tmp_path):
        """The regression: data files must participate in the salt."""
        make_tree(tmp_path)
        before = _tree_digest(tmp_path)
        (tmp_path / "pkg" / "data.json").write_text('{"k": 2}\n')
        assert _tree_digest(tmp_path) != before

    def test_unmatched_files_do_not_participate(self, tmp_path):
        make_tree(tmp_path)
        before = _tree_digest(tmp_path)
        (tmp_path / "pkg" / "notes.txt").write_text("still ignored\n")
        assert _tree_digest(tmp_path) == before

    def test_new_and_renamed_files_change_digest(self, tmp_path):
        make_tree(tmp_path)
        before = _tree_digest(tmp_path)
        (tmp_path / "pkg" / "extra.json").write_text("{}\n")
        added = _tree_digest(tmp_path)
        assert added != before
        (tmp_path / "pkg" / "extra.json").rename(
            tmp_path / "pkg" / "renamed.json"
        )
        assert _tree_digest(tmp_path) not in (before, added)

    def test_pattern_sets_yield_distinct_digests(self, tmp_path):
        make_tree(tmp_path)
        py_only = _tree_digest(tmp_path, patterns=("*.py",))
        py_and_json = _tree_digest(tmp_path, patterns=("*.py", "*.json"))
        assert py_only != py_and_json

    def test_digest_independent_of_pattern_order(self, tmp_path):
        make_tree(tmp_path)
        assert _tree_digest(
            tmp_path, patterns=("*.py", "*.json")
        ) == _tree_digest(tmp_path, patterns=("*.json", "*.py"))


class TestCodeSalt:
    def test_default_patterns_include_data_files(self):
        assert "*.json" in _SALT_PATTERNS
        assert "*.py" in _SALT_PATTERNS

    def test_code_salt_covers_fault_plans(self):
        """The committed fault matrix must be part of the salt."""
        import repro
        import repro.validate.faults as faults

        package_root = pathlib.Path(repro.__file__).resolve().parent
        plans = faults._PLANS_PATH
        assert plans.is_relative_to(package_root)
        covered = {
            p for pattern in _SALT_PATTERNS
            for p in package_root.rglob(pattern)
        }
        assert plans in covered

    def test_code_salt_shape_and_cache(self):
        salt = code_salt()
        assert len(salt) == 16
        int(salt, 16)  # hex digest prefix
        assert code_salt() is salt  # lru-cached per process
