"""The ``trace`` and ``explain`` subcommands and the shared ``--json``
report envelope.

Satellite (c)'s contract: every machine-readable CLI output — ``perf``,
``validate``, ``trace``, ``explain`` — is wrapped in the same
``{"schema", "generated_by", "payload"}`` envelope, asserted here for
all four.
"""

import json

import pytest

from repro import __version__
from repro.cli import REPORT_SCHEMA, build_parser, main
from repro.obs import CHROME_TRACE_SCHEMA, METRICS_SCHEMA

FAST_SCENARIO = "mixed-8cpu-nosmt"


@pytest.fixture(scope="module")
def quick_file(tmp_path_factory):
    """A small scenario file: cheap, no migrations needed."""
    path = tmp_path_factory.mktemp("obs") / "quick.json"
    path.write_text(json.dumps({
        "machine": {"preset": "smp", "n_cpus": 2},
        "max_power_per_cpu_w": 60.0,
        "seed": 3,
        "workload": {"builder": "single_program", "program": "bitcnts",
                     "n": 2},
        "policy": "energy",
        "duration_s": 1.0,
    }))
    return str(path)


@pytest.fixture(scope="module")
def migrating_file(tmp_path_factory):
    """A seed-pinned scenario file known to migrate tasks."""
    path = tmp_path_factory.mktemp("obs") / "migrating.json"
    path.write_text(json.dumps({
        "machine": {"preset": "smp", "n_cpus": 4},
        "max_power_per_cpu_w": 45.0,
        "seed": 9,
        "workload": {"builder": "mixed_table2", "copies": 2},
        "policy": "energy",
        "duration_s": 30.0,
    }))
    return str(path)


def _envelope(capsys):
    envelope = json.loads(capsys.readouterr().out)
    assert set(envelope) == {"schema", "generated_by", "payload"}
    assert envelope["schema"] == REPORT_SCHEMA
    assert envelope["generated_by"] == f"repro {__version__}"
    return envelope["payload"]


class TestParser:
    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.command == "trace"
        assert args.scenario == "mixed-16cpu"
        assert args.format == "chrome"
        assert args.duration is None and args.file is None

    def test_explain_defaults(self):
        args = build_parser().parse_args(["explain"])
        assert args.pid is None and args.site is None
        assert not args.accepted_only

    def test_bad_format_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "--format", "flamegraph"])


class TestEnvelopeOnAllSubcommands:
    def test_perf_json(self, tmp_path, capsys):
        code = main(["perf", "--scenario", FAST_SCENARIO,
                     "--duration", "1", "--repeats", "1",
                     "--output", str(tmp_path / "bench.json"), "--json"])
        assert code == 0
        payload = _envelope(capsys)
        assert payload["schema"] == "repro-perf/3"

    def test_validate_json(self, capsys):
        code = main(["validate", "--scenario", FAST_SCENARIO,
                     "--duration", "1", "--skip-faults", "--json"])
        assert code == 0
        payload = _envelope(capsys)
        assert payload["schema"] == "repro-validate/1"

    def test_trace_json(self, quick_file, capsys):
        code = main(["trace", "--file", quick_file,
                     "--format", "metrics", "--json"])
        assert code == 0
        payload = _envelope(capsys)
        assert payload["format"] == "metrics"
        assert payload["export"]["schema"] == METRICS_SCHEMA

    def test_explain_json(self, quick_file, capsys):
        code = main(["explain", "--file", quick_file, "--json"])
        assert code == 0
        payload = _envelope(capsys)
        assert payload["records"] == sum(payload["sites"].values())


class TestTraceCommand:
    def test_chrome_output_is_valid_trace_json(self, migrating_file, capsys):
        code = main(["trace", "--file", migrating_file, "--format", "chrome"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["otherData"]["schema"] == CHROME_TRACE_SCHEMA
        assert payload["displayTimeUnit"] == "ms"
        assert isinstance(payload["traceEvents"], list)
        for event in payload["traceEvents"]:
            assert {"name", "ph", "pid", "tid"} <= set(event)
        flows = [e for e in payload["traceEvents"]
                 if e["ph"] == "s" and e.get("cat") == "migration"]
        assert flows  # the pinned scenario migrates

    def test_prometheus_output_is_text(self, quick_file, capsys):
        code = main(["trace", "--file", quick_file,
                     "--format", "prometheus"])
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_jobs_completed_total counter" in out
        assert "repro_cpu_thermal_power_watts" in out

    def test_events_format_uses_event_schema(self, quick_file, capsys):
        code = main(["trace", "--file", quick_file, "--format", "events"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["events"]
        assert all(e["schema"] == 1 for e in payload["events"])

    def test_output_writes_file_not_stdout(self, quick_file, tmp_path,
                                           capsys):
        target = tmp_path / "trace.json"
        code = main(["trace", "--file", quick_file, "--format", "chrome",
                     "--output", str(target)])
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out == ""
        assert str(target) in captured.err
        assert json.loads(target.read_text())["traceEvents"]

    def test_unknown_scenario_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["trace", "--scenario", "nope"])
        assert "nope" in capsys.readouterr().err

    def test_bad_file_rejected(self, tmp_path, capsys):
        missing = tmp_path / "missing.json"
        with pytest.raises(SystemExit):
            main(["trace", "--file", str(missing)])


class TestExplainCommand:
    def test_summary_mode_lists_sites(self, quick_file, capsys):
        code = main(["explain", "--file", quick_file])
        assert code == 0
        out = capsys.readouterr().out
        assert "audit records" in out
        assert "placement" in out

    def test_pid_returns_every_migration(self, migrating_file, capsys):
        """Acceptance: ``explain --pid`` returns the audit record for
        every migration of that task."""
        code = main(["explain", "--file", migrating_file,
                     "--site", "migration", "--json"])
        assert code == 0
        all_migrations = _envelope(capsys)["records"]
        assert all_migrations
        by_pid = {}
        for record in all_migrations:
            by_pid.setdefault(record["pid"], []).append(record)
        for pid, expected in by_pid.items():
            code = main(["explain", "--file", migrating_file,
                         "--pid", str(pid), "--json"])
            assert code == 0
            payload = _envelope(capsys)
            assert payload["pid"] == pid
            got = [r for r in payload["records"]
                   if r["site"] == "migration"]
            assert got == expected

    def test_accepted_only_filters(self, migrating_file, capsys):
        code = main(["explain", "--file", migrating_file,
                     "--site", "energy_balance", "--accepted-only",
                     "--json"])
        assert code == 0
        payload = _envelope(capsys)
        assert all(r["accepted"] for r in payload["records"])

    def test_human_output_mentions_matches(self, quick_file, capsys):
        code = main(["explain", "--file", quick_file,
                     "--site", "placement"])
        assert code == 0
        captured = capsys.readouterr()
        assert "record(s) matched" in captured.err
        assert "placement" in captured.out

    def test_unknown_site_rejected(self, quick_file, capsys):
        with pytest.raises(SystemExit):
            main(["explain", "--file", quick_file, "--site", "karma"])
        assert "karma" in capsys.readouterr().err


@pytest.fixture(scope="module")
def baseline_file(tmp_path_factory):
    """The baseline policy has no audited decision sites: the canonical
    zero-record case for ``explain``."""
    path = tmp_path_factory.mktemp("obs") / "baseline.json"
    path.write_text(json.dumps({
        "machine": {"preset": "smp", "n_cpus": 2},
        "max_power_per_cpu_w": 60.0,
        "seed": 3,
        "workload": {"builder": "single_program", "program": "bitcnts",
                     "n": 2},
        "policy": "baseline",
        "duration_s": 1.0,
    }))
    return str(path)


class TestZeroRecordExits:
    """``explain``/``trace`` must exit cleanly — helpful message, no
    traceback — when a run yields nothing to report (ISSUE 9
    satellite)."""

    def test_explain_summary_zero_records(self, baseline_file, capsys):
        code = main(["explain", "--file", baseline_file])
        assert code == 0
        out = capsys.readouterr().out
        assert "0 audit records" in out
        assert "no scheduler decisions fired" in out
        assert "Traceback" not in out

    def test_explain_summary_zero_records_json(self, baseline_file, capsys):
        code = main(["explain", "--file", baseline_file, "--json"])
        assert code == 0
        payload = _envelope(capsys)
        assert payload["records"] == 0
        assert payload["sites"] == {}

    def test_explain_filtered_zero_records(self, baseline_file, capsys):
        code = main(["explain", "--file", baseline_file,
                     "--site", "migration"])
        assert code == 0
        captured = capsys.readouterr()
        assert "0 record(s) matched" in captured.err

    def test_explain_filter_miss_hints_at_summary(self, quick_file,
                                                  capsys):
        """Records exist but the filter matches none: point the user at
        the summary mode instead of printing nothing."""
        code = main(["explain", "--file", quick_file,
                     "--site", "migration"])
        assert code == 0
        captured = capsys.readouterr()
        assert "0 record(s) matched" in captured.err
        assert "hint:" in captured.err

    def test_trace_zero_events_notes_and_exports_empty(
            self, quick_file, capsys, monkeypatch):
        """Zero trace events stays a valid (empty) export plus a stderr
        note, not a crash.  No parseable scenario produces an empty
        stream naturally, so stub the tracer."""
        import types

        from repro.api import SimulationResult

        monkeypatch.setattr(
            SimulationResult, "tracer",
            property(lambda self: types.SimpleNamespace(events=[])))
        code = main(["trace", "--file", quick_file, "--format", "events"])
        captured = capsys.readouterr()
        assert code == 0
        assert "recorded no trace events" in captured.err
        assert json.loads(captured.out)["events"] == []

    def test_trace_unavailable_export_is_clean_error(
            self, quick_file, capsys, monkeypatch):
        from repro.api import SimulationResult

        def unavailable(self):
            raise ValueError("no metrics: run with obs=True to record them")

        monkeypatch.setattr(SimulationResult, "metrics_snapshot",
                            unavailable)
        code = main(["trace", "--file", quick_file, "--format", "metrics"])
        captured = capsys.readouterr()
        assert code == 1
        assert "cannot export metrics telemetry" in captured.err
        assert "Traceback" not in captured.err
