"""Run event bus: schema, sinks, durability, and emission wiring.

The bus is the sweep-scale telemetry backbone (repro.obs.events): these
tests pin the event schema, the sink fan-out semantics (a raising sink
must never kill the sweep), the JSONL sink's crash-tolerant replay, and
the event streams the runner entry points actually emit — including the
index remapping the fleet grid applies to its inner pool fallback.
"""

import json

import pytest

from repro.obs.events import (
    EVENT_KINDS,
    RUN_EVENT_SCHEMA,
    CallbackSink,
    EventBus,
    JsonlSink,
    RingBufferSink,
    RunEvent,
    count_by_kind,
    read_events,
)


class TestEventBus:
    def test_emit_returns_sequenced_event(self):
        bus = EventBus()
        first = bus.emit("job_started", index=0)
        second = bus.emit("job_finished", index=0, attempts=1, elapsed_s=0.5)
        assert (first.seq, second.seq) == (1, 2)
        assert first.kind == "job_started"
        assert second.data["attempts"] == 1

    def test_unknown_kind_rejected(self):
        bus = EventBus()
        with pytest.raises(ValueError, match="unknown event kind"):
            bus.emit("job_exploded")

    def test_fan_out_to_all_sinks(self):
        bus = EventBus()
        seen_a, seen_b = [], []
        bus.subscribe(seen_a.append)
        bus.subscribe(CallbackSink(seen_b.append))
        bus.emit("grid_started", total=3, workers=1)
        assert len(seen_a) == 1 and len(seen_b) == 1
        assert seen_a[0] is seen_b[0]

    def test_raising_sink_counted_not_propagated(self):
        bus = EventBus()
        healthy = []

        def bad(event):
            raise RuntimeError("sink down")

        bus.subscribe(bad)
        bus.subscribe(healthy.append)
        event = bus.emit("job_started", index=1)
        assert event.kind == "job_started"
        assert healthy == [event]
        assert bus.sink_errors == 1

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.unsubscribe(seen.append)
        # a different bound method object: remove by identity of what
        # was registered, so re-register and remove that reference.
        sink = seen.append
        bus.subscribe(sink)
        bus.unsubscribe(sink)
        bus.emit("job_started", index=0)
        assert seen == []

    def test_event_to_dict_carries_schema(self):
        event = RunEvent(kind="job_failed", seq=7, t=123.0,
                         data={"index": 2, "error": "boom"})
        record = event.to_dict()
        assert record["schema"] == RUN_EVENT_SCHEMA
        assert record["kind"] == "job_failed"
        assert json.loads(event.to_json()) == record

    def test_to_json_sorted_and_compact(self):
        event = RunEvent(kind="job_started", seq=1, t=1.0,
                         data={"b": 2, "a": 1})
        text = event.to_json()
        assert text.index('"a"') < text.index('"b"')
        assert ": " not in text


class TestJsonlSink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        bus = EventBus()
        with JsonlSink(path) as sink:
            bus.subscribe(sink)
            bus.emit("grid_started", total=2, workers=1)
            bus.emit("job_started", index=0)
            bus.emit("job_finished", index=0, attempts=1, elapsed_s=0.1)
        events = read_events(path)
        assert [e.kind for e in events] == [
            "grid_started", "job_started", "job_finished",
        ]
        assert events[0].data == {"total": 2, "workers": 1}

    def test_torn_tail_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(path) as sink:
            sink(RunEvent(kind="job_started", seq=1, t=1.0,
                          data={"index": 0}))
        with open(path, "ab") as fh:
            fh.write(b'{"kind": "job_finished", "seq": 2')  # SIGKILL here
        events = read_events(path)
        assert [e.kind for e in events] == ["job_started"]

    def test_missing_file_is_empty(self, tmp_path):
        assert read_events(tmp_path / "never-written.jsonl") == []

    def test_write_after_close_is_noop(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        sink.close()
        sink(RunEvent(kind="job_started", seq=1, t=1.0, data={}))
        assert read_events(path) == []


class TestRingBufferSink:
    def test_keeps_newest_and_counts_dropped(self):
        ring = RingBufferSink(capacity=3)
        for seq in range(5):
            ring(RunEvent(kind="job_started", seq=seq, t=float(seq),
                          data={}))
        assert [e.seq for e in ring.events()] == [2, 3, 4]
        assert ring.dropped == 2
        assert len(ring) == 3

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)


class TestCountByKind:
    def test_sorted_counts(self):
        events = [
            RunEvent(kind="job_finished", seq=1, t=1.0, data={}),
            RunEvent(kind="job_started", seq=2, t=1.0, data={}),
            RunEvent(kind="job_finished", seq=3, t=1.0, data={}),
        ]
        assert count_by_kind(events) == {
            "job_finished": 2, "job_started": 1,
        }
        assert list(count_by_kind(events)) == ["job_finished", "job_started"]


def _scenario_specs(n, fleet_ready=True):
    from repro.runner.spec import JobSpec

    data = {
        "name": "events-probe",
        "machine": {"preset": "cmp", "packages": 1, "cores": 2,
                    "smt": False},
        "workload": {"builder": "steady_mix", "copies": 1},
        "policy": "energy",
        "duration_s": 0.2,
    }
    if fleet_ready:
        data["counter_jitter_sigma"] = 0.0
        data["power"] = {"noise_sigma": 0.0}
    return [JobSpec(scenario=data, seed=seed) for seed in range(1, n + 1)]


class TestRunGridEmission:
    def test_pool_sweep_event_stream(self):
        from repro.runner.executor import run_grid

        bus = EventBus()
        ring = RingBufferSink(256)
        bus.subscribe(ring)
        report = run_grid(_scenario_specs(2), bus=bus)
        assert all(o.ok for o in report.outcomes)
        counts = count_by_kind(ring.events())
        assert counts["grid_started"] == 1
        assert counts["grid_finished"] == 1
        assert counts["job_started"] == 2
        assert counts["job_finished"] == 2
        finished = [e for e in ring.events() if e.kind == "grid_finished"]
        assert finished[0].data["total"] == 2
        assert finished[0].data["failed"] == 0

    def test_cache_hits_emit_cache_events(self, tmp_path):
        from repro.runner.cache import ResultCache
        from repro.runner.executor import run_grid

        specs = _scenario_specs(2)
        cache = ResultCache(root=tmp_path / "cache")
        run_grid(specs, cache=cache)
        bus = EventBus()
        ring = RingBufferSink(256)
        bus.subscribe(ring)
        run_grid(specs, cache=cache, bus=bus)
        counts = count_by_kind(ring.events())
        assert counts["job_cache_hit"] == 2
        assert "job_started" not in counts

    def test_failure_emits_job_failed(self):
        from repro.runner.executor import run_grid
        from repro.runner.spec import JobSpec

        bad = JobSpec(scenario={"name": "broken", "machine": {"bogus": 1}},
                      seed=1)
        bus = EventBus()
        ring = RingBufferSink(256)
        bus.subscribe(ring)
        report = run_grid([bad], retries=0, bus=bus)
        assert not report.outcomes[0].ok
        counts = count_by_kind(ring.events())
        assert counts["job_failed"] == 1

    def test_fleet_sweep_event_stream(self):
        from repro.runner.fleet_grid import run_grid_fleet

        bus = EventBus()
        ring = RingBufferSink(1024)
        bus.subscribe(ring)
        report = run_grid_fleet(_scenario_specs(3), bus=bus)
        assert all(o.ok for o in report.outcomes)
        counts = count_by_kind(ring.events())
        assert counts["fleet_chunk_started"] == 1
        assert counts["fleet_chunk_finished"] == 1
        assert counts["fleet_tick_progress"] >= 1
        assert counts["job_finished"] == 3
        assert counts["grid_started"] == 1
        assert counts["grid_finished"] == 1
        assert report.fleet_stats is not None
        assert report.fleet_stats.members == 3

    def test_fleet_fallback_indices_remapped_to_outer_grid(self):
        """Pool-fallback jobs inside a fleet sweep must report outer
        grid indices, and the inner grid's started/finished pair is
        suppressed."""
        from repro.runner.fleet_grid import run_grid_fleet

        specs = _scenario_specs(2) + _scenario_specs(1, fleet_ready=False)
        bus = EventBus()
        ring = RingBufferSink(1024)
        bus.subscribe(ring)
        report = run_grid_fleet(specs, bus=bus)
        assert all(o.ok for o in report.outcomes)
        counts = count_by_kind(ring.events())
        assert counts["grid_started"] == 1
        assert counts["grid_finished"] == 1
        finished_indices = sorted(
            e.data["index"] for e in ring.events()
            if e.kind == "job_finished"
        )
        assert finished_indices == [0, 1, 2]
