"""End-to-end tests asserting the paper's headline behaviours on
shortened versions of the §6 experiments.  The full-length runs live in
``benchmarks/``; these are fast sanity versions wired into CI."""

import numpy as np
import pytest

from repro.analysis.stats import curve_band
from repro.api import compare_policies, run_simulation
from repro.config import SystemConfig
from repro.cpu.thermal import ThermalParams
from repro.cpu.throttle import ThrottleConfig
from repro.cpu.topology import MachineSpec
from repro.workloads.generator import (
    mixed_table2_workload,
    single_program_workload,
)


class TestEnergyBalancingShape:
    """Figures 6/7 in miniature."""

    @pytest.fixture(scope="class")
    def runs(self):
        config = SystemConfig(
            machine=MachineSpec.ibm_x445(smt=False),
            max_power_per_cpu_w=60.0,
            seed=7,
        )
        wl = mixed_table2_workload(3)
        return {
            pol: run_simulation(config, wl, policy=pol, duration_s=240)
            for pol in ("baseline", "energy")
        }

    def test_balancing_narrows_the_band(self, runs):
        base = curve_band(runs["baseline"], skip_s=60.0)
        energy = curve_band(runs["energy"], skip_s=60.0)
        assert energy["mean_width_w"] < base["mean_width_w"] / 2

    def test_balancing_lowers_the_peak(self, runs):
        base = curve_band(runs["baseline"], skip_s=60.0)
        energy = curve_band(runs["energy"], skip_s=60.0)
        assert energy["peak_thermal_power_w"] < base["peak_thermal_power_w"]

    def test_balancing_costs_more_migrations(self, runs):
        assert runs["energy"].migrations() > runs["baseline"].migrations()

    def test_throughput_not_hurt_without_throttling(self, runs):
        """Without temperature control the extra migrations are noise."""
        gain = (
            runs["energy"].fractional_jobs() / runs["baseline"].fractional_jobs() - 1
        )
        assert abs(gain) < 0.05


class TestHotTaskTourShape:
    """Figure 9 in miniature."""

    @pytest.fixture(scope="class")
    def result(self):
        config = SystemConfig(
            machine=MachineSpec.ibm_x445(smt=True),
            max_power_per_cpu_w=20.0,  # 40 W per package
            thermal=ThermalParams(r_k_per_w=0.30, c_j_per_k=50.0),
            seed=3,
        )
        return run_simulation(
            config, single_program_workload("bitcnts", 1),
            policy="energy", duration_s=120,
        )

    def test_task_migrates_repeatedly(self, result):
        assert len(result.migration_events()) >= 4

    def test_never_to_smt_sibling(self, result):
        for event in result.migration_events():
            src, dst = event.detail["src"], event.detail["dst"]
            assert abs(src - dst) != 8, f"sibling migration {src}->{dst}"

    def test_never_across_node_boundary(self, result):
        def node(cpu):
            return 0 if cpu % 8 < 4 else 1

        for event in result.migration_events():
            src, dst = event.detail["src"], event.detail["dst"]
            assert node(src) == node(dst), f"inter-node migration {src}->{dst}"

    def test_all_moves_are_hot_task_migrations(self, result):
        reasons = {e.detail["reason"] for e in result.migration_events()}
        assert reasons == {"hot_task"}


class TestThrottlingAvoidance:
    """Table 3 / §6.4 in miniature."""

    def test_hot_migration_beats_throttling_for_single_task(self):
        config = SystemConfig(
            machine=MachineSpec.ibm_x445(smt=True),
            max_power_per_cpu_w=20.0,
            throttle=ThrottleConfig(enabled=True, scope="package"),
            seed=5,
        )
        cmp = compare_policies(
            config, single_program_workload("bitcnts", 1), duration_s=150
        )
        # The paper: 76 % more throughput at a 40 W package limit.
        assert cmp.throughput_gain > 0.4
        # The baseline throttled; energy-aware essentially did not.
        base_fraction = cmp.baseline.average_throttle_fraction()
        energy_fraction = cmp.energy_aware.average_throttle_fraction()
        assert base_fraction > 0.01
        assert energy_fraction < base_fraction / 3

    def test_energy_balancing_reduces_throttling_under_heterogeneous_cooling(self):
        rs = [0.36, 0.17, 0.16, 0.33, 0.31, 0.15, 0.14, 0.13]
        thermal = tuple(ThermalParams(r_k_per_w=r, c_j_per_k=20.0 / r) for r in rs)
        config = SystemConfig(
            machine=MachineSpec.ibm_x445(smt=True),
            thermal=thermal,
            temp_limit_c=38.0,
            throttle=ThrottleConfig(enabled=True),
            seed=11,
        )
        cmp = compare_policies(config, mixed_table2_workload(6), duration_s=180)
        assert (
            cmp.energy_aware.average_throttle_fraction()
            < cmp.baseline.average_throttle_fraction()
        )
        assert cmp.throughput_gain > 0.02  # paper: +4.7 %

    def test_homogeneous_workload_gains_nothing(self):
        """§6.3's corner case: all-identical tasks leave the scheduler
        no room to redirect power."""
        rs = [0.32, 0.21, 0.20, 0.30, 0.28, 0.19, 0.25, 0.18]
        thermal = tuple(ThermalParams(r_k_per_w=r, c_j_per_k=20.0 / r) for r in rs)
        config = SystemConfig(
            machine=MachineSpec.ibm_x445(smt=False),
            thermal=thermal,
            temp_limit_c=38.0,
            throttle=ThrottleConfig(enabled=True),
            seed=13,
        )
        cmp = compare_policies(
            config, single_program_workload("pushpop", 18), duration_s=120
        )
        assert abs(cmp.throughput_gain) < 0.03


class TestEstimatorClaims:
    def test_estimation_and_temperature_errors(self):
        """§3.2 (<10 % energy) and §4.2 (<1 K temperature) together."""
        config = SystemConfig(
            machine=MachineSpec.ibm_x445(smt=True),
            max_power_per_cpu_w=60.0,
            seed=21,
        )
        result = run_simulation(config, mixed_table2_workload(6), duration_s=90)
        assert result.estimation_error() < 0.10
        assert result.max_temperature_error_k < 1.0
