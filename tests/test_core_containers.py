"""Unit and integration tests for energy containers (§2.3 combinability)."""

import pytest

from repro.api import run_simulation
from repro.config import SystemConfig
from repro.core.containers import ContainerConfig, ContainerManager, EnergyContainer
from repro.cpu.topology import MachineSpec
from repro.workloads.generator import TaskSpec, WorkloadSpec
from repro.workloads.programs import program
from tests.conftest import make_task


class TestContainerConfig:
    def test_capacity_is_refill_times_window(self):
        config = ContainerConfig(refill_w=30.0, capacity_s=2.0)
        assert config.capacity_j == pytest.approx(60.0)

    @pytest.mark.parametrize("kwargs", [dict(refill_w=0), dict(refill_w=30, capacity_s=0)])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ContainerConfig(**kwargs)


class TestEnergyContainer:
    def test_starts_full(self):
        container = EnergyContainer(ContainerConfig(refill_w=30.0))
        assert container.balance_j == pytest.approx(30.0)
        assert not container.is_empty

    def test_charge_drains(self):
        container = EnergyContainer(ContainerConfig(refill_w=30.0))
        container.charge(25.0)
        assert container.balance_j == pytest.approx(5.0)
        container.charge(10.0)  # overdraft allowed
        assert container.is_empty
        assert container.balance_j == pytest.approx(-5.0)

    def test_refill_saturates_at_capacity(self):
        container = EnergyContainer(ContainerConfig(refill_w=30.0, capacity_s=1.0))
        container.refill(100.0)
        assert container.balance_j == pytest.approx(30.0)

    def test_refill_recovers_from_overdraft(self):
        container = EnergyContainer(ContainerConfig(refill_w=30.0))
        container.charge(35.0)
        container.refill(0.5)  # +15 J
        assert container.balance_j == pytest.approx(10.0)
        assert not container.is_empty

    def test_charged_accounting(self):
        container = EnergyContainer(ContainerConfig(refill_w=30.0))
        container.charge(5.0)
        container.charge(7.0)
        assert container.charged_j == pytest.approx(12.0)

    def test_validation(self):
        container = EnergyContainer(ContainerConfig(refill_w=30.0))
        with pytest.raises(ValueError):
            container.charge(-1.0)
        with pytest.raises(ValueError):
            container.refill(-1.0)


class TestContainerManager:
    def test_uncapped_task_always_eligible(self):
        manager = ContainerManager()
        assert manager.eligible(make_task(pid=1))

    def test_capped_task_denied_when_empty(self):
        manager = ContainerManager()
        task = make_task(pid=2)
        manager.assign(task, ContainerConfig(refill_w=30.0))
        assert manager.eligible(task)
        manager.charge(task, 35.0)
        assert not manager.eligible(task)

    def test_refill_all_restores_eligibility(self):
        manager = ContainerManager()
        task = make_task(pid=2)
        manager.assign(task, ContainerConfig(refill_w=30.0))
        manager.charge(task, 31.0)
        manager.refill_all(0.1)  # +3 J
        assert manager.eligible(task)

    def test_release_removes_cap(self):
        manager = ContainerManager()
        task = make_task(pid=2)
        manager.assign(task, ContainerConfig(refill_w=30.0))
        manager.charge(task, 100.0)
        manager.release(task)
        assert manager.eligible(task)
        assert len(manager) == 0

    def test_charge_without_container_is_noop(self):
        manager = ContainerManager()
        manager.charge(make_task(pid=3), 50.0)  # must not raise


class TestContainerScheduling:
    def _run(self, cap_w, duration_s=60, n_cpus=1, extra=()):
        config = SystemConfig(
            machine=MachineSpec.smp(n_cpus), max_power_per_cpu_w=100.0, seed=4
        )
        tasks = (TaskSpec(program=program("bitcnts"), power_cap_w=cap_w),) + extra
        wl = WorkloadSpec("capped", tasks)
        return run_simulation(config, wl, policy="baseline", duration_s=duration_s)

    def test_cap_enforces_average_power(self):
        result = self._run(cap_w=30.0)
        task = result.system.live_tasks()[0]
        avg_power = task.total_energy_j / result.duration_s
        assert avg_power == pytest.approx(30.0, rel=0.05)

    def test_duty_cycle_matches_cap_ratio(self):
        result = self._run(cap_w=30.0)
        task = result.system.live_tasks()[0]
        # bitcnts draws ~61 W when running: duty ~ 30/61.
        assert task.total_busy_s / result.duration_s == pytest.approx(
            30.0 / 61.0, rel=0.08
        )

    def test_generous_cap_never_bites(self):
        result = self._run(cap_w=80.0)
        task = result.system.live_tasks()[0]
        assert task.total_busy_s == pytest.approx(result.duration_s, rel=0.02)

    def test_uncapped_sibling_soaks_up_the_slack(self):
        """While the capped task is denied, the other queue task runs —
        the container throttles the task, not the CPU."""
        extra = (TaskSpec(program=program("memrw")),)
        result = self._run(cap_w=20.0, extra=extra)
        capped, free = result.system.live_tasks()
        assert capped.name == "bitcnts"
        total = capped.total_busy_s + free.total_busy_s
        assert total == pytest.approx(result.duration_s, rel=0.02)
        assert free.total_busy_s > capped.total_busy_s * 1.5

    def test_composes_with_energy_aware_scheduling(self):
        """The §2.3 claim: limiting (containers) and distributing
        (energy balancing) compose.  A capped hot task still gets
        migrated for heat reasons, and its cap still holds."""
        config = SystemConfig(
            machine=MachineSpec.smp(2), max_power_per_cpu_w=40.0, seed=4
        )
        wl = WorkloadSpec(
            "capped-hot",
            (TaskSpec(program=program("bitcnts"), power_cap_w=45.0),),
        )
        result = run_simulation(config, wl, policy="energy", duration_s=120)
        task = result.system.live_tasks()[0]
        avg_power = task.total_energy_j / result.duration_s
        assert avg_power == pytest.approx(45.0, rel=0.08)  # cap holds
        assert result.migrations() > 0  # heat balancing still acts

    def test_validation_in_taskspec(self):
        with pytest.raises(ValueError):
            TaskSpec(program=program("bitcnts"), power_cap_w=0.0)
