"""Property-based tests for the extension components: containers,
DVFS governor, priority timeslices, the multi-unit thermal network, and
unit profiles."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.containers import ContainerConfig, EnergyContainer
from repro.core.profile import ProfileConfig
from repro.cpu.dvfs import DvfsConfig, DvfsController
from repro.hotspot.profiles import UnitEnergyProfile
from repro.hotspot.thermal_network import MultiUnitThermalModel, UnitThermalParams
from repro.hotspot.units import N_UNITS
from repro.sched.priorities import MAX_NICE, MIN_NICE, timeslice_ms


class TestContainerProperties:
    @given(
        refill=st.floats(1.0, 100.0),
        charges=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=100),
        dt=st.floats(0.001, 1.0),
    )
    def test_balance_never_exceeds_capacity(self, refill, charges, dt):
        container = EnergyContainer(ContainerConfig(refill_w=refill))
        for energy in charges:
            container.charge(energy)
            container.refill(dt)
            assert container.balance_j <= container.config.capacity_j + 1e-9

    @given(
        refill=st.floats(1.0, 100.0),
        events=st.lists(
            st.tuples(st.floats(0.0, 5.0), st.floats(0.001, 0.5)),
            min_size=1, max_size=200,
        ),
    )
    def test_long_run_average_power_bounded_by_cap(self, refill, events):
        """If the task only runs while eligible, its consumed energy can
        never exceed initial capacity + refill * elapsed."""
        container = EnergyContainer(ContainerConfig(refill_w=refill))
        consumed = 0.0
        elapsed = 0.0
        for energy, dt in events:
            if not container.is_empty:
                container.charge(energy)
                consumed += energy
            container.refill(dt)
            elapsed += dt
        budget = container.config.capacity_j + refill * elapsed
        # One overdraft of a single charge is permitted by design.
        assert consumed <= budget + 5.0 + 1e-9

    @given(charged=st.floats(0.0, 1000.0))
    def test_charged_accounting_exact(self, charged):
        container = EnergyContainer(ContainerConfig(refill_w=10.0))
        container.charge(charged)
        assert container.charged_j == charged


class TestDvfsProperties:
    @given(
        thermals=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=200),
        limit=st.floats(10.0, 80.0),
    )
    def test_scale_always_a_configured_level(self, thermals, limit):
        ctl = DvfsController(1)
        for t in thermals:
            scale = ctl.update(0, t, limit)
            assert scale in ctl.config.levels

    @given(limit=st.floats(10.0, 80.0), n=st.integers(1, 50))
    def test_persistent_overload_reaches_floor(self, limit, n):
        ctl = DvfsController(1)
        for _ in range(len(ctl.config.levels) + n):
            ctl.update(0, limit + 50.0, limit)
        assert ctl.scale(0) == min(ctl.config.levels)

    @given(limit=st.floats(10.0, 80.0))
    def test_cold_cpu_returns_to_full_speed(self, limit):
        ctl = DvfsController(1)
        for _ in range(10):
            ctl.update(0, limit + 10.0, limit)
        for _ in range(10):
            ctl.update(0, 0.0, limit)
        assert ctl.scale(0) == 1.0

    @given(steps=st.lists(st.floats(0.0, 100.0), min_size=2, max_size=100))
    def test_moves_one_level_per_update(self, steps):
        ctl = DvfsController(1)
        levels = list(ctl.config.levels)
        prev = levels.index(ctl.scale(0))
        for t in steps:
            ctl.update(0, t, 40.0)
            cur = levels.index(ctl.scale(0))
            assert abs(cur - prev) <= 1
            prev = cur


class TestPriorityProperties:
    @given(nice=st.integers(MIN_NICE, MAX_NICE))
    def test_timeslice_positive_and_bounded(self, nice):
        ts = timeslice_ms(nice)
        assert 1 <= ts <= 200

    @given(
        a=st.integers(MIN_NICE, MAX_NICE),
        b=st.integers(MIN_NICE, MAX_NICE),
    )
    def test_monotone_nice_ordering(self, a, b):
        assume(a < b)
        assert timeslice_ms(a) >= timeslice_ms(b)

    @given(nice=st.integers(MIN_NICE, MAX_NICE), base=st.integers(20, 400))
    def test_scaling_preserves_ordering_with_default(self, nice, base):
        assert (timeslice_ms(nice, base) >= timeslice_ms(0, base)) == (
            timeslice_ms(nice) >= timeslice_ms(0)
        ) or timeslice_ms(nice, base) == timeslice_ms(0, base)


class TestThermalNetworkProperties:
    powers = st.lists(st.floats(0.0, 40.0), min_size=N_UNITS, max_size=N_UNITS)

    @given(unit_powers=powers, dt=st.floats(0.01, 2.0))
    @settings(max_examples=50, deadline=None)
    def test_temps_bounded_by_ambient_and_steady_state(self, unit_powers, dt):
        params = UnitThermalParams()
        model = MultiUnitThermalModel(params)
        powers = np.asarray(unit_powers)
        ceiling = params.steady_state(powers).max()
        for _ in range(60):
            model.step(powers, dt)
            assert model.unit_temps_c.min() >= params.ambient_c - 1e-6
            assert model.unit_temps_c.max() <= ceiling + 1e-6

    @given(unit_powers=powers)
    @settings(max_examples=30, deadline=None)
    def test_convergence_to_steady_state(self, unit_powers):
        params = UnitThermalParams()
        model = MultiUnitThermalModel(params)
        powers = np.asarray(unit_powers)
        for _ in range(4000):
            model.step(powers, 0.1)
        np.testing.assert_allclose(
            model.unit_temps_c, params.steady_state(powers), atol=0.05
        )

    @given(unit_powers=powers)
    @settings(max_examples=30, deadline=None)
    def test_spreader_temp_below_hottest_loaded_unit(self, unit_powers):
        assume(max(unit_powers) > 1.0)
        model = MultiUnitThermalModel(UnitThermalParams())
        powers = np.asarray(unit_powers)
        for _ in range(2000):
            model.step(powers, 0.1)
        assert model.spreader_temp_c <= model.hottest_unit_temp_c + 1e-6


class TestUnitProfileProperties:
    vectors = st.lists(
        st.lists(st.floats(0.0, 50.0), min_size=N_UNITS, max_size=N_UNITS),
        min_size=1, max_size=40,
    )

    @given(samples=vectors)
    def test_total_equals_sum_of_components(self, samples):
        profile = UnitEnergyProfile(ProfileConfig())
        for vec in samples:
            profile.record(np.asarray(vec) * 0.1, 0.1)
        np.testing.assert_allclose(
            profile.total_power_w, profile.power_vector_w.sum(), rtol=1e-9
        )

    @given(samples=vectors)
    def test_vector_within_sample_hull(self, samples):
        profile = UnitEnergyProfile(ProfileConfig())
        arr = np.asarray(samples)
        for vec in samples:
            profile.record(np.asarray(vec) * 0.1, 0.1)
        lo = arr.min(axis=0)
        hi = arr.max(axis=0)
        assert np.all(profile.power_vector_w >= lo - 1e-9)
        assert np.all(profile.power_vector_w <= hi + 1e-9)
