"""Differential oracles over generated scenarios.

The generator families feed workload shapes the hand-written perf set
never exercises (open-loop churn, sporadic releases, rotating
affinity), so each family is pushed through the fast-vs-scalar replay
oracle across policies and seeds, and the fleet-eligible families
additionally through fleet/scalar lockstep.  Everything here is byte
equality — a single float diverging on any tick fails.
"""

from __future__ import annotations

import pytest

from repro.fleet import FleetUnsupported, check_fleet_supported
from repro.scenarios import GeneratorSpec, family_by_name, family_names
from repro.system import System
from repro.validate import differential_replay
from repro.validate.fleet import fleet_lockstep

#: Small-machine overrides per family: oracle runs replay every tick
#: twice over, so each instance is kept to a few CPUs and seconds.
SMALL = {
    "poisson": {"machine": "smp4", "rate_per_s": 3.0, "horizon_s": 4.0},
    "bursty": {"machine": "smp4", "base_rate_per_s": 3.0, "horizon_s": 4.0},
    "sporadic": {"machine": "smp4", "n_tasks": 6, "utilization": 2.0,
                 "horizon_s": 6.0},
    "thermal-adversarial": {"machine": "smp4", "hot_jobs": 3, "cool_fill": 4,
                            "rotate_groups": 2, "horizon_s": 4.0},
}

FLEET_ELIGIBLE = [n for n in family_names()
                  if family_by_name(n).fleet_eligible]


def small_spec(family: str, seed: int) -> GeneratorSpec:
    return GeneratorSpec(family, SMALL[family], seed=seed)


class TestFastVsScalar:
    @pytest.mark.parametrize("family", sorted(SMALL))
    @pytest.mark.parametrize("policy", ["energy", "baseline"])
    @pytest.mark.parametrize("seed", [1, 2])
    def test_paths_identical(self, family, policy, seed):
        scenario = small_spec(family, seed).build()
        report = differential_replay(
            scenario.config,
            scenario.workload,
            policy=policy,
            duration_s=2.0,
        )
        assert report.identical, report.to_dict()


class TestFleetLockstep:
    def test_declared_eligibility_matches_fleet_check(self):
        """The ``fleet_eligible`` flags are promises about the generated
        configs, not documentation — verify them against the real gate."""
        for family in family_names():
            scenario = small_spec(family, seed=1).build()
            system = System(
                scenario.config, scenario.workload, policy=scenario.policy
            )
            try:
                check_fleet_supported(system)
                supported = True
            except FleetUnsupported:
                supported = False
            assert supported == family_by_name(family).fleet_eligible, family

    @pytest.mark.parametrize("family", sorted(FLEET_ELIGIBLE))
    def test_fleet_matches_scalar_across_seeds(self, family):
        def builder(seed):
            scenario = small_spec(family, seed).build()
            return System(
                scenario.config, scenario.workload, policy=scenario.policy
            )

        report = fleet_lockstep(
            [lambda s=s: builder(s) for s in (1, 2, 3)],
            n_ticks=200,
        )
        assert report.identical, report.to_dict()
